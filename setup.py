"""Setup shim: this environment lacks the `wheel` package required by
PEP 660 editable installs, so `pip install -e .` falls back to the legacy
setup.py path via this file. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()

"""Shared benchmark plumbing.

Every benchmark regenerates its paper table/figure once (expensive part,
kept out of the timed section), saves the rendered text under
``benchmarks/results/`` and echoes it into the pytest-benchmark report via
``extra_info``, then times one representative client operation so
``pytest benchmarks/ --benchmark-only`` yields meaningful numbers.

Set ``REPRO_FULL_SCALE=1`` to run at the paper's exact scales.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> str:
    """Persist a regenerated table/figure and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR

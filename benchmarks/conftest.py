"""Shared benchmark plumbing.

Every benchmark regenerates its paper table/figure once (expensive part,
kept out of the timed section), saves the rendered text under
``benchmarks/results/`` and echoes it into the pytest-benchmark report via
``extra_info``, then times one representative client operation so
``pytest benchmarks/ --benchmark-only`` yields meaningful numbers.

Each benchmark also saves a machine-readable JSON record next to its
text artifact via :func:`save_json`; at session end every record found
under ``results/`` is folded into the top-level ``BENCH_hotpath.json``
so one committed file tracks the whole performance surface.

Set ``REPRO_FULL_SCALE=1`` to run at the paper's exact scales.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
AGGREGATE_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                              "BENCH_hotpath.json")


def save_result(name: str, text: str) -> str:
    """Persist a regenerated table/figure and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def save_json(name: str, record: dict) -> str:
    """Persist a benchmark's machine-readable record and return its path.

    Records follow a loose convention -- ``op`` (what was measured), and
    where meaningful ``n`` (scale), ``seconds`` (wall time), ``hash_calls``
    and ``bytes`` -- plus whatever extra series the benchmark produces.
    Keys are sorted so reruns diff cleanly.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    """Aggregate every per-benchmark JSON record into BENCH_hotpath.json."""
    records = {}
    for path in sorted(glob.glob(os.path.join(RESULTS_DIR, "*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path, encoding="utf-8") as handle:
                records[name] = json.load(handle)
        except (OSError, ValueError):  # half-written record: skip, keep rest
            continue
    if not records:
        return
    with open(AGGREGATE_PATH, "w", encoding="utf-8") as handle:
        json.dump({"schema": 1, "records": records}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR

"""Figure 5: communication overhead of delete/insert/access vs file size.

Regenerates the sweep (10 .. 10^6 items by default, 10^7 with
REPRO_FULL_SCALE=1), asserts the paper's qualitative shape (logarithmic
growth, delete > insert > access, modest absolute size), and benchmarks
the deletion exchange at the top of the grid.
"""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.config import figure_grid
from repro.analysis.figures import log_growth_ratio, render_figure5, run_sweep
from repro.analysis.harness import build_seeded_file
from repro.crypto.rng import DeterministicRandom
from repro.sim.workload import PAPER_ITEM_SIZE


@pytest.fixture(scope="module")
def sweep():
    result = run_sweep()
    save_result("fig5_comm_overhead", render_figure5(result))
    save_json("fig5_comm_overhead", {
        "op": "comm_overhead",
        "bytes": {op: {str(n): series[n] for n in sorted(series)}
                  for op, series in result.comm_bytes.items()},
    })
    print("\n" + render_figure5(result))
    return result


def test_regenerate_figure5(sweep):
    grid = figure_grid()
    top = grid[-1]
    for op in ("delete", "insert", "access"):
        series = sweep.comm_bytes[op]
        # Monotone-ish growth across decades, but far below linear: the
        # whole sweep spans 5+ orders of magnitude of n within one order
        # of magnitude of bytes.
        assert series[top] > series[grid[0]]
        assert series[top] < 20 * series[grid[0]]

    # Paper's ordering and magnitudes: delete carries the MT + deltas +
    # balancing; access only a path.  At 10^6-10^7 the paper's delete
    # curve sits around 2-3 KB.
    assert sweep.comm_bytes["delete"][top] > sweep.comm_bytes["insert"][top]
    assert sweep.comm_bytes["insert"][top] > sweep.comm_bytes["access"][top]
    assert sweep.comm_bytes["delete"][top] < 8 * 1024


def test_growth_is_logarithmic(sweep):
    """Per-decade increments are roughly constant (log shape)."""
    for op in ("delete", "insert", "access"):
        ratio = log_growth_ratio(sweep.comm_bytes[op])
        assert 0.0 < ratio < 1.5


@pytest.mark.benchmark(group="fig5")
def test_delete_exchange_at_top_of_grid(benchmark, sweep):
    n = figure_grid()[-1]
    handle = build_seeded_file(n, PAPER_ITEM_SIZE, seed="fig5-bench")
    rng = DeterministicRandom("fig5-pick")
    picked: set[int] = set()
    while len(picked) < 64:
        picked.add(rng.below(n))
    queue = sorted(picked)

    def delete_one():
        handle.scheme.delete(handle.item_id(queue.pop()))

    benchmark.pedantic(delete_one, rounds=5, iterations=1)

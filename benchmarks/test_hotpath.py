"""Hot-path overhaul benchmark (ISSUE 5 acceptance numbers).

Compares the pre-PR configuration (scalar per-item AES, no client chain
cache, no server view cache) against the optimised stack on the two
headline operations:

* whole-file fetch at n = 1024 -- the client cache skips the 3n-2 chain
  sweep and ``decrypt_many`` runs one bulk AES pass over all items;
* warm single-item access -- path derivation and verification collapse
  to one dict lookup plus the (mandatory) decrypt-verify.

Acceptance: >= 3x on the fetch, >= 2x on warm access, and the two
configurations must be *bit-identical* -- same stored ciphertexts, same
plaintexts -- or the speedup is meaningless.
"""

import time

import pytest

from benchmarks.conftest import save_json, save_result
from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer

N_ITEMS = 1024
ITEM_SIZE = 64
ACCESS_ITEMS = 64
ROUNDS = 3


def make_items(n=N_ITEMS, size=ITEM_SIZE):
    rng = DeterministicRandom("hotpath-items")
    return [rng.bytes(size) for _ in range(n)]


def build(optimised, items, seed="hotpath"):
    """A (server, client, key) triple in one of the two configurations."""
    server = CloudServer()
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom(seed),
                                   cache=optimised)
    if not optimised:
        client.codec.use_bulk_aes = False
        server.view_cache_enabled = False
    key = client.outsource(1, items)
    return server, client, key


def best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def hotpath():
    items = make_items()
    rows = {}
    plaintexts = {}
    for label in ("baseline", "optimised"):
        optimised = label == "optimised"
        _server, client, key = build(optimised, items)
        ids = client.item_ids_of(len(items))

        hashes0 = client.engine.hash_calls
        fetch_seconds = best_of(lambda: client.fetch_file(1, key))
        fetch_hashes = (client.engine.hash_calls - hashes0) // ROUNDS

        hashes0 = client.engine.hash_calls

        def access_sweep():
            for item_id in ids[:ACCESS_ITEMS]:
                client.access(1, key, item_id)

        access_seconds = best_of(access_sweep)
        access_hashes = (client.engine.hash_calls - hashes0) // ROUNDS

        plaintexts[label] = client.fetch_file(1, key)
        rows[label] = {
            "fetch_seconds": fetch_seconds,
            "fetch_hash_calls": fetch_hashes,
            "access_seconds": access_seconds,
            "access_hash_calls": access_hashes,
        }

    fetch_speedup = (rows["baseline"]["fetch_seconds"]
                     / max(rows["optimised"]["fetch_seconds"], 1e-9))
    access_speedup = (rows["baseline"]["access_seconds"]
                      / max(rows["optimised"]["access_seconds"], 1e-9))
    identical = plaintexts["baseline"] == plaintexts["optimised"]

    text = "\n".join([
        f"Hot-path overhaul at n = {N_ITEMS} x {ITEM_SIZE} B items "
        f"(best of {ROUNDS})",
        "",
        f"{'config':<10} {'fetch ms':>9} {'hashes':>7} "
        f"{'access ms':>10} {'hashes':>7}",
        *(f"{label:<10} {row['fetch_seconds'] * 1e3:>9.1f} "
          f"{row['fetch_hash_calls']:>7} "
          f"{row['access_seconds'] * 1e3:>10.1f} "
          f"{row['access_hash_calls']:>7}"
          for label, row in rows.items()),
        "",
        f"whole-file fetch speedup: {fetch_speedup:.1f}x "
        f"(acceptance >= 3x)",
        f"warm access speedup ({ACCESS_ITEMS} items): "
        f"{access_speedup:.1f}x (acceptance >= 2x)",
        f"plaintexts bit-identical: {identical}",
    ])
    save_result("hotpath", text)
    print("\n" + text)
    save_json("hotpath", {
        "op": "hotpath",
        "n": N_ITEMS,
        "item_bytes": ITEM_SIZE,
        "rows": rows,
        "fetch_speedup": fetch_speedup,
        "access_speedup": access_speedup,
        "bit_identical": identical,
    })
    return rows, fetch_speedup, access_speedup, identical


def test_fetch_meets_acceptance(hotpath):
    """ISSUE 5 acceptance: >= 3x whole-file fetch at n = 1024."""
    _rows, fetch_speedup, _access, _identical = hotpath
    assert fetch_speedup >= 3.0, hotpath


def test_warm_access_meets_acceptance(hotpath):
    """ISSUE 5 acceptance: >= 2x on warm single-item access."""
    _rows, _fetch, access_speedup, _identical = hotpath
    assert access_speedup >= 2.0, hotpath


def test_configurations_are_bit_identical(hotpath):
    """Speedups only count if both stacks agree bit-for-bit."""
    _rows, _fetch, _access, identical = hotpath
    assert identical
    # Same randomness + same items => the stored ciphertexts must also
    # be byte-identical between the scalar and bulk AES encrypt paths.
    items = make_items(64, 128)
    base_server, base_client, _ = build(False, items, seed="identity")
    opt_server, opt_client, _ = build(True, items, seed="identity")
    ids = base_client.item_ids_of(len(items))
    for item_id in ids:
        assert (base_server._state(1).ciphertexts.get(item_id)
                == opt_server._state(1).ciphertexts.get(item_id))


def test_cache_savings_are_structural(hotpath):
    """The warm fetch does zero chain hashing; the baseline does the
    full 3n-2 sweep every time.  Counts, not clocks."""
    rows, _fetch, _access, _identical = hotpath
    assert rows["optimised"]["fetch_hash_calls"] == 0
    assert rows["baseline"]["fetch_hash_calls"] >= 3 * N_ITEMS - 2
    assert rows["optimised"]["access_hash_calls"] == 0
    assert rows["baseline"]["access_hash_calls"] > 0


def test_quick_hotpath_smoke():
    """CI smoke: small scale; the optimised stack must beat baseline."""
    items = make_items(128, 64)
    _s, base_client, base_key = build(False, items, seed="quick")
    _s, opt_client, opt_key = build(True, items, seed="quick")
    base = best_of(lambda: base_client.fetch_file(1, base_key), rounds=2)
    opt = best_of(lambda: opt_client.fetch_file(1, opt_key), rounds=2)
    assert opt_client.fetch_file(1, opt_key) == \
        base_client.fetch_file(1, base_key)
    assert opt < base, (base, opt)

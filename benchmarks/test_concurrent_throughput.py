"""Aggregate read throughput vs client concurrency (ISSUE 4).

N client threads, each its own tenant (own TCP connection, own file,
disjoint id space), read records as fast as they can against ONE server
for a fixed interval; the sweep reports aggregate reads/s at 1, 2, 4, 8
and 16 clients.

The server simulates a fixed per-access service latency (``READ_DELAY``,
a stand-in for disk/WAN time) *inside the request handler* -- i.e. while
the per-file/registry **shared** locks of the concurrent-serving layer
are held.  That placement is the point of the benchmark: aggregate
throughput scales with client count only if the locking layer genuinely
admits concurrent readers.  A regression that serialized reads (a shared
lock turned exclusive, a global server mutex, a single-threaded
transport) collapses the curve to flat and fails the acceptance
assertion below.

Acceptance (ISSUE 4): >= 3x aggregate read ops/s at 8 client threads
over 1 client thread.
"""

from __future__ import annotations

import threading
import time

import pytest

from benchmarks.conftest import save_json, save_result
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.protocol import messages as msg
from repro.protocol.tcp import TcpChannel, TcpServerHost
from repro.server.server import CloudServer

#: Simulated per-access service time, slept while holding the shared
#: locks.  One logical read = two accesses (meta key + data item).
READ_DELAY = 0.010
THREAD_COUNTS = (1, 2, 4, 8, 16)
MEASURE_SECONDS = 1.0
RECORDS_PER_TENANT = 8
RECORD_SIZE = 64


class _SlowReadServer(CloudServer):
    """A CloudServer whose reads take ``READ_DELAY`` of service time.

    The sleep runs inside the handler, i.e. under the registry-shared +
    file-shared locks ``_dispatch`` wraps around it, exactly where a real
    server would spend disk or backend-store latency.
    """

    def _on_access(self, request: msg.AccessRequest) -> msg.Message:
        time.sleep(READ_DELAY)
        return super()._on_access(request)


class _Tenant:
    """One client thread's endpoint: connection, file, and counter."""

    def __init__(self, index: int, address, ctx) -> None:
        self.index = index
        self.channel = TcpChannel(address, ctx)
        self.fs = OutsourcedFileSystem(
            channel=self.channel,
            rng=DeterministicRandom(f"throughput/{index}"),
            meta_id_base=1 + index * 1_000,
            file_id_base=1_000_000 * (index + 1))
        name = f"tenant-{index}"
        self.fs.create_file(name, [bytes([index % 251]) * RECORD_SIZE
                                   for _ in range(RECORDS_PER_TENANT)])
        self.handle = self.fs.open(name)
        self.reads = 0

    def read_loop(self, barrier: threading.Barrier, duration: float) -> None:
        barrier.wait()
        deadline = time.perf_counter() + duration
        position = 0
        while time.perf_counter() < deadline:
            self.handle.read_record(position % RECORDS_PER_TENANT)
            position += 1
            self.reads += 1

    def close(self) -> None:
        self.channel.close()


def _measure(address, ctx, workers: int, duration: float) -> float:
    """Aggregate reads/s achieved by ``workers`` concurrent clients."""
    tenants = [_Tenant(i, address, ctx) for i in range(workers)]
    try:
        barrier = threading.Barrier(workers)
        threads = [threading.Thread(target=tenant.read_loop,
                                    args=(barrier, duration),
                                    name=f"bench-client-{tenant.index}")
                   for tenant in tenants]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(tenant.reads for tenant in tenants)
        return total / duration
    finally:
        for tenant in tenants:
            tenant.close()


def _sweep(duration: float, counts=THREAD_COUNTS) -> dict[int, float]:
    server = _SlowReadServer()
    host = TcpServerHost(server).start()
    try:
        return {workers: _measure(host.address, server.ctx, workers,
                                  duration)
                for workers in counts}
    finally:
        host.stop()


@pytest.fixture(scope="module")
def throughput_curve() -> dict[int, float]:
    curve = _sweep(MEASURE_SECONDS)
    base = curve[THREAD_COUNTS[0]]
    lines = [
        f"Aggregate read throughput vs client threads "
        f"(simulated {READ_DELAY * 1e3:.0f} ms/access service time, "
        f"{MEASURE_SECONDS:.1f} s measure window)",
        "",
        f"{'clients':>8} {'reads/s':>9} {'scaling':>8}",
    ]
    for workers in THREAD_COUNTS:
        lines.append(f"{workers:>8} {curve[workers]:>9.1f} "
                     f"{curve[workers] / base:>7.2f}x")
    table = "\n".join(lines)
    save_result("concurrent_throughput", table)
    save_json("concurrent_throughput", {
        "op": "read",
        "seconds": MEASURE_SECONDS,
        "reads_per_second": {str(workers): curve[workers]
                             for workers in THREAD_COUNTS},
        "scaling_at_8": curve[8] / curve[1],
    })
    print("\n" + table)
    return curve


def test_reads_scale_with_clients(throughput_curve):
    """ISSUE 4 acceptance: >= 3x aggregate reads/s at 8 clients vs 1."""
    ratio = throughput_curve[8] / throughput_curve[1]
    assert ratio >= 3.0, throughput_curve


def test_scaling_is_monotone_to_eight(throughput_curve):
    """Each doubling up to 8 clients must help (no lock convoy)."""
    assert throughput_curve[2] > throughput_curve[1]
    assert throughput_curve[4] > throughput_curve[2]
    assert throughput_curve[8] > throughput_curve[4]


def test_quick_concurrent_smoke():
    """CI smoke: tiny sweep, shape only -- concurrency beats one client."""
    curve = _sweep(0.3, counts=(1, 4))
    assert curve[4] > curve[1] * 1.5, curve

"""Table I: complexity comparison (client storage, deletion comm/comp).

Regenerates the table by measuring all three solutions across the size
grid and fitting growth laws, asserts the fitted classes match the
paper's claims, and benchmarks one deletion of each solution at the
largest grid point.
"""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.complexity import PAPER_CLAIMS, run_table1
from repro.baselines.base import BlobStoreServer
from repro.baselines.individual_key import IndividualKeySolution
from repro.baselines.keymod import KeyModulationScheme
from repro.baselines.master_key import MasterKeySolution
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from repro.sim.workload import make_items

N_BENCH = 2048
_ITEM = 64


@pytest.fixture(scope="module")
def table1():
    table, fits = run_table1()
    save_result("table1_complexity", table)
    save_json("table1_complexity", {
        "op": "complexity_fit",
        "fits": {name: list(classes) for name, classes in fits.items()},
    })
    print("\n" + table)
    return table, fits


def test_regenerate_table1(table1):
    _table, fits = table1
    assert fits == PAPER_CLAIMS


def _deletion_queue(scheme_factory, seed):
    scheme = scheme_factory(seed)
    items = make_items(N_BENCH, _ITEM, DeterministicRandom(seed + "-items"))
    ids = scheme.outsource(items)
    queue = list(ids)
    return scheme, queue


@pytest.mark.benchmark(group="table1-delete")
def test_delete_our_work(benchmark, table1):
    scheme, queue = _deletion_queue(
        lambda seed: KeyModulationScheme(LoopbackChannel(CloudServer()),
                                         rng=DeterministicRandom(seed)),
        "t1b-ours")
    benchmark.pedantic(lambda: scheme.delete(queue.pop()), rounds=10,
                       iterations=1)


@pytest.mark.benchmark(group="table1-delete")
def test_delete_individual_key(benchmark):
    scheme, queue = _deletion_queue(
        lambda seed: IndividualKeySolution(LoopbackChannel(BlobStoreServer()),
                                           rng=DeterministicRandom(seed)),
        "t1b-ik")
    benchmark.pedantic(lambda: scheme.delete(queue.pop()), rounds=10,
                       iterations=1)


@pytest.mark.benchmark(group="table1-delete")
def test_delete_master_key(benchmark):
    scheme, queue = _deletion_queue(
        lambda seed: MasterKeySolution(LoopbackChannel(BlobStoreServer()),
                                       rng=DeterministicRandom(seed)),
        "t1b-mk")
    benchmark.pedantic(lambda: scheme.delete(queue.pop()), rounds=3,
                       iterations=1)

"""Figure 6: client computation of delete/access/insert vs file size.

Regenerates the sweep and its exact hash-count companion, asserts the
paper's qualitative shape (logarithmic growth of the tree-walk term,
delete > insert/access), and benchmarks the pure client-side delta
computation at the top of the grid.

Wall-clock values carry the Python interpreter constant (the paper's
C-speed client reports ~0.24 ms where we see ~15 ms, dominated by the
4 KB item hash); the hash-count series isolates the O(log n) claim
exactly.  EXPERIMENTS.md discusses the normalisation.
"""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.config import figure_grid
from repro.analysis.figures import render_figure6, run_sweep
from repro.core import ops
from repro.core.modulated_chain import ChainEngine
from repro.core.tree import ModulationTree
from repro.crypto.rng import DeterministicRandom


@pytest.fixture(scope="module")
def sweep():
    result = run_sweep()
    save_result("fig6_comp_overhead", render_figure6(result))
    save_json("fig6_comp_overhead", {
        "op": "comp_overhead",
        "hash_calls": {op: {str(n): series[n] for n in sorted(series)}
                       for op, series in result.hash_calls.items()},
        "seconds": {op: {str(n): series[n] for n in sorted(series)}
                    for op, series in result.comp_seconds.items()},
    })
    print("\n" + render_figure6(result))
    return result


def test_regenerate_figure6(sweep):
    grid = figure_grid()
    top, bottom = grid[-1], grid[0]
    for op in ("delete", "insert", "access"):
        hashes = sweep.hash_calls[op]
        # The hash count grows with every decade and is O(log n): going
        # from 10 to 10^6 items multiplies the count by far less than the
        # 10^5x a linear scheme would show.
        assert hashes[top] > hashes[bottom]
        assert hashes[top] < 40 * hashes[bottom]
        assert sweep.comp_seconds[op][top] > 0

    # Deletion does the most client work (two prefix sweeps + cut deltas
    # + balancing) at every size.
    for n in grid:
        assert sweep.hash_calls["delete"][n] > sweep.hash_calls["insert"][n]
        assert sweep.hash_calls["delete"][n] > sweep.hash_calls["access"][n]


def test_hash_count_increment_per_decade_is_constant(sweep):
    """The defining property of a log curve, on noise-free counts."""
    series = sweep.hash_calls["delete"]
    ns = sorted(series)
    increments = [series[b] - series[a] for a, b in zip(ns[1:], ns[2:])]
    assert max(increments) <= 2.5 * max(min(increments), 1)


@pytest.mark.benchmark(group="fig6")
def test_client_delta_computation(benchmark, sweep):
    """Times exactly the client-side O(log n) computation of a deletion
    (delta set + balancing values), excluding transport and item crypto --
    the closest analogue of the paper's Figure 6 deletion curve."""
    n = figure_grid()[-1]
    engine = ChainEngine()
    rng = DeterministicRandom("fig6-bench")
    # A lazily-seeded server-side tree provides the views.
    from repro.core.modstore import LazySeededStore
    store = LazySeededStore(engine.digest_size, b"fig6")
    tree = ModulationTree.adopt_arithmetic(store, n, 1)
    slot = tree.slot_of_item(n // 2)
    mt = tree.mt_view(slot)
    balance = tree.balance_view()
    old_key = rng.bytes(16)

    def compute():
        new_key = rng.bytes(16)
        cut_slots, deltas = ops.compute_deltas(engine, old_key, new_key, mt)
        return ops.compute_balance_values(engine, new_key, mt, balance,
                                          cut_slots, deltas, rng)

    benchmark(compute)

"""Ablation benchmarks for the design choices DESIGN.md calls out:
chain hash, store layout, and two-level key management."""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.ablation import (run_hash_ablation, run_store_ablation,
                                     run_two_level_ablation,
                                     run_two_level_sweep)
from repro.analysis.harness import build_seeded_file
from repro.core.params import SHA256_PARAMS


@pytest.fixture(scope="module")
def ablation_tables():
    """Regenerate all three ablation tables (shared by the assertion
    tests and the timed benchmarks, so --benchmark-only still produces
    the artifacts)."""
    hash_table, hash_rows = run_hash_ablation()
    save_result("ablation_hash", hash_table)
    store_table, store_numbers = run_store_ablation()
    save_result("ablation_store", store_table)
    two_level_table, two_level_numbers = run_two_level_ablation()
    save_result("ablation_two_level", two_level_table)
    sweep_table, sweep_numbers = run_two_level_sweep()
    save_result("ablation_two_level_sweep", sweep_table)
    save_json("ablations", {
        "op": "ablation",
        "hash": [{"delete_hashes": row.delete_hashes,
                  "bytes": row.delete_comm_bytes} for row in hash_rows],
        "store": dict(store_numbers),
        "two_level": dict(two_level_numbers),
        "two_level_sweep": {str(m): sweep_numbers[m]
                            for m in sorted(sweep_numbers)},
    })
    print("\n" + "\n\n".join([hash_table, store_table, two_level_table,
                              sweep_table]))
    return hash_rows, store_numbers, two_level_numbers, sweep_numbers


def test_hash_ablation(ablation_tables):
    rows, _store, _two, _sweep = ablation_tables
    sha1_row, sha256_row = rows
    # Same tree depth => identical hash counts; wider modulators => more
    # bytes per level (32/20 of the SHA-1 volume, minus fixed framing).
    assert sha1_row.delete_hashes == sha256_row.delete_hashes
    assert sha256_row.delete_comm_bytes > 1.3 * sha1_row.delete_comm_bytes


def test_store_ablation(ablation_tables):
    _rows, numbers, _two, _sweep = ablation_tables
    # Lazy setup is orders of magnitude cheaper; per-op cost identical.
    assert numbers["lazy_setup"] < numbers["dense_setup"]
    assert numbers["lazy_delete"] == numbers["dense_delete"]


def test_two_level_ablation(ablation_tables):
    _rows, _store, numbers, _sweep = ablation_tables
    # Two-level deletion = file delete + meta access + meta delete + meta
    # insert: more round trips and more bytes, but the same order.
    assert numbers["two_level_bytes"] > numbers["single_bytes"]
    assert numbers["two_level_bytes"] < 12 * numbers["single_bytes"]
    assert numbers["two_level_round_trips"] > numbers["single_round_trips"]


@pytest.mark.benchmark(group="ablation-hash")
def test_delete_sha1(benchmark, ablation_tables):
    handle = build_seeded_file(4096, 256, seed="abl-bench-sha1")
    queue = list(range(4096))
    benchmark.pedantic(lambda: handle.scheme.delete(handle.item_id(queue.pop())),
                       rounds=8, iterations=1)


@pytest.mark.benchmark(group="ablation-hash")
def test_delete_sha256(benchmark):
    handle = build_seeded_file(4096, 256, seed="abl-bench-sha256",
                               params=SHA256_PARAMS)
    queue = list(range(4096))
    benchmark.pedantic(lambda: handle.scheme.delete(handle.item_id(queue.pop())),
                       rounds=8, iterations=1)


def test_two_level_sweep_grows_logarithmically(ablation_tables):
    _rows, _store, _two, sweep = ablation_tables
    ms = sorted(sweep)
    # More meta files -> deeper meta tree -> more bytes, but the growth
    # from m=4 to m=256 (64x) stays well under 2x: logarithmic.
    assert sweep[ms[-1]] > sweep[ms[0]]
    assert sweep[ms[-1]] < 2 * sweep[ms[0]]

"""Table II: deletion overhead at the paper's scale (10^5 x 4 KB items;
reduced to 10^4 by default -- REPRO_FULL_SCALE=1 restores 10^5).

Regenerates the three-row table (client storage / communication /
computation), asserts the paper's qualitative ordering, and benchmarks a
single assured deletion of ours at the target scale.
"""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.config import table2_item_count
from repro.analysis.harness import build_seeded_file
from repro.analysis.table2 import run_table2
from repro.sim.workload import PAPER_ITEM_SIZE


@pytest.fixture(scope="module")
def table2():
    table, rows = run_table2()
    save_result("table2_deletion_overhead", table)
    save_json("table2_deletion_overhead", {
        "op": "delete",
        "n": table2_item_count(),
        "rows": {name: {"storage_bytes": row.storage_bytes,
                        "bytes": row.comm_bytes,
                        "seconds": row.comp_seconds}
                 for name, row in rows.items()},
    })
    print("\n" + table)
    return rows


def test_regenerate_table2(table2):
    rows = table2
    ours = rows["our-work"]
    master = rows["master-key"]
    individual = rows["individual-key"]

    # Client storage: ours == master-key == one key; individual-key huge.
    assert ours.storage_bytes == 16
    assert master.storage_bytes == 16
    assert individual.storage_bytes > 1000 * ours.storage_bytes

    # Communication: ours is KBs; master-key is MBs (>1000x); individual ~0.
    assert ours.comm_bytes < 8 * 1024
    assert master.comm_bytes > 1000 * ours.comm_bytes
    assert individual.comm_bytes < 100

    # Computation: ours is ms-scale; master-key >100x slower; individual ~0.
    assert master.comp_seconds > 100 * ours.comp_seconds
    assert individual.comp_seconds < ours.comp_seconds


def test_our_overhead_close_to_paper_shape(table2):
    """Paper reports 1.61 KB at 10^5; our protocol's deletion overhead
    must land within small constant factors of that at the target n."""
    ours = table2["our-work"]
    assert 512 <= ours.comm_bytes <= 4 * 1610


@pytest.mark.benchmark(group="table2")
def test_assured_delete_at_scale(benchmark, table2):
    n = table2_item_count()
    handle = build_seeded_file(n, PAPER_ITEM_SIZE, seed="t2-bench")
    queue = list(range(n))

    def delete_one():
        handle.scheme.delete(handle.item_id(queue.pop()))

    benchmark.pedantic(delete_one, rounds=5, iterations=1)

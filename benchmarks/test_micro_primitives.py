"""Microbenchmarks of the crypto substrate and the key-modulation core.

These are the constants behind every figure: the chain-hash step, the AES
block, bulk CTR throughput, chain evaluation at the paper's depths, and
the item codec at the paper's 4 KB item size.
"""

import time

import pytest

from benchmarks.conftest import save_json
from repro.core.ciphertext import ItemCodec
from repro.core.modulated_chain import ChainEngine, xor_bytes
from repro.core.params import Params
from repro.crypto.aes import AES
from repro.crypto.bulk import ctr_transform
from repro.crypto.modes import aes_ctr
from repro.crypto.rng import DeterministicRandom
from repro.crypto.sha1 import sha1

rng = DeterministicRandom("micro")


@pytest.mark.benchmark(group="micro-hash")
def test_sha1_short_input(benchmark):
    """One chain step hashes a digest-wide value (20 bytes)."""
    data = rng.bytes(20)
    benchmark(lambda: sha1(data))


@pytest.mark.benchmark(group="micro-hash")
def test_sha1_item_sized_input(benchmark):
    """The per-item integrity hash covers a 4 KB item."""
    data = rng.bytes(4096)
    benchmark(lambda: sha1(data))


@pytest.mark.benchmark(group="micro-aes")
def test_aes_block(benchmark):
    cipher = AES(rng.bytes(16))
    block = rng.bytes(16)
    benchmark(lambda: cipher.encrypt_block(block))


@pytest.mark.benchmark(group="micro-aes")
def test_bulk_ctr_4kb(benchmark):
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(4096)
    benchmark(lambda: ctr_transform(key, nonce, data))


@pytest.mark.benchmark(group="micro-aes")
def test_bulk_ctr_1mb(benchmark):
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(1 << 20)
    benchmark(lambda: ctr_transform(key, nonce, data))


@pytest.mark.parametrize("depth", [7, 17, 24],
                         ids=["n=10^2", "n=10^5", "n=10^7"])
@pytest.mark.benchmark(group="micro-chain")
def test_chain_evaluation_at_depth(benchmark, depth):
    """F(K, M) over path lengths matching the paper's n grid."""
    engine = ChainEngine()
    key = rng.bytes(16)
    modulators = [rng.bytes(20) for _ in range(depth + 1)]
    benchmark(lambda: engine.evaluate(key, modulators))


@pytest.mark.benchmark(group="micro-codec")
def test_item_encrypt_4kb(benchmark):
    codec = ItemCodec(Params())
    chain_output = rng.bytes(20)
    message = rng.bytes(4096)
    nonce = rng.bytes(8)
    benchmark(lambda: codec.encrypt(chain_output, message, 1, nonce))


@pytest.mark.benchmark(group="micro-codec")
def test_item_decrypt_verify_4kb(benchmark):
    codec = ItemCodec(Params())
    chain_output = rng.bytes(20)
    ciphertext = codec.encrypt(chain_output, rng.bytes(4096), 1, rng.bytes(8))
    benchmark(lambda: codec.decrypt(chain_output, ciphertext))


@pytest.mark.benchmark(group="micro-xor")
def test_xor_digest_pair(benchmark):
    """One chain step XORs two 20-byte digests (the fast path)."""
    a, b = rng.bytes(20), rng.bytes(20)
    benchmark(lambda: xor_bytes(a, b))


@pytest.mark.benchmark(group="micro-xor")
def test_xor_key_with_digest_prefix(benchmark):
    """The chain's first step XORs a 16-byte key (general path)."""
    a, b = rng.bytes(16), rng.bytes(16)
    benchmark(lambda: xor_bytes(a, b))


def _per_call_us(fn, reps=2000):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps * 1e6


def test_xor_fast_path_is_correct_and_not_slower():
    """The 20-byte fast path must equal the general path bit-for-bit
    and must not regress it (the chain calls this 3n-2 times per
    outsource)."""
    for _ in range(200):
        a, b = rng.bytes(20), rng.bytes(20)
        assert xor_bytes(a, b) == bytes(x ^ y for x, y in zip(a, b))
    digest = _per_call_us(lambda: xor_bytes(b"\x5a" * 20, b"\xa5" * 20))
    general = _per_call_us(lambda: xor_bytes(b"\x5a" * 16, b"\xa5" * 16))
    # Loose noise ceiling: the fast path must stay in the same league.
    assert digest < 5 * max(general, 0.01)


def test_micro_timing_record():
    """Persist the substrate constants as a machine-readable record."""
    key, nonce = rng.bytes(16), rng.bytes(8)
    digest_a, digest_b = rng.bytes(20), rng.bytes(20)
    short, item = rng.bytes(20), rng.bytes(4096)
    small_payload = rng.bytes(92)
    cipher = AES(key)
    block = rng.bytes(16)
    save_json("micro_primitives", {
        "op": "micro",
        "microseconds": {
            "xor_digest_20b": _per_call_us(
                lambda: xor_bytes(digest_a, digest_b)),
            "sha1_20b": _per_call_us(lambda: sha1(short)),
            "sha1_4kb": _per_call_us(lambda: sha1(item), reps=200),
            "aes_block": _per_call_us(lambda: cipher.encrypt_block(block)),
            "ctr_small_92b": _per_call_us(
                lambda: aes_ctr(key, nonce, small_payload)),
            "ctr_bulk_4kb": _per_call_us(
                lambda: ctr_transform(key, nonce, item), reps=200),
        },
    })

"""Microbenchmarks of the crypto substrate and the key-modulation core.

These are the constants behind every figure: the chain-hash step, the AES
block, bulk CTR throughput, chain evaluation at the paper's depths, and
the item codec at the paper's 4 KB item size.
"""

import pytest

from repro.core.ciphertext import ItemCodec
from repro.core.modulated_chain import ChainEngine
from repro.core.params import Params
from repro.crypto.aes import AES
from repro.crypto.bulk import ctr_transform
from repro.crypto.rng import DeterministicRandom
from repro.crypto.sha1 import sha1

rng = DeterministicRandom("micro")


@pytest.mark.benchmark(group="micro-hash")
def test_sha1_short_input(benchmark):
    """One chain step hashes a digest-wide value (20 bytes)."""
    data = rng.bytes(20)
    benchmark(lambda: sha1(data))


@pytest.mark.benchmark(group="micro-hash")
def test_sha1_item_sized_input(benchmark):
    """The per-item integrity hash covers a 4 KB item."""
    data = rng.bytes(4096)
    benchmark(lambda: sha1(data))


@pytest.mark.benchmark(group="micro-aes")
def test_aes_block(benchmark):
    cipher = AES(rng.bytes(16))
    block = rng.bytes(16)
    benchmark(lambda: cipher.encrypt_block(block))


@pytest.mark.benchmark(group="micro-aes")
def test_bulk_ctr_4kb(benchmark):
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(4096)
    benchmark(lambda: ctr_transform(key, nonce, data))


@pytest.mark.benchmark(group="micro-aes")
def test_bulk_ctr_1mb(benchmark):
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(1 << 20)
    benchmark(lambda: ctr_transform(key, nonce, data))


@pytest.mark.parametrize("depth", [7, 17, 24],
                         ids=["n=10^2", "n=10^5", "n=10^7"])
@pytest.mark.benchmark(group="micro-chain")
def test_chain_evaluation_at_depth(benchmark, depth):
    """F(K, M) over path lengths matching the paper's n grid."""
    engine = ChainEngine()
    key = rng.bytes(16)
    modulators = [rng.bytes(20) for _ in range(depth + 1)]
    benchmark(lambda: engine.evaluate(key, modulators))


@pytest.mark.benchmark(group="micro-codec")
def test_item_encrypt_4kb(benchmark):
    codec = ItemCodec(Params())
    chain_output = rng.bytes(20)
    message = rng.bytes(4096)
    nonce = rng.bytes(8)
    benchmark(lambda: codec.encrypt(chain_output, message, 1, nonce))


@pytest.mark.benchmark(group="micro-codec")
def test_item_decrypt_verify_4kb(benchmark):
    codec = ItemCodec(Params())
    chain_output = rng.bytes(20)
    ciphertext = codec.encrypt(chain_output, rng.bytes(4096), 1, rng.bytes(8))
    benchmark(lambda: codec.decrypt(chain_output, ciphertext))

"""Durable-mutation throughput vs connection count on the async host.

N tenants (one pipelined async connection each, own file, disjoint id
space) issue WAL-logged ``ModifyCommit`` mutations as fast as they can
against ONE :class:`~repro.protocol.aio.AsyncTcpServerHost`; the sweep
reports aggregate durable ops/s at 1, 16, 64 and 256 connections, once
with the seed's per-append fsync discipline and once with group commit.

The commit log simulates a fixed per-fsync device latency
(``FSYNC_DELAY``) inside :meth:`CommitLog._sync` -- the seam added for
exactly this.  That placement is the point: with one fsync per append
the device serializes the whole fleet at ~1/FSYNC_DELAY ops/s no matter
how many connections pile on, while group commit amortizes one fsync
over every append that arrived during the previous flush.

Acceptance (ISSUE 7): >= 2x aggregate durable ops/s with group commit
over per-append fsync at >= 64 connections.

The sweep lands in ``BENCH_async.json`` at the repo root (its own
artifact, not folded into ``BENCH_hotpath.json``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.conftest import save_result
from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.aio import AsyncTcpChannel, AsyncTcpServerHost
from repro.server.server import CloudServer
from repro.server.wal import CommitLog

#: Simulated fsync device latency, slept inside ``_sync`` (a real
#: container fsync is ~0.2 ms -- too fast to dominate the loop).  It
#: must dwarf the per-request CPU cost -- including GIL/scheduler churn
#: with hundreds of client threads on small CI boxes -- so the sweep
#: contrasts fsync disciplines, not interpreter overhead.
FSYNC_DELAY = 0.02
#: Handler pool on the host: sized explicitly (not by cpu count) so up
#: to 32 appends can be in flight and ride one group-commit batch.
HOST_WORKERS = 32
CONN_COUNTS = (1, 16, 64, 256)
MEASURE_SECONDS = 0.8
RECORD_SIZE = 64
BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_async.json")


class _SimulatedDiskLog(CommitLog):
    """A CommitLog whose fsync takes ``FSYNC_DELAY`` of device time."""

    def _sync(self, fileno: int) -> None:
        time.sleep(FSYNC_DELAY)
        super()._sync(fileno)


class _Tenant:
    """One connection's endpoint: channel, outsourced file, op counter."""

    def __init__(self, index: int, address, ctx) -> None:
        self.index = index
        self.file_id = index + 1
        self.channel = AsyncTcpChannel(address, ctx)
        client = AssuredDeletionClient(
            self.channel, rng=DeterministicRandom(f"async-bench/{index}"))
        client.outsource(self.file_id,
                         [bytes([index % 251]) * RECORD_SIZE])
        self.item_id = client.item_ids_of(1)[0]
        self.ops = 0

    def modify_loop(self, barrier: threading.Barrier,
                    duration: float) -> None:
        # ModifyCommit does not bump tree_version, so the same message
        # shape repeats forever as a WAL-logged durable mutation; the
        # request_id must be fresh per op (idempotent replay cache).
        payload = bytes([self.index % 251]) * RECORD_SIZE
        uid_base = (self.index + 1) << 40
        issued = 0
        barrier.wait()
        deadline = time.perf_counter() + duration
        while time.perf_counter() < deadline:
            issued += 1
            reply = self.channel.request(msg.ModifyCommit(
                file_id=self.file_id, item_id=self.item_id,
                ciphertext=payload, tree_version=0,
                request_id=uid_base + issued))
            assert isinstance(reply, msg.Ack), reply
            # Count only completions INSIDE the window: with deep queues
            # (256 conns serialising on one fsync lock) the tail of
            # in-flight requests drains well past the deadline and must
            # not inflate the window's rate.
            if time.perf_counter() < deadline:
                self.ops += 1

    def close(self) -> None:
        self.channel.close()


def _measure(address, ctx, conns: int, duration: float) -> float:
    """Aggregate durable modifies/s achieved by ``conns`` connections."""
    with ThreadPoolExecutor(max_workers=min(32, conns)) as pool:
        tenants = list(pool.map(lambda i: _Tenant(i, address, ctx),
                                range(conns)))
    try:
        barrier = threading.Barrier(conns)
        threads = [threading.Thread(target=tenant.modify_loop,
                                    args=(barrier, duration),
                                    name=f"bench-conn-{tenant.index}")
                   for tenant in tenants]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return sum(tenant.ops for tenant in tenants) / duration
    finally:
        for tenant in tenants:
            tenant.close()


def _sweep(group_commit: bool, duration: float,
           counts=CONN_COUNTS) -> dict[int, float]:
    curve: dict[int, float] = {}
    for conns in counts:
        # Fresh server + WAL per point: replay caches, file registries
        # and log length never leak across measurements.
        server = CloudServer()
        wal_path = os.path.join(
            os.environ.get("TMPDIR", "/tmp"),
            f"repro-bench-{os.getpid()}-{group_commit}-{conns}.wal")
        if os.path.exists(wal_path):
            os.unlink(wal_path)
        wal = _SimulatedDiskLog(wal_path, group_commit=group_commit)
        server.attach_wal(wal)
        host = AsyncTcpServerHost(server, workers=HOST_WORKERS).start()
        try:
            curve[conns] = _measure(host.address, server.ctx, conns,
                                    duration)
        finally:
            host.stop()
            wal.close()
            os.unlink(wal_path)
    return curve


@pytest.fixture(scope="module")
def throughput_curves() -> dict[str, dict[int, float]]:
    per_append = _sweep(group_commit=False, duration=MEASURE_SECONDS)
    grouped = _sweep(group_commit=True, duration=MEASURE_SECONDS)

    lines = [
        f"Durable ModifyCommit throughput vs connections, async host "
        f"(simulated {FSYNC_DELAY * 1e3:.1f} ms fsync, "
        f"{MEASURE_SECONDS:.1f} s measure window)",
        "",
        f"{'conns':>6} {'per-append/s':>13} {'group-commit/s':>15} "
        f"{'speedup':>8}",
    ]
    for conns in CONN_COUNTS:
        lines.append(
            f"{conns:>6} {per_append[conns]:>13.1f} "
            f"{grouped[conns]:>15.1f} "
            f"{grouped[conns] / per_append[conns]:>7.2f}x")
    table = "\n".join(lines)
    save_result("async_throughput", table)
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump({
            "schema": 1,
            "op": "durable ModifyCommit over pipelined async transport",
            "fsync_delay_seconds": FSYNC_DELAY,
            "seconds": MEASURE_SECONDS,
            "ops_per_second": {
                "per_append": {str(c): per_append[c] for c in CONN_COUNTS},
                "group_commit": {str(c): grouped[c] for c in CONN_COUNTS},
            },
            "group_commit_speedup": {
                str(c): grouped[c] / per_append[c] for c in CONN_COUNTS},
        }, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + table)
    return {"per_append": per_append, "group_commit": grouped}


def test_group_commit_doubles_throughput_at_64_conns(throughput_curves):
    """ISSUE 7 acceptance: >= 2x durable ops/s at >= 64 connections."""
    for conns in (64, 256):
        ratio = (throughput_curves["group_commit"][conns]
                 / throughput_curves["per_append"][conns])
        assert ratio >= 2.0, throughput_curves


def test_group_commit_scales_with_connections(throughput_curves):
    """More connections must keep helping the grouped log (the batch
    grows), while per-append stays pinned near the device ceiling."""
    grouped = throughput_curves["group_commit"]
    assert grouped[64] > grouped[1] * 2.0, throughput_curves


def test_quick_async_smoke():
    """CI smoke: tiny sweep, shape only -- grouping beats per-append."""
    per_append = _sweep(group_commit=False, duration=0.25, counts=(16,))
    grouped = _sweep(group_commit=True, duration=0.25, counts=(16,))
    assert grouped[16] > per_append[16] * 1.5, (per_append, grouped)

"""Batched vs sequential deletion at the paper's scale (ISSUE 1).

Sweeps batch size k over {1, 4, 16, 64} at n = 10^5 items x 4 KB and
compares ``delete_many`` against k sequential ``delete()`` calls on an
identically-seeded file: client wall-clock seconds and protocol overhead
bytes (item payload excluded, as the paper defines overhead).

Two deletion patterns are reported:

* ``sweep``     -- the k oldest items (a retention sweep / GDPR purge,
  the workload motivating the batch API): contiguous leaves share most
  of their paths, so the union view is small and the wins are large.
* ``scattered`` -- k uniformly random items: paths barely overlap, which
  bounds the worst case.

The acceptance criterion (>= 5x time, >= 3x bytes at k = 64) is asserted
on the sweep pattern; scattered gets softer floors.
"""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.harness import build_seeded_file
from repro.crypto.rng import DeterministicRandom
from repro.sim.metrics import MetricsCollector
from repro.sim.workload import PAPER_ITEM_SIZE

N_ITEMS = 100_000
BATCH_SIZES = (1, 4, 16, 64)


def _indices(pattern: str, k: int, n: int) -> list[int]:
    if pattern == "sweep":
        return list(range(k))
    rng = DeterministicRandom(f"scatter-{k}")
    chosen: list[int] = []
    seen = set()
    while len(chosen) < k:
        index = rng.below(n)
        if index not in seen:
            seen.add(index)
            chosen.append(index)
    return chosen


def _run_pair(pattern: str, k: int, n: int = N_ITEMS,
              item_size: int = PAPER_ITEM_SIZE):
    """Delete the same k items sequentially and batched; return records."""
    indices = _indices(pattern, k, n)
    seed = f"batch-bench-{pattern}-{k}"

    seq_metrics = MetricsCollector()
    seq = build_seeded_file(n, item_size, seed=seed, metrics=seq_metrics)
    for index in indices:
        seq.scheme.delete(seq.item_id(index))
    seq_records = seq_metrics.for_op("delete")
    assert len(seq_records) == k

    batch_metrics = MetricsCollector()
    batch = build_seeded_file(n, item_size, seed=seed, metrics=batch_metrics)
    batch.scheme.delete_many([batch.item_id(index) for index in indices])
    batch_records = batch_metrics.for_op("delete_many")
    assert len(batch_records) == 1

    seq_seconds = sum(r.client_seconds for r in seq_records)
    seq_bytes = sum(r.overhead_bytes for r in seq_records)
    return {
        "pattern": pattern,
        "k": k,
        "seq_seconds": seq_seconds,
        "batch_seconds": batch_records[0].client_seconds,
        "seq_bytes": seq_bytes,
        "batch_bytes": batch_records[0].overhead_bytes,
        "speedup": seq_seconds / max(batch_records[0].client_seconds, 1e-9),
        "bytes_ratio": seq_bytes / max(batch_records[0].overhead_bytes, 1),
        "hash_ratio": (sum(r.hash_calls for r in seq_records)
                       / max(batch_records[0].hash_calls, 1)),
    }


@pytest.fixture(scope="module")
def batch_rows():
    rows = []
    for pattern in ("sweep", "scattered"):
        for k in BATCH_SIZES:
            rows.append(_run_pair(pattern, k))
    lines = [
        f"Batched deletion vs {max(BATCH_SIZES)} sequential deletes "
        f"(n = {N_ITEMS}, {PAPER_ITEM_SIZE} B items)",
        "",
        f"{'pattern':<10} {'k':>3} {'seq ms':>9} {'batch ms':>9} "
        f"{'speedup':>8} {'seq KB':>8} {'batch KB':>9} {'bytes x':>8} "
        f"{'B/item':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['pattern']:<10} {row['k']:>3} "
            f"{row['seq_seconds'] * 1e3:>9.1f} "
            f"{row['batch_seconds'] * 1e3:>9.1f} "
            f"{row['speedup']:>7.1f}x "
            f"{row['seq_bytes'] / 1024:>8.1f} "
            f"{row['batch_bytes'] / 1024:>9.1f} "
            f"{row['bytes_ratio']:>7.1f}x "
            f"{row['batch_bytes'] / row['k']:>7.0f}")
    table = "\n".join(lines)
    save_result("batch_delete", table)
    save_json("batch_delete", {
        "op": "delete_many",
        "n": N_ITEMS,
        "rows": [{"pattern": row["pattern"], "k": row["k"],
                  "seconds": row["batch_seconds"],
                  "seq_seconds": row["seq_seconds"],
                  "bytes": row["batch_bytes"],
                  "seq_bytes": row["seq_bytes"],
                  "speedup": row["speedup"],
                  "bytes_ratio": row["bytes_ratio"]}
                 for row in rows],
    })
    print("\n" + table)
    return {(row["pattern"], row["k"]): row for row in rows}


def test_sweep_batch_meets_acceptance_criteria(batch_rows):
    """ISSUE 1 acceptance: >= 5x faster and >= 3x fewer overhead bytes
    for a 64-item batch out of 10^5."""
    row = batch_rows[("sweep", 64)]
    assert row["speedup"] >= 5.0, row
    assert row["bytes_ratio"] >= 3.0, row


def test_scattered_batch_still_wins(batch_rows):
    """Worst-case pattern: non-overlapping paths.  One round trip and one
    rotation still beat 64 sequential exchanges on every axis."""
    row = batch_rows[("scattered", 64)]
    assert row["speedup"] >= 2.0, row
    assert row["bytes_ratio"] >= 1.5, row


def test_batch_never_regresses(batch_rows):
    """Even k = 1 must not be slower than a sequential delete by more
    than the noise floor, and every k must save bytes."""
    for (_pattern, _k), row in batch_rows.items():
        assert row["bytes_ratio"] >= 0.9, row
        assert row["hash_ratio"] >= 0.9, row


def test_quick_batch_smoke():
    """CI smoke: small scale, correctness + one-round-trip shape only."""
    n, k = 1_000, 4
    metrics = MetricsCollector()
    handle = build_seeded_file(n, 64, seed="batch-quick", metrics=metrics)
    victims = [handle.item_id(i) for i in (0, 7, 500, n - 1)]
    assert len(victims) == k
    handle.scheme.delete_many(victims)
    record = metrics.for_op("delete_many")[-1]
    assert record.round_trips == 2
    assert handle.server.file_state(handle.file_id).tree.leaf_count == n - k
    assert handle.server.file_state(handle.file_id).version == 1
    # A survivor still decrypts end to end.
    assert handle.scheme.access(handle.item_id(1)) is not None

"""Table III: whole-file access overhead ratios.

Regenerates the ratios (comm ratio exact at all paper sizes; comp ratio
measured on real fetches), asserts size-insensitivity, and benchmarks the
whole-file key-derivation pass that constitutes the overhead.
"""

import pytest

from benchmarks.conftest import save_json, save_result
from repro.analysis.harness import build_dense_file
from repro.analysis.table3 import exact_comm_ratio, run_table3
from repro.protocol import messages as msg


@pytest.fixture(scope="module")
def table3():
    table, rows = run_table3()
    save_result("table3_whole_file", table)
    save_json("table3_whole_file", {
        "op": "whole_file_access",
        "rows": [{"n": row.n_items, "comm_ratio": row.comm_ratio,
                  "comp_ratio": row.comp_ratio, "measured": row.measured}
                 for row in rows],
    })
    print("\n" + table)
    return rows


def test_regenerate_table3(table3):
    rows = table3
    assert len(rows) >= 2
    # Comm ratio small and insensitive to file size (paper: <1%, flat).
    comm_ratios = [row.comm_ratio for row in rows]
    assert all(ratio < 0.02 for ratio in comm_ratios)
    assert max(comm_ratios) - min(comm_ratios) < 0.002
    # Comp ratio: a few percent under the interpreter constant, and flat.
    comp_ratios = [row.comp_ratio for row in rows]
    assert all(ratio < 0.15 for ratio in comp_ratios)
    assert max(comp_ratios) < 3 * max(min(comp_ratios), 1e-9)


def test_exact_comm_ratio_at_paper_sizes():
    for n in (1000, 10_000, 100_000, 1_000_000):
        ratio = exact_comm_ratio(n)
        assert 0.005 < ratio < 0.02


@pytest.mark.benchmark(group="table3")
def test_whole_file_key_derivation(benchmark, table3):
    """The numerator of the computation ratio: derive all data keys."""
    handle, _ids = build_dense_file(2000, 64, seed="t3-bench")
    client = handle.scheme.client
    master_key = handle.scheme._key()
    reply = client.channel.request(msg.FetchFileRequest(file_id=handle.file_id))
    assert isinstance(reply, msg.FetchFileReply)

    benchmark(lambda: client._derive_outputs(master_key, reply.n_leaves,
                                             reply.links, reply.leaves))

"""Cold-start and warm-delete cost of the out-of-core storage engines.

ISSUE 10 acceptance benchmark.  One dense world of ``N`` items is built
directly (random modulators via :meth:`DenseModulatorStore.bulk_fill`,
real ciphertexts only for the delete targets) and persisted two ways:

* the legacy whole-image format (``save_server``/``load_server``), and
* a storage engine (SQLite, plus the log backend at its documented
  ``min(N, 10^5)`` scale -- its opening scan is O(n)).

Cold start is then the wall time to get a serving server back:
``load_server(image)`` decodes every node up front, while
``recover_server(None, wal, engine=...)`` opens the engine and replays
only the WAL tail -- O(working set), independent of N.  Warm delete
latency runs the full two-party deletion protocol over a loopback
channel against both worlds (same keys, same targets, same client rng)
and compares medians.  Finally the WAL-replay bound is checked: replay
work equals the mutations since the last ``compact_storage``, and drops
to zero right after one.

Floors (ISSUE 10): SQLite cold start >= 10x faster than image load,
warm delete median <= 1.3x in-memory, WAL replay bounded by work since
compaction.  The sweep lands in ``BENCH_storage.json`` at the repo root
(next to ``BENCH_shard.json``); ``REPRO_FULL_SCALE=1`` runs the paper
scale n=10^6, the default n=10^5 keeps CI within budget.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import statistics
import tempfile
import time

import pytest

from benchmarks.conftest import save_result
from repro.client.client import AssuredDeletionClient
from repro.core import ops
from repro.core.ciphertext import ItemCodec
from repro.core.modulated_chain import ChainEngine
from repro.core.params import Params
from repro.core.tree import ModulationTree
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.engine import make_engine
from repro.server.persistence import load_server, save_server
from repro.server.server import CloudServer
from repro.server.storage import InMemoryCiphertextStore
from repro.server.wal import CommitLog, recover_server

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")
#: Paper scale when REPRO_FULL_SCALE=1; CI-budget scale otherwise.
N_ITEMS = 1_000_000 if FULL_SCALE else 100_000
#: The log backend's opening scan is O(n) (documented resident-index
#: limit, docs/STORAGE.md), so its sweep is capped at 10^5.
N_LOG = min(N_ITEMS, 100_000)
FILE_ID = 7
WARMUP_DELETES = 4
MEASURED_DELETES = 32
BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_storage.json")

#: Registry-free on both sides: engine-materialised files never carry a
#: duplicate-modulator registry, so the in-memory baseline must not pay
#: (or enjoy) one either for the latency comparison to mean anything.
PARAMS = Params(enforce_unique_modulators=False)


def _build_seed(n: int, seed: str) -> tuple[CloudServer, bytes, list[int]]:
    """Build one dense n-item world; returns (server, master_key, targets).

    Modulators are drawn in bulk; every item gets a small placeholder
    ciphertext, and the delete targets get *real* ciphertexts encrypted
    under the chain output of their root-to-leaf path so the client's
    decrypt-and-verify step in the deletion protocol passes.
    """
    rng = DeterministicRandom(seed)
    master_key = rng.bytes(PARAMS.master_key_size)
    tree = ModulationTree.build_random(list(range(n)), PARAMS.modulator_size,
                                       rng)
    cts = InMemoryCiphertextStore()
    placeholder = b"\x00" * 8
    for item_id in range(n):
        cts.put(item_id, placeholder)

    # Targets stay clear of the top 4*(warmup+measured) ids: deletion
    # rebalancing moves the *last* item into the hole, and a moved
    # target would still decrypt (moves preserve chain outputs) but
    # would make the per-delete work less uniform.
    total = WARMUP_DELETES + MEASURED_DELETES
    targets = random.Random(20140707).sample(range(n - 4 * total), total)
    engine = ChainEngine(PARAMS.chain_hash)
    codec = ItemCodec(PARAMS)
    for item_id in targets:
        view = tree.path_view(tree.slot_of_item(item_id))
        output = ops.chain_output_for_path(engine, master_key, view)
        cts.put(item_id, codec.encrypt(output, b"payload-%d" % item_id,
                                       item_id, rng.bytes(8)))

    server = CloudServer(PARAMS)
    server.adopt_file(FILE_ID, tree, cts, build_registry=False)
    return server, master_key, targets


def _timed_deletes(server: CloudServer, master_key: bytes,
                   targets: list[int]) -> list[float]:
    """Run the deletion protocol for every target; per-delete seconds."""
    client = AssuredDeletionClient(LoopbackChannel(server), PARAMS,
                                   rng=DeterministicRandom("bench-del"),
                                   store_keys=False)
    timings = []
    key = master_key
    for item_id in targets:
        start = time.perf_counter()
        key = client.delete(FILE_ID, key, item_id)
        timings.append(time.perf_counter() - start)
    return timings


def _engine_world(data_dir: str, backend: str, n: int,
                  seed: str) -> dict[str, float]:
    """Build + convert one world; measure image vs engine cold start."""
    image_path = os.path.join(data_dir, f"{backend}.image")
    engine_file = os.path.join(data_dir, f"{backend}.engine")
    wal_path = os.path.join(data_dir, f"{backend}.wal")

    seed_server, master_key, targets = _build_seed(n, seed)
    save_server(seed_server, image_path)
    engine = make_engine(backend, engine_file)
    seed_server.attach_engine(engine)
    convert_start = time.perf_counter()
    seed_server.compact_storage()
    convert_seconds = time.perf_counter() - convert_start
    engine.close()
    del seed_server

    load_start = time.perf_counter()
    image_server = load_server(image_path, PARAMS)
    image_seconds = time.perf_counter() - load_start
    image_server.attach_wal(CommitLog(os.path.join(data_dir,
                                                   f"{backend}.mem.wal")))

    recover_start = time.perf_counter()
    engine_server = recover_server(None, wal_path, PARAMS,
                                   engine=make_engine(backend, engine_file))
    engine_seconds = time.perf_counter() - recover_start

    result = {
        "backend": backend,
        "n_items": n,
        "image_bytes": os.path.getsize(image_path),
        "engine_bytes": os.path.getsize(engine_file),
        "convert_seconds": convert_seconds,
        "image_load_seconds": image_seconds,
        "engine_cold_start_seconds": engine_seconds,
        "cold_start_speedup": image_seconds / engine_seconds,
        "master_key": master_key,
        "targets": targets,
        "image_server": image_server,
        "engine_server": engine_server,
        "wal_path": wal_path,
        "engine_file": engine_file,
    }
    return result


def _close_world(world: dict) -> None:
    for key in ("image_server", "engine_server"):
        server = world.get(key)
        if server is None:
            continue
        if server.wal is not None:
            server.wal.close()
        if server.engine is not None:
            server.engine.close()
        world[key] = None


@pytest.fixture(scope="module")
def storage_curve() -> dict:
    data_dir = tempfile.mkdtemp(prefix="repro-bench-storage-")
    record: dict = {"schema": 1, "full_scale": FULL_SCALE,
                    "measured_deletes": MEASURED_DELETES}
    try:
        # -- SQLite: the floor-bearing backend, at full N ---------------
        world = _engine_world(data_dir, "sqlite", N_ITEMS, "storage-bench")
        mem_times = _timed_deletes(world["image_server"], world["master_key"],
                                   world["targets"])
        eng_times = _timed_deletes(world["engine_server"], world["master_key"],
                                   world["targets"])
        mem_median = statistics.median(mem_times[WARMUP_DELETES:])
        eng_median = statistics.median(eng_times[WARMUP_DELETES:])

        # -- WAL replay bound: work since the last compaction -----------
        deletes = len(world["targets"])
        _close_world(world)
        replay_server = recover_server(None, world["wal_path"], PARAMS,
                                       engine=make_engine("sqlite",
                                                          world["engine_file"]))
        replayed_before = replay_server.last_recovery["replayed_records"]
        replay_server.compact_storage()
        replay_server.wal.close()
        replay_server.engine.close()
        compacted_start = time.perf_counter()
        compacted = recover_server(None, world["wal_path"], PARAMS,
                                   engine=make_engine("sqlite",
                                                      world["engine_file"]))
        compacted_seconds = time.perf_counter() - compacted_start
        replayed_after = compacted.last_recovery["replayed_records"]
        compacted.wal.close()
        compacted.engine.close()

        record["sqlite"] = {
            "n_items": N_ITEMS,
            "image_bytes": world["image_bytes"],
            "engine_bytes": world["engine_bytes"],
            "convert_seconds": round(world["convert_seconds"], 4),
            "image_load_seconds": round(world["image_load_seconds"], 4),
            "engine_cold_start_seconds":
                round(world["engine_cold_start_seconds"], 4),
            "cold_start_speedup": round(world["cold_start_speedup"], 2),
            "delete_median_memory_seconds": round(mem_median, 6),
            "delete_median_engine_seconds": round(eng_median, 6),
            "delete_latency_ratio": round(eng_median / mem_median, 4),
            "wal_records_before_compaction": replayed_before,
            "deletes_since_compaction": deletes,
            "wal_records_after_compaction": replayed_after,
            "cold_start_after_compaction_seconds":
                round(compacted_seconds, 4),
        }

        # -- Log backend: documented O(n)-scan limit, capped at 10^5 ----
        log_world = _engine_world(data_dir, "log", N_LOG, "storage-bench-log")
        _close_world(log_world)
        record["log"] = {
            "n_items": N_LOG,
            "image_bytes": log_world["image_bytes"],
            "engine_bytes": log_world["engine_bytes"],
            "convert_seconds": round(log_world["convert_seconds"], 4),
            "image_load_seconds": round(log_world["image_load_seconds"], 4),
            "engine_cold_start_seconds":
                round(log_world["engine_cold_start_seconds"], 4),
            "cold_start_speedup": round(log_world["cold_start_speedup"], 2),
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    lines = [
        f"Storage-engine cold start vs whole-image persistence "
        f"(n={N_ITEMS}, {MEASURED_DELETES} measured deletes)",
        "",
        f"{'backend':>8} {'n':>9} {'image load':>11} {'cold start':>11} "
        f"{'speedup':>8}",
    ]
    for backend in ("sqlite", "log"):
        row = record[backend]
        lines.append(
            f"{backend:>8} {row['n_items']:>9} "
            f"{row['image_load_seconds']:>10.3f}s "
            f"{row['engine_cold_start_seconds']:>10.4f}s "
            f"{row['cold_start_speedup']:>7.1f}x")
    sq = record["sqlite"]
    lines += [
        "",
        f"warm delete median: memory "
        f"{sq['delete_median_memory_seconds'] * 1e3:.2f} ms, sqlite "
        f"{sq['delete_median_engine_seconds'] * 1e3:.2f} ms "
        f"(ratio {sq['delete_latency_ratio']:.2f}x)",
        f"WAL replay: {sq['wal_records_before_compaction']} records before "
        f"compaction ({sq['deletes_since_compaction']} deletes), "
        f"{sq['wal_records_after_compaction']} after",
    ]
    table = "\n".join(lines)
    save_result("storage_cold_start", table)
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + table)
    return record


def test_cold_start_floor(storage_curve):
    """ISSUE 10 acceptance: SQLite cold start >= 10x faster than the
    whole-image load -- the engine opens O(1), the image decodes O(n)."""
    assert storage_curve["sqlite"]["cold_start_speedup"] >= 10.0, \
        storage_curve["sqlite"]


def test_warm_delete_latency_floor(storage_curve):
    """ISSUE 10 acceptance: paged deletes within 1.3x of in-memory."""
    assert storage_curve["sqlite"]["delete_latency_ratio"] <= 1.3, \
        storage_curve["sqlite"]


def test_wal_replay_bounded_by_compaction(storage_curve):
    """Replay equals mutations since the last compaction; zero after."""
    sq = storage_curve["sqlite"]
    assert sq["wal_records_before_compaction"] == \
        sq["deletes_since_compaction"], sq
    assert sq["wal_records_after_compaction"] == 0, sq
    assert sq["cold_start_after_compaction_seconds"] <= \
        max(1.0, 2 * sq["engine_cold_start_seconds"]), sq


def test_log_backend_recorded(storage_curve):
    """The log backend rides the sweep (no 10x floor: its opening scan
    is O(n) by design -- see docs/STORAGE.md)."""
    assert storage_curve["log"]["engine_cold_start_seconds"] > 0


def test_quick_storage_smoke():
    """CI smoke: tiny world, shape only -- engine cold start beats the
    image load and the deletion protocol works over paged state."""
    data_dir = tempfile.mkdtemp(prefix="repro-bench-storage-smoke-")
    try:
        world = _engine_world(data_dir, "sqlite", 4096, "smoke")
        times = _timed_deletes(world["engine_server"], world["master_key"],
                               world["targets"][:6])
        assert len(times) == 6
        assert world["engine_cold_start_seconds"] < \
            world["image_load_seconds"], world
        _close_world(world)
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

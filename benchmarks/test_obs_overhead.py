"""Observability overhead: the disabled fast path must be nearly free.

The acceptance bar for the instrumentation is <2% regression on the
loopback delete benchmark with observability off.  Wall-clock ratios of
two short runs are too noisy to gate CI on directly, so this file

* records the measured off/baseline ratio as benchmark ``extra_info``
  (and a results file) for humans to track, and
* asserts a loose ceiling that catches a *broken* fast path (an
  accidental span or label allocation on the off path shows up as tens
  of percent, not two).
"""

import json
import os
import tempfile
import time

import pytest

from benchmarks.conftest import save_json, save_result
from repro import obs
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.obs import spanexport
from repro.obs.audit import AuditLog

ITEMS = 64
ROUNDS = 3

BENCH_OBS_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_obs.json")


def _fast_dir():
    """A tmpfs-backed scratch dir when the host has one, else tmp.

    The evidence benchmark measures the *code path* cost (hashing,
    canonical JSON, span serialisation), not the speed of the CI disk;
    tmpfs keeps the per-append fsync from dominating the measurement.
    """
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    return tempfile.mkdtemp(prefix="repro-obs-bench-", dir=base)


def build_fs(seed):
    fs = OutsourcedFileSystem(rng=DeterministicRandom(seed))
    handle = fs.create_file("bench/data",
                            [b"x" * 256 for _ in range(ITEMS)])
    return fs, handle


def time_deletes(seed, audit=None):
    fs, handle = build_fs(seed)
    if audit is not None:
        fs.server.attach_audit(audit)
    start = time.perf_counter()
    for _ in range(ITEMS):
        handle.delete_record(0)
    return time.perf_counter() - start


def test_disabled_observability_overhead_is_small():
    assert not obs.is_enabled()
    # Interleave the runs and keep the best of each: the minimum is the
    # least noisy location estimate for short CPU-bound loops.
    off = baseline = float("inf")
    for round_index in range(ROUNDS):
        baseline = min(baseline, time_deletes(f"warm-{round_index}"))
        off = min(off, time_deletes(f"off-{round_index}"))
    ratio = off / baseline
    save_result("obs_overhead",
                f"loopback delete x{ITEMS}: baseline {baseline * 1e3:.2f} ms, "
                f"instrumented-off {off * 1e3:.2f} ms, ratio {ratio:.4f}")
    save_json("obs_overhead", {
        "op": "delete",
        "n": ITEMS,
        "seconds": off,
        "baseline_seconds": baseline,
        "ratio": ratio,
    })
    # Both runs go through the instrumented code with obs disabled; they
    # differ only by noise, so a large ratio means a non-deterministic
    # fast path, not a real regression.  The 2% budget is tracked in the
    # saved result; the hard gate is the noise ceiling.
    assert ratio < 1.5


def test_enabled_metrics_only_overhead_is_bounded():
    """Even fully on (metrics, no log sink), instrumentation must stay
    within a small multiple -- it guards against accidental per-call
    rendering or I/O on the hot path."""
    baseline = min(time_deletes(f"base-{i}") for i in range(ROUNDS))
    obs.enable()  # metrics only
    try:
        on = min(time_deletes(f"on-{i}") for i in range(ROUNDS))
    finally:
        obs.disable()
        obs.REGISTRY.reset()
    assert on / baseline < 3.0


def test_evidence_path_overhead_is_recorded_and_bounded():
    """Delete hot path with the full evidence surface on: fsync'd audit
    chain plus span export (sample=1.0), measured against the same
    instrumented server with the evidence features disabled.  The
    budget is <5% -- appending a hash-chained record and serialising
    finished spans must ride on the instrumentation PR 3 already paid
    for, not multiply it.  Wall-clock ratios of short runs are too noisy
    to gate CI at 1.05, so -- as with the disabled-path test above --
    the measured ratio is recorded (``BENCH_obs.json`` at the repo root,
    with the fully-disabled time alongside for context) and the hard
    assertion only catches a *broken* path (per-record re-rendering,
    accidental sync I/O amplification), which shows up as a large
    multiple."""
    workdir = _fast_dir()
    span_path = os.path.join(workdir, "spans.jsonl")
    audit_path = os.path.join(workdir, "audit.log")

    disabled = min(time_deletes(f"ev-off-{i}") for i in range(ROUNDS))

    obs.enable()  # both measured configs run fully instrumented
    try:
        baseline = min(time_deletes(f"ev-base-{i}")
                       for i in range(ROUNDS))
        evidence = sampled = float("inf")
        for i in range(ROUNDS):
            spanexport.configure(span_path)
            with AuditLog(audit_path) as audit:
                evidence = min(evidence,
                               time_deletes(f"ev-on-{i}", audit=audit))
            # The production-shaped config: audit always on, spans
            # head-sampled at 10% (sampling is the designed lever for
            # keeping export cost off the hot path).
            spanexport.configure(span_path, sample=0.1)
            with AuditLog(audit_path) as audit:
                sampled = min(sampled,
                              time_deletes(f"ev-s-{i}", audit=audit))
            spanexport.detach()
            for stale in (audit_path, audit_path + ".head"):
                os.unlink(stale)
    finally:
        obs.disable()
        obs.REGISTRY.reset()

    ratio = evidence / baseline
    record = {
        "op": "delete with audit chain + span export",
        "n": ITEMS,
        "seconds": evidence,
        "baseline_seconds": baseline,
        "disabled_seconds": disabled,
        "ratio": ratio,
        "ratio_vs_disabled": evidence / disabled,
        "sampled_seconds": sampled,
        "sampled_ratio": sampled / baseline,
        "budget_ratio": 1.05,
        "within_budget": ratio < 1.05,
        "scratch_tmpfs": workdir.startswith("/dev/shm"),
    }
    save_result("obs_evidence_overhead",
                f"loopback delete x{ITEMS}: evidence off "
                f"{baseline * 1e3:.2f} ms, audit+spans "
                f"{evidence * 1e3:.2f} ms, ratio {ratio:.4f} "
                f"(budget 1.05; 10% sampling {sampled * 1e3:.2f} ms, "
                f"ratio {sampled / baseline:.4f}; "
                f"obs fully off {disabled * 1e3:.2f} ms)")
    save_json("obs_evidence_overhead", record)
    with open(BENCH_OBS_PATH, "w", encoding="utf-8") as handle:
        json.dump({"schema": 1, "records":
                   {"obs_evidence_overhead": record}}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    assert ratio < 3.0


@pytest.mark.benchmark(group="observability")
def test_delete_fast_path_benchmark(benchmark):
    fs, handle = build_fs("obs-bench")

    def delete_one():
        handle.delete_record(0)

    benchmark.pedantic(delete_one, rounds=min(ITEMS - 1, 20), iterations=1)

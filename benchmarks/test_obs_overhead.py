"""Observability overhead: the disabled fast path must be nearly free.

The acceptance bar for the instrumentation is <2% regression on the
loopback delete benchmark with observability off.  Wall-clock ratios of
two short runs are too noisy to gate CI on directly, so this file

* records the measured off/baseline ratio as benchmark ``extra_info``
  (and a results file) for humans to track, and
* asserts a loose ceiling that catches a *broken* fast path (an
  accidental span or label allocation on the off path shows up as tens
  of percent, not two).
"""

import time

import pytest

from benchmarks.conftest import save_json, save_result
from repro import obs
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem

ITEMS = 64
ROUNDS = 3


def build_fs(seed):
    fs = OutsourcedFileSystem(rng=DeterministicRandom(seed))
    handle = fs.create_file("bench/data",
                            [b"x" * 256 for _ in range(ITEMS)])
    return fs, handle


def time_deletes(seed):
    fs, handle = build_fs(seed)
    start = time.perf_counter()
    for _ in range(ITEMS):
        handle.delete_record(0)
    return time.perf_counter() - start


def test_disabled_observability_overhead_is_small():
    assert not obs.is_enabled()
    # Interleave the runs and keep the best of each: the minimum is the
    # least noisy location estimate for short CPU-bound loops.
    off = baseline = float("inf")
    for round_index in range(ROUNDS):
        baseline = min(baseline, time_deletes(f"warm-{round_index}"))
        off = min(off, time_deletes(f"off-{round_index}"))
    ratio = off / baseline
    save_result("obs_overhead",
                f"loopback delete x{ITEMS}: baseline {baseline * 1e3:.2f} ms, "
                f"instrumented-off {off * 1e3:.2f} ms, ratio {ratio:.4f}")
    save_json("obs_overhead", {
        "op": "delete",
        "n": ITEMS,
        "seconds": off,
        "baseline_seconds": baseline,
        "ratio": ratio,
    })
    # Both runs go through the instrumented code with obs disabled; they
    # differ only by noise, so a large ratio means a non-deterministic
    # fast path, not a real regression.  The 2% budget is tracked in the
    # saved result; the hard gate is the noise ceiling.
    assert ratio < 1.5


def test_enabled_metrics_only_overhead_is_bounded():
    """Even fully on (metrics, no log sink), instrumentation must stay
    within a small multiple -- it guards against accidental per-call
    rendering or I/O on the hot path."""
    baseline = min(time_deletes(f"base-{i}") for i in range(ROUNDS))
    obs.enable()  # metrics only
    try:
        on = min(time_deletes(f"on-{i}") for i in range(ROUNDS))
    finally:
        obs.disable()
        obs.REGISTRY.reset()
    assert on / baseline < 3.0


@pytest.mark.benchmark(group="observability")
def test_delete_fast_path_benchmark(benchmark):
    fs, handle = build_fs("obs-bench")

    def delete_one():
        handle.delete_record(0)

    benchmark.pedantic(delete_one, rounds=min(ITEMS - 1, 20), iterations=1)

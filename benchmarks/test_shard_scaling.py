"""Durable-mutation throughput vs shard count on the sharded tier.

A fixed fleet of worker threads (one outsourced file each, balanced
across shards by construction) issues WAL-logged ``ModifyCommit``
mutations as fast as it can through the consistent-hash router against
a :class:`~repro.server.cluster.ShardCluster` of 1, 2, 4 and 8 loopback
shards.  Every shard owns its own commit log with a simulated per-fsync
device latency (``FSYNC_DELAY`` slept inside :meth:`CommitLog._sync`)
and per-append fsync discipline -- so a single shard is pinned near
1/FSYNC_DELAY durable ops/s no matter how many workers pile on, while N
shards are N independent fsync streams.

Acceptance (ISSUE 9): >= 2.5x aggregate durable ops/s at 4 shards over
1 shard on this fsync-bound workload.

The sweep lands in ``BENCH_shard.json`` at the repo root (its own
artifact, next to ``BENCH_async.json``).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time

import pytest

from benchmarks.conftest import save_result
from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.fs.sharding import HashRing, ShardRoutingChannel
from repro.protocol import messages as msg
from repro.server.cluster import ShardCluster
from repro.server.wal import CommitLog

#: Simulated fsync device latency.  Small enough that the 4-point sweep
#: stays fast, large enough to dwarf per-request CPU cost so the sweep
#: contrasts fsync-stream counts, not interpreter overhead.
FSYNC_DELAY = 0.004
SHARD_COUNTS = (1, 2, 4, 8)
#: Worker threads; divisible by every shard count so the load balances
#: exactly (workers // shards files per shard).
WORKERS = 8
MEASURE_SECONDS = 0.8
RECORD_SIZE = 64
BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_shard.json")


class _SimulatedDiskLog(CommitLog):
    """A CommitLog whose fsync takes ``FSYNC_DELAY`` of device time."""

    def _sync(self, fileno: int) -> None:
        time.sleep(FSYNC_DELAY)
        super()._sync(fileno)


def _balanced_file_ids(ring: HashRing, shards: int, workers: int) -> list[int]:
    """``workers`` file ids placing exactly ``workers // shards`` files
    on every shard -- the sweep measures fsync streams, not ring luck."""
    per_shard = workers // shards
    counts = {shard_id: 0 for shard_id in range(shards)}
    ids: list[int] = []
    candidate = 1
    while len(ids) < workers:
        owner = ring.shard_of(candidate)
        if counts[owner] < per_shard:
            ids.append(candidate)
            counts[owner] += 1
        candidate += 1
    return ids


class _Worker:
    """One worker: a routed channel, an outsourced file, an op counter."""

    def __init__(self, index: int, file_id: int, shard_map) -> None:
        self.index = index
        self.file_id = file_id
        self.channel = ShardRoutingChannel(shard_map)
        client = AssuredDeletionClient(
            self.channel, rng=DeterministicRandom(f"shard-bench/{index}"))
        client.outsource(file_id, [bytes([index % 251]) * RECORD_SIZE])
        self.item_id = client.item_ids_of(1)[0]
        self.ops = 0

    def modify_loop(self, barrier: threading.Barrier,
                    duration: float) -> None:
        # ModifyCommit does not bump tree_version, so the same message
        # shape repeats forever as a WAL-logged durable mutation; the
        # request_id must be fresh per op (idempotent replay cache).
        payload = bytes([self.index % 251]) * RECORD_SIZE
        uid_base = (self.index + 1) << 40
        issued = 0
        barrier.wait()
        deadline = time.perf_counter() + duration
        while time.perf_counter() < deadline:
            issued += 1
            reply = self.channel.request(msg.ModifyCommit(
                file_id=self.file_id, item_id=self.item_id,
                ciphertext=payload, tree_version=0,
                request_id=uid_base + issued))
            assert isinstance(reply, msg.Ack), reply
            # Count only completions INSIDE the window: requests queued
            # on a shard's fsync lock drain past the deadline and must
            # not inflate the window's rate.
            if time.perf_counter() < deadline:
                self.ops += 1

    def close(self) -> None:
        self.channel.close()


def _measure(shards: int, duration: float) -> float:
    """Aggregate durable modifies/s of WORKERS threads on N shards."""
    data_dir = tempfile.mkdtemp(prefix=f"repro-shard-bench-{shards}-")
    cluster = ShardCluster(
        shards, transport="loopback", data_dir=data_dir,
        wal_factory=lambda path: _SimulatedDiskLog(path,
                                                   group_commit=False))
    workers: list[_Worker] = []
    try:
        shard_map = cluster.shard_map()
        file_ids = _balanced_file_ids(cluster.ring, shards, WORKERS)
        workers = [_Worker(index, file_id, shard_map)
                   for index, file_id in enumerate(file_ids)]
        barrier = threading.Barrier(WORKERS)
        threads = [threading.Thread(target=worker.modify_loop,
                                    args=(barrier, duration),
                                    name=f"bench-worker-{worker.index}")
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return sum(worker.ops for worker in workers) / duration
    finally:
        for worker in workers:
            worker.close()
        cluster.stop()
        shutil.rmtree(data_dir, ignore_errors=True)


@pytest.fixture(scope="module")
def shard_curve() -> dict[int, float]:
    curve = {shards: _measure(shards, MEASURE_SECONDS)
             for shards in SHARD_COUNTS}

    lines = [
        f"Durable ModifyCommit throughput vs shard count, "
        f"{WORKERS} workers over the consistent-hash router "
        f"(simulated {FSYNC_DELAY * 1e3:.1f} ms per-append fsync, "
        f"{MEASURE_SECONDS:.1f} s measure window)",
        "",
        f"{'shards':>6} {'durable ops/s':>14} {'speedup':>8}",
    ]
    for shards in SHARD_COUNTS:
        lines.append(f"{shards:>6} {curve[shards]:>14.1f} "
                     f"{curve[shards] / curve[1]:>7.2f}x")
    table = "\n".join(lines)
    save_result("shard_scaling", table)
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump({
            "schema": 1,
            "op": "durable ModifyCommit through the shard router "
                  "(loopback, per-append fsync WAL per shard)",
            "fsync_delay_seconds": FSYNC_DELAY,
            "seconds": MEASURE_SECONDS,
            "workers": WORKERS,
            "ops_per_second": {str(s): curve[s] for s in SHARD_COUNTS},
            "speedup_vs_one_shard": {
                str(s): curve[s] / curve[1] for s in SHARD_COUNTS},
        }, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("\n" + table)
    return curve


def test_four_shards_scale_durable_throughput(shard_curve):
    """ISSUE 9 acceptance: >= 2.5x aggregate durable ops/s at 4 shards
    vs 1 on the fsync-bound workload."""
    assert shard_curve[4] >= shard_curve[1] * 2.5, shard_curve


def test_shard_curve_is_monotonic_enough(shard_curve):
    """More fsync streams keep helping: 8 shards beat 2 shards."""
    assert shard_curve[8] > shard_curve[2], shard_curve


def test_quick_shard_smoke():
    """CI smoke: tiny sweep, shape only -- two fsync streams beat one."""
    one = _measure(1, 0.25)
    two = _measure(2, 0.25)
    assert two > one * 1.3, (one, two)

"""Seed-driven concurrency stress tests (tier: concurrency).

Each test case is one full stress iteration: N client threads (plus
keyless foreign readers) hammer a shard cluster (one shard here; the
multi-shard axis lives in ``test_sharded_stress.py``) through a seeded
random op mix, then every invariant in ``repro.sim.stress`` is checked
-- version accounting, surviving-data decryption, cross-shard
placement, Theorem-2 unrecoverability of deleted items at both tree
levels, per-shard WAL-replay state equality, and per-shard audit-chain
history.

The iteration count scales with ``REPRO_STRESS_ITERATIONS`` (default 6
per transport, CI's concurrency job raises it to 100 per transport for
the 200-iteration gate, nightly goes 10x).  Every seed is derived from
the iteration index, so a CI failure names the exact seed to replay
locally::

    PYTHONPATH=src python -m repro.cli stress --seed loopback-17 -v
"""

from __future__ import annotations

import os

import pytest

from repro.sim.stress import StressConfig, StressReport, run_stress

pytestmark = pytest.mark.stress

ITERATIONS = int(os.environ.get("REPRO_STRESS_ITERATIONS", "6"))

EXPECTED_INVARIANTS = [
    "version-accounting",
    "surviving-data-decrypts",
    "cross-shard-placement",
    "theorem2-deleted-unrecoverable",
    "wal-replay-reproduces-state",
    "audit-chain-matches-history",
]


def _check(report: StressReport) -> None:
    assert report.invariants == EXPECTED_INVARIANTS
    assert report.files_created >= report.config.workers
    assert report.wal_records > 0


@pytest.mark.parametrize("seed",
                         [f"loopback-{i}" for i in range(ITERATIONS)])
def test_loopback_stress(seed):
    report = run_stress(StressConfig(
        seed=seed, workers=4, ops_per_worker=12, readers=2,
        transport="loopback"))
    _check(report)


@pytest.mark.parametrize("seed", [f"tcp-{i}" for i in range(ITERATIONS)])
def test_tcp_stress(seed):
    report = run_stress(StressConfig(
        seed=seed, workers=4, ops_per_worker=10, readers=2,
        transport="tcp"))
    _check(report)


@pytest.mark.parametrize("seed", [f"async-{i}" for i in range(ITERATIONS)])
def test_async_stress(seed):
    """Pipelined asyncio transport + group-commit WAL, same invariants."""
    report = run_stress(StressConfig(
        seed=seed, workers=4, ops_per_worker=10, readers=2,
        transport="async"))
    _check(report)


def test_same_seed_same_operations():
    """The op mix is an exact function of the seed: two runs of one seed
    perform identical operation sequences (interleavings may differ)."""
    config = StressConfig(seed="determinism", workers=3, ops_per_worker=10)
    first = run_stress(config)
    second = run_stress(config)
    assert first.ops == second.ops
    assert first.items_deleted == second.items_deleted
    assert first.files_dropped == second.files_dropped
    assert first.wal_records == second.wal_records


def test_transport_agnostic_op_mix():
    """The seeded op sequence does not depend on the transport."""
    loopback = run_stress(StressConfig(
        seed="xport", workers=2, ops_per_worker=8, transport="loopback"))
    tcp = run_stress(StressConfig(
        seed="xport", workers=2, ops_per_worker=8, transport="tcp"))
    aio = run_stress(StressConfig(
        seed="xport", workers=2, ops_per_worker=8, transport="async"))
    assert loopback.ops == tcp.ops == aio.ops
    assert loopback.wal_records == tcp.wal_records == aio.wal_records


def test_async_same_seed_is_deterministic():
    """Pipelining and group commit change interleavings and fsync
    batching, never the seeded op outcome: two async runs of one seed
    agree op-for-op and record-for-record."""
    config = StressConfig(seed="aio-determinism", workers=3,
                          ops_per_worker=10, readers=1, transport="async")
    first = run_stress(config)
    second = run_stress(config)
    assert first.ops == second.ops
    assert first.items_deleted == second.items_deleted
    assert first.files_dropped == second.files_dropped
    assert first.wal_records == second.wal_records


def test_config_validation():
    with pytest.raises(ValueError):
        StressConfig(transport="carrier-pigeon")
    with pytest.raises(ValueError):
        StressConfig(workers=0)
    with pytest.raises(ValueError):
        StressConfig(min_records=5, max_records=2)


def test_report_summary_shape():
    report = run_stress(StressConfig(
        seed="summary", workers=2, ops_per_worker=6, readers=0))
    summary = report.summary()
    assert summary["seed"] == "summary"
    assert summary["invariants"] == EXPECTED_INVARIANTS
    assert summary["foreign_reads"] == 0
    assert set(summary["ops"]) <= {
        "create", "read", "read_all", "modify", "insert", "delete",
        "batch_delete", "drop"}

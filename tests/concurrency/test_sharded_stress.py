"""Multi-shard stress runs (tier: concurrency).

The same seeded harness as ``test_stress.py``, but with ``shards > 1``:
every tenant's requests route through the consistent-hash ring to N
independent server units, each with its own WAL and audit chain.  All
six invariants must hold per shard -- in particular cross-shard
placement (no file ever strays from its ring-assigned shard) and
per-shard WAL-replay/audit-history equality.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.stress import StressConfig, run_stress

from .test_stress import EXPECTED_INVARIANTS

pytestmark = pytest.mark.stress

ITERATIONS = max(1, int(os.environ.get("REPRO_STRESS_ITERATIONS", "6")) // 2)


def _check(report) -> None:
    assert report.invariants == EXPECTED_INVARIANTS
    assert report.files_created >= report.config.workers
    assert report.wal_records > 0
    assert report.summary()["shards"] == report.config.shards


@pytest.mark.parametrize("seed",
                         [f"shard-loop-{i}" for i in range(ITERATIONS)])
def test_sharded_loopback_stress(seed):
    report = run_stress(StressConfig(
        seed=seed, workers=4, ops_per_worker=10, readers=2,
        transport="loopback", shards=4))
    _check(report)


@pytest.mark.parametrize("seed",
                         [f"shard-tcp-{i}" for i in range(ITERATIONS)])
def test_sharded_tcp_stress(seed):
    report = run_stress(StressConfig(
        seed=seed, workers=4, ops_per_worker=8, readers=2,
        transport="tcp", shards=3))
    _check(report)


@pytest.mark.parametrize("seed",
                         [f"shard-aio-{i}" for i in range(ITERATIONS)])
def test_sharded_async_stress(seed):
    """Per-shard pipelined async hosts + group-commit WALs."""
    report = run_stress(StressConfig(
        seed=seed, workers=4, ops_per_worker=8, readers=2,
        transport="async", shards=3))
    _check(report)


def test_shard_count_does_not_change_op_mix():
    """Sharding only changes *where* commits land, never *what* the
    seeded workload does: identical op counts and total WAL records
    at 1 and 4 shards."""
    one = run_stress(StressConfig(
        seed="shard-axis", workers=3, ops_per_worker=10, shards=1))
    four = run_stress(StressConfig(
        seed="shard-axis", workers=3, ops_per_worker=10, shards=4))
    assert one.ops == four.ops
    assert one.items_deleted == four.items_deleted
    assert one.files_dropped == four.files_dropped
    assert one.wal_records == four.wal_records
    assert one.audit_records == four.audit_records


def test_sharded_same_seed_is_deterministic():
    config = StressConfig(seed="shard-determinism", workers=3,
                          ops_per_worker=10, shards=4)
    first = run_stress(config)
    second = run_stress(config)
    assert first.ops == second.ops
    assert first.wal_records == second.wal_records


def test_shards_validation():
    with pytest.raises(ValueError):
        StressConfig(shards=0)

"""The individual-key baseline (Section III-B)."""

import pytest

from repro.baselines.base import BlobStoreServer
from repro.baselines.individual_key import IndividualKeySolution
from repro.core.errors import KeyShreddedError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel


@pytest.fixture
def solution():
    return IndividualKeySolution(LoopbackChannel(BlobStoreServer()),
                                 rng=DeterministicRandom("ik-test"))


def test_outsource_access(solution):
    ids = solution.outsource([b"a", b"b", b"c"])
    for item, value in zip(ids, [b"a", b"b", b"c"]):
        assert solution.access(item) == value


def test_storage_grows_linearly(solution):
    solution.outsource([b"x"] * 25)
    assert solution.client_storage_bytes() == 25 * 16
    solution.insert(b"y")
    assert solution.client_storage_bytes() == 26 * 16


def test_delete_is_constant_and_local(solution):
    ids = solution.outsource([b"item-%d" % i for i in range(20)])
    solution.delete(ids[3])
    record = solution.metrics.for_op("delete")[0]
    assert record.total_bytes < 60  # one tiny request + ack
    # Both sides refuse afterwards: the server no longer stores the
    # ciphertext, and even with a snapshot the key is shredded locally.
    with pytest.raises(Exception):
        solution.access(ids[3])
    with pytest.raises(KeyShreddedError):
        solution.keystore.get(f"item:{ids[3]}")
    assert solution.client_storage_bytes() == 19 * 16
    assert solution.access(ids[4]) == b"item-4"


def test_deletion_cost_independent_of_n():
    costs = {}
    for n in (8, 128):
        scheme = IndividualKeySolution(LoopbackChannel(BlobStoreServer()),
                                       rng=DeterministicRandom(f"ik-{n}"))
        ids = scheme.outsource([bytes(32)] * n)
        scheme.delete(ids[0])
        costs[n] = scheme.metrics.for_op("delete")[0].total_bytes
    assert costs[8] == costs[128]


def test_keys_are_independent(solution):
    """Leaking one item key reveals nothing about the others."""
    ids = solution.outsource([b"a", b"b"])
    key_a = solution.keystore.get(f"item:{ids[0]}")
    key_b = solution.keystore.get(f"item:{ids[1]}")
    assert key_a != key_b

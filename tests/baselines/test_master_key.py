"""The master-key baseline (Section III-A)."""

import pytest

from repro.baselines.base import BlobStoreServer
from repro.baselines.master_key import MasterKeySolution
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel


@pytest.fixture
def solution():
    return MasterKeySolution(LoopbackChannel(BlobStoreServer()),
                             rng=DeterministicRandom("mk-test"))


def test_outsource_access(solution):
    ids = solution.outsource([b"a", b"b", b"c"])
    assert solution.access(ids[1]) == b"b"


def test_client_stores_exactly_one_key(solution):
    solution.outsource([b"x"] * 50)
    assert solution.client_storage_bytes() == 16


def test_delete_reencrypts_everything(solution):
    ids = solution.outsource([b"item-%d" % i for i in range(10)])
    before = solution.channel.counters.snapshot()
    solution.delete(ids[4])
    delta = solution.channel.counters.delta(before)
    # Nine items downloaded and nine uploaded.
    assert delta.payload_received > 9 * 8
    assert delta.payload_sent > 9 * 8
    # Deleted item gone, the rest intact under the new key.
    for i, item in enumerate(ids):
        if i == 4:
            with pytest.raises(Exception):
                solution.access(item)
        else:
            assert solution.access(item) == b"item-%d" % i


def test_delete_rotates_master_key(solution):
    ids = solution.outsource([b"a", b"b"])
    key_before = solution.keystore.get("master")
    solution.delete(ids[0])
    assert solution.keystore.get("master") != key_before


def test_insert(solution):
    solution.outsource([b"a"])
    new = solution.insert(b"b")
    assert solution.access(new) == b"b"


def test_deletion_cost_scales_linearly(rng):
    costs = {}
    for n in (8, 64):
        scheme = MasterKeySolution(LoopbackChannel(BlobStoreServer()),
                                   rng=DeterministicRandom(f"lin-{n}"))
        ids = scheme.outsource([bytes(64)] * n)
        scheme.delete(ids[0])
        costs[n] = scheme.metrics.for_op("delete")[0].total_bytes
    assert costs[64] > 6 * costs[8]


def test_broken_shortcut_keeps_key(solution):
    ids = solution.outsource([b"secret", b"other"])
    key_before = solution.keystore.get("master")
    solution.delete_without_reencryption(ids[0])
    assert solution.keystore.get("master") == key_before  # the flaw
    with pytest.raises(Exception):
        solution.access(ids[0])  # ciphertext gone from the honest server...
    # ...but the security tests show a snapshot-keeping server recovers it.

"""The adapter driving the paper's scheme through the baseline interface."""

import pytest

from repro.baselines.keymod import KeyModulationScheme
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer


@pytest.fixture
def solution():
    return KeyModulationScheme(LoopbackChannel(CloudServer()),
                               rng=DeterministicRandom("km-test"))


def test_uniform_interface(solution):
    ids = solution.outsource([b"a", b"b", b"c"])
    assert solution.access(ids[0]) == b"a"
    new = solution.insert(b"d")
    solution.delete(ids[1])
    assert solution.access(new) == b"d"
    assert solution.access(ids[2]) == b"c"
    assert solution.client_storage_bytes() == 16


def test_requires_outsourcing_first(solution):
    with pytest.raises(RuntimeError):
        solution.access(1)


def test_master_key_tracked_across_deletes(solution):
    ids = solution.outsource([b"x%d" % i for i in range(6)])
    for item in ids[:4]:
        solution.delete(item)
    assert solution.access(ids[4]) == b"x4"
    assert solution.access(ids[5]) == b"x5"


def test_metrics_shared_with_inner_client(solution):
    ids = solution.outsource([b"a", b"b"])
    solution.delete(ids[0])
    records = solution.metrics.for_op("delete")
    assert len(records) == 1
    assert records[0].hash_calls > 0

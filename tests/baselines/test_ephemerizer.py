"""The FADE-style third-party baseline and its failure modes."""

import pytest

from repro.baselines.ephemerizer import Ephemerizer, PolicyClient, PolicyCloud
from repro.core.errors import KeyShreddedError
from repro.crypto.rng import DeterministicRandom


@pytest.fixture
def deployment():
    ephemerizer = Ephemerizer(DeterministicRandom("eph"))
    cloud = PolicyCloud()
    client = PolicyClient(ephemerizer, cloud,
                          rng=DeterministicRandom("eph-client"))
    return ephemerizer, cloud, client


def test_outsource_and_access(deployment):
    ephemerizer, _cloud, client = deployment
    ephemerizer.create_policy("p1")
    ids = client.outsource(1, "p1", [b"doc-a", b"doc-b"])
    assert client.access(1, ids[0]) == b"doc-a"
    assert client.access(1, ids[1]) == b"doc-b"


def test_policy_revocation_kills_all_files_under_it(deployment):
    ephemerizer, _cloud, client = deployment
    ephemerizer.create_policy("p1")
    ids1 = client.outsource(1, "p1", [b"file-1"])
    ids2 = client.outsource(2, "p1", [b"file-2"])
    client.delete_policy("p1")
    with pytest.raises(KeyShreddedError):
        client.access(1, ids1[0])
    with pytest.raises(KeyShreddedError):
        client.access(2, ids2[0])


def test_fine_grained_deletion_degenerates_to_full_reencryption(deployment):
    ephemerizer, cloud, client = deployment
    ephemerizer.create_policy("p1")
    ids = client.outsource(1, "p1", [b"item-%d" % i for i in range(6)])
    before = cloud.get_file(1).ciphertexts.copy()

    client.delete_item_via_repolicy(1, ids[2], "p1-v2")

    after = cloud.get_file(1)
    # Every surviving ciphertext was re-encrypted (all bytes changed).
    assert set(after.ciphertexts) == set(before) - {ids[2]}
    for item in after.ciphertexts:
        assert after.ciphertexts[item] != before[item]
    # Survivors readable, victim dead.
    assert client.access(1, ids[3]) == b"item-3"
    with pytest.raises(Exception):
        client.access(1, ids[2])


def test_third_party_compromise_voids_deletion(deployment):
    """The paper's core argument against ephemerizers, executable."""
    ephemerizer, cloud, client = deployment
    ephemerizer.create_policy("p1")
    ids = client.outsource(1, "p1", [b"super-secret"])

    # The adversary compromises the third party *before* deletion and
    # the cloud keeps an old snapshot (full server control).
    stolen_policies = ephemerizer.compromise()
    snapshot = cloud.snapshot()

    client.delete_policy("p1")
    with pytest.raises(KeyShreddedError):
        client.access(1, ids[0])  # honest path is dead...

    # ...but the attacker rebuilds everything from the stolen key.
    from repro.core.ciphertext import ItemCodec
    from repro.core.params import Params
    from repro.crypto.modes import aes_ctr
    stored = snapshot[1]
    policy_key = stolen_policies["policy:p1"]
    data_key = aes_ctr(policy_key, stored.wrapped_key[:8],
                       stored.wrapped_key[8:])
    codec = ItemCodec(Params())
    padded = data_key.ljust(20, b"\x00")
    message, _rid = codec.decrypt(padded, stored.ciphertexts[ids[0]])
    assert message == b"super-secret"  # deletion was void

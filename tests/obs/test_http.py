"""The /metrics HTTP endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import CONTENT_TYPE, MetricsServer
from repro.obs.metrics import MetricsRegistry


def scrape(address, path="/metrics"):
    url = f"http://{address[0]}:{address[1]}{path}"
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, dict(response.headers), \
            response.read().decode("utf-8")


def test_metrics_endpoint_serves_registry():
    registry = MetricsRegistry()
    registry.counter("demo_total", "a demo", labelnames=("op",)).inc(op="x")
    with MetricsServer(registry) as server:
        status, headers, body = scrape(server.address)
    assert status == 200
    assert headers["Content-Type"] == CONTENT_TYPE
    assert 'demo_total{op="x"} 1' in body


def test_scrape_reflects_live_updates():
    registry = MetricsRegistry()
    counter = registry.counter("live_total", "")
    with MetricsServer(registry) as server:
        _, _, before = scrape(server.address)
        counter.inc(5)
        _, _, after = scrape(server.address)
    assert "live_total 5" not in before
    assert "live_total 5" in after


def test_healthz_and_404():
    with MetricsServer(MetricsRegistry()) as server:
        status, _, body = scrape(server.address, "/healthz")
        assert status == 200 and body == "ok\n"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            scrape(server.address, "/other")
        assert excinfo.value.code == 404


def test_start_metrics_server_helper_uses_global_registry():
    from repro import obs
    server = obs.start_metrics_server(port=0)
    try:
        obs.REGISTRY.counter("helper_total", "").inc()
        _, _, body = scrape(server.address)
        assert "helper_total 1" in body
    finally:
        server.stop()

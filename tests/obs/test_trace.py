"""Spans, trace propagation, and the JSON log sink."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs.trace import (NULL_SPAN, TraceContext, current, log_event,
                             span, trace_scope)


def enabled_log():
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    return buf


def records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def test_trace_context_validates_sizes():
    with pytest.raises(ValueError):
        TraceContext(trace_id=b"short", span_id=b"x" * 8)
    with pytest.raises(ValueError):
        TraceContext(trace_id=b"x" * 16, span_id=b"short")
    tc = TraceContext(trace_id=b"\x01" * 16, span_id=b"\x02" * 8)
    assert tc.trace_id_hex == "01" * 16
    assert tc.span_id_hex == "02" * 8


def test_span_disabled_is_shared_null_object():
    assert obs.is_enabled() is False
    assert span("anything") is NULL_SPAN
    with span("anything") as sp:
        sp.annotate(ignored=1)
        assert current() is None


def test_span_emits_record_with_ids_and_duration():
    buf = enabled_log()
    with span("unit.op", kind="test"):
        pass
    (rec,) = records(buf)
    assert rec["event"] == "span"
    assert rec["name"] == "unit.op"
    assert rec["kind"] == "test"
    assert len(rec["trace_id"]) == 32
    assert len(rec["span_id"]) == 16
    assert "parent_span_id" not in rec
    assert rec["duration_ms"] >= 0.0
    assert rec["status"] == "ok"


def test_nested_spans_share_trace_and_link_parent():
    buf = enabled_log()
    with span("outer"):
        with span("inner"):
            pass
    inner, outer = records(buf)  # inner closes (and logs) first
    assert inner["name"] == "inner"
    assert inner["trace_id"] == outer["trace_id"]
    assert inner["parent_span_id"] == outer["span_id"]
    assert "parent_span_id" not in outer


def test_span_error_status_and_context_restore():
    buf = enabled_log()
    with pytest.raises(RuntimeError):
        with span("boom"):
            raise RuntimeError("exploded")
    (rec,) = records(buf)
    assert rec["status"] == "error"
    assert "RuntimeError: exploded" in rec["error"]
    assert current() is None  # context restored despite the exception


def test_trace_scope_adopts_remote_context():
    buf = enabled_log()
    remote = TraceContext(trace_id=b"\xaa" * 16, span_id=b"\xbb" * 8)
    with trace_scope(remote):
        assert current() is remote
        with span("server.side"):
            pass
    assert current() is None
    (rec,) = records(buf)
    assert rec["trace_id"] == "aa" * 16
    assert rec["parent_span_id"] == "bb" * 8


def test_trace_scope_none_is_transparent():
    enabled_log()
    with trace_scope(None):
        assert current() is None


def test_log_event_carries_current_trace():
    buf = enabled_log()
    log_event("standalone", n=1)
    with span("op"):
        log_event("inside", n=2)
    standalone, inside, _sp = records(buf)
    assert "trace_id" not in standalone
    assert inside["trace_id"] == _sp["trace_id"]
    assert inside["span_id"] == _sp["span_id"]


def test_spans_are_thread_local():
    enabled_log()
    seen = {}

    def worker(name):
        with span(name) as sp:
            seen[name] = sp.context.trace_id

    threads = [threading.Thread(target=worker, args=(f"t{i}",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(set(seen.values())) == 4  # independent root traces


def test_disable_detaches_sink():
    buf = enabled_log()
    obs.disable()
    with span("after"):
        pass
    log_event("after-event")
    assert buf.getvalue() == ""

"""The metrics core: counters, gauges, histograms, rendering."""

import math
import threading

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               render_prometheus)


def test_counter_accumulates_per_label():
    c = Counter("x_total", "help", labelnames=("op",))
    c.inc(op="delete")
    c.inc(2, op="delete")
    c.inc(op="access")
    assert c.value(op="delete") == 3
    assert c.value(op="access") == 1
    assert c.value(op="never") == 0
    assert c.total() == 4


def test_counter_rejects_negative():
    c = Counter("x_total", "")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_rejects_wrong_labels():
    c = Counter("x_total", "", labelnames=("op",))
    with pytest.raises(ValueError):
        c.inc(1)  # missing label
    with pytest.raises(ValueError):
        c.inc(1, op="a", extra="b")


def test_gauge_moves_both_ways():
    g = Gauge("g", "")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value() == 4


def test_histogram_buckets_cumulative():
    h = Histogram("h", "", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count() == 5
    assert h.sum() == pytest.approx(56.05)
    lines = list(h.samples())
    assert 'h_bucket{le="0.1"} 1' in lines
    assert 'h_bucket{le="1"} 3' in lines
    assert 'h_bucket{le="10"} 4' in lines
    assert 'h_bucket{le="+Inf"} 5' in lines
    assert "h_count 5" in lines


def test_histogram_boundary_lands_in_its_bucket():
    # Prometheus buckets are le (<=): an exact bound counts inside it.
    h = Histogram("h", "", buckets=(1.0, 2.0))
    h.observe(1.0)
    assert 'h_bucket{le="1"} 1' in list(h.samples())


def test_registry_get_or_create_shares_instrument():
    reg = MetricsRegistry()
    a = reg.counter("c_total", "first", labelnames=("op",))
    b = reg.counter("c_total", "ignored", labelnames=("op",))
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("c_total")  # kind mismatch
    with pytest.raises(ValueError):
        reg.counter("c_total", labelnames=("other",))  # label mismatch


def test_registry_render_and_reset():
    reg = MetricsRegistry()
    reg.counter("a_total", "things done", labelnames=("op",)).inc(op="x")
    reg.histogram("b_seconds", "latency", buckets=(1.0,)).observe(0.5)
    text = render_prometheus(reg)
    assert "# HELP a_total things done" in text
    assert "# TYPE a_total counter" in text
    assert 'a_total{op="x"} 1' in text
    assert "# TYPE b_seconds histogram" in text
    assert 'b_seconds_bucket{le="+Inf"} 1' in text
    reg.reset()
    after = render_prometheus(reg)
    assert 'a_total{op="x"}' not in after   # series zeroed
    assert "# TYPE a_total counter" in after  # instrument still registered


def test_label_escaping():
    c = Counter("c_total", "", labelnames=("path",))
    c.inc(path='we"ird\\name\nx')
    (line,) = list(c.samples())
    assert line == 'c_total{path="we\\"ird\\\\name\\nx"} 1'


def test_non_finite_sets_are_ignored():
    # A NaN or Inf from a broken probe must not poison the series (it
    # would render as an unparseable/garbage sample forever after).
    g = Gauge("g", "")
    g.set(3)
    for bad in (math.inf, -math.inf, math.nan):
        g.set(bad)
    assert list(g.samples()) == ["g 3"]


def test_concurrent_increments_do_not_lose_updates():
    c = Counter("c_total", "")
    h = Histogram("h", "", buckets=(1.0,))

    def work():
        for _ in range(1000):
            c.inc()
            h.observe(0.5)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value() == 8000
    assert h.count() == 8000

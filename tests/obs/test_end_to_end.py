"""Acceptance: one trace id follows a deletion client -> TCP -> server -> WAL.

These tests run a real CloudServer behind a real socket with
observability on, then parse the JSON log stream back and check the
span tree and the metrics registry against what actually happened.
"""

import io
import json
import time

from repro import obs
from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.protocol import messages as msg
from repro.protocol.tcp import RetryPolicy, TcpChannel, TcpServerHost
from repro.server.server import CloudServer
from repro.server.wal import CommitLog


def records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def spans_named(recs, name):
    return [r for r in recs if r.get("event") == "span" and r["name"] == name]


def test_traced_delete_over_tcp_shares_one_trace_id(tmp_path):
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    server = CloudServer()
    server.attach_wal(CommitLog(str(tmp_path / "server.wal")))
    with TcpServerHost(server) as host:
        with TcpChannel(host.address, server.ctx) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("e2e"))
            key = client.outsource(1, [b"a", b"b", b"c"])
            ids = client.item_ids_of(3)
            buf.truncate(0)
            buf.seek(0)
            client.delete(1, key, ids[1])

    recs = records(buf)
    (root,) = spans_named(recs, "client.delete")
    trace_id = root["trace_id"]
    # The whole operation -- client op, each round trip, the server
    # handlers across the socket, and the WAL appends they logged --
    # shares the root's trace id.
    for name in ("rpc.request", "server.handle", "wal.append"):
        named = spans_named(recs, name)
        assert named, name
        assert all(r["trace_id"] == trace_id for r in named), name
    # The server handler is a child of the rpc span that carried it.
    rpc_ids = {r["span_id"] for r in spans_named(recs, "rpc.request")}
    assert all(r["parent_span_id"] in rpc_ids
               for r in spans_named(recs, "server.handle"))
    # And the WAL fsync made it into the histogram.
    from repro.obs import instruments as ins
    assert ins.WAL_FSYNC_SECONDS.count() >= 1
    assert ins.WAL_APPENDS.value() >= 1


class _SlowReplyOnce:
    """Apply the first DeleteCommit but stall its reply past the client
    timeout, forcing a real retransmit of identical bytes."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.ctx = inner.ctx
        self.delay = delay
        self.stalled = False

    def handle_bytes(self, data):
        response = self.inner.handle_bytes(data)
        request = msg.decode_message(self.ctx, data)
        if isinstance(request, msg.DeleteCommit) and not self.stalled:
            self.stalled = True
            time.sleep(self.delay)
        return response


def test_injected_retransmit_logs_replay_cache_hit_in_the_same_trace():
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    server = CloudServer()
    backend = _SlowReplyOnce(server, delay=1.0)
    with TcpServerHost(backend) as host:
        retry = RetryPolicy(attempts=4, timeout=0.25, base_delay=0.01)
        with TcpChannel(host.address, server.ctx, retry=retry) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("replay"))
            key = client.outsource(1, [b"x", b"y", b"z"])
            ids = client.item_ids_of(3)
            client.delete(1, key, ids[0])
            assert channel.counters.retransmits >= 1

    recs = records(buf)
    (root,) = spans_named(recs, "client.delete")
    retransmits = [r for r in recs if r.get("event") == "rpc.retransmit"]
    hits = [r for r in recs if r.get("event") == "server.replay_cache_hit"]
    assert retransmits and hits
    # The replay-cache hit happened while serving the retransmitted
    # commit, inside the same end-to-end trace as the deletion.
    assert all(h["trace_id"] == root["trace_id"] for h in hits)
    assert any(h["cache"] == "request_id" for h in hits)
    # Applied exactly once despite the duplicate delivery.
    assert server.file_state(1).version == 1

    from repro.obs import instruments as ins
    assert ins.RPC_RETRANSMITS.value() >= 1
    assert ins.REPLAY_HITS.value(cache="request_id") >= 1
    assert ins.REPLAY_LOOKUPS.value(cache="request_id") >= \
        ins.REPLAY_HITS.value(cache="request_id")


def test_harness_records_bridge_into_the_registry():
    obs.enable()  # metrics only, no log sink
    fs = OutsourcedFileSystem(rng=DeterministicRandom("bridge"))
    f = fs.create_file("dir/data.bin", [b"one", b"two"])
    f.delete_record(0)

    from repro.obs import instruments as ins
    assert ins.OPS_TOTAL.value(op="delete") >= 1
    assert ins.OPS_TOTAL.value(op="outsource") >= 1
    assert ins.OP_SECONDS.count(op="delete") >= 1
    assert ins.SERVER_REQUESTS.total() >= 1
    # The same numbers render on the Prometheus page.
    text = obs.REGISTRY.render()
    assert 'repro_ops_total{op="delete"}' in text
    assert "repro_op_seconds_bucket" in text


def test_disabled_observability_emits_and_records_nothing():
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    obs.disable()
    obs.REGISTRY.reset()

    fs = OutsourcedFileSystem(rng=DeterministicRandom("off"))
    f = fs.create_file("a", [b"r0", b"r1"])
    f.delete_record(1)

    assert buf.getvalue() == ""
    from repro.obs import instruments as ins
    assert ins.OPS_TOTAL.total() == 0
    assert ins.SERVER_REQUESTS.total() == 0

"""The tamper-evident audit chain: appends, recovery, tamper detection.

The acceptance bar (ISSUE 8): a flipped byte, a truncated tail, and a
spliced-out record must each fail verification, while an untampered log
verifies clean and mirrors what the server actually applied.
"""

import json
import os
import pickle

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.obs import audit as audit_mod
from repro.obs.audit import (GENESIS, AuditError, AuditLog, chain_hash,
                             head_path_for, verify_log)
from repro.protocol import messages as msg
from repro.server.server import CloudServer


def _fill(path, ops):
    with AuditLog(str(path)) as log:
        for op in ops:
            log.append({"op": op, "request_id": 1, "file_id": 7,
                        "items": [], "version_before": 0,
                        "version_after": 1, "ok": True, "code": None,
                        "trace_id": None})
    return str(path)


def _lines(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read().splitlines()


def _write_lines(path, lines):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + ("\n" if lines else ""))


# ---------------------------------------------------------------------
# Chain mechanics
# ---------------------------------------------------------------------

def test_appends_chain_and_verify_clean(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit",
                                      "ModifyCommit"])
    records = verify_log(path)
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert records[0]["prev"] == GENESIS
    assert records[1]["prev"] == records[0]["hash"]
    assert records[2]["prev"] == records[1]["hash"]
    for record in records:
        assert record["hash"] == chain_hash(record["prev"], record)


def test_head_file_anchors_the_tail(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "DeleteCommit"])
    head = json.load(open(head_path_for(path)))
    records = verify_log(path)
    assert head["seq"] == 2
    assert head["hash"] == records[-1]["hash"]


def test_reopen_continues_the_chain(tmp_path):
    path = str(tmp_path / "a.log")
    with AuditLog(path) as log:
        log.append({"op": "DeleteCommit"})
    with AuditLog(path) as log:
        assert log.seq == 1
        log.append({"op": "InsertCommit"})
    records = verify_log(path)
    assert [r["op"] for r in records] == ["DeleteCommit", "InsertCommit"]


def test_torn_unacknowledged_tail_is_truncated_on_open(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit"])
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 2, "op": "Inse')  # crash mid-append
    with AuditLog(path) as log:
        assert log.seq == 1
        log.append({"op": "ModifyCommit"})
    assert [r["op"] for r in verify_log(path)] == \
        ["DeleteCommit", "ModifyCommit"]


def test_torn_tail_the_head_acknowledges_is_an_error(tmp_path):
    # If the head says record 2 is durable but the log ends torn at 1,
    # the tail was tampered with (or the head was forged) -- refuse.
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit"])
    lines = _lines(path)
    _write_lines(path, lines[:1] + [lines[1][:20]])
    with pytest.raises(AuditError, match="head acknowledges"):
        AuditLog(path)


# ---------------------------------------------------------------------
# Tamper detection (the acceptance criteria trio)
# ---------------------------------------------------------------------

def test_flipped_byte_is_detected(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit",
                                      "ModifyCommit"])
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    # Flip one byte inside the second record's op name.
    position = data.find(b"InsertCommit")
    data[position] ^= 0x01
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(AuditError, match="hash mismatch at record 2"):
        verify_log(path)


def test_spliced_out_record_is_detected(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit",
                                      "ModifyCommit"])
    lines = _lines(path)
    _write_lines(path, [lines[0], lines[2]])  # drop the middle record
    with pytest.raises(AuditError, match="sequence break at record 2"):
        verify_log(path)


def test_truncated_tail_is_detected_via_the_head(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit",
                                      "ModifyCommit"])
    lines = _lines(path)
    _write_lines(path, lines[:2])  # drop the (acknowledged) tail record
    with pytest.raises(AuditError, match="truncated tail"):
        verify_log(path)
    # Without the head anchor the shortened log looks internally valid:
    # exactly the attack the head file exists to catch.
    os.unlink(head_path_for(path))
    assert len(verify_log(path, require_head=False)) == 2


def test_rewritten_tail_with_rebuilt_chain_fails_the_head_anchor(tmp_path):
    # An attacker who rewrites the last record AND recomputes its hash
    # still cannot match the anchored head hash.
    path = _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit"])
    records = verify_log(path)
    forged = dict(records[1])
    forged["op"] = "ModifyCommit"
    forged["hash"] = chain_hash(forged["prev"], forged)
    _write_lines(path, [_lines(path)[0],
                        json.dumps(forged, sort_keys=True,
                                   separators=(",", ":"))])
    with pytest.raises(AuditError, match="head anchor mismatch"):
        verify_log(path)


def test_missing_head_is_an_error_unless_waived(tmp_path):
    path = _fill(tmp_path / "a.log", ["DeleteCommit"])
    os.unlink(head_path_for(path))
    with pytest.raises(AuditError, match="head .* missing"):
        verify_log(path)
    assert len(verify_log(path, require_head=False)) == 1


# ---------------------------------------------------------------------
# Server emission
# ---------------------------------------------------------------------

def _fs_with_audit(tmp_path, seed="audit"):
    fs = OutsourcedFileSystem(rng=DeterministicRandom(seed))
    audit = AuditLog(str(tmp_path / "audit.log"))
    fs.server.attach_audit(audit)
    return fs, audit


def test_every_mutation_kind_is_audited(tmp_path):
    fs, audit = _fs_with_audit(tmp_path)
    f = fs.create_file("a", [b"r0", b"r1", b"r2", b"r3"])
    f.write_record(0, b"new")
    f.append_record(b"r4")
    f.delete_record(1)
    f.delete_many([0, 1])
    fs.delete_file("a")
    audit.close()

    records = verify_log(audit.path)
    ops = [r["op"] for r in records]
    for expected in ("OutsourceRequest", "ModifyCommit", "InsertCommit",
                     "DeleteCommit", "BatchDeleteCommit",
                     "DeleteFileRequest"):
        assert expected in ops, expected
    # Reads are not mutations and never hit the trail.
    assert "AccessRequest" not in ops


def test_audit_record_carries_versions_items_and_request_id(tmp_path):
    fs, audit = _fs_with_audit(tmp_path)
    f = fs.create_file("a", [b"x", b"y", b"z"])
    file_id = f.file_id
    item_id = f._record.index.item_id_at(1)
    f.delete_record(1)
    audit.close()

    # The deletion also shreds the master-key record in the meta tree
    # (its own DeleteCommit there); look at the data file's only.
    deletes = [r for r in verify_log(audit.path)
               if r["op"] == "DeleteCommit" and r["file_id"] == file_id]
    (record,) = deletes
    assert record["file_id"] == file_id
    assert record["items"] == [item_id]
    assert record["version_after"] == record["version_before"] + 1
    assert record["request_id"] > 0
    assert record["ok"] is True


def test_rejected_mutation_is_audited_with_its_error_code(tmp_path):
    fs, audit = _fs_with_audit(tmp_path)
    fs.create_file("a", [b"x"])
    reply = fs.server.handle(msg.DeleteCommit(
        file_id=999_999, item_id=5, request_id=12345))
    assert isinstance(reply, msg.ErrorReply)
    audit.close()

    rejected = [r for r in verify_log(audit.path) if not r["ok"]]
    (record,) = rejected
    assert record["op"] == "DeleteCommit"
    assert record["file_id"] == 999_999
    assert record["request_id"] == 12345
    assert record["code"] == reply.code


def test_audit_works_with_observability_disabled(tmp_path):
    # The trail is evidence, not telemetry: it must record with the
    # global obs flag off (the default in this suite's fixture).
    from repro.obs import runtime
    assert not runtime.enabled
    fs, audit = _fs_with_audit(tmp_path)
    f = fs.create_file("a", [b"x", b"y"])
    f.delete_record(0)
    audit.close()
    assert any(r["op"] == "DeleteCommit" for r in verify_log(audit.path))


def test_traced_mutation_records_its_trace_id(tmp_path):
    from repro import obs
    obs.enable()
    try:
        fs, audit = _fs_with_audit(tmp_path)
        f = fs.create_file("a", [b"x", b"y"])
        f.delete_record(0)
        audit.close()
        deletes = [r for r in verify_log(audit.path)
                   if r["op"] == "DeleteCommit"]
        assert all(isinstance(r["trace_id"], str)
                   and len(r["trace_id"]) == 32 for r in deletes)
    finally:
        obs.disable()


def test_server_with_audit_still_pickles(tmp_path):
    fs, audit = _fs_with_audit(tmp_path)
    fs.create_file("a", [b"x"])
    clone = pickle.loads(pickle.dumps(fs.server))
    assert clone.audit is None  # open log handles cannot travel
    assert clone.file_ids() == fs.server.file_ids()
    audit.close()


def test_tail_records_returns_the_last_n(tmp_path):
    path = _fill(tmp_path / "a.log", [f"Op{i}" for i in range(7)])
    tail = audit_mod.tail_records(path, 3)
    assert [r["op"] for r in tail] == ["Op4", "Op5", "Op6"]


def test_append_counts_into_metrics_when_enabled(tmp_path):
    from repro import obs
    from repro.obs import instruments as ins
    obs.enable()
    try:
        _fill(tmp_path / "a.log", ["DeleteCommit", "InsertCommit"])
        assert ins.AUDIT_RECORDS.value() == 2
        assert ins.AUDIT_APPEND_SECONDS.count() == 2
    finally:
        obs.disable()

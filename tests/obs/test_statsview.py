"""The live-stats math: exposition parsing, rates, quantile deltas."""

import io
import math

from repro.obs import statsview as sv
from repro.obs.httpd import MetricsServer
from repro.obs.metrics import MetricsRegistry


# ---------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------

def test_parse_plain_and_labelled_samples():
    text = "\n".join([
        "# HELP repro_ops_total ops",
        "# TYPE repro_ops_total counter",
        'repro_ops_total{op="delete"} 3',
        'repro_ops_total{op="access"} 10',
        "repro_replay_cache_size 42",
        "",
    ])
    samples = sv.parse_prometheus(text)
    assert samples[("repro_ops_total", (("op", "delete"),))] == 3
    assert samples[("repro_ops_total", (("op", "access"),))] == 10
    assert samples[("repro_replay_cache_size", ())] == 42


def test_parse_handles_escaped_label_values():
    text = ('weird_total{path="a\\"b",detail="x,y"} 1\n'
            'weird_total{path="plain",detail="z"} 2\n')
    samples = sv.parse_prometheus(text)
    assert samples[("weird_total",
                    (("detail", "x,y"), ("path", 'a"b')))] == 1
    assert samples[("weird_total",
                    (("detail", "z"), ("path", "plain")))] == 2


def test_parse_skips_malformed_lines():
    samples = sv.parse_prometheus("not a sample\nok_total 1\nbad nan?\n")
    assert samples == {("ok_total", ()): 1}


def test_parse_roundtrips_the_real_registry_rendering():
    registry = MetricsRegistry()
    registry.counter("repro_ops_total", "", ("op",)).inc(5, op="delete")
    registry.histogram("repro_op_seconds", "", (), (0.1, 1.0)).observe(0.5)
    samples = sv.parse_prometheus(registry.render())
    assert samples[("repro_ops_total", (("op", "delete"),))] == 5
    assert samples[("repro_op_seconds_count", ())] == 1
    assert samples[("repro_op_seconds_bucket", (("le", "1"),))] == 1
    assert samples[("repro_op_seconds_bucket", (("le", "+Inf"),))] == 1


# ---------------------------------------------------------------------
# Delta arithmetic
# ---------------------------------------------------------------------

def _snap(**values):
    """Shorthand: _snap(**{'name|k=v': 3}) -> parsed-snapshot dict."""
    out = {}
    for spec, value in values.items():
        name, _, label = spec.partition("|")
        labels = ()
        if label:
            key, _, raw = label.partition("=")
            labels = ((key, raw),)
        out[(name, labels)] = value
    return out


def test_rate_is_per_second_delta_clamped_at_zero():
    prev = _snap(c_total=10)
    curr = _snap(c_total=30)
    assert sv.rate(prev, curr, "c_total", 2.0) == 10.0
    # Counter reset (server restart): negative deltas clamp to zero.
    assert sv.rate(curr, prev, "c_total", 2.0) == 0.0
    assert sv.rate(prev, curr, "c_total", 0.0) == 0.0


def test_rates_by_label_splits_per_value():
    prev = {("r_total", (("type", "A"),)): 1,
            ("r_total", (("type", "B"),)): 5}
    curr = {("r_total", (("type", "A"),)): 11,
            ("r_total", (("type", "B"),)): 5,
            ("r_total", (("type", "C"),)): 2}
    rates = sv.rates_by_label(prev, curr, "r_total", "type", 2.0)
    assert rates == {"A": 5.0, "B": 0.0, "C": 1.0}


def test_bucket_deltas_order_bounds_with_inf_last():
    prev = {("h_bucket", (("le", "0.1"),)): 2,
            ("h_bucket", (("le", "+Inf"),)): 4}
    curr = {("h_bucket", (("le", "0.1"),)): 5,
            ("h_bucket", (("le", "+Inf"),)): 10}
    deltas = sv.bucket_deltas(prev, curr, "h")
    assert deltas == [(0.1, 3.0), (math.inf, 6.0)]


def test_quantile_interpolates_within_the_winning_bucket():
    # 10 observations: 4 in (0, 0.1], 6 in (0.1, 0.5].
    buckets = [(0.1, 4.0), (0.5, 10.0), (math.inf, 10.0)]
    # p50 -> target 5 -> 1/6 into the (0.1, 0.5] bucket.
    p50 = sv.quantile_from_deltas(buckets, 0.50)
    assert abs(p50 - (0.1 + 0.4 / 6)) < 1e-12
    # Everything fits under 0.5, so p100 is its bound.
    assert sv.quantile_from_deltas(buckets, 1.0) == 0.5


def test_quantile_in_the_inf_bucket_reports_last_finite_bound():
    buckets = [(0.1, 1.0), (math.inf, 10.0)]
    assert sv.quantile_from_deltas(buckets, 0.95) == 0.1


def test_quantile_edge_cases():
    assert sv.quantile_from_deltas([], 0.5) is None
    assert sv.quantile_from_deltas([(0.1, 0.0), (math.inf, 0.0)],
                                   0.5) is None  # idle interval
    assert sv.quantile_from_deltas([(0.1, 1.0)], 1.5) is None


# ---------------------------------------------------------------------
# Rendering + the scrape loop against a real endpoint
# ---------------------------------------------------------------------

def _registry_with_traffic(ops):
    registry = MetricsRegistry()
    requests = registry.counter("repro_server_requests_total", "",
                                ("type",))
    handle = registry.histogram("repro_server_handle_seconds", "", (),
                                (0.001, 0.01, 0.1))
    for op, count in ops.items():
        requests.inc(count, type=op)
        for _ in range(count):
            handle.observe(0.005)
    return registry


def test_render_dashboard_shows_rates_and_quantiles():
    prev = sv.parse_prometheus(_registry_with_traffic(
        {"DeleteRequest": 0}).render())
    curr = sv.parse_prometheus(_registry_with_traffic(
        {"DeleteRequest": 20, "AccessRequest": 4}).render())
    frame = sv.render_dashboard(prev, curr, 2.0)
    assert "ops/s" in frame and "12.0" in frame  # (20 + 4) / 2s
    assert "DeleteRequest" in frame and "10.0/s" in frame
    assert "AccessRequest" in frame and "2.0/s" in frame
    # All 24 observations landed in the 0.01 bucket -> finite quantiles.
    assert "p50" in frame and "--" not in frame.split("\n")[2]


def test_render_dashboard_idle_interval():
    snapshot = sv.parse_prometheus(
        _registry_with_traffic({"DeleteRequest": 3}).render())
    frame = sv.render_dashboard(snapshot, snapshot, 2.0)
    assert "(no traffic this interval)" in frame
    assert "--" in frame  # no latency samples either


def test_run_stats_scrapes_a_live_endpoint():
    registry = _registry_with_traffic({"DeleteRequest": 8})
    with MetricsServer(registry) as server:
        host, port = server.address
        out = io.StringIO()
        rc = sv.run_stats(host, port, interval=0.05, count=2, out=out)
    assert rc == 0
    frames = out.getvalue().strip().split("\n\n")
    assert len(frames) == 2
    assert all("repro-vault stats" in frame for frame in frames)

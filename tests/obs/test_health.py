"""/healthz, /readyz, /statusz, scraper disconnects, and probes."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs.health import HEALTH, HealthRegistry
from repro.obs.httpd import MetricsServer, status_snapshot
from repro.obs.metrics import MetricsRegistry


def fetch(address, path):
    url = f"http://{address[0]}:{address[1]}{path}"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


# ---------------------------------------------------------------------
# HealthRegistry
# ---------------------------------------------------------------------

def test_registry_aggregates_checks():
    registry = HealthRegistry()
    registry.register("good", lambda: (True, "fine"))
    registry.register("bad", lambda: (False, "broken"))
    report = registry.run_checks()
    assert report["ready"] is False
    assert report["checks"]["good"]["ok"] is True
    assert report["checks"]["bad"]["detail"] == "broken"
    registry.unregister("bad")
    assert registry.run_checks()["ready"] is True


def test_raising_check_reports_failure_not_500():
    registry = HealthRegistry()
    registry.register("boom", lambda: 1 / 0)
    report = registry.run_checks()
    assert report["ready"] is False
    assert "ZeroDivisionError" in report["checks"]["boom"]["detail"]


def test_stopping_flag_fails_readiness_even_with_green_checks():
    registry = HealthRegistry()
    registry.register("good", lambda: (True, "fine"))
    registry.set_stopping()
    report = registry.run_checks()
    assert report["stopping"] is True
    assert report["ready"] is False


# ---------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------

def test_healthz_ok_then_503_once_stopping():
    with MetricsServer(MetricsRegistry()) as server:
        status, body = fetch(server.address, "/healthz")
        assert (status, body) == (200, "ok\n")
        server.stopping = True
        status, body = fetch(server.address, "/healthz")
        assert (status, body) == (503, "stopping\n")


def test_healthz_503_when_process_is_draining():
    with MetricsServer(MetricsRegistry()) as server:
        HEALTH.set_stopping()
        status, _ = fetch(server.address, "/healthz")
        assert status == 503


def test_readyz_reflects_registered_probes():
    with MetricsServer(MetricsRegistry()) as server:
        status, body = fetch(server.address, "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True

        HEALTH.register("wal", lambda: (False, "failed closed"))
        status, body = fetch(server.address, "/readyz")
        assert status == 503
        report = json.loads(body)
        assert report["checks"]["wal"]["detail"] == "failed closed"


def test_statusz_serves_health_and_metric_values():
    registry = MetricsRegistry()
    registry.counter("demo_total", "", ("op",)).inc(3, op="rm")
    registry.gauge("demo_depth", "").set(7)
    registry.histogram("demo_seconds", "", (), (0.1, 1.0)).observe(0.05)
    HEALTH.register("good", lambda: (True, "fine"))
    with MetricsServer(registry) as server:
        status, body = fetch(server.address, "/statusz")
    assert status == 200
    snapshot = json.loads(body)
    assert snapshot["checks"]["good"]["ok"] is True
    assert snapshot["metrics"]["demo_total"] == {"op=rm": 3}
    assert snapshot["metrics"]["demo_depth"] == 7
    assert snapshot["metrics"]["demo_seconds"]["count"] == 1


def test_status_snapshot_function_matches_http_body():
    registry = MetricsRegistry()
    registry.counter("c_total", "").inc()
    snapshot = status_snapshot(registry)
    assert snapshot["metrics"]["c_total"] == 1
    assert snapshot["ready"] is True


def test_scraper_disconnect_mid_response_is_silent(capfd):
    registry = MetricsRegistry()
    # A body large enough that the handler's write outlives the client.
    big = registry.counter("big_total", "x" * 512, ("k",))
    for i in range(2000):
        big.inc(k=f"label-{i}")
    with MetricsServer(registry) as server:
        for _ in range(3):
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.sendall(b"GET /metrics HTTP/1.1\r\n"
                         b"Host: x\r\nConnection: close\r\n\r\n")
            sock.recv(1)  # response under way...
            # ...and hang up mid-body without reading the rest.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
            sock.close()
        # The server must still answer the next well-behaved scrape.
        status, body = fetch(server.address, "/metrics")
    assert status == 200 and "big_total" in body
    captured = capfd.readouterr()
    assert "Traceback" not in captured.err
    assert "Broken" not in captured.err


def test_404_still_served():
    with MetricsServer(MetricsRegistry()) as server:
        status, _ = fetch(server.address, "/nope")
        assert status == 404


# ---------------------------------------------------------------------
# Probe wiring: WAL and async host
# ---------------------------------------------------------------------

def test_wal_health_reports_usable_and_failed_closed(tmp_path):
    from repro.server.wal import CommitLog
    log = CommitLog(str(tmp_path / "w.wal"))
    ok, detail = log.health()
    assert ok and "durable" in detail
    log._failed = True
    ok, detail = log.health()
    assert not ok and "failed closed" in detail
    log._failed = False
    log.close()
    assert log.health()[0] is False


def test_async_host_registers_and_unregisters_its_probe():
    from repro.protocol.aio import AsyncTcpServerHost
    from repro.server.server import CloudServer

    host = AsyncTcpServerHost(CloudServer())
    name = host._health_name
    host.start()
    try:
        assert name in HEALTH.run_checks()["checks"]
        ok, detail = host.health()
        assert ok, detail
    finally:
        host.stop()
    assert name not in HEALTH.run_checks()["checks"]
    assert host.health()[0] is False  # stopped host is not ready


# ---------------------------------------------------------------------
# Metric value hygiene (NaN / Inf regression)
# ---------------------------------------------------------------------

@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_histogram_ignores_non_finite_observations(bad):
    registry = MetricsRegistry()
    hist = registry.histogram("h_seconds", "", (), (0.1, 1.0))
    hist.observe(0.5)
    hist.observe(bad)
    assert hist.count() == 1
    assert hist.sum() == 0.5
    rendered = registry.render()
    assert "nan" not in rendered.lower()
    assert "h_seconds_sum 0.5" in rendered


@pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                 float("-inf")])
def test_gauge_ignores_non_finite_sets(bad):
    registry = MetricsRegistry()
    gauge = registry.gauge("g_depth", "")
    gauge.set(4)
    gauge.set(bad)
    assert gauge.value() == 4
    assert "g_depth 4" in registry.render()

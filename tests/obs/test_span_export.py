"""JSON-lines span export: sampling, slow-span override, lifecycle."""

import io
import json

import pytest

from repro import obs
from repro.obs import spanexport
from repro.obs.spanexport import SpanExporter
from repro.obs.trace import span


def _exported(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_every_span_exported_at_full_sample(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    obs.enable()
    spanexport.configure(path)
    with span("outer"):
        with span("inner"):
            pass
    spanexport.detach()

    records = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert {r["name"] for r in records} == {"outer", "inner"}
    assert all(r["export"] == "sampled" for r in records)
    # Children share the root's trace id -- the tree survives intact.
    assert len({r["trace_id"] for r in records}) == 1


def test_sampling_is_deterministic_by_trace_id():
    exporter = SpanExporter(stream=io.StringIO(), sample=0.5)
    kept = "00" * 16      # head u64 = 0 -> always below any rate > 0
    dropped = "ff" * 16   # head u64 = max -> above any rate < 1
    assert exporter.sampled(kept)
    assert not exporter.sampled(dropped)
    # Same id, same answer, every time (whole trees sample together).
    assert all(exporter.sampled(kept) for _ in range(10))


def test_sampled_out_spans_are_dropped_and_counted():
    stream = io.StringIO()
    obs.enable()
    spanexport.configure(stream=stream, sample=0.0)
    with span("unwanted"):
        pass
    assert _exported(stream) == []
    from repro.obs import instruments as ins
    assert ins.SPANS_DROPPED.value(reason="unsampled") == 1
    assert ins.SPANS_EXPORTED.total() == 0


def test_slow_span_exports_despite_zero_sample_rate():
    stream = io.StringIO()
    obs.enable()
    spanexport.configure(stream=stream, sample=0.0, slow_ms=0.0)
    with span("slow.op"):
        pass  # any duration >= 0.0ms qualifies
    (record,) = _exported(stream)
    assert record["name"] == "slow.op"
    assert record["export"] == "slow"
    from repro.obs import instruments as ins
    assert ins.SPANS_EXPORTED.value(reason="slow") == 1


def test_disable_detaches_the_exporter(tmp_path):
    obs.enable()
    spanexport.configure(str(tmp_path / "s.jsonl"))
    assert spanexport.active() is not None
    obs.disable()
    assert spanexport.active() is None


def test_reconfigure_replaces_and_closes_the_previous_exporter(tmp_path):
    obs.enable()
    first = spanexport.configure(str(tmp_path / "a.jsonl"))
    second = spanexport.configure(str(tmp_path / "b.jsonl"))
    assert spanexport.active() is second
    assert first._handle.closed


def test_write_failure_is_swallowed_and_counted():
    class Exploding(io.StringIO):
        def write(self, *_):
            raise OSError("disk full")

    obs.enable()
    spanexport.configure(stream=Exploding())
    with span("doomed"):
        pass  # must not raise out of the traced operation
    from repro.obs import instruments as ins
    assert ins.SPANS_DROPPED.value(reason="error") == 1


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        SpanExporter(stream=io.StringIO(), sample=1.5)
    with pytest.raises(ValueError):
        SpanExporter()


def test_record_shape_matches_the_log_sink(tmp_path):
    # The exported record is the span's log record plus the export
    # reason, so downstream tooling can parse either source identically.
    stream = io.StringIO()
    obs.enable()
    spanexport.configure(stream=stream)
    with span("fs.delete", file_id=3):
        pass
    (record,) = _exported(stream)
    for key in ("event", "name", "trace_id", "span_id", "duration_ms",
                "status", "export"):
        assert key in record, key
    assert record["file_id"] == 3
    assert record["status"] == "ok"

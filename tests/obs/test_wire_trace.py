"""The optional trace trailer on the wire: encode, decode, compat."""

import pytest

from repro.core.errors import ProtocolError
from repro.obs.trace import TraceContext
from repro.protocol import messages as msg
from repro.protocol.wire import WireContext

CTX = WireContext(modulator_width=16)
TC = TraceContext(trace_id=bytes(range(16)), span_id=bytes(range(8)))


def test_untraced_roundtrip_is_byte_identical_to_before():
    message = msg.Ack(tree_version=7, item_id=3)
    data = msg.encode_message(CTX, message)
    decoded = msg.decode_message(CTX, data)
    assert decoded == message
    assert msg.get_trace(decoded) is None


def test_traced_roundtrip_carries_the_context():
    message = msg.AccessRequest(file_id=1, item_id=9)
    plain = msg.encode_message(CTX, message)
    traced = msg.encode_message(CTX, message, trace=TC)
    assert len(traced) == len(plain) + msg.TRACE_TRAILER_LEN
    assert traced[:len(plain)] == plain  # trailer strictly appended

    decoded = msg.decode_message(CTX, traced)
    assert decoded == message  # trailer invisible to message equality
    got = msg.get_trace(decoded)
    assert got == TC


def test_trailer_survives_every_message_type_with_defaults():
    for cls in (msg.Ack, msg.ErrorReply, msg.AccessRequest,
                msg.DeleteRequest, msg.DeleteFileRequest,
                msg.FetchFileRequest):
        message = cls()
        data = msg.encode_message(CTX, message, trace=TC)
        decoded = msg.decode_message(CTX, data)
        assert decoded == message, cls.__name__
        assert msg.get_trace(decoded) == TC, cls.__name__


def test_canonical_reencode_strips_the_trailer():
    # WAL records and replay digests re-encode without a trace argument,
    # so tracing can never change what is logged or digested.
    message = msg.DeleteFileRequest(file_id=5, request_id=77)
    traced = msg.encode_message(CTX, message, trace=TC)
    decoded = msg.decode_message(CTX, traced)
    assert msg.encode_message(CTX, decoded) == msg.encode_message(CTX, message)


def test_trailing_garbage_still_rejected():
    message = msg.Ack()
    data = msg.encode_message(CTX, message)
    # Junk that is neither absent nor a well-formed trailer must fail
    # exactly as it did before the trailer existed.
    with pytest.raises(ProtocolError):
        msg.decode_message(CTX, data + b"\x00" * 5)
    # Right length, wrong magic: not a trailer.
    with pytest.raises(ProtocolError):
        msg.decode_message(CTX, data + b"\x00" * msg.TRACE_TRAILER_LEN)


def test_attach_trace_bypasses_frozen_dataclass():
    message = msg.Ack()
    msg.attach_trace(message, TC)
    assert msg.get_trace(message) == TC

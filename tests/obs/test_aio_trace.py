"""Trace trailers over the tagged (pipelined) async framing.

``test_wire_trace.py`` pins the trailer bytes and
``test_end_to_end.py`` proves propagation over the legacy framed TCP
transport; this module proves the SAME trace context survives the
tagged u64 framing -- including the async channel's retransmit path,
which re-sends the traced request under a fresh tag.
"""

import io
import json
import struct
import time

import pytest

from repro import obs
from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.obs.trace import TraceContext, span
from repro.protocol import messages as msg
from repro.protocol.aio import TAG_FLAG, AsyncTcpChannel, AsyncTcpServerHost
from repro.protocol.tcp import RetryPolicy
from repro.server.server import CloudServer

pytestmark = pytest.mark.socket

_LEN = struct.Struct(">I")
_TAG = struct.Struct(">Q")


def records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def spans_named(recs, name):
    return [r for r in recs if r.get("event") == "span" and r["name"] == name]


def _seeded(host, server, seed, n=4):
    with AsyncTcpChannel(host.address, server.ctx) as channel:
        client = AssuredDeletionClient(channel,
                                       rng=DeterministicRandom(seed))
        client.outsource(1, [b"net-%d" % i for i in range(n)])
        ids = client.item_ids_of(n)
    return client.keystore.get("master:1"), ids, client.keystore


def test_traced_delete_over_tagged_framing_shares_one_trace_id(tmp_path):
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        key, ids, keystore = _seeded(host, server, seed="aio-trace")
        buf.truncate(0)
        buf.seek(0)
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("t2"),
                                           keystore=keystore,
                                           store_keys=False)
            client.delete(1, key, ids[1])

    recs = records(buf)
    (root,) = spans_named(recs, "client.delete")
    trace_id = root["trace_id"]
    for name in ("rpc.request", "server.handle"):
        named = spans_named(recs, name)
        assert named, name
        assert all(r["trace_id"] == trace_id for r in named), name
    # The handler hangs off the rpc span that carried it, exactly as on
    # the legacy framing -- the 12 extra tag bytes are trace-neutral.
    rpc_ids = {r["span_id"] for r in spans_named(recs, "rpc.request")}
    assert all(r["parent_span_id"] in rpc_ids
               for r in spans_named(recs, "server.handle"))


class _SlowReplyOnce:
    """Apply the first DeleteCommit but stall its reply past the client
    timeout, forcing a retransmit under a fresh tag."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.ctx = inner.ctx
        self.delay = delay
        self.stalled = False

    def handle_bytes(self, data):
        response = self.inner.handle_bytes(data)
        request = msg.decode_message(self.ctx, data)
        if isinstance(request, msg.DeleteCommit) and not self.stalled:
            self.stalled = True
            time.sleep(self.delay)
        return response


def test_retransmit_under_fresh_tag_keeps_the_trace_id():
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    server = CloudServer()
    backend = _SlowReplyOnce(server, delay=1.0)
    with AsyncTcpServerHost(backend) as host:
        key, ids, keystore = _seeded(host, server, seed="aio-rt")
        retry = RetryPolicy(attempts=4, timeout=0.25, base_delay=0.01)
        with AsyncTcpChannel(host.address, server.ctx,
                             retry=retry) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("rt2"),
                                           keystore=keystore,
                                           store_keys=False)
            client.delete(1, key, ids[0])
            assert channel.counters.retransmits >= 1
            # Let the stalled original reply arrive; its stale tag must
            # drop it without disturbing the channel.
            time.sleep(1.2)

    recs = records(buf)
    (root,) = spans_named(recs, "client.delete")
    hits = [r for r in recs if r.get("event") == "server.replay_cache_hit"]
    assert hits
    # The retransmitted frame carried a NEW tag but the SAME trailer:
    # the replay-cache hit it produced server-side sits inside the
    # original end-to-end trace.
    assert all(h["trace_id"] == root["trace_id"] for h in hits)
    # And the fresh-tag duplicate applied exactly once.
    assert server.file_state(1).version == 1
    dropped = [r for r in recs
               if r.get("event") == "rpc.late_reply_dropped"]
    assert dropped  # the stale-tag original was discarded, not misrouted


class _Exploding:
    """Backend that dies on every request -- drives the host's
    error_reply_bytes path, the only reply that echoes a trailer."""

    def __init__(self, inner):
        self.inner = inner
        self.ctx = inner.ctx

    def handle_bytes(self, data):
        raise RuntimeError("backend down")


def test_raw_tagged_frame_error_reply_echoes_tag_and_trailer():
    """Byte-level: a tagged frame is [u32 len|TAG_FLAG][u64 tag][payload]
    where the payload still ends with the ordinary trace trailer; when
    the backend dies the synthesized ErrorReply echoes BOTH correlators
    -- the tag (framing layer) and the trace trailer (obs layer)."""
    import socket

    obs.enable()
    context = TraceContext(trace_id=bytes(range(16)),
                           span_id=bytes(range(8)))
    server = CloudServer()
    with AsyncTcpServerHost(_Exploding(server)) as host:
        payload = msg.encode_message(
            server.ctx,
            msg.ModifyCommit(file_id=404, item_id=1, ciphertext=b"x",
                             tree_version=0, request_id=9),
            trace=context)
        with socket.create_connection(host.address, timeout=10) as raw:
            raw.sendall(_LEN.pack(TAG_FLAG | len(payload))
                        + _TAG.pack(7) + payload)
            (word,) = _LEN.unpack(_recv_exact(raw, 4))
            assert word & TAG_FLAG
            (tag,) = _TAG.unpack(_recv_exact(raw, 8))
            assert tag == 7
            reply = msg.decode_message(server.ctx,
                                       _recv_exact(raw, word & ~TAG_FLAG))
    assert isinstance(reply, msg.ErrorReply)
    assert reply.request_id == 9
    echoed = msg.get_trace(reply)
    assert echoed is not None
    assert echoed.trace_id == context.trace_id


def test_untraced_tagged_frames_carry_no_trailer():
    """With observability off, tagged frames stay trailer-free -- the
    async transport adds no per-request trace overhead by default."""
    assert not obs.runtime.enabled
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            reply = channel.request(msg.FetchFileRequest(file_id=404))
            assert isinstance(reply, msg.ErrorReply)
            assert msg.get_trace(reply) is None


def test_client_span_context_rides_the_tagged_framing():
    """An application-level span around a request becomes the parent of
    the server.handle span on the other side of the socket."""
    buf = io.StringIO()
    obs.enable(log_stream=buf)
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            with span("app.batch"):
                channel.request(msg.FetchFileRequest(file_id=404))
    recs = records(buf)
    (app,) = spans_named(recs, "app.batch")
    handles = spans_named(recs, "server.handle")
    assert handles
    assert all(r["trace_id"] == app["trace_id"] for r in handles)


def _recv_exact(sock, count):
    chunks = b""
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        assert chunk, "peer closed mid-frame"
        chunks += chunk
    return chunks

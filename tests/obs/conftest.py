"""Observability tests share process-global state; clean it per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.REGISTRY.reset()
    yield
    obs.disable()
    obs.REGISTRY.reset()

"""Observability tests share process-global state; clean it per test."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.health import HEALTH


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.REGISTRY.reset()
    HEALTH.reset()
    yield
    obs.disable()  # also detaches the span exporter
    obs.REGISTRY.reset()
    HEALTH.reset()

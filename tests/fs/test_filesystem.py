"""The multi-file outsourced file system with grouped control keys."""

import pytest

from repro.core.errors import ReproError, UnknownItemError
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem, directory_group


@pytest.fixture
def fs():
    return OutsourcedFileSystem(rng=DeterministicRandom("fs-test"))


def test_directory_group():
    assert directory_group("hr/roster.db") == "hr"
    assert directory_group("/hr/sub/file") == "hr"
    assert directory_group("flat-file") == ""


def test_create_read_write(fs):
    handle = fs.create_file("docs/a.txt", [b"one", b"two", b"three"])
    assert handle.record_count == 3
    assert handle.size_bytes == 11
    assert handle.read_record(1) == b"two"
    handle.write_record(1, b"TWO!")
    assert handle.read_record(1) == b"TWO!"
    assert handle.read_all() == [b"one", b"TWO!", b"three"]


def test_duplicate_name_rejected(fs):
    fs.create_file("x", [b"a"])
    with pytest.raises(ReproError):
        fs.create_file("x", [b"b"])


def test_open_missing(fs):
    with pytest.raises(UnknownItemError):
        fs.open("ghost")


def test_insert_and_delete_records(fs):
    handle = fs.create_file("d/f", [b"a", b"c"])
    handle.insert_record(1, b"b")
    assert handle.read_all() == [b"a", b"b", b"c"]
    handle.append_record(b"d")
    assert handle.read_all() == [b"a", b"b", b"c", b"d"]
    handle.delete_record(0)
    assert handle.read_all() == [b"b", b"c", b"d"]
    assert handle.record_count == 3


def test_byte_offset_interface(fs):
    handle = fs.create_file("d/f", [b"hello ", b"cruel ", b"world"])
    assert handle.read_at(0, 17) == b"hello cruel world"
    assert handle.read_at(6, 5) == b"cruel"
    located = handle.locate(12)
    assert located.item_id == handle._record.index.item_id_at(2)
    handle.delete_at(7)  # deletes the record containing byte 7 ("cruel ")
    assert handle.read_all() == [b"hello ", b"world"]


def test_read_at_end_of_file(fs):
    handle = fs.create_file("d/f", [b"abc"])
    assert handle.read_at(1, 100) == b"bc"


def test_groups_get_separate_control_keys(fs):
    fs.create_file("hr/a", [b"x"])
    fs.create_file("hr/b", [b"y"])
    fs.create_file("mail/c", [b"z"])
    assert fs.control_key_count() == 2
    assert fs.client_key_bytes() == 32


def test_client_storage_constant_in_file_count(fs):
    for i in range(12):
        fs.create_file(f"bulk/f{i}", [b"data"])
    assert fs.client_key_bytes() == 16  # one group, one control key


def test_delete_file_whole(fs):
    fs.create_file("d/doomed", [b"secret-1", b"secret-2"])
    fs.create_file("d/kept", [b"other"])
    fs.delete_file("d/doomed")
    assert fs.list_files() == ["d/kept"]
    with pytest.raises(UnknownItemError):
        fs.open("d/doomed")
    assert fs.open("d/kept").read_record(0) == b"other"
    with pytest.raises(UnknownItemError):
        fs.delete_file("d/doomed")


def test_delete_record_survives_master_key_rotation(fs):
    handle = fs.create_file("d/f", [b"r%d" % i for i in range(10)])
    for _ in range(4):
        handle.delete_record(0)
    assert handle.read_all() == [b"r%d" % i for i in range(4, 10)]
    handle.write_record(0, b"r4-new")
    assert handle.read_record(0) == b"r4-new"


def test_empty_file_and_grow(fs):
    handle = fs.create_file("d/empty")
    assert handle.record_count == 0
    handle.append_record(b"first")
    assert handle.read_all() == [b"first"]

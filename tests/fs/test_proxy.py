"""The multi-user key proxy (Section V)."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.fs.proxy import ALL_RIGHTS, READ, WRITE, KeyProxy
from repro.fs.proxy import PermissionError_


@pytest.fixture
def proxy():
    fs = OutsourcedFileSystem(rng=DeterministicRandom("proxy-test"))
    fs.create_file("shared/doc", [b"rec-a", b"rec-b"])
    proxy = KeyProxy(fs)
    proxy.grant("reader", "shared/doc", [READ])
    proxy.grant("editor", "shared/doc", [READ, WRITE])
    proxy.grant("admin", "*", list(ALL_RIGHTS))
    return proxy


def test_read_allowed(proxy):
    assert proxy.read_record("reader", "shared/doc", 0) == b"rec-a"
    assert proxy.read_all("reader", "shared/doc") == [b"rec-a", b"rec-b"]


def test_write_denied_for_reader(proxy):
    with pytest.raises(PermissionError_):
        proxy.write_record("reader", "shared/doc", 0, b"nope")
    with pytest.raises(PermissionError_):
        proxy.delete_record("reader", "shared/doc", 0)


def test_editor_can_write_not_delete(proxy):
    proxy.write_record("editor", "shared/doc", 0, b"edited")
    assert proxy.read_record("editor", "shared/doc", 0) == b"edited"
    proxy.append_record("editor", "shared/doc", b"rec-c")
    with pytest.raises(PermissionError_):
        proxy.delete_record("editor", "shared/doc", 0)


def test_wildcard_admin(proxy):
    proxy.delete_record("admin", "shared/doc", 1)
    assert proxy.read_all("admin", "shared/doc") == [b"rec-a"]
    proxy.delete_file("admin", "shared/doc")
    with pytest.raises(Exception):
        proxy.read_all("admin", "shared/doc")


def test_unknown_user_denied(proxy):
    with pytest.raises(PermissionError_):
        proxy.read_record("stranger", "shared/doc", 0)


def test_revoke(proxy):
    proxy.revoke("reader", "shared/doc")
    with pytest.raises(PermissionError_):
        proxy.read_record("reader", "shared/doc", 0)
    proxy.grant("reader", "shared/doc", [READ])
    proxy.revoke("reader")  # revoke everything
    with pytest.raises(PermissionError_):
        proxy.read_record("reader", "shared/doc", 0)


def test_create_under_own_namespace(proxy):
    proxy.create_file("alice", "alice/notes", [b"mine"])
    assert proxy.read_record("alice", "alice/notes", 0) == b"mine"
    with pytest.raises(PermissionError_):
        proxy.create_file("alice", "bob/notes", [b"not-mine"])


def test_admin_creates_anywhere(proxy):
    proxy.create_file("admin", "anywhere/file", [b"x"])
    assert proxy.read_record("admin", "anywhere/file", 0) == b"x"


def test_creator_gets_full_rights(proxy):
    proxy.create_file("alice", "alice/own", [b"a"])
    proxy.write_record("alice", "alice/own", 0, b"b")
    proxy.delete_record("alice", "alice/own", 0)


def test_unknown_right_rejected(proxy):
    with pytest.raises(ValueError):
        proxy.grant("x", "*", ["fly"])

"""Router and fan-out edge cases (tier: fs).

Covers the consistent-hash ring (determinism, coverage, minimal
movement on add/remove), shard isolation at the WAL level (two files on
different shards never share a commit log), and the hard case the ISSUE
names: a single shard crashing mid-``delete_records`` surfaces a typed
per-shard outcome, the other shards' commits stay committed, and the
crashed file recovers exactly-once through the client's deletion
journal after a per-shard WAL replay.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ProtocolError, UnknownItemError
from repro.fs.filesystem import OutsourcedFileSystem
from repro.fs.sharding import (HashRing, ShardFanoutError,
                               ShardRoutingChannel)
from repro.protocol import messages as msg
from repro.server.cluster import ShardCluster
from repro.server.server import CRASH_POINT_BEFORE_APPLY
from repro.server.wal import CommitLog


# ---------------------------------------------------------------------
# The ring
# ---------------------------------------------------------------------

def test_ring_is_deterministic():
    one = HashRing(range(4))
    two = HashRing(range(4))
    for file_id in range(1, 2000, 7):
        assert one.shard_of(file_id) == two.shard_of(file_id)


def test_ring_covers_every_shard():
    ring = HashRing(range(8))
    owners = {ring.shard_of(file_id) for file_id in range(1, 5000)}
    assert owners == set(range(8))


def test_ring_rejects_empty_and_unknown():
    with pytest.raises(ValueError):
        HashRing([])
    ring = HashRing(range(2))
    with pytest.raises(ValueError):
        ring.remove_shard(7)


def test_adding_a_shard_moves_only_keys_to_the_new_shard():
    """Every file id stays resolvable across a rebalance, and the only
    ids whose owner changes are the ones the new shard takes over --
    the consistent-hashing contract (~1/N movement)."""
    file_ids = list(range(1, 4000))
    ring = HashRing(range(4))
    before = ring.assignments(file_ids)
    ring.add_shard(4)
    after = ring.assignments(file_ids)
    moved = [fid for fid in file_ids if before[fid] != after[fid]]
    assert moved, "a 64-vnode shard must take over some keys"
    assert all(after[fid] == 4 for fid in moved)
    # ~1/5 of keys move to the new shard, give or take vnode variance.
    assert len(moved) < len(file_ids) * 0.45


def test_removing_a_shard_moves_only_its_keys():
    file_ids = list(range(1, 4000))
    ring = HashRing(range(5))
    before = ring.assignments(file_ids)
    ring.remove_shard(2)
    after = ring.assignments(file_ids)
    for fid in file_ids:
        if before[fid] == 2:
            assert after[fid] != 2
        else:
            assert after[fid] == before[fid]


def test_ring_cannot_drop_last_shard():
    ring = HashRing([0])
    with pytest.raises(ValueError):
        ring.remove_shard(0)


# ---------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------

def test_router_rejects_message_without_file_id():
    with ShardCluster(2) as cluster:
        with ShardRoutingChannel(cluster.shard_map()) as channel:
            with pytest.raises(ProtocolError):
                channel.request(object())


def _routed_fs(cluster: ShardCluster) -> OutsourcedFileSystem:
    return OutsourcedFileSystem(
        channel=ShardRoutingChannel(cluster.shard_map()))


def _spread_files(fs, cluster, count=10, records=(b"r0", b"r1", b"r2")):
    """Create files until at least two distinct shards hold one."""
    names = []
    for i in range(count):
        name = f"spread-{i}.txt"
        fs.create_file(name, list(records))
        names.append(name)
    by_shard: dict[int, list[str]] = {}
    for name in names:
        by_shard.setdefault(fs.shard_of(name), []).append(name)
    return names, by_shard


def test_files_on_different_shards_never_share_a_wal():
    """Each shard's commit log holds only its ring-assigned file ids --
    the WAL-level isolation the per-shard recovery story relies on."""
    cluster = ShardCluster(3, wal_factory=CommitLog, fresh=True)
    try:
        fs = _routed_fs(cluster)
        _spread_files(fs, cluster)
        seen: dict[int, set[int]] = {}
        for unit in cluster.units:
            log = CommitLog(unit.wal_path)
            payloads = log.records()
            log.close()
            ids = {msg.decode_message(unit.server.ctx, payload).file_id
                   for payload in payloads}
            assert all(cluster.shard_of(fid) == unit.shard_id
                       for fid in ids), (unit.shard_id, ids)
            seen[unit.shard_id] = ids
        shard_ids = sorted(seen)
        for i in shard_ids:
            for j in shard_ids:
                if i < j:
                    assert not (seen[i] & seen[j]), (i, j, seen)
        assert sum(len(ids) for ids in seen.values()) > 0
    finally:
        cluster.stop()


def test_shard_of_unknown_file_raises():
    with ShardCluster(2) as cluster:
        fs = _routed_fs(cluster)
        with pytest.raises(UnknownItemError):
            fs.shard_of("nope.txt")


def test_delete_records_fans_out_and_merges():
    with ShardCluster(4) as cluster:
        fs = _routed_fs(cluster)
        names, by_shard = _spread_files(fs, cluster)
        assert len(by_shard) >= 2, "ring luck: widen _spread_files"
        outcomes = fs.delete_records({name: [0] for name in names})
        committed = sorted(n for o in outcomes.values()
                           for n in o.committed)
        assert committed == sorted(names)
        assert all(o.ok for o in outcomes.values())
        for name in names:
            assert fs.open(name).read_all() == [b"r1", b"r2"]


# ---------------------------------------------------------------------
# Mid-fan-out shard crash + journal recovery
# ---------------------------------------------------------------------

def test_single_shard_crash_mid_fanout_recovers_via_journal():
    """The ISSUE's hard case end to end.

    A shard crashes after WAL-appending a batched deletion commit but
    before applying it.  ``delete_records`` must surface a
    :class:`ShardFanoutError` whose per-shard outcomes separate the
    committed files from the failed one; per-shard WAL replay rebuilds
    the crashed shard (applying the logged commit); and the client's
    journalled ``resume_delete_many`` finishes the deletion exactly
    once -- the server answers the byte-identical resend from its
    replay cache.
    """
    cluster = ShardCluster(3, wal_factory=CommitLog, fresh=True)
    try:
        fs = _routed_fs(cluster)
        names, by_shard = _spread_files(fs, cluster, count=12)
        meta_shard = cluster.shard_of(
            fs.group_manager_of(names[0]).meta_file_id)
        # The crash victim must not host the meta tree (the survivors'
        # master-key rotations still need it), and the survivor must
        # live on a different shard than the victim.
        crash_shard = next(s for s in sorted(by_shard)
                           if s != meta_shard)
        survivor_shard = next(s for s in sorted(by_shard)
                              if s != crash_shard)
        victim = by_shard[crash_shard][0]
        survivor = by_shard[survivor_shard][0]

        cluster.units[crash_shard].server.arm_crash(
            CRASH_POINT_BEFORE_APPLY)
        with pytest.raises(ShardFanoutError) as excinfo:
            fs.delete_records({survivor: [0, 1], victim: [0, 1]})
        error = excinfo.value
        assert error.committed == [survivor]
        assert list(error.failed) == [victim]
        assert "SimulatedCrash" in error.failed[victim]
        outcome = error.outcomes[crash_shard]
        assert not outcome.ok and victim in outcome.failed

        # The survivor's commit is final: per-shard atomicity.
        assert fs.open(survivor).read_all() == [b"r2"]
        # The victim is torn: commit WAL-logged on its shard but not
        # applied, client journal still holding the pending batch.
        assert fs.open(victim).read_all() == [b"r0", b"r1", b"r2"]

        # Per-shard crash recovery: replay ONLY the crashed shard's WAL
        # (siblings keep serving untouched), then resume the deletion
        # from the client's journal.
        cluster.recover_shard(crash_shard)
        fs.open(victim).resume_delete_many([0, 1])
        assert fs.open(victim).read_all() == [b"r2"]
        assert fs.open(survivor).read_all() == [b"r2"]

        # Nothing pending: a second resume has no journal entry.
        with pytest.raises(UnknownItemError):
            fs.open(victim).resume_delete_many([0])
    finally:
        cluster.stop()

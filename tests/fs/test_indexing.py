"""Logical record index and byte-offset resolution."""

import pytest

from repro.fs.indexing import ItemIndex


@pytest.fixture
def index():
    idx = ItemIndex()
    idx.append(10, 100)
    idx.append(11, 50)
    idx.append(12, 0)
    idx.append(13, 25)
    return idx


def test_basic_accessors(index):
    assert len(index) == 4
    assert index.total_size == 175
    assert index.item_id_at(1) == 11
    assert index.size_at(1) == 50
    assert index.position_of(13) == 3
    assert index.records() == [(10, 100), (11, 50), (12, 0), (13, 25)]


def test_locate_boundaries(index):
    assert index.locate(0).item_id == 10
    assert index.locate(99).item_id == 10
    located = index.locate(100)
    assert located.item_id == 11
    assert located.offset_in_item == 0
    assert index.locate(149).item_id == 11
    # Zero-size record 12 can never contain an offset.
    assert index.locate(150).item_id == 13
    assert index.locate(174).item_id == 13


def test_locate_out_of_range(index):
    with pytest.raises(IndexError):
        index.locate(175)
    with pytest.raises(ValueError):
        index.locate(-1)


def test_insert_and_remove(index):
    index.insert(1, 99, 10)
    assert index.item_id_at(1) == 99
    assert index.total_size == 185
    removed = index.remove(1)
    assert removed == (99, 10)
    assert index.total_size == 175


def test_insert_bounds(index):
    with pytest.raises(IndexError):
        index.insert(9, 1, 1)
    index.insert(4, 1, 1)  # appending position is allowed


def test_update_size(index):
    index.update_size(0, 10)
    assert index.total_size == 85
    assert index.locate(10).item_id == 11


def test_negative_sizes_rejected(index):
    with pytest.raises(ValueError):
        index.append(99, -1)
    with pytest.raises(ValueError):
        index.insert(0, 99, -1)
    with pytest.raises(ValueError):
        index.update_size(0, -5)


def test_position_of_missing(index):
    with pytest.raises(KeyError):
        index.position_of(404)

"""Plain-text rendering helpers."""

import pytest

from repro.analysis.render import (format_bytes, format_count, format_seconds,
                                   render_series, render_table)


def test_format_bytes():
    assert format_bytes(16) == "16 B"
    assert format_bytes(1536) == "1.50 KB"
    assert format_bytes(391 * 1024 * 1024) == "391.00 MB"
    assert format_bytes(3 * 1024 ** 4) == "3.00 TB"


def test_format_seconds():
    assert format_seconds(0.24e-3) == "240.0 us"
    assert format_seconds(0.016) == "16.00 ms"
    assert format_seconds(5.5 * 60) == "5.5 min"
    assert format_seconds(2.0) == "2.00 s"


def test_format_count():
    assert format_count(100000) == "100,000"
    assert format_count(1.5) == "1.5"


def test_render_table_alignment():
    table = render_table("Title", ["col-a", "b"],
                         [["x", "1"], ["longer", "22"]])
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert "col-a" in lines[1]
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows aligned


def test_render_table_validates_width():
    with pytest.raises(ValueError):
        render_table("t", ["a", "b"], [["only-one"]])


def test_render_series():
    series = {"delete": {10: 100.0, 100: 200.0}, "access": {10: 50.0}}
    text = render_series("Fig", "n", series)
    assert "delete" in text and "access" in text
    assert "100 B" in text
    assert "-" in text  # missing access@100 rendered as dash

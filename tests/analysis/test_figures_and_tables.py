"""Fast sanity checks on the figure/table drivers (full runs live in
benchmarks/)."""

import pytest

from repro.analysis.figures import (log_growth_ratio, render_figure5,
                                    render_figure6, run_sweep)
from repro.analysis.table2 import measure_individual_key, measure_our_work
from repro.analysis.table3 import exact_comm_ratio, measure_ratios


def test_sweep_small_grid():
    result = run_sweep(grid=[10, 100, 1000], item_size=64)
    for op in ("delete", "insert", "access"):
        assert set(result.comm_bytes[op]) == {10, 100, 1000}
        # Communication grows with n but far slower than linearly.
        assert result.comm_bytes[op][1000] > result.comm_bytes[op][10]
        assert result.comm_bytes[op][1000] < 10 * result.comm_bytes[op][10]
        # Hash counts grow logarithmically too.
        assert result.hash_calls[op][1000] > result.hash_calls[op][10]
    text5 = render_figure5(result)
    text6 = render_figure6(result)
    assert "delete" in text5 and "1,000" in text5
    assert "chain-hash" in text6


def test_delete_dominates_access_in_bytes():
    """Figure 5's ordering: delete > insert > access at every n."""
    result = run_sweep(grid=[100, 1000], item_size=64)
    for n in (100, 1000):
        assert result.comm_bytes["delete"][n] > result.comm_bytes["insert"][n]
        assert result.comm_bytes["insert"][n] > result.comm_bytes["access"][n]


def test_log_growth_ratio():
    log_like = {10: 10.0, 100: 12.0, 1000: 14.0, 10000: 16.0}
    assert log_growth_ratio(log_like) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        log_growth_ratio({10: 1.0, 100: 2.0})


def test_table2_our_work_small():
    row = measure_our_work(1000, item_size=256, samples=3)
    assert row.storage_bytes == 16.0
    assert 200 < row.comm_bytes < 4096
    assert row.comp_seconds > 0


def test_table2_individual_key_scaling():
    row = measure_individual_key(100_000, measured_n=50, item_size=64)
    assert row.storage_bytes == 100_000 * 16
    assert row.comm_bytes < 60


def test_table3_comm_ratio_exact_and_insensitive():
    ratios = [exact_comm_ratio(n) for n in (1000, 10_000, 100_000, 1_000_000)]
    for ratio in ratios:
        assert 0.005 < ratio < 0.03  # ~1.5% with our 3-modulator framing
    assert max(ratios) - min(ratios) < 1e-4


def test_table3_measured_small():
    row = measure_ratios(200, item_size=512)
    assert 0 < row.comm_ratio < 0.25
    assert 0 < row.comp_ratio < 1.0

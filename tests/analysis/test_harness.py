"""The experiment harness: seeded files must behave like dense ones."""

import pytest

from repro.analysis.harness import (build_dense_file, build_seeded_file,
                                    measure_ops)
from repro.crypto.rng import DeterministicRandom


def test_seeded_file_serves_valid_ciphertexts():
    handle = build_seeded_file(32, 128, seed="h1")
    for index in (0, 7, 31):
        data = handle.scheme.access(handle.item_id(index))
        assert len(data) == 128


def test_seeded_file_operations_work():
    handle = build_seeded_file(16, 64, seed="h2")
    handle.scheme.delete(handle.item_id(3))
    new_item = handle.scheme.insert(b"\x07" * 64)
    assert handle.scheme.access(new_item) == b"\x07" * 64
    assert len(handle.scheme.access(handle.item_id(4))) == 64
    with pytest.raises(Exception):
        handle.scheme.access(handle.item_id(3))


@pytest.mark.parametrize("op", ["access", "insert", "delete"])
def test_dense_and_lazy_per_op_costs_are_identical(op):
    """The benchmark-scale substitution must not change what is measured:
    bytes and hash counts depend only on tree depth."""
    lazy = build_seeded_file(64, 96, seed="h-eq")
    dense, _ids = build_dense_file(64, 96, seed="h-eq-d")
    lazy_records = measure_ops(lazy, op, 5, DeterministicRandom("eq")).records
    dense_records = measure_ops(dense, op, 5, DeterministicRandom("eq")).records
    assert [r.overhead_bytes for r in lazy_records] == \
        [r.overhead_bytes for r in dense_records]
    assert [r.hash_calls for r in lazy_records] == \
        [r.hash_calls for r in dense_records]


def test_seeded_file_is_deterministic():
    a = build_seeded_file(8, 32, seed="same")
    b = build_seeded_file(8, 32, seed="same")
    assert a.scheme.access(a.item_id(2)) == b.scheme.access(b.item_id(2))


def test_ciphertexts_stay_valid_across_deletions():
    """Theorem 1 through the lazy store: the callback derives ciphertexts
    from the ORIGINAL key and modulators, which must keep decrypting as
    the tree mutates underneath."""
    handle = build_seeded_file(64, 32, seed="h3")
    rng = DeterministicRandom("kill")
    live = set(range(64))
    for _ in range(20):
        victim = sorted(live)[rng.below(len(live))]
        live.discard(victim)
        handle.scheme.delete(handle.item_id(victim))
    for survivor in sorted(live)[:10]:
        assert len(handle.scheme.access(handle.item_id(survivor))) == 32


def test_item_id_bounds():
    handle = build_seeded_file(4, 16, seed="h4")
    with pytest.raises(IndexError):
        handle.item_id(4)
    with pytest.raises(IndexError):
        handle.item_id(-1)


def test_measure_ops_rejects_unknown_op():
    handle = build_seeded_file(4, 16, seed="h5")
    with pytest.raises(ValueError):
        measure_ops(handle, "explode", 1, DeterministicRandom("x"))

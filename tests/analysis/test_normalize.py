"""Hardware normalisation: our exact counts predict the paper's times."""

import pytest

from repro.analysis.harness import build_seeded_file, measure_ops
from repro.analysis.normalize import (PAPER_CLIENT, predict_delete_seconds,
                                      predict_whole_file_ratio)
from repro.crypto.rng import DeterministicRandom


def test_predicted_delete_time_matches_paper_table2():
    """Paper: 0.24 ms per deletion at n = 10^5 x 4 KB.  Our measured hash
    count, charged with a paper-era hardware profile, must land within an
    order of magnitude of the paper's number.  (Tighter calibration is
    not possible: the paper's Table II delete time and Table III comp
    ratio imply mutually inconsistent per-hash constants, suggesting
    their 0.24 ms includes costs beyond the modelled crypto.)"""
    handle = build_seeded_file(100_000, 4096, seed="norm")
    collector = measure_ops(handle, "delete", 3, DeterministicRandom("norm"))
    mean_hashes = sum(r.hash_calls for r in collector.records) / 3
    predicted = predict_delete_seconds(mean_hashes, 4096)
    assert 0.24e-3 / 10 < predicted < 0.24e-3 * 10


def test_predicted_figure6_shape():
    """Predicted native times across the n sweep stay sub-millisecond and
    grow logarithmically, like the paper's Figure 6 delete curve."""
    predictions = {}
    for n in (100, 10_000, 1_000_000):
        handle = build_seeded_file(n, 4096, seed=f"norm-{n}")
        collector = measure_ops(handle, "delete", 3,
                                DeterministicRandom(f"norm-{n}"))
        hashes = sum(r.hash_calls for r in collector.records) / 3
        predictions[n] = predict_delete_seconds(hashes, 4096)
    assert predictions[100] < predictions[10_000] < predictions[1_000_000]
    assert predictions[1_000_000] < 1e-3  # paper: < 0.3 ms at 10^7
    assert predictions[1_000_000] < 3 * predictions[100]


def test_predicted_whole_file_ratio_matches_paper_table3():
    """Paper: computation ratio ~0.28-0.29%, size-insensitive.  Same
    order-of-magnitude band as above, and exactly size-insensitive."""
    ratios = [predict_whole_file_ratio(n, 4096)
              for n in (1000, 10_000, 100_000, 1_000_000)]
    for ratio in ratios:
        assert 0.0029 / 10 < ratio < 0.0029 * 10
    assert max(ratios) - min(ratios) < 1e-4


def test_profile_arithmetic():
    assert PAPER_CLIENT.seconds(short_hashes=3.4e9 / 1000) == pytest.approx(1.0)
    assert PAPER_CLIENT.seconds() == 0.0

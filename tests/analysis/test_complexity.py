"""The growth-law classifier and a fast end-to-end Table I check."""

import math


from repro.analysis.complexity import (PAPER_CLAIMS, classify_growth,
                                       measure_scaling)

NS = [64, 256, 1024, 4096]


def test_classifies_constant():
    assert classify_growth(NS, [5.0, 5.0, 5.0, 5.0]) == "O(1)"
    assert classify_growth(NS, [5.0, 5.2, 4.9, 5.1]) == "O(1)"  # noisy flat


def test_classifies_logarithmic():
    ys = [3 + 2 * math.log2(n) for n in NS]
    assert classify_growth(NS, ys) == "O(log n)"


def test_classifies_linear():
    ys = [10 + 0.5 * n for n in NS]
    assert classify_growth(NS, ys) == "O(n)"


def test_classifies_noisy_log():
    noise = [1.05, 0.96, 1.02, 0.99]
    ys = [(3 + 2 * math.log2(n)) * f for n, f in zip(NS, noise)]
    assert classify_growth(NS, ys) == "O(log n)"


def test_zero_series_is_constant():
    assert classify_growth(NS, [0.0] * 4) == "O(1)"


def test_measured_byte_scaling_matches_paper_quickly():
    """Byte counts are noise-free, so a small grid suffices in tests; the
    full benchmark re-runs this with timing at larger sizes."""
    grid = [16, 64, 256]
    ours = measure_scaling("our-work", grid)
    individual = measure_scaling("individual-key", grid)
    master = measure_scaling("master-key", grid)

    assert classify_growth(grid, [ours.comm_bytes[n] for n in grid]) == \
        PAPER_CLAIMS["our-work"][1]
    assert classify_growth(grid, [ours.storage_bytes[n] for n in grid]) == "O(1)"
    assert classify_growth(grid, [individual.comm_bytes[n] for n in grid]) == "O(1)"
    assert classify_growth(grid,
                           [individual.storage_bytes[n] for n in grid]) == "O(n)"
    assert classify_growth(grid, [master.comm_bytes[n] for n in grid]) == "O(n)"
    assert classify_growth(grid, [master.storage_bytes[n] for n in grid]) == "O(1)"

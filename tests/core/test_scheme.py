"""LocalScheme end-to-end behaviour over the real protocol."""

import pytest

from repro.core.errors import UnknownItemError
from tests.conftest import make_scheme


def test_full_lifecycle(scheme):
    items = [b"rec-%d" % i for i in range(12)]
    fid, ids = scheme.new_file(items)

    assert scheme.access(fid, ids[0]) == b"rec-0"
    assert scheme.access(fid, ids[11]) == b"rec-11"

    scheme.modify(fid, ids[4], b"rec-4-new")
    assert scheme.access(fid, ids[4]) == b"rec-4-new"

    new_id = scheme.insert(fid, b"inserted")
    assert scheme.access(fid, new_id) == b"inserted"

    scheme.delete(fid, ids[7])
    with pytest.raises(UnknownItemError):
        scheme.access(fid, ids[7])

    data = scheme.fetch_file(fid)
    assert len(data) == 12
    assert data[ids[4]] == b"rec-4-new"
    assert data[new_id] == b"inserted"
    assert ids[7] not in data


def test_empty_file(scheme):
    fid, ids = scheme.new_file([])
    assert ids == []
    assert scheme.fetch_file(fid) == {}
    item = scheme.insert(fid, b"first")
    assert scheme.fetch_file(fid) == {item: b"first"}


def test_delete_everything_then_reuse(scheme):
    fid, ids = scheme.new_file([b"a", b"b", b"c"])
    for item in ids:
        scheme.delete(fid, item)
    assert scheme.fetch_file(fid) == {}
    new = scheme.insert(fid, b"reborn")
    assert scheme.access(fid, new) == b"reborn"


def test_many_files_are_independent(scheme):
    fid1, ids1 = scheme.new_file([b"one-a", b"one-b"])
    fid2, ids2 = scheme.new_file([b"two-a", b"two-b", b"two-c"])
    scheme.delete(fid1, ids1[0])
    assert scheme.fetch_file(fid2) == {ids2[0]: b"two-a", ids2[1]: b"two-b",
                                       ids2[2]: b"two-c"}
    assert scheme.fetch_file(fid1) == {ids1[1]: b"one-b"}


def test_master_key_rotates_on_delete(scheme):
    fid, ids = scheme.new_file([b"a", b"b"])
    key_before = scheme._key(fid)
    scheme.delete(fid, ids[0])
    assert scheme._key(fid) != key_before


def test_metrics_recorded_per_operation(scheme):
    fid, ids = scheme.new_file([b"x"] )
    scheme.access(fid, ids[0])
    scheme.insert(fid, b"y")
    ops = [r.op for r in scheme.metrics.records]
    assert ops == ["outsource", "access", "insert"]
    for record in scheme.metrics.records:
        assert record.bytes_sent > 0
        assert record.bytes_received > 0


def test_soak_random_operations():
    """A longer random workload keeps client and server consistent."""
    scheme = make_scheme("soak")
    import random
    random.seed(7)
    fid, ids = scheme.new_file([b"item-%d" % i for i in range(8)])
    oracle = {item: b"item-%d" % i for i, item in enumerate(ids)}
    for step in range(120):
        action = random.choice(["access", "modify", "insert", "delete"])
        if not oracle:
            action = "insert"
        if action == "access":
            item = random.choice(sorted(oracle))
            assert scheme.access(fid, item) == oracle[item]
        elif action == "modify":
            item = random.choice(sorted(oracle))
            new_value = b"mod-%d" % step
            scheme.modify(fid, item, new_value)
            oracle[item] = new_value
        elif action == "insert":
            value = b"new-%d" % step
            oracle[scheme.insert(fid, value)] = value
        else:
            item = random.choice(sorted(oracle))
            scheme.delete(fid, item)
            del oracle[item]
    assert scheme.fetch_file(fid) == oracle

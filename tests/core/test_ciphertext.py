"""The item codec {m || r, H(m || r)}_k."""

import pytest

from repro.core.ciphertext import ItemCodec
from repro.core.errors import IntegrityError
from repro.core.params import SHA256_PARAMS


@pytest.fixture
def codec(params):
    return ItemCodec(params)


def test_roundtrip(codec, rng):
    key = rng.bytes(20)
    ciphertext = codec.encrypt(key, b"hello world", 42, rng.bytes(8))
    message, item_id = codec.decrypt(key, ciphertext)
    assert message == b"hello world"
    assert item_id == 42


@pytest.mark.parametrize("size", [0, 1, 100, 4096])
def test_sizes(codec, rng, size):
    key = rng.bytes(20)
    data = rng.bytes(size)
    ciphertext = codec.encrypt(key, data, 7, rng.bytes(8))
    assert len(ciphertext) == size + codec.overhead()
    assert codec.decrypt(key, ciphertext) == (data, 7)


def test_wrong_key_rejected(codec, rng):
    ciphertext = codec.encrypt(rng.bytes(20), b"secret", 1, rng.bytes(8))
    with pytest.raises(IntegrityError):
        codec.decrypt(rng.bytes(20), ciphertext)


def test_tampering_rejected(codec, rng):
    key = rng.bytes(20)
    ciphertext = bytearray(codec.encrypt(key, b"secret data", 1, rng.bytes(8)))
    for position in (0, 8, len(ciphertext) // 2, len(ciphertext) - 1):
        tampered = bytearray(ciphertext)
        tampered[position] ^= 0x01
        with pytest.raises(IntegrityError):
            codec.decrypt(key, bytes(tampered))


def test_item_id_is_bound_into_plaintext(codec, rng):
    """Swapping ciphertexts between items is detectable via r."""
    key = rng.bytes(20)
    ct1 = codec.encrypt(key, b"data", 1, rng.bytes(8))
    _msg, recovered = codec.decrypt(key, ct1)
    assert recovered == 1


def test_identical_messages_have_unique_ciphertexts(codec, rng):
    """The global counter r makes equal plaintexts distinct (Section IV-B)."""
    key = rng.bytes(20)
    nonce = rng.bytes(8)
    ct1 = codec.encrypt(key, b"same", 1, nonce)
    ct2 = codec.encrypt(key, b"same", 2, nonce)
    assert ct1 != ct2


def test_fresh_nonce_changes_ciphertext(codec, rng):
    key = rng.bytes(20)
    ct1 = codec.encrypt(key, b"same", 1, rng.bytes(8))
    ct2 = codec.encrypt(key, b"same", 1, rng.bytes(8))
    assert ct1 != ct2
    assert codec.decrypt(key, ct1) == codec.decrypt(key, ct2)


def test_truncated_ciphertext_rejected(codec, rng):
    key = rng.bytes(20)
    ciphertext = codec.encrypt(key, b"x", 1, rng.bytes(8))
    with pytest.raises(IntegrityError):
        codec.decrypt(key, ciphertext[:codec.overhead() - 1])


def test_bad_arguments(codec, rng):
    key = rng.bytes(20)
    with pytest.raises(ValueError):
        codec.encrypt(key, b"x", 1, b"short")
    with pytest.raises(ValueError):
        codec.encrypt(key, b"x", -1, rng.bytes(8))


def test_data_key_extraction(codec):
    assert codec.data_key(b"\x01" * 20) == b"\x01" * 16


def test_sha256_codec(rng):
    codec = ItemCodec(SHA256_PARAMS)
    key = rng.bytes(32)
    ciphertext = codec.encrypt(key, b"payload", 3, rng.bytes(8))
    assert codec.overhead() == 8 + 8 + 32
    assert codec.decrypt(key, ciphertext) == (b"payload", 3)

"""Client-side computations: deltas, balancing, insertion, verification."""

import pytest

from repro.core import ops
from repro.core.errors import DuplicateModulatorError, StructureError
from repro.core.modulated_chain import ChainEngine
from repro.core.tree import ModulationTree, PathView
from repro.crypto.rng import DeterministicRandom

WIDTH = 20


@pytest.fixture
def engine():
    return ChainEngine()


def build(n, seed="ops"):
    return ModulationTree.build_random(list(range(n)), WIDTH,
                                       DeterministicRandom(seed))


def all_keys(engine, tree, master_key):
    return {item: engine.evaluate(master_key,
                                  tree.path_view(tree.slot_of_item(item))
                                  .modulator_list())
            for item in tree.item_ids()}


def run_deletion(engine, tree, master_key, new_key, item, rng):
    """Drive the delete computation + server application directly."""
    slot = tree.slot_of_item(item)
    mt = tree.mt_view(slot)
    balance = tree.balance_view()
    cut_slots, deltas = ops.compute_deltas(engine, master_key, new_key, mt)
    x_s, dest_link, dest_leaf = ops.compute_balance_values(
        engine, new_key, mt, balance, cut_slots, deltas, rng)
    tree.apply_deltas(list(cut_slots), list(deltas))
    tree.delete_leaf(slot, x_s, dest_link, dest_leaf)


# ---------------------------------------------------------------------------
# Theorem 1 at the unit level
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n,victim", [
    (1, 0), (2, 0), (2, 1), (3, 0), (3, 1), (3, 2),
    (5, 0), (5, 4), (5, 3), (8, 2), (13, 7),
])
def test_deletion_preserves_all_other_keys(engine, n, victim, rng):
    tree = build(n, seed=f"t1-{n}-{victim}")
    master_key = rng.bytes(16)
    new_key = rng.bytes(16)
    before = all_keys(engine, tree, master_key)

    run_deletion(engine, tree, master_key, new_key, victim, rng)

    after = all_keys(engine, tree, new_key)
    expected = {item: key for item, key in before.items() if item != victim}
    assert after == expected


def test_deleted_key_is_not_derivable_under_new_key(engine, rng):
    tree = build(6)
    master_key, new_key = rng.bytes(16), rng.bytes(16)
    victim = 2
    slot = tree.slot_of_item(victim)
    old_list = tree.path_view(slot).modulator_list()
    old_key_value = engine.evaluate(master_key, old_list)

    run_deletion(engine, tree, master_key, new_key, victim, rng)

    # Derive with the new key over every current leaf path: none equals
    # the dead key.
    for item in tree.item_ids():
        path = tree.path_view(tree.slot_of_item(item))
        assert engine.evaluate(new_key, path.modulator_list()) != old_key_value
    # Nor does the new key over the *old* modulator list.
    assert engine.evaluate(new_key, old_list) != old_key_value


# ---------------------------------------------------------------------------
# Insertion
# ---------------------------------------------------------------------------

def test_insertion_preserves_existing_keys_and_keys_new_leaf(engine, rng):
    tree = build(5)
    master_key = rng.bytes(16)
    before = all_keys(engine, tree, master_key)

    commit = ops.compute_insertion(engine, master_key, tree.insert_view(), rng)
    tree.insert_leaf(99, commit.t_new_link, commit.t_new_leaf, commit.e_link,
                     commit.e_leaf)

    after = all_keys(engine, tree, master_key)
    assert after[99] == commit.chain_output
    for item, key in before.items():
        assert after[item] == key


def test_insertion_into_empty_tree(engine, rng):
    tree = ModulationTree.build_random([], WIDTH, rng)
    commit = ops.compute_insertion(engine, master_key := rng.bytes(16),
                                   tree.insert_view(), rng)
    assert commit.t_new_link is None and commit.e_link is None
    tree.insert_leaf(1, None, None, None, commit.e_leaf)
    assert all_keys(engine, tree, master_key)[1] == commit.chain_output


def test_repeated_insertions_grow_heap_shape(engine, rng):
    tree = ModulationTree.build_random([], WIDTH, rng)
    master_key = rng.bytes(16)
    expected = {}
    for item in range(1, 12):
        commit = ops.compute_insertion(engine, master_key, tree.insert_view(),
                                       rng)
        tree.insert_leaf(item, commit.t_new_link, commit.t_new_leaf,
                         commit.e_link, commit.e_leaf)
        expected[item] = commit.chain_output
        assert tree.leaf_count == item
    assert all_keys(engine, tree, master_key) == expected


# ---------------------------------------------------------------------------
# Verification / refusal rules
# ---------------------------------------------------------------------------

def test_verify_distinct_modulators(rng):
    values = [rng.bytes(WIDTH) for _ in range(5)]
    ops.verify_distinct_modulators(values)
    with pytest.raises(DuplicateModulatorError):
        ops.verify_distinct_modulators(values + [values[2]])


def test_verify_path_structure_accepts_real_paths():
    tree = build(9)
    for slot in range(9, 18):
        ops.verify_path_structure(tree.path_view(slot))


def test_verify_path_structure_rejects_bad_shapes(rng):
    good = build(5).path_view(9)
    with pytest.raises(StructureError):
        ops.verify_path_structure(PathView((2, 4, 9), good.path_links[1:],
                                           good.leaf_mod))
    with pytest.raises(StructureError):
        ops.verify_path_structure(PathView((1, 3, 9), good.path_links,
                                           good.leaf_mod))
    with pytest.raises(StructureError):
        ops.verify_path_structure(PathView(good.path_slots,
                                           good.path_links[:-1],
                                           good.leaf_mod))


def test_verify_mt_structure_accepts_and_rejects(rng):
    tree = build(6)
    mt = tree.mt_view(8)
    ops.verify_mt_structure(mt)

    bad_cut = list(mt.cut)
    bad_cut[0] = type(bad_cut[0])(slot=bad_cut[0].slot + 2,
                                  link_mod=bad_cut[0].link_mod,
                                  is_leaf=bad_cut[0].is_leaf,
                                  leaf_mod=bad_cut[0].leaf_mod)
    forged = type(mt)(path_slots=mt.path_slots, path_links=mt.path_links,
                      leaf_mod=mt.leaf_mod, cut=tuple(bad_cut))
    with pytest.raises(StructureError):
        ops.verify_mt_structure(forged)

    short = type(mt)(path_slots=mt.path_slots, path_links=mt.path_links,
                     leaf_mod=mt.leaf_mod, cut=mt.cut[:-1])
    with pytest.raises(StructureError):
        ops.verify_mt_structure(short)


# ---------------------------------------------------------------------------
# Whole-file key derivation
# ---------------------------------------------------------------------------

def test_derive_all_keys_matches_per_path(engine, rng):
    tree = build(10)
    master_key = rng.bytes(16)
    n = tree.leaf_count
    links = [None] * (2 * n)
    leaves = [None] * (2 * n)
    for kind, slot, value in tree.iter_modulators():
        (links if kind == "link" else leaves)[slot] = value
    outputs = ops.derive_all_keys(engine, master_key, n, links, leaves)
    for item in tree.item_ids():
        slot = tree.slot_of_item(item)
        expected = engine.evaluate(master_key,
                                   tree.path_view(slot).modulator_list())
        assert outputs[slot] == expected


def test_derive_all_keys_hash_budget(engine, rng):
    """Whole-file derivation is 3n-2 hashes, not n log n."""
    tree = build(32)
    n = tree.leaf_count
    links = [None] * (2 * n)
    leaves = [None] * (2 * n)
    for kind, slot, value in tree.iter_modulators():
        (links if kind == "link" else leaves)[slot] = value
    before = engine.hash_calls
    ops.derive_all_keys(engine, rng.bytes(16), n, links, leaves)
    assert engine.hash_calls - before == 3 * n - 2


def test_derive_all_keys_empty(engine):
    assert ops.derive_all_keys(engine, b"\x00" * 16, 0, [], []) == {}


def test_derive_all_keys_missing_modulator(engine, rng):
    with pytest.raises(StructureError):
        ops.derive_all_keys(engine, rng.bytes(16), 2,
                            [None, None, rng.bytes(WIDTH), None],
                            [None, None, rng.bytes(WIDTH), rng.bytes(WIDTH)])

"""The batched-deletion building blocks: MT(S), union cut, batch moves.

These tests exercise the pure layers (tree slot derivations, the
multi-lane chain sweep, the union-cut deltas, the simulated rebalancing
moves) directly, without client/server plumbing.  The key invariant
throughout: applying the batch to a real tree leaves every surviving
data key bit-identical to what ``k`` sequential single-item deletions
would have produced.
"""

import pytest

from repro.core import ops
from repro.core.errors import StructureError
from repro.core.modulated_chain import ChainEngine
from repro.core.tree import BatchView, ModulationTree
from repro.crypto.rng import DeterministicRandom

WIDTH = 20


def build_tree(n, seed="batch-ops"):
    rng = DeterministicRandom(seed)
    return ModulationTree.build_random(list(range(100, 100 + n)), WIDTH, rng)


def data_key(engine, tree, master_key, item_id):
    view = tree.path_view(tree.slot_of_item(item_id))
    return engine.evaluate(master_key, view.modulator_list())


# ----------------------------------------------------------------------
# Slot derivations
# ----------------------------------------------------------------------

def test_union_path_is_union_of_paths():
    targets = (11, 14, 9)
    expected = set()
    for t in targets:
        expected.update(ModulationTree.path_slots(t))
    assert ModulationTree.union_path_slots(targets) == sorted(expected)


def test_union_cut_generalises_single_cut():
    # For one target the union cut is the classic (n-1)-cut.
    slot = 13
    expected = [s ^ 1 for s in ModulationTree.path_slots(slot)[1:]]
    assert ModulationTree.union_cut_slots((slot,)) == sorted(expected)


def test_union_cut_excludes_on_path_siblings():
    # Siblings 6 and 7: each is on the other's path union, so neither is
    # in the cut; their parent's sibling (2) is.
    assert ModulationTree.union_cut_slots((6, 7)) == [2]


def test_union_cut_partitions_survivors():
    """Every surviving leaf sits below exactly one cut node."""
    n = 16
    targets = (n + 1, n + 4, n + 5, 2 * n - 1)
    cut = ModulationTree.union_cut_slots(targets)
    for leaf in range(n, 2 * n):
        if leaf in targets:
            continue
        covering = [c for c in cut
                    if c in ModulationTree.path_slots(leaf)]
        assert len(covering) == 1, (leaf, covering)


def test_batch_link_slots_cover_paths_band_and_cut():
    n, targets = 16, (17, 21, 30)
    link_slots = ModulationTree.batch_link_slots(n, targets)
    assert link_slots == sorted(set(link_slots))  # sorted, distinct
    need = set(ModulationTree.union_cut_slots(targets))
    for start in (*targets, *ModulationTree.batch_band_slots(n, len(targets))):
        need.update(s for s in ModulationTree.path_slots(start) if s >= 2)
    assert set(link_slots) == need
    # Closed under parents (down to slot 2).
    for slot in link_slots:
        assert slot // 2 < 2 or slot // 2 in need


def test_batch_leaf_mod_slots():
    n, targets = 8, (9, 12)
    slots = ModulationTree.batch_leaf_mod_slots(n, targets)
    band_leaves = [s for s in ModulationTree.batch_band_slots(n, 2)
                   if s >= n]
    assert slots == sorted(set(targets) | set(band_leaves))


def test_batch_view_matches_store():
    tree = build_tree(8)
    targets = (9, 12)
    view = tree.batch_view(targets)
    assert view.n_leaves == 8
    assert view.target_slots == targets
    link_slots = ModulationTree.batch_link_slots(8, targets)
    assert view.links == tuple(tree.store.get_link(s) for s in link_slots)
    leaf_slots = ModulationTree.batch_leaf_mod_slots(8, targets)
    assert view.leaf_mods == tuple(tree.store.get_leaf(s)
                                   for s in leaf_slots)


def test_batch_view_rejects_bad_targets():
    tree = build_tree(8)
    with pytest.raises(StructureError):
        tree.batch_view((9, 9))
    with pytest.raises(StructureError):
        tree.batch_view((3,))  # internal node


# ----------------------------------------------------------------------
# Chain sweep and refusal rules
# ----------------------------------------------------------------------

def test_chain_values_match_scalar_evaluation():
    tree = build_tree(16)
    engine = ChainEngine()
    key = DeterministicRandom("keys").bytes(16)
    targets = (17, 22, 31)
    view = tree.batch_view(targets)
    values = ops.chain_values_for_view(engine, [key], view)[0]
    for slot in ModulationTree.batch_link_slots(16, targets):
        path = ModulationTree.path_slots(slot)
        links = [tree.store.get_link(s) for s in path[1:]]
        assert values[slot] == engine.evaluate(key, links), slot
    outputs = ops.batch_chain_outputs(engine, values, view)
    for slot, output in zip(targets, outputs):
        item = tree.item_of_slot(slot)
        assert output == data_key(engine, tree, key, item)


def test_verify_batch_view_refusal_rules():
    tree = build_tree(8)
    view = tree.batch_view((9, 12))
    ops.verify_batch_view(view)  # honest view passes

    def reject(**overrides):
        fields = dict(n_leaves=view.n_leaves,
                      target_slots=view.target_slots,
                      links=view.links, leaf_mods=view.leaf_mods)
        fields.update(overrides)
        with pytest.raises(Exception):
            ops.verify_batch_view(BatchView(**fields))

    reject(target_slots=())                      # empty batch
    reject(target_slots=(9, 9))                  # duplicate targets
    reject(target_slots=(3, 9))                  # non-leaf target
    reject(links=view.links[:-1])                # wrong link count
    reject(leaf_mods=view.leaf_mods + (b"\x00" * WIDTH,))  # wrong leaf count
    reject(links=(view.links[0],) + view.links[1:-1] + (view.links[0],))


# ----------------------------------------------------------------------
# Deltas and moves against a real tree
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n,positions", [
    (2, (0, 1)),
    (5, (1, 3)),
    (8, (0, 3, 5, 7)),
    (8, (6, 7)),           # targets inside the balance band
    (9, (8,)),             # k == 1 reduces to the classic deletion
    (12, tuple(range(12))),  # full wipe
    (13, (0, 4, 9, 12, 2)),
])
def test_batch_commit_preserves_surviving_keys(n, positions):
    """Apply deltas + moves to a real tree: surviving data keys are
    unchanged (they equal their pre-deletion values, exactly as after
    sequential deletions), targets' slots are gone, shape shrinks."""
    tree = build_tree(n, seed=f"commit-{n}-{positions}")
    engine = ChainEngine()
    rng = DeterministicRandom("commit-keys")
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    items = [100 + p for p in positions]
    survivors = [100 + i for i in range(n) if 100 + i not in items]
    before = {item: data_key(engine, tree, old_key, item)
              for item in survivors}

    targets = tuple(tree.slot_of_item(item) for item in items)
    view = tree.batch_view(targets)
    values_old, values_new = ops.chain_values_for_view(
        engine, [old_key, new_key], view)
    cut_slots, deltas = ops.compute_deltas_multi(view, values_old, values_new)
    assert list(cut_slots) == ModulationTree.union_cut_slots(targets)
    moves = ops.compute_batch_moves(engine, view, cut_slots, deltas,
                                    values_old, values_new, rng)
    assert len(moves) == len(items)

    tree.apply_deltas(list(cut_slots), list(deltas))
    for item, move in zip(items, moves):
        tree.delete_leaf(tree.slot_of_item(item), move.x_s_prime,
                         move.dest_link, move.dest_leaf)

    assert tree.leaf_count == n - len(items)
    for item in survivors:
        assert data_key(engine, tree, new_key, item) == before[item], item
    for item in items:
        assert tree.item_of_slot(1) != item
        with pytest.raises(Exception):
            tree.slot_of_item(item)


def test_batch_equals_sequential_final_tree():
    """Driving delete_leaf with batch-computed moves ends in the same
    item->slot layout as sequential single deletions of the same items
    in the same order."""
    n, positions = 11, (2, 7, 10, 0)
    items = [100 + p for p in positions]

    batch_tree = build_tree(n, seed="eq")
    engine = ChainEngine()
    rng = DeterministicRandom("eq-keys")
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    targets = tuple(batch_tree.slot_of_item(item) for item in items)
    view = batch_tree.batch_view(targets)
    values_old, values_new = ops.chain_values_for_view(
        engine, [old_key, new_key], view)
    cut_slots, deltas = ops.compute_deltas_multi(view, values_old, values_new)
    moves = ops.compute_batch_moves(engine, view, cut_slots, deltas,
                                    values_old, values_new, rng)
    batch_tree.apply_deltas(list(cut_slots), list(deltas))
    for item, move in zip(items, moves):
        batch_tree.delete_leaf(batch_tree.slot_of_item(item), move.x_s_prime,
                               move.dest_link, move.dest_leaf)

    seq_tree = build_tree(n, seed="eq")
    seq_engine = ChainEngine()
    key = old_key
    for item in items:
        next_key = DeterministicRandom(f"seq-{item}").bytes(16)
        slot = seq_tree.slot_of_item(item)
        mt = seq_tree.mt_view(slot)
        cs, ds = ops.compute_deltas(seq_engine, key, next_key, mt)
        balance = seq_tree.balance_view()
        xs, dl, dleaf = ops.compute_balance_values(seq_engine, next_key, mt,
                                                   balance, cs, ds,
                                                   DeterministicRandom(
                                                       f"seq-rng-{item}"))
        seq_tree.apply_deltas(list(cs), list(ds))
        seq_tree.delete_leaf(slot, xs, dl, dleaf)
        key = next_key

    # Same shape and same item placement...
    assert batch_tree.leaf_count == seq_tree.leaf_count
    survivors = [100 + i for i in range(n) if 100 + i not in items]
    for item in survivors:
        assert batch_tree.slot_of_item(item) == seq_tree.slot_of_item(item)
        # ...and identical surviving data keys under each final master key.
        assert data_key(engine, batch_tree, new_key, item) == \
            data_key(seq_engine, seq_tree, key, item)


def test_compute_deltas_single_matches_multi():
    """The micro-opted single-item compute_deltas agrees with the batch
    pipeline at k == 1."""
    tree = build_tree(9, seed="single")
    engine = ChainEngine()
    rng = DeterministicRandom("single-keys")
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    slot = tree.slot_of_item(104)

    mt = tree.mt_view(slot)
    cut_single, deltas_single = ops.compute_deltas(engine, old_key, new_key,
                                                   mt)
    view = tree.batch_view((slot,))
    values_old, values_new = ops.chain_values_for_view(
        engine, [old_key, new_key], view)
    cut_multi, deltas_multi = ops.compute_deltas_multi(view, values_old,
                                                       values_new)
    assert sorted(cut_single) == list(cut_multi)
    by_slot = dict(zip(cut_single, deltas_single))
    assert tuple(by_slot[s] for s in cut_multi) == deltas_multi

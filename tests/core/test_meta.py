"""The two-level meta modulation tree (Section V)."""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import IntegrityError, UnknownItemError
from repro.core.meta import (MetaKeyManager, decode_master_key_record,
                             encode_master_key_record)
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer


@pytest.fixture
def client():
    server = CloudServer()
    return AssuredDeletionClient(LoopbackChannel(server),
                                 rng=DeterministicRandom("meta"),
                                 store_keys=False)


@pytest.fixture
def manager(client):
    manager = MetaKeyManager(client, meta_file_id=0, control_key_name="ctrl")
    manager.initialize()
    return manager


def test_record_codec():
    payload = encode_master_key_record(42, b"\x01" * 16)
    assert decode_master_key_record(payload) == (42, b"\x01" * 16)
    with pytest.raises(IntegrityError):
        decode_master_key_record(payload[:-1])
    with pytest.raises(IntegrityError):
        decode_master_key_record(b"\x00" * 5)


def test_register_and_fetch(manager, client):
    key = b"\xaa" * 16
    manager.register(7, key)
    assert manager.master_key(7) == key
    assert manager.managed_file_ids() == [7]


def test_register_twice_rejected(manager):
    manager.register(7, b"\x01" * 16)
    with pytest.raises(IntegrityError):
        manager.register(7, b"\x02" * 16)


def test_unknown_file(manager):
    with pytest.raises(UnknownItemError):
        manager.master_key(99)
    with pytest.raises(UnknownItemError):
        manager.replace_master_key(99, b"\x00" * 16)
    with pytest.raises(UnknownItemError):
        manager.remove(99)


def test_replace_rotates_control_key(manager, client):
    manager.register(7, b"\x01" * 16)
    control_before = client.keystore.get("ctrl")
    manager.replace_master_key(7, b"\x02" * 16)
    assert manager.master_key(7) == b"\x02" * 16
    assert client.keystore.get("ctrl") != control_before


def test_many_files(manager):
    keys = {}
    for fid in range(20):
        key = bytes([fid]) * 16
        manager.register(fid, key)
        keys[fid] = key
    for fid, key in keys.items():
        assert manager.master_key(fid) == key
    manager.remove(13)
    with pytest.raises(UnknownItemError):
        manager.master_key(13)
    assert manager.master_key(12) == keys[12]


def test_remove_rotates_control_key(manager, client):
    manager.register(1, b"\x01" * 16)
    manager.register(2, b"\x02" * 16)
    before = client.keystore.get("ctrl")
    manager.remove(1)
    assert client.keystore.get("ctrl") != before
    assert manager.master_key(2) == b"\x02" * 16


def test_client_stores_only_the_control_key(manager, client):
    for fid in range(10):
        manager.register(fid, bytes([fid]) * 16)
    assert client.keystore.key_bytes_stored() == 16  # one control key

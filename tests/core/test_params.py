"""Scheme parameter validation."""

import pytest

from repro.core.params import PAPER_PARAMS, SHA256_PARAMS, Params
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256


def test_paper_defaults():
    assert PAPER_PARAMS.chain_hash is Sha1
    assert PAPER_PARAMS.modulator_size == 20
    assert PAPER_PARAMS.master_key_size == 16
    assert PAPER_PARAMS.data_key_size == 16
    assert PAPER_PARAMS.enforce_unique_modulators is True


def test_sha256_variant():
    assert SHA256_PARAMS.chain_hash is Sha256
    assert SHA256_PARAMS.modulator_size == 32


def test_master_key_cannot_exceed_digest():
    with pytest.raises(ValueError):
        Params(master_key_size=21)
    Params(master_key_size=20)  # exactly digest-wide is fine
    with pytest.raises(ValueError):
        Params(master_key_size=0)


def test_data_key_must_be_aes_size():
    with pytest.raises(ValueError):
        Params(data_key_size=17)
    with pytest.raises(ValueError):
        Params(data_key_size=24)  # 24 > SHA-1 digest? no: 24 > 20 -> invalid
    assert Params(chain_hash=Sha256, data_key_size=32).data_key_size == 32


def test_frozen():
    with pytest.raises(AttributeError):
        PAPER_PARAMS.master_key_size = 32

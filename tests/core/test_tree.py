"""Modulation tree structure: slots, views, and structural transactions."""

import pytest

from repro.core.errors import StructureError, UnknownItemError
from repro.core.modstore import LazySeededStore
from repro.core.tree import (ArithmeticItemMap, ItemMap, ModulationTree)
from repro.crypto.rng import DeterministicRandom

WIDTH = 20


def build(n, seed="tree"):
    return ModulationTree.build_random(list(range(100, 100 + n)), WIDTH,
                                       DeterministicRandom(seed))


# ---------------------------------------------------------------------------
# Shape
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13])
def test_heap_shape(n):
    tree = build(n)
    assert tree.leaf_count == n
    for slot in range(1, 2 * n):
        assert tree.is_leaf(slot) == (slot >= n)
    with pytest.raises(StructureError):
        tree.is_leaf(2 * n)
    with pytest.raises(StructureError):
        tree.is_leaf(0)


def test_depth():
    assert build(1).depth() == 0
    assert build(2).depth() == 1
    assert build(4).depth() == 2
    assert build(5).depth() == 3
    assert build(8).depth() == 3


def test_path_slots():
    assert ModulationTree.path_slots(1) == [1]
    assert ModulationTree.path_slots(13) == [1, 3, 6, 13]


def test_item_mapping():
    tree = build(4)
    assert tree.item_ids() == [100, 101, 102, 103]
    assert tree.slot_of_item(100) == 4
    assert tree.item_of_slot(7) == 103
    with pytest.raises(UnknownItemError):
        tree.slot_of_item(999)


def test_modulator_count_and_transfer_size():
    tree = build(6)
    assert tree.modulator_count() == 16  # 2n-2 links + n leaves
    assert tree.transfer_size_bytes() == 16 * WIDTH
    assert sum(1 for _ in tree.iter_modulators()) == 16
    assert build(0).modulator_count() == 0


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------

def test_path_view():
    tree = build(5)
    view = tree.path_view(9)
    assert view.path_slots == (1, 2, 4, 9)
    assert len(view.path_links) == 3
    assert view.leaf_slot == 9
    assert len(view.modulator_list()) == 4
    with pytest.raises(StructureError):
        tree.path_view(2)  # internal slot


def test_mt_view_cut_is_sibling_set():
    tree = build(5)
    mt = tree.mt_view(9)
    assert [entry.slot for entry in mt.cut] == [3, 5, 8]
    assert mt.cut[0].is_leaf is False  # slot 3 internal when n=5
    assert mt.cut[1].is_leaf is True   # slot 5 is a leaf when n=5
    assert mt.cut[2].is_leaf is True
    assert mt.cut[2].leaf_mod is not None
    # 3 path links + leaf of k + 3 cut links + 2 cut leaf modulators.
    assert len(mt.all_modulators()) == 9


def test_balance_view():
    tree = build(5)
    balance = tree.balance_view()
    assert balance.t_path.leaf_slot == 9
    assert balance.s_slot == 8
    assert build(1).balance_view() is None
    assert build(0).balance_view() is None


def test_insert_view():
    assert build(0).insert_view() is None
    tree = build(5)
    view = tree.insert_view()
    assert view.leaf_slot == 5


# ---------------------------------------------------------------------------
# Mutations
# ---------------------------------------------------------------------------

def test_apply_deltas_internal_and_leaf(rng):
    tree = build(5)
    mt = tree.mt_view(9)
    deltas = [rng.bytes(WIDTH) for _ in mt.cut]
    before = {(kind, slot): value for kind, slot, value in tree.iter_modulators()}
    log = tree.apply_deltas([entry.slot for entry in mt.cut], deltas)
    # Internal cut nodes: both child links XORed; leaf cut node: leaf mod.
    changed = {(kind, slot) for kind, slot, _old, _new in log}
    assert ("link", 6) in changed and ("link", 7) in changed  # children of 3
    assert ("leaf", 8) in changed  # leaf cut node
    for kind, slot, old, new in log:
        assert before[(kind, slot)] == old
        assert old != new


def test_apply_deltas_length_mismatch(rng):
    tree = build(3)
    with pytest.raises(StructureError):
        tree.apply_deltas([2], [])


def test_rollback_restores_values(rng):
    tree = build(5)
    before = list(tree.iter_modulators())
    mt = tree.mt_view(9)
    log = tree.apply_deltas([entry.slot for entry in mt.cut],
                            [rng.bytes(WIDTH) for _ in mt.cut])
    tree.rollback(log)
    assert list(tree.iter_modulators()) == before


def test_delete_only_leaf():
    tree = build(1)
    log = tree.delete_leaf(1, None, None, None)
    assert tree.leaf_count == 0
    assert tree.item_ids() == []
    assert log[0][:2] == ("leaf", 1)


def test_delete_last_leaf_k_equals_t(rng):
    tree = build(3)  # leaves 3,4,5; t=5, s=4, p=2
    x_s = rng.bytes(WIDTH)
    tree.delete_leaf(5, x_s, None, None)
    assert tree.leaf_count == 2
    assert tree.store.get_leaf(2) == x_s
    assert tree.item_ids() == [101, 100]  # slot order: 101 at 2, 100 at 3
    assert tree.slot_of_item(101) == 2  # s moved to parent slot


def test_delete_sibling_of_last_leaf_k_equals_s(rng):
    tree = build(3)  # delete slot 4 (item 101); t=5 (item 102) -> slot 2
    x_s, dest_leaf = rng.bytes(WIDTH), rng.bytes(WIDTH)
    tree.delete_leaf(4, x_s, None, dest_leaf)
    assert tree.leaf_count == 2
    assert tree.item_ids() == [102, 100]  # slot order: 102 at 2, 100 at 3
    assert tree.slot_of_item(102) == 2
    assert tree.store.get_leaf(2) == dest_leaf


def test_delete_general_leaf(rng):
    tree = build(5)  # delete slot 5 (item 100); t=9 (item 104) -> slot 5
    x_s, dest_link, dest_leaf = (rng.bytes(WIDTH) for _ in range(3))
    tree.delete_leaf(5, x_s, dest_link, dest_leaf)
    assert tree.leaf_count == 4
    assert tree.slot_of_item(104) == 5
    assert tree.store.get_link(5) == dest_link
    assert tree.store.get_leaf(5) == dest_leaf
    assert sorted(tree.item_ids()) == [101, 102, 103, 104]


def test_delete_to_root_leaf(rng):
    tree = build(2)  # delete slot 2 (k==s); t=3 moves to root
    dest_leaf = rng.bytes(WIDTH)
    tree.delete_leaf(2, rng.bytes(WIDTH), None, dest_leaf)
    assert tree.leaf_count == 1
    assert tree.slot_of_item(101) == 1
    assert tree.store.get_leaf(1) == dest_leaf


def test_delete_requires_balance_values(rng):
    tree = build(3)
    with pytest.raises(StructureError):
        tree.delete_leaf(4, None, None, None)  # x_s' missing
    with pytest.raises(StructureError):
        tree.delete_leaf(4, rng.bytes(WIDTH), None, None)  # dest_leaf missing


def test_delete_general_leaf_with_fresh_link_is_legal(rng):
    tree = build(3)
    tree.delete_leaf(3, rng.bytes(WIDTH), rng.bytes(WIDTH), rng.bytes(WIDTH))
    assert tree.leaf_count == 2


def test_insert_into_empty(rng):
    tree = ModulationTree.build_random([], WIDTH, rng)
    e_leaf = rng.bytes(WIDTH)
    tree.insert_leaf(7, None, None, None, e_leaf)
    assert tree.leaf_count == 1
    assert tree.slot_of_item(7) == 1
    assert tree.store.get_leaf(1) == e_leaf


def test_insert_splits_first_leaf(rng):
    tree = build(3)
    values = [rng.bytes(WIDTH) for _ in range(4)]
    tree.insert_leaf(200, *values)
    assert tree.leaf_count == 4
    assert tree.slot_of_item(100) == 6  # old slot-3 item moved to 2n
    assert tree.slot_of_item(200) == 7
    assert tree.store.get_link(6) == values[0]
    assert tree.store.get_leaf(6) == values[1]
    assert tree.store.get_link(7) == values[2]
    assert tree.store.get_leaf(7) == values[3]


def test_insert_requires_split_values(rng):
    tree = build(2)
    with pytest.raises(StructureError):
        tree.insert_leaf(200, None, None, None, rng.bytes(WIDTH))


def test_insert_duplicate_item_id(rng):
    tree = build(2)
    with pytest.raises(StructureError):
        tree.insert_leaf(100, rng.bytes(WIDTH), rng.bytes(WIDTH),
                         rng.bytes(WIDTH), rng.bytes(WIDTH))


def test_delete_non_leaf_rejected(rng):
    tree = build(4)
    with pytest.raises(StructureError):
        tree.delete_leaf(2, rng.bytes(WIDTH), None, None)


# ---------------------------------------------------------------------------
# Item maps
# ---------------------------------------------------------------------------

def test_item_map_basics():
    mapping = ItemMap()
    mapping.set(10, 4)
    assert mapping.slot_of(10) == 4
    assert mapping.item_at(4) == 10
    mapping.move(10, 7)
    assert mapping.slot_of(10) == 7
    assert mapping.item_at(4) is None
    mapping.remove(10)
    assert mapping.slot_of(10) is None
    assert not mapping.contains(10)


def test_arithmetic_map_natural_layout():
    mapping = ArithmeticItemMap(base_item_id=100, n0=8)
    assert mapping.slot_of(100) == 8
    assert mapping.slot_of(107) == 15
    assert mapping.slot_of(108) is None
    assert mapping.item_at(8) == 100
    assert mapping.item_at(15) == 107
    assert mapping.item_at(16) is None
    assert mapping.contains(103)


def test_arithmetic_map_overrides():
    mapping = ArithmeticItemMap(base_item_id=100, n0=8)
    mapping.move(107, 7)  # balancing move into the collapsed parent slot
    assert mapping.slot_of(107) == 7
    assert mapping.item_at(15) is None
    assert mapping.item_at(7) == 107
    mapping.remove(103)
    assert mapping.slot_of(103) is None
    assert mapping.item_at(11) is None
    mapping.set(500, 11)
    assert mapping.item_at(11) == 500
    assert mapping.slot_of(500) == 11


def test_adopt_arithmetic_equivalent_to_adopt():
    rng_a = DeterministicRandom("adopt")
    store = LazySeededStore(WIDTH, b"adopt")
    tree = ModulationTree.adopt_arithmetic(store, 6, base_item_id=100)
    assert tree.leaf_count == 6
    assert tree.slot_of_item(102) == 8
    assert tree.item_ids() == [100, 101, 102, 103, 104, 105]


def test_adopt_validates_counts():
    store = LazySeededStore(WIDTH, b"x")
    with pytest.raises(ValueError):
        ModulationTree.adopt(store, 3, [1, 2])

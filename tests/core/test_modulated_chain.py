"""The modulated hash chain: Eq. 1/2, Lemma 1, and the releaf identity."""

import pytest

from repro.core.modulated_chain import (ChainEngine, releaf_modulator,
                                        rewrite_delta, rewrite_modulator,
                                        xor_bytes)
from repro.crypto.sha256 import Sha256


@pytest.fixture
def engine():
    return ChainEngine()


def mods(rng, count, width=20):
    return [rng.bytes(width) for _ in range(count)]


def test_empty_list_returns_padded_key(engine):
    key = b"\x01" * 16
    assert engine.evaluate(key, []) == key + b"\x00" * 4


def test_recursive_definition_eq2(engine, rng):
    """F(K, M^(i)) = H(F(K, M^(i-1)) xor x_i)."""
    key = rng.bytes(16)
    modulators = mods(rng, 6)
    value = engine.pad_key(key)
    for i, modulator in enumerate(modulators, start=1):
        value = engine.h(xor_bytes(value, modulator))
        assert value == engine.evaluate(key, modulators[:i])


def test_prefix_values_match_evaluate(engine, rng):
    key = rng.bytes(16)
    modulators = mods(rng, 8)
    prefixes = engine.prefix_values(key, modulators)
    assert len(prefixes) == 9
    for i, value in enumerate(prefixes):
        assert value == engine.evaluate(key, modulators[:i])


@pytest.mark.parametrize("length", [1, 2, 5, 20])
@pytest.mark.parametrize("index_from_end", [0, 1])
def test_lemma1_single_modulator_rewrite(engine, length, index_from_end, rng):
    """Changing K -> K' plus rewriting one x_i keeps F unchanged (Eq. 4)."""
    if index_from_end >= length:
        pytest.skip("index beyond list")
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    modulators = mods(rng, length)
    index = length - index_from_end  # 1-based

    rewritten = list(modulators)
    rewritten[index - 1] = rewrite_modulator(engine, old_key, new_key,
                                             modulators, index)
    assert engine.evaluate(new_key, rewritten) == \
        engine.evaluate(old_key, modulators)


def test_lemma1_without_rewrite_changes_output(engine, rng):
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    modulators = mods(rng, 4)
    assert engine.evaluate(new_key, modulators) != \
        engine.evaluate(old_key, modulators)


def test_rewrite_delta_is_the_rewrite_mask(engine, rng):
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    modulators = mods(rng, 5)
    index = 3
    delta = rewrite_delta(engine, old_key, new_key, modulators[:index - 1])
    manual = xor_bytes(modulators[index - 1], delta)
    assert manual == rewrite_modulator(engine, old_key, new_key, modulators,
                                       index)


def test_releaf_modulator_identity(engine, rng):
    """H(new_prefix xor x') == H(old_prefix xor x)."""
    old_prefix, new_prefix = rng.bytes(20), rng.bytes(20)
    old_leaf = rng.bytes(20)
    new_leaf = releaf_modulator(new_prefix, old_prefix, old_leaf)
    assert engine.h(xor_bytes(new_prefix, new_leaf)) == \
        engine.h(xor_bytes(old_prefix, old_leaf))


def test_hash_call_counting(engine, rng):
    before = engine.hash_calls
    engine.evaluate(rng.bytes(16), mods(rng, 7))
    assert engine.hash_calls - before == 7


def test_rewrite_modulator_index_bounds(engine, rng):
    modulators = mods(rng, 3)
    for index in (0, 4):
        with pytest.raises(IndexError):
            rewrite_modulator(engine, b"\x00" * 16, b"\x01" * 16, modulators,
                              index)


def test_xor_bytes_length_mismatch():
    with pytest.raises(ValueError):
        xor_bytes(b"\x00" * 3, b"\x00" * 4)


def test_pad_key_rejects_oversized(engine):
    with pytest.raises(ValueError):
        engine.pad_key(b"\x00" * 21)


def _lane_calls(monkeypatch):
    """Record calls to the vectorised SHA-1 backend."""
    from repro.crypto import bulk_hash
    calls = []
    original = bulk_hash.sha1_many

    def recording(blocks):
        calls.append(len(blocks))
        return original(blocks)

    monkeypatch.setattr(bulk_hash, "sha1_many", recording)
    return calls


def test_step_many_matches_scalar_steps(engine, rng):
    values = [rng.bytes(20) for _ in range(40)]
    modulators = mods(rng, 40)
    expected = [engine.step(v, x) for v, x in zip(values, modulators)]
    assert engine.step_many(values, modulators) == expected


def test_step_many_vectorizes_sha1_subclass(monkeypatch, rng):
    """The dispatch is a capability check, not a name check: a subclass
    (or an alias bound to a different name) of Sha1 still rides the numpy
    lanes."""
    from repro.core.modulated_chain import ChainEngine as CE
    from repro.crypto.sha1 import Sha1

    class TunedSha1(Sha1):
        pass

    calls = _lane_calls(monkeypatch)
    subclassed = CE(TunedSha1)
    aliased_factory = Sha1  # an alias whose __name__ is still "Sha1"
    aliased = CE(aliased_factory)
    values = [rng.bytes(20) for _ in range(32)]
    modulators = mods(rng, 32)
    expected = CE().step_many(list(values), list(modulators))
    assert subclassed.step_many(values, modulators) == expected
    assert aliased.step_many(values, modulators) == expected
    assert len(calls) >= 2  # both engines vectorised


def test_step_many_scalar_fallbacks(monkeypatch, rng):
    """Non-SHA-1 factories and small batches stay on the scalar path."""
    calls = _lane_calls(monkeypatch)
    from repro.core.modulated_chain import ChainEngine as CE
    sha256 = CE(Sha256)
    values = [rng.bytes(32) for _ in range(32)]
    sha256.step_many(values, [rng.bytes(32) for _ in range(32)])
    small = CE()
    small.step_many([rng.bytes(20)] * 2, [rng.bytes(20)] * 2)
    assert calls == []


def test_sha256_engine(rng):
    engine = ChainEngine(Sha256)
    assert engine.digest_size == 32
    modulators = mods(rng, 3, width=32)
    old_key, new_key = rng.bytes(16), rng.bytes(16)
    rewritten = list(modulators)
    rewritten[1] = rewrite_modulator(engine, old_key, new_key, modulators, 2)
    assert engine.evaluate(new_key, rewritten) == \
        engine.evaluate(old_key, modulators)

"""Modulator store backends: dense, lazy, and their shared contract."""

import pytest

from repro.core.modstore import DenseModulatorStore, LazySeededStore
from repro.crypto.rng import DeterministicRandom


@pytest.fixture(params=["dense", "lazy"])
def store(request):
    if request.param == "dense":
        return DenseModulatorStore(20)
    return LazySeededStore(20, b"store-seed")


def test_set_get_roundtrip(store):
    store.set_link(5, b"L" * 20)
    store.set_leaf(5, b"F" * 20)
    assert store.get_link(5) == b"L" * 20
    assert store.get_leaf(5) == b"F" * 20


def test_overwrite(store):
    store.set_link(2, b"a" * 20)
    store.set_link(2, b"b" * 20)
    assert store.get_link(2) == b"b" * 20


def test_width_validation(store):
    for bad in (b"", b"x" * 19, b"x" * 21):
        with pytest.raises(ValueError):
            store.set_link(1, bad)
        with pytest.raises(ValueError):
            store.set_leaf(1, bad)


def test_dense_missing_slot_raises():
    store = DenseModulatorStore(20)
    with pytest.raises(KeyError):
        store.get_link(3)
    with pytest.raises(KeyError):
        store.get_leaf(3)


def test_dense_bulk_fill_matches_sequential():
    rng_a = DeterministicRandom("fill")
    rng_b = DeterministicRandom("fill")
    bulk = DenseModulatorStore(20)
    bulk.bulk_fill(rng_a, link_slots=range(2, 10), leaf_slots=range(5, 10))

    manual = DenseModulatorStore(20)
    block = rng_b.bytes(8 * 20)
    for i, slot in enumerate(range(2, 10)):
        manual.set_link(slot, block[i * 20:(i + 1) * 20])
    block = rng_b.bytes(5 * 20)
    for i, slot in enumerate(range(5, 10)):
        manual.set_leaf(slot, block[i * 20:(i + 1) * 20])

    for slot in range(2, 10):
        assert bulk.get_link(slot) == manual.get_link(slot)
    for slot in range(5, 10):
        assert bulk.get_leaf(slot) == manual.get_leaf(slot)


def test_lazy_derivation_is_deterministic():
    a = LazySeededStore(20, b"seed")
    b = LazySeededStore(20, b"seed")
    assert a.get_link(12345) == b.get_link(12345)
    assert a.get_leaf(12345) == b.get_leaf(12345)
    assert a.get_link(12345) != a.get_leaf(12345)
    assert a.get_link(1) != a.get_link(2)


def test_lazy_different_seeds_differ():
    assert LazySeededStore(20, b"s1").get_link(7) != \
        LazySeededStore(20, b"s2").get_link(7)


def test_lazy_overlay_shadows_derivation():
    store = LazySeededStore(20, b"seed")
    derived = store.get_link(9)
    store.set_link(9, b"X" * 20)
    assert store.get_link(9) == b"X" * 20
    assert store.get_link(9) != derived
    assert store.overlay_size == 1


def test_lazy_wide_modulators():
    store = LazySeededStore(32, b"seed")
    assert len(store.get_link(1)) == 32
    with pytest.raises(ValueError):
        LazySeededStore(33, b"seed")


def test_width_must_be_positive():
    with pytest.raises(ValueError):
        DenseModulatorStore(0)

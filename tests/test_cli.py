"""The repro-vault command-line interface."""

import subprocess
import sys



def vault(tmp_path, *args, stdin=""):
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli",
         "--server-dir", str(tmp_path / "server")] + list(args),
        input=stdin, capture_output=True, text=True, timeout=120)
    return result


def test_full_workflow(tmp_path):
    assert vault(tmp_path, "init").returncode == 0

    put = vault(tmp_path, "put", "hr/roster",
                stdin="alice,eng\nbob,sales\ncarol,hr\n")
    assert put.returncode == 0
    assert "3 records" in put.stdout

    ls = vault(tmp_path, "ls")
    assert "hr/roster" in ls.stdout

    cat = vault(tmp_path, "cat", "hr/roster")
    assert cat.stdout.splitlines() == ["alice,eng", "bob,sales", "carol,hr"]

    get = vault(tmp_path, "get", "hr/roster", "1")
    assert get.stdout.strip() == "bob,sales"

    assert vault(tmp_path, "set", "hr/roster", "1", "bob,marketing").returncode == 0
    assert vault(tmp_path, "get", "hr/roster", "1").stdout.strip() == \
        "bob,marketing"

    assert vault(tmp_path, "add", "hr/roster", "dave,legal").returncode == 0

    rm = vault(tmp_path, "rm", "hr/roster", "0")
    assert rm.returncode == 0
    assert "assuredly deleted" in rm.stdout
    cat = vault(tmp_path, "cat", "hr/roster")
    assert cat.stdout.splitlines() == ["bob,marketing", "carol,hr",
                                       "dave,legal"]

    stats = vault(tmp_path, "stats")
    assert '"files": 1' in stats.stdout
    assert '"control_keys": 1' in stats.stdout

    drop = vault(tmp_path, "drop", "hr/roster")
    assert drop.returncode == 0
    assert vault(tmp_path, "ls").stdout.strip() == ""


def test_errors_are_clean(tmp_path):
    missing = vault(tmp_path, "ls")
    assert missing.returncode == 1
    assert "init" in missing.stderr

    vault(tmp_path, "init")
    bad = vault(tmp_path, "cat", "ghost")
    assert bad.returncode == 1


def test_put_replaces_assuredly(tmp_path):
    vault(tmp_path, "init")
    vault(tmp_path, "put", "f", stdin="v1\n")
    vault(tmp_path, "put", "f", stdin="v2\n")
    assert vault(tmp_path, "cat", "f").stdout.strip() == "v2"


def test_stress_subcommand(tmp_path):
    import json

    run = vault(tmp_path, "stress", "--seed", "cli-test", "--workers", "2",
                "--ops", "6")
    assert run.returncode == 0, run.stderr
    report = json.loads(run.stdout)
    assert report["seed"] == "cli-test"
    assert report["invariants"] == [
        "version-accounting", "surviving-data-decrypts",
        "cross-shard-placement", "theorem2-deleted-unrecoverable",
        "wal-replay-reproduces-state", "audit-chain-matches-history"]

    again = vault(tmp_path, "stress", "--seed", "cli-test", "--workers", "2",
                  "--ops", "6")
    assert json.loads(again.stdout)["ops"] == report["ops"]


def test_serve_rejects_bad_max_conns(tmp_path):
    vault(tmp_path, "init")
    bad = vault(tmp_path, "serve", "--max-conns", "0")
    assert bad.returncode != 0

"""HKDF against the RFC 5869 test vectors."""

import pytest

from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.sha256 import Sha256


def test_rfc5869_case_1():
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm, Sha256)
    assert prk.hex() == ("077709362c2e32df0ddc3f0dc47bba63"
                         "90b6c73bb50f9c3122ec844ad7c2b3e5")
    okm = hkdf_expand(prk, info, 42, Sha256)
    assert okm.hex() == ("3cb25f25faacd57a90434f64d0362f2a"
                         "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
                         "34007208d5b887185865")


def test_rfc5869_case_2_long_inputs():
    ikm = bytes(range(0x00, 0x50))
    salt = bytes(range(0x60, 0xB0))
    info = bytes(range(0xB0, 0x100))
    okm = hkdf(ikm, salt=salt, info=info, length=82, hash_factory=Sha256)
    assert okm.hex() == ("b11e398dc80327a1c8e7f78c596a4934"
                         "4f012eda2d4efad8a050cc4c19afa97c"
                         "59045a99cac7827271cb41c65e590e09"
                         "da3275600c2f09b8367793a9aca3db71"
                         "cc30c58179ec3e87c14c01d5c1f3434f"
                         "1d87")


def test_rfc5869_case_3_empty_salt_and_info():
    ikm = bytes.fromhex("0b" * 22)
    okm = hkdf(ikm, salt=b"", info=b"", length=42, hash_factory=Sha256)
    assert okm.hex() == ("8da4e775a563c18f715f802a063c5a31"
                         "b8a11f5c5ee1879ec3454e5f3c738d2d"
                         "9d201395faa4b61a96c8")


def test_output_length_is_exact():
    for length in (1, 31, 32, 33, 64, 100):
        assert len(hkdf(b"ikm", length=length)) == length


def test_rejects_bad_lengths():
    with pytest.raises(ValueError):
        hkdf(b"ikm", length=0)
    with pytest.raises(ValueError):
        hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)


def test_deterministic():
    assert hkdf(b"ikm", info=b"a") == hkdf(b"ikm", info=b"a")
    assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")

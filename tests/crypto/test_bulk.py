"""The vectorised AES-CTR engine against the scalar reference."""

import pytest

from repro.crypto.aes import AES
from repro.crypto.bulk import ctr_transform, keystream
from repro.crypto.modes import aes_ctr_scalar


@pytest.mark.parametrize("key_size", [16, 24, 32])
@pytest.mark.parametrize("size", [1, 16, 17, 160, 4096, 10_000])
def test_matches_scalar_reference(key_size, size, rng):
    key, nonce = rng.bytes(key_size), rng.bytes(8)
    data = rng.bytes(size)
    assert ctr_transform(key, nonce, data) == aes_ctr_scalar(key, nonce, data)


def test_keystream_blocks_are_ecb_of_counter_blocks(rng):
    key, nonce = rng.bytes(16), rng.bytes(8)
    cipher = AES(key)
    stream = keystream(key, nonce, 5, initial_counter=1000)
    for i in range(5):
        counter_block = nonce + (1000 + i).to_bytes(8, "big")
        assert stream[16 * i:16 * i + 16] == cipher.encrypt_block(counter_block)


def test_counter_crosses_32_bit_boundary(rng):
    """The 64-bit counter must not wrap at 2^32 (hi word increments)."""
    key, nonce = rng.bytes(16), rng.bytes(8)
    boundary = (1 << 32) - 2
    stream = keystream(key, nonce, 4, initial_counter=boundary)
    cipher = AES(key)
    for i in range(4):
        counter_block = nonce + (boundary + i).to_bytes(8, "big")
        assert stream[16 * i:16 * i + 16] == cipher.encrypt_block(counter_block)


def test_empty_input():
    assert ctr_transform(b"\x00" * 16, b"\x00" * 8, b"") == b""
    assert keystream(b"\x00" * 16, b"\x00" * 8, 0) == b""


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        keystream(b"\x00" * 16, b"\x00" * 7, 1)
    with pytest.raises(ValueError):
        keystream(b"\x00" * 16, b"\x00" * 8, -1)


def test_transform_is_involution(rng):
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(1000)
    assert ctr_transform(key, nonce, ctr_transform(key, nonce, data)) == data

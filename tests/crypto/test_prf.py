"""The master-key baseline's PRF."""

import pytest

from repro.crypto.prf import prf
from repro.crypto.sha256 import Sha256


def test_deterministic():
    assert prf(b"key", 5) == prf(b"key", 5)


def test_distinct_indices_give_distinct_keys():
    outputs = {prf(b"key", i) for i in range(100)}
    assert len(outputs) == 100


def test_distinct_keys_give_distinct_outputs():
    assert prf(b"key-a", 1) != prf(b"key-b", 1)


def test_lengths():
    assert len(prf(b"key", 0)) == 16
    assert len(prf(b"key", 0, length=20)) == 20
    long = prf(b"key", 0, length=45)
    assert len(long) == 45
    # Extension must be prefix-consistent: same index, longer request.
    assert long[:16] == prf(b"key", 0, length=16)


def test_alternative_hash():
    assert len(prf(b"key", 3, length=32, hash_factory=Sha256)) == 32
    assert prf(b"key", 3, hash_factory=Sha256) != prf(b"key", 3)


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        prf(b"key", -1)
    with pytest.raises(ValueError):
        prf(b"key", 0, length=0)

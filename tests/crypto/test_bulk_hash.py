"""Vectorised SHA-1 batching against hashlib and the scalar path."""

import hashlib

import pytest

from repro.crypto.bulk_hash import MIN_BATCH, sha1_many, xor_many
from repro.crypto.prf import prf, prf_many


@pytest.mark.parametrize("count", [0, 1, 15, 16, 17, 100, 1000])
def test_equal_length_batches_match_hashlib(count, rng):
    messages = [rng.bytes(40) for _ in range(count)]
    assert sha1_many(messages) == [hashlib.sha1(m).digest() for m in messages]


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 119, 120,
                                    128, 4096])
def test_padding_boundaries(length, rng):
    messages = [rng.bytes(length) for _ in range(20)]
    assert sha1_many(messages) == [hashlib.sha1(m).digest() for m in messages]


def test_mixed_lengths(rng):
    messages = ([rng.bytes(20) for _ in range(30)]
                + [rng.bytes(100) for _ in range(30)]
                + [b"", b"x", rng.bytes(4104)])
    rng.shuffle(messages)
    assert sha1_many(messages) == [hashlib.sha1(m).digest() for m in messages]


def test_small_batches_use_scalar_path(rng):
    messages = [rng.bytes(32) for _ in range(MIN_BATCH - 1)]
    assert sha1_many(messages) == [hashlib.sha1(m).digest() for m in messages]


def test_xor_many(rng):
    a = [rng.bytes(20) for _ in range(50)]
    b = [rng.bytes(20) for _ in range(50)]
    expected = [bytes(x ^ y for x, y in zip(p, q)) for p, q in zip(a, b)]
    assert xor_many(a, b) == expected
    assert xor_many([], []) == []
    with pytest.raises(ValueError):
        xor_many(a, b[:-1])
    with pytest.raises(ValueError):
        xor_many([b"\x00" * 20], [b"\x00" * 19])


def test_prf_many_matches_scalar():
    key = b"k" * 16
    indices = list(range(100))
    batched = prf_many(key, indices, length=20)
    assert batched == [prf(key, i, length=20) for i in indices]


def test_prf_many_long_key_and_small_batches():
    key = b"K" * 100  # longer than the block size: pre-hashed
    indices = [5, 6, 7]
    assert prf_many(key, indices) == [prf(key, i) for i in indices]
    indices = list(range(40))
    assert prf_many(key, indices, length=16) == \
        [prf(key, i, length=16) for i in indices]


def test_step_many_matches_step(rng):
    from repro.core.modulated_chain import ChainEngine
    engine = ChainEngine()
    values = [rng.bytes(20) for _ in range(64)]
    modulators = [rng.bytes(20) for _ in range(64)]
    before = engine.hash_calls
    batched = engine.step_many(values, modulators)
    assert engine.hash_calls - before == 64
    assert batched == [ChainEngine().step(v, m)
                       for v, m in zip(values, modulators)]
    with pytest.raises(ValueError):
        engine.step_many(values, modulators[:-1])


def test_codec_batch_matches_scalar(rng):
    from repro.core.ciphertext import ItemCodec
    from repro.core.params import Params
    codec = ItemCodec(Params())
    outputs = [rng.bytes(20) for _ in range(40)]
    messages = [rng.bytes(100) for _ in range(40)]
    item_ids = list(range(1, 41))
    nonces = [rng.bytes(8) for _ in range(40)]
    batched = codec.encrypt_many(outputs, messages, item_ids, nonces)
    scalar = [codec.encrypt(o, m, i, n)
              for o, m, i, n in zip(outputs, messages, item_ids, nonces)]
    assert batched == scalar
    assert codec.decrypt_many(outputs, batched) == \
        [(m, i) for m, i in zip(messages, item_ids)]


def test_codec_batch_detects_tampering(rng):
    from repro.core.ciphertext import ItemCodec
    from repro.core.errors import IntegrityError
    from repro.core.params import Params
    codec = ItemCodec(Params())
    outputs = [rng.bytes(20) for _ in range(20)]
    ciphertexts = codec.encrypt_many(outputs, [b"m"] * 20, list(range(20)),
                                     [rng.bytes(8) for _ in range(20)])
    tampered = list(ciphertexts)
    tampered[13] = tampered[13][:-1] + bytes([tampered[13][-1] ^ 1])
    with pytest.raises(IntegrityError):
        codec.decrypt_many(outputs, tampered)

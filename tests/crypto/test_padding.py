"""PKCS#7 padding behaviour and rejection of malformed padding."""

import pytest

from repro.crypto.padding import PaddingError, pad, unpad


@pytest.mark.parametrize("size", range(0, 33))
def test_roundtrip_every_phase(size):
    data = bytes(range(size))
    padded = pad(data)
    assert len(padded) % 16 == 0
    assert len(padded) > len(data)
    assert unpad(padded) == data


def test_full_block_of_padding_for_aligned_input():
    padded = pad(b"\x00" * 16)
    assert len(padded) == 32
    assert padded[16:] == b"\x10" * 16


def test_rejects_empty():
    with pytest.raises(PaddingError):
        unpad(b"")


def test_rejects_unaligned():
    with pytest.raises(PaddingError):
        unpad(b"\x01" * 15)


def test_rejects_zero_pad_byte():
    with pytest.raises(PaddingError):
        unpad(b"\x00" * 16)


def test_rejects_oversized_pad_byte():
    with pytest.raises(PaddingError):
        unpad(b"\x00" * 15 + b"\x11")


def test_rejects_inconsistent_padding():
    block = b"\x00" * 13 + b"\x03\x03\x03"
    assert unpad(block) == b"\x00" * 13  # valid 3-byte padding
    with pytest.raises(PaddingError):
        unpad(b"\x00" * 13 + b"\x02\x03\x03")


def test_rejects_bad_block_size():
    with pytest.raises(ValueError):
        pad(b"x", 0)
    with pytest.raises(ValueError):
        unpad(b"x" * 16, 256)

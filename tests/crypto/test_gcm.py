"""AES-GCM against the NIST GCM validation vectors."""

import pytest

from repro.core.errors import IntegrityError
from repro.crypto.gcm import aes_gcm_decrypt, aes_gcm_encrypt


def test_nist_case_1_empty():
    """gcmEncryptExtIV128 count 0: empty plaintext, empty AAD."""
    ciphertext, tag = aes_gcm_encrypt(bytes(16), bytes(12), b"")
    assert ciphertext == b""
    assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_case_2_single_block():
    ciphertext, tag = aes_gcm_encrypt(bytes(16), bytes(12), bytes(16))
    assert ciphertext.hex() == "0388dace60b6a392f328c2b971b2fe78"
    assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"


def test_nist_case_3_four_blocks():
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255")
    ciphertext, tag = aes_gcm_encrypt(key, iv, plaintext)
    assert ciphertext.hex() == (
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985")
    assert tag.hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"


def test_nist_case_4_with_aad():
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39")
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    ciphertext, tag = aes_gcm_encrypt(key, iv, plaintext, aad)
    assert ciphertext.hex() == (
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091")
    assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    assert aes_gcm_decrypt(key, iv, ciphertext, tag, aad) == plaintext


def test_nist_case_5_short_iv():
    """Non-96-bit IVs go through the GHASH J0 derivation."""
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbad")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39")
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    ciphertext, tag = aes_gcm_encrypt(key, iv, plaintext, aad)
    assert tag.hex() == "3612d2e79e3b0785561be14aaca2fccb"


def test_roundtrip_various_sizes(rng):
    key = rng.bytes(16)
    for size in (0, 1, 15, 16, 17, 100, 1000):
        iv = rng.bytes(12)
        aad = rng.bytes(size % 33)
        plaintext = rng.bytes(size)
        ciphertext, tag = aes_gcm_encrypt(key, iv, plaintext, aad)
        assert aes_gcm_decrypt(key, iv, ciphertext, tag, aad) == plaintext


def test_tamper_detection(rng):
    key, iv = rng.bytes(16), rng.bytes(12)
    ciphertext, tag = aes_gcm_encrypt(key, iv, b"authenticated", b"aad")
    with pytest.raises(IntegrityError):
        aes_gcm_decrypt(key, iv, ciphertext, tag, b"other-aad")
    with pytest.raises(IntegrityError):
        bad = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        aes_gcm_decrypt(key, iv, bad, tag, b"aad")
    with pytest.raises(IntegrityError):
        bad_tag = bytes([tag[0] ^ 1]) + tag[1:]
        aes_gcm_decrypt(key, iv, ciphertext, bad_tag, b"aad")


def test_truncated_tags(rng):
    key, iv = rng.bytes(16), rng.bytes(12)
    ciphertext, tag = aes_gcm_encrypt(key, iv, b"data", tag_length=12)
    assert len(tag) == 12
    assert aes_gcm_decrypt(key, iv, ciphertext, tag) == b"data"


def test_bad_arguments():
    with pytest.raises(ValueError):
        aes_gcm_encrypt(bytes(16), b"", b"x")
    with pytest.raises(ValueError):
        aes_gcm_encrypt(bytes(16), bytes(12), b"x", tag_length=8)
    with pytest.raises(ValueError):
        aes_gcm_decrypt(bytes(16), bytes(12), b"", b"short")

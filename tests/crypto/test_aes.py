"""AES against FIPS 197 and NIST SP 800-38A vectors, plus edge cases."""

import pytest

from repro.crypto.aes import AES, INV_SBOX, SBOX

FIPS197_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS197 = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]

# SP 800-38A F.1: ECB single blocks for each key size.
SP800_38A_ECB = [
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
     "6bc1bee22e409f96e93d7e117393172a", "bd334f1d6e45f25ff712a214571fa5cc"),
    ("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
     "6bc1bee22e409f96e93d7e117393172a", "f3eed1bdb5d2a03c064b5a7e3db181f8"),
]


@pytest.mark.parametrize("key_hex,expected", FIPS197,
                         ids=["aes128", "aes192", "aes256"])
def test_fips197_encrypt(key_hex, expected):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(FIPS197_PLAINTEXT).hex() == expected


@pytest.mark.parametrize("key_hex,expected", FIPS197,
                         ids=["aes128", "aes192", "aes256"])
def test_fips197_decrypt(key_hex, expected):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(expected)) == FIPS197_PLAINTEXT


@pytest.mark.parametrize("key_hex,plaintext,expected", SP800_38A_ECB,
                         ids=["aes128", "aes192", "aes256"])
def test_sp800_38a_ecb(key_hex, plaintext, expected):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == expected
    assert cipher.decrypt_block(bytes.fromhex(expected)).hex() == plaintext


def test_sbox_is_a_bijective_involution_pair():
    assert len(set(SBOX)) == 256
    assert len(set(INV_SBOX)) == 256
    for x in range(256):
        assert INV_SBOX[SBOX[x]] == x
    # Anchor values from FIPS 197 figure 7.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_round_counts():
    assert AES(b"\x00" * 16).rounds == 10
    assert AES(b"\x00" * 24).rounds == 12
    assert AES(b"\x00" * 32).rounds == 14


def test_key_schedule_length():
    for size in (16, 24, 32):
        cipher = AES(b"\x01" * size)
        assert len(cipher.round_keys) == 4 * (cipher.rounds + 1)


@pytest.mark.parametrize("size", [16, 24, 32])
def test_roundtrip_random_blocks(size, rng):
    cipher = AES(rng.bytes(size))
    for _ in range(20):
        block = rng.bytes(16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_rejects_bad_key_sizes():
    for size in (0, 15, 17, 31, 33, 64):
        with pytest.raises(ValueError):
            AES(b"\x00" * size)


def test_rejects_bad_block_sizes():
    cipher = AES(b"\x00" * 16)
    for block in (b"", b"\x00" * 15, b"\x00" * 17):
        with pytest.raises(ValueError):
            cipher.encrypt_block(block)
        with pytest.raises(ValueError):
            cipher.decrypt_block(block)

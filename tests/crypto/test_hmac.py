"""HMAC against RFC 2202 (SHA-1) and RFC 4231 (SHA-256) vectors."""

import hashlib
import hmac as stdlib_hmac

import pytest

from repro.crypto.hmac import Hmac, hmac_digest
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256

# RFC 2202 HMAC-SHA1 vectors.
RFC2202 = [
    (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50, "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
    (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
]

# RFC 4231 HMAC-SHA256 vectors (cases 1, 2, 3, 6).
RFC4231 = [
    (b"\x0b" * 20, b"Hi There",
     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"),
    (b"Jefe", b"what do ya want for nothing?",
     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"),
    (b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"),
]


@pytest.mark.parametrize("key,message,expected", RFC2202,
                         ids=[f"rfc2202-{i}" for i in range(len(RFC2202))])
def test_rfc2202_sha1(key, message, expected):
    assert hmac_digest(key, message, Sha1).hex() == expected


@pytest.mark.parametrize("key,message,expected", RFC4231,
                         ids=[f"rfc4231-{i}" for i in range(len(RFC4231))])
def test_rfc4231_sha256(key, message, expected):
    assert hmac_digest(key, message, Sha256).hex() == expected


@pytest.mark.parametrize("key_length", [0, 1, 63, 64, 65, 200])
def test_matches_stdlib_across_key_lengths(key_length):
    key = bytes(range(256))[:key_length]
    message = b"key length boundary check"
    assert hmac_digest(key, message, Sha1) == \
        stdlib_hmac.new(key, message, hashlib.sha1).digest()
    assert hmac_digest(key, message, Sha256) == \
        stdlib_hmac.new(key, message, hashlib.sha256).digest()


def test_incremental_updates():
    mac = Hmac(b"key", Sha1)
    mac.update(b"part one ")
    mac.update(b"part two")
    assert mac.digest() == hmac_digest(b"key", b"part one part two", Sha1)


def test_digest_is_idempotent():
    mac = Hmac(b"key", Sha256)
    mac.update(b"data")
    assert mac.digest() == mac.digest()


def test_copy_is_independent():
    mac = Hmac(b"key", Sha1)
    mac.update(b"abc")
    clone = mac.copy()
    mac.update(b"X")
    assert clone.digest() == hmac_digest(b"key", b"abc", Sha1)
    assert mac.digest() == hmac_digest(b"key", b"abcX", Sha1)


def test_digest_size_attribute():
    assert Hmac(b"k", Sha1).digest_size == 20
    assert Hmac(b"k", Sha256).digest_size == 32

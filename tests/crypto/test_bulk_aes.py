"""Cross-item bulk AES-CTR against the scalar reference (ISSUE 5).

``ctr_transform_many`` runs every item's counter blocks through one
vectorised sweep with per-block key schedules; these tests pin it
bit-for-bit to per-item ``aes_ctr``/``aes_ctr_scalar`` and cover the
lane-layout corner cases (empty payloads, sub-block payloads, huge
batches, counter offsets).
"""

import pytest

from repro.crypto.aes import AES
from repro.crypto.bulk import ctr_transform_many, expand_keys_128
from repro.crypto.modes import aes_ctr, aes_ctr_many, aes_ctr_scalar


def _batch(rng, sizes):
    keys = [rng.bytes(16) for _ in sizes]
    nonces = [rng.bytes(8) for _ in sizes]
    datas = [rng.bytes(size) for size in sizes]
    return keys, nonces, datas


def test_expand_keys_matches_scalar_schedule(rng):
    keys = [rng.bytes(16) for _ in range(37)]
    schedules = expand_keys_128(keys)
    for i, key in enumerate(keys):
        assert tuple(int(w) for w in schedules[i]) == AES(key).round_keys


def test_expand_keys_rejects_non_128_bit_keys(rng):
    with pytest.raises(ValueError):
        expand_keys_128([rng.bytes(16), rng.bytes(24)])


@pytest.mark.parametrize("sizes", [
    [1, 16, 17, 160, 4096],
    [0, 5, 0, 33],               # empty payloads keep their slots
    [15] * 40,                   # all sub-block
    [100],                       # single item
    [0],                         # single empty item
])
def test_matches_per_item_reference(rng, sizes):
    keys, nonces, datas = _batch(rng, sizes)
    batch = ctr_transform_many(keys, nonces, datas)
    assert len(batch) == len(sizes)
    for key, nonce, data, out in zip(keys, nonces, datas, batch):
        assert out == aes_ctr_scalar(key, nonce, data)


def test_initial_counter_offsets(rng):
    keys, nonces, datas = _batch(rng, [48, 31, 16])
    batch = ctr_transform_many(keys, nonces, datas, initial_counter=7)
    for key, nonce, data, out in zip(keys, nonces, datas, batch):
        assert out == aes_ctr_scalar(key, nonce, data, initial_counter=7)


def test_repeated_keys_and_nonces_share_nothing_wrongly(rng):
    """Identical (key, nonce) pairs in different slots must still get
    independent, correct counter runs."""
    key, nonce = rng.bytes(16), rng.bytes(8)
    datas = [rng.bytes(40), rng.bytes(40), rng.bytes(24)]
    batch = ctr_transform_many([key] * 3, [nonce] * 3, datas)
    for data, out in zip(datas, batch):
        assert out == aes_ctr_scalar(key, nonce, data)


def test_large_batch(rng):
    sizes = [(i * 37) % 90 for i in range(300)]
    keys, nonces, datas = _batch(rng, sizes)
    batch = ctr_transform_many(keys, nonces, datas)
    for key, nonce, data, out in zip(keys, nonces, datas, batch):
        assert out == aes_ctr(key, nonce, data)


def test_empty_batch():
    assert ctr_transform_many([], [], []) == []


def test_rejects_bad_arguments(rng):
    with pytest.raises(ValueError):
        ctr_transform_many([rng.bytes(16)], [rng.bytes(8)], [])
    with pytest.raises(ValueError):
        ctr_transform_many([rng.bytes(16)], [rng.bytes(7)], [b"x"])
    with pytest.raises(ValueError):
        ctr_transform_many([rng.bytes(16)], [rng.bytes(8)], [b"x"],
                           initial_counter=-1)
    with pytest.raises(ValueError):
        ctr_transform_many([rng.bytes(24)], [rng.bytes(8)], [b"x", b"y"][:1])


def test_aes_ctr_many_dispatch(rng):
    """The modes-level wrapper matches per-item calls for every key mix."""
    # All-16-byte batch takes the vectorised path.
    keys, nonces, datas = _batch(rng, [10, 50, 0])
    assert aes_ctr_many(keys, nonces, datas) == [
        aes_ctr(k, nc, d) for k, nc, d in zip(keys, nonces, datas)]
    # A 32-byte key forces the per-item fallback; results still match.
    keys[1] = rng.bytes(32)
    assert aes_ctr_many(keys, nonces, datas) == [
        aes_ctr(k, nc, d) for k, nc, d in zip(keys, nonces, datas)]
    with pytest.raises(ValueError):
        aes_ctr_many(keys, nonces[:2], datas)


def test_transform_is_involution(rng):
    keys, nonces, datas = _batch(rng, [64, 33, 7])
    once = ctr_transform_many(keys, nonces, datas)
    twice = ctr_transform_many(keys, nonces, once)
    assert twice == datas

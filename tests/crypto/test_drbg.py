"""HMAC-DRBG behaviour: determinism, reseeding, and output structure."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.sha1 import Sha1


def test_deterministic_for_same_seed():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.generate(100) == b.generate(100)
    assert a.generate(33) == b.generate(33)


def test_different_seeds_diverge():
    assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)


def test_personalization_separates_streams():
    a = HmacDrbg(b"seed", personalization=b"x")
    b = HmacDrbg(b"seed", personalization=b"y")
    assert a.generate(32) != b.generate(32)


def test_sequential_generation_differs():
    drbg = HmacDrbg(b"seed")
    assert drbg.generate(32) != drbg.generate(32)


def test_request_sizes():
    drbg = HmacDrbg(b"seed")
    assert drbg.generate(0) == b""
    assert len(drbg.generate(1)) == 1
    assert len(drbg.generate(100)) == 100


def test_generate_rejects_negative():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate(-1)


def test_empty_seed_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"")


def test_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    a.generate(16)
    b.generate(16)
    a.reseed(b"fresh entropy")
    assert a.generate(32) != b.generate(32)


def test_reseed_rejects_empty():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").reseed(b"")


def test_alternative_hash():
    drbg = HmacDrbg(b"seed", hash_factory=Sha1)
    assert len(drbg.generate(25)) == 25

"""AES-CMAC against the RFC 4493 test vectors."""

import pytest

from repro.crypto.cmac import aes_cmac, aes_cmac_verify

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
M = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")

RFC4493 = [
    (b"", "bb1d6929e95937287fa37d129b756746"),
    (M[:16], "070a16b46b4d4144f79bdd9dd04a287c"),
    (M[:40], "dfa66747de9ae63030ca32611497c827"),
    (M, "51f0bebf7e3b9d92fc49741779363cfe"),
]


@pytest.mark.parametrize("message,expected", RFC4493,
                         ids=["len0", "len16", "len40", "len64"])
def test_rfc4493_vectors(message, expected):
    assert aes_cmac(KEY, message).hex() == expected


def test_verify(rng):
    key = rng.bytes(16)
    message = rng.bytes(100)
    mac = aes_cmac(key, message)
    assert aes_cmac_verify(key, message, mac)
    assert not aes_cmac_verify(key, message + b"x", mac)
    assert not aes_cmac_verify(rng.bytes(16), message, mac)


def test_truncated_mac(rng):
    key = rng.bytes(16)
    mac = aes_cmac(key, b"msg", mac_length=12)
    assert len(mac) == 12
    assert aes_cmac_verify(key, b"msg", mac)


def test_mac_length_validation():
    with pytest.raises(ValueError):
        aes_cmac(bytes(16), b"", mac_length=0)
    with pytest.raises(ValueError):
        aes_cmac(bytes(16), b"", mac_length=17)


def test_distinct_messages_distinct_macs(rng):
    key = rng.bytes(16)
    macs = {aes_cmac(key, bytes([i]) * i) for i in range(1, 50)}
    assert len(macs) == 49

"""Cipher modes against NIST SP 800-38A vectors plus roundtrip behaviour."""

import pytest

from repro.crypto.aes import AES
from repro.crypto.modes import (aes_cbc_decrypt, aes_cbc_encrypt, aes_ctr,
                                aes_ctr_scalar, aes_ecb_decrypt,
                                aes_ecb_encrypt)
from repro.crypto.padding import PaddingError

KEY128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")


def test_sp800_38a_cbc_aes128():
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    expected = ("7649abac8119b246cee98e9b12e9197d"
                "5086cb9b507219ee95db113a917678b2"
                "73bed6b8e3c1743b7116e69e22229516"
                "3ff1caa1681fac09120eca307586e1a7")
    ciphertext = aes_cbc_encrypt(KEY128, iv, SP_PLAINTEXT, padded=False)
    assert ciphertext.hex() == expected
    assert aes_cbc_decrypt(KEY128, iv, ciphertext, padded=False) == SP_PLAINTEXT


def test_sp800_38a_ecb_aes128_multiblock():
    expected = ("3ad77bb40d7a3660a89ecaf32466ef97"
                "f5d3d58503b9699de785895a96fdbaaf"
                "43b1cd7f598ece23881b00e3ed030688"
                "7b0c785e27e8ad3f8223207104725dd4")
    cipher = AES(KEY128)
    assert aes_ecb_encrypt(cipher, SP_PLAINTEXT).hex() == expected
    assert aes_ecb_decrypt(cipher, bytes.fromhex(expected)) == SP_PLAINTEXT


def test_ctr_keystream_matches_sp800_38a_structure():
    # SP 800-38A F.5.1 uses a 16-byte counter block f0f1..ff; our CTR
    # splits it as nonce=f0..f7, counter=f8..ff, so the first block of
    # keystream must match ECB(counter block).
    key = KEY128
    nonce = bytes.fromhex("f0f1f2f3f4f5f6f7")
    initial = int.from_bytes(bytes.fromhex("f8f9fafbfcfdfeff"), "big")
    plaintext = SP_PLAINTEXT[:16]
    expected_ct = bytes.fromhex("874d6191b620e3261bef6864990db6ce")
    assert aes_ctr(key, nonce, plaintext, initial_counter=initial) == expected_ct


@pytest.mark.parametrize("size", [0, 1, 15, 16, 17, 31, 32, 100, 4096, 5000])
def test_ctr_roundtrip_and_scalar_equivalence(size, rng):
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(size)
    ciphertext = aes_ctr(key, nonce, data)
    assert len(ciphertext) == size
    assert aes_ctr(key, nonce, ciphertext) == data
    assert aes_ctr_scalar(key, nonce, data) == ciphertext


@pytest.mark.parametrize("size", [0, 1, 15, 16, 17, 100])
def test_cbc_roundtrip_with_padding(size, rng):
    key, iv = rng.bytes(16), rng.bytes(16)
    data = rng.bytes(size)
    ciphertext = aes_cbc_encrypt(key, iv, data)
    assert len(ciphertext) % 16 == 0
    assert len(ciphertext) > len(data)  # padding always adds bytes
    assert aes_cbc_decrypt(key, iv, ciphertext) == data


def test_cbc_wrong_key_fails_padding_with_high_probability(rng):
    key, iv = rng.bytes(16), rng.bytes(16)
    ciphertext = aes_cbc_encrypt(key, iv, b"some plaintext data")
    wrong = aes_cbc_encrypt  # silence lint; decrypt with a wrong key below
    with pytest.raises(PaddingError):
        # 255/256 of wrong keys produce invalid padding; this specific
        # deterministic key/ciphertext pair is checked to be one of them.
        aes_cbc_decrypt(bytes(16), iv, ciphertext)


def test_ctr_rejects_bad_nonce():
    with pytest.raises(ValueError):
        aes_ctr(b"\x00" * 16, b"\x00" * 7, b"data")


def test_cbc_rejects_bad_iv_and_unaligned_input():
    with pytest.raises(ValueError):
        aes_cbc_encrypt(b"\x00" * 16, b"\x00" * 15, b"data")
    with pytest.raises(ValueError):
        aes_cbc_decrypt(b"\x00" * 16, b"\x00" * 16, b"\x01" * 17)
    with pytest.raises(ValueError):
        aes_cbc_encrypt(b"\x00" * 16, b"\x00" * 16, b"\x01" * 17, padded=False)


def test_ecb_rejects_unaligned():
    cipher = AES(b"\x00" * 16)
    with pytest.raises(ValueError):
        aes_ecb_encrypt(cipher, b"\x00" * 17)
    with pytest.raises(ValueError):
        aes_ecb_decrypt(cipher, b"\x00" * 17)


def test_ctr_counter_progression(rng):
    """Splitting a message must equal encrypting it whole."""
    key, nonce = rng.bytes(16), rng.bytes(8)
    data = rng.bytes(80)
    whole = aes_ctr(key, nonce, data)
    first = aes_ctr(key, nonce, data[:32])
    rest = aes_ctr(key, nonce, data[32:], initial_counter=2)
    assert first + rest == whole

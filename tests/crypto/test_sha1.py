"""SHA-1 against FIPS 180 vectors, hashlib, and its incremental API."""

import hashlib

import pytest

from repro.crypto.sha1 import Sha1, sha1

# FIPS 180 / RFC 3174 test vectors.
VECTORS = [
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
    (b"The quick brown fox jumps over the lazy dog",
     "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"),
]


@pytest.mark.parametrize("message,expected", VECTORS,
                         ids=[f"vector-{i}" for i in range(len(VECTORS))])
def test_official_vectors(message, expected):
    assert sha1(message).hex() == expected


@pytest.mark.parametrize("length", [0, 1, 54, 55, 56, 57, 63, 64, 65, 127,
                                    128, 129, 1000])
def test_matches_hashlib_at_padding_boundaries(length):
    message = bytes(range(256)) * (length // 256 + 1)
    message = message[:length]
    assert sha1(message) == hashlib.sha1(message).digest()


def test_incremental_equals_one_shot():
    hasher = Sha1()
    hasher.update(b"The quick brown fox ")
    hasher.update(b"jumps over ")
    hasher.update(b"the lazy dog")
    assert hasher.hexdigest() == VECTORS[4][1]


def test_digest_does_not_consume_state():
    hasher = Sha1(b"abc")
    first = hasher.digest()
    assert hasher.digest() == first
    hasher.update(b"def")
    assert hasher.digest() == hashlib.sha1(b"abcdef").digest()


def test_copy_is_independent():
    hasher = Sha1(b"abc")
    clone = hasher.copy()
    hasher.update(b"X")
    assert clone.digest() == hashlib.sha1(b"abc").digest()
    assert hasher.digest() == hashlib.sha1(b"abcX").digest()


def test_update_accepts_bytearray_and_memoryview():
    hasher = Sha1()
    hasher.update(bytearray(b"ab"))
    hasher.update(memoryview(b"c"))
    assert hasher.hexdigest() == VECTORS[1][1]


def test_update_rejects_text():
    with pytest.raises(TypeError):
        Sha1().update("abc")


def test_constants():
    assert Sha1.digest_size == 20
    assert Sha1.block_size == 64
    assert Sha1.name == "sha1"
    assert len(sha1(b"x")) == 20

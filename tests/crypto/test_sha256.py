"""SHA-256 against FIPS 180 vectors, hashlib, and its incremental API."""

import hashlib

import pytest

from repro.crypto.sha256 import Sha256, sha256

VECTORS = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"),
    (b"a" * 1_000_000,
     "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"),
]


@pytest.mark.parametrize("message,expected", VECTORS,
                         ids=[f"vector-{i}" for i in range(len(VECTORS))])
def test_official_vectors(message, expected):
    assert sha256(message).hex() == expected


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 128, 1000])
def test_matches_hashlib_at_padding_boundaries(length):
    message = bytes(range(256)) * (length // 256 + 1)
    message = message[:length]
    assert sha256(message) == hashlib.sha256(message).digest()


def test_incremental_equals_one_shot():
    hasher = Sha256()
    for chunk in (b"ab", b"cdbcdecdefdefgefghfghighijhijkijk", b"ljklmklmnlmnomnopnopq"):
        hasher.update(chunk)
    assert hasher.hexdigest() == VECTORS[2][1]


def test_copy_is_independent():
    hasher = Sha256(b"abc")
    clone = hasher.copy()
    hasher.update(b"X")
    assert clone.digest() == hashlib.sha256(b"abc").digest()
    assert hasher.digest() == hashlib.sha256(b"abcX").digest()


def test_update_rejects_text():
    with pytest.raises(TypeError):
        Sha256().update("abc")


def test_constants():
    assert Sha256.digest_size == 32
    assert Sha256.block_size == 64
    assert len(sha256(b"x")) == 32

"""Constant-time comparison semantics."""

import pytest

from repro.crypto.ct import bytes_eq


def test_equal():
    assert bytes_eq(b"", b"")
    assert bytes_eq(b"abc", b"abc")
    assert bytes_eq(bytearray(b"abc"), b"abc")


def test_unequal_content():
    assert not bytes_eq(b"abc", b"abd")
    assert not bytes_eq(b"\x00" * 20, b"\x00" * 19 + b"\x01")


def test_unequal_length():
    assert not bytes_eq(b"abc", b"abcd")
    assert not bytes_eq(b"", b"a")


def test_rejects_non_bytes():
    with pytest.raises(TypeError):
        bytes_eq("abc", b"abc")
    with pytest.raises(TypeError):
        bytes_eq(b"abc", 123)

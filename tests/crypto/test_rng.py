"""Random source behaviour: determinism, uniformity, fork independence."""

import pytest

from repro.crypto.rng import DeterministicRandom, SystemRandom


def test_deterministic_reproducibility():
    a = DeterministicRandom("seed")
    b = DeterministicRandom("seed")
    assert a.bytes(1000) == b.bytes(1000)
    assert a.bytes(7) == b.bytes(7)


def test_seed_types():
    assert DeterministicRandom(b"x").bytes(8) == DeterministicRandom(b"x").bytes(8)
    assert DeterministicRandom("x").bytes(8) == DeterministicRandom("x").bytes(8)
    assert DeterministicRandom(42).bytes(8) == DeterministicRandom(42).bytes(8)
    assert DeterministicRandom("x").bytes(8) != DeterministicRandom("y").bytes(8)


def test_chunked_reads_equal_bulk_read():
    a = DeterministicRandom("chunks")
    b = DeterministicRandom("chunks")
    combined = b"".join(a.bytes(n) for n in (1, 5, 100, 64 * 1024, 3))
    assert combined == b.bytes(len(combined))


def test_fork_streams_are_independent_and_reproducible():
    a = DeterministicRandom("parent")
    b = DeterministicRandom("parent")
    child_a = a.fork("client")
    child_b = b.fork("client")
    assert child_a.bytes(32) == child_b.bytes(32)
    other = DeterministicRandom("parent").fork("server")
    assert other.bytes(32) != DeterministicRandom("parent").fork("client").bytes(32)


def test_below_bounds():
    rng = DeterministicRandom("below")
    for bound in (1, 2, 7, 255, 256, 1000):
        for _ in range(50):
            value = rng.below(bound)
            assert 0 <= value < bound
    with pytest.raises(ValueError):
        rng.below(0)


def test_below_is_roughly_uniform():
    rng = DeterministicRandom("uniform")
    counts = [0] * 4
    for _ in range(4000):
        counts[rng.below(4)] += 1
    for count in counts:
        assert 800 < count < 1200


def test_uint():
    rng = DeterministicRandom("uint")
    value = rng.uint(64)
    assert 0 <= value < 2 ** 64
    with pytest.raises(ValueError):
        rng.uint(12)


def test_choice_and_shuffle():
    rng = DeterministicRandom("choice")
    items = list(range(10))
    assert rng.choice(items) in items
    with pytest.raises(ValueError):
        rng.choice([])
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        DeterministicRandom("x").bytes(-1)
    with pytest.raises(ValueError):
        SystemRandom().bytes(-1)


def test_system_random_basic():
    rng = SystemRandom()
    assert len(rng.bytes(32)) == 32
    assert rng.bytes(16) != rng.bytes(16)

"""Stateful property test for the meta key manager (Section V).

Random register / fetch / replace / remove sequences against an oracle of
master keys, with two standing invariants: every registered file's master
key is retrievable bit-exact through the meta tree, and the client never
holds more than the single control key.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.client.client import AssuredDeletionClient
from repro.core.meta import MetaKeyManager
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from tests.conftest import scaled_examples

keys16 = st.binary(min_size=16, max_size=16)


class MetaKeyMachine(RuleBasedStateMachine):

    @initialize(seed=st.integers(0, 2 ** 32))
    def setup(self, seed):
        server = CloudServer()
        self.client = AssuredDeletionClient(
            LoopbackChannel(server), rng=DeterministicRandom(f"meta-{seed}"),
            store_keys=False)
        self.manager = MetaKeyManager(self.client, meta_file_id=0,
                                      control_key_name="ctrl")
        self.manager.initialize()
        self.oracle: dict[int, bytes] = {}
        self.next_file = 100

    @rule(key=keys16)
    def register(self, key):
        file_id = self.next_file
        self.next_file += 1
        self.manager.register(file_id, key)
        self.oracle[file_id] = key

    @rule(data=st.data())
    @precondition(lambda self: self.oracle)
    def fetch(self, data):
        file_id = data.draw(st.sampled_from(sorted(self.oracle)))
        assert self.manager.master_key(file_id) == self.oracle[file_id]

    @rule(data=st.data(), new_key=keys16)
    @precondition(lambda self: self.oracle)
    def replace(self, data, new_key):
        file_id = data.draw(st.sampled_from(sorted(self.oracle)))
        self.manager.replace_master_key(file_id, new_key)
        self.oracle[file_id] = new_key

    @rule(data=st.data())
    @precondition(lambda self: self.oracle)
    def remove(self, data):
        file_id = data.draw(st.sampled_from(sorted(self.oracle)))
        self.manager.remove(file_id)
        del self.oracle[file_id]

    @invariant()
    def all_keys_retrievable_and_client_holds_one_key(self):
        if not hasattr(self, "manager"):
            return
        assert self.manager.managed_file_ids() == sorted(self.oracle)
        for file_id, key in self.oracle.items():
            assert self.manager.master_key(file_id) == key
        assert self.client.keystore.key_bytes_stored() == 16


MetaKeyMachine.TestCase.settings = settings(
    max_examples=scaled_examples(10), stateful_step_count=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestMetaKeyManager = MetaKeyMachine.TestCase

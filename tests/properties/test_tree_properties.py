"""Stateful property test: random operation sequences on the real stack.

Hypothesis drives an arbitrary interleaving of outsource / access /
modify / insert / delete against a plain-dict oracle.  Two invariants
must hold at every step:

* Theorem 1 -- every live item decrypts to its oracle value (surviving
  data keys never move), and
* Theorem 2 -- the full-power adversary (continuous server snapshots,
  keystore seized *now*) recovers no deleted item.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.core.scheme import LocalScheme
from repro.crypto.rng import DeterministicRandom
from repro.sim.threat import Adversary, snapshot_file
from tests.conftest import scaled_examples

payloads = st.binary(max_size=40)


class AssuredDeletionMachine(RuleBasedStateMachine):

    @initialize(initial=st.lists(payloads, max_size=6), seed=st.integers(0, 2 ** 32))
    def setup(self, initial, seed):
        self.scheme = LocalScheme(rng=DeterministicRandom(f"state-{seed}"))
        self.fid, ids = self.scheme.new_file(initial)
        self.oracle = dict(zip(ids, initial))
        self.deleted: dict[int, bytes] = {}
        self.adversary = Adversary()
        self._observe()

    def _observe(self):
        self.adversary.observe(snapshot_file(self.scheme.server, self.fid))

    def _pick_live(self, data):
        items = sorted(self.oracle)
        return items[data.draw(st.integers(0, len(items) - 1))]

    @rule(data=st.data())
    @precondition(lambda self: self.oracle)
    def access(self, data):
        item = self._pick_live(data)
        assert self.scheme.access(self.fid, item) == self.oracle[item]
        self._observe()

    @rule(data=st.data(), value=payloads)
    @precondition(lambda self: self.oracle)
    def modify(self, data, value):
        item = self._pick_live(data)
        self.scheme.modify(self.fid, item, value)
        self.oracle[item] = value
        self._observe()

    @rule(value=payloads)
    def insert(self, value):
        item = self.scheme.insert(self.fid, value)
        self.oracle[item] = value
        self._observe()

    @rule(data=st.data())
    @precondition(lambda self: self.oracle)
    def delete(self, data):
        item = self._pick_live(data)
        self.scheme.delete(self.fid, item)
        self.deleted[item] = self.oracle.pop(item)
        self._observe()

    @invariant()
    def live_items_decrypt_and_deleted_stay_dead(self):
        if not hasattr(self, "scheme"):
            return
        assert self.scheme.fetch_file(self.fid) == self.oracle
        if self.deleted:
            adversary = Adversary(snapshots=list(self.adversary.snapshots))
            adversary.seize_keystore(self.scheme.client.keystore.seize())
            for item in self.deleted:
                assert adversary.try_recover(item) is None


AssuredDeletionMachine.TestCase.settings = settings(
    max_examples=scaled_examples(12), stateful_step_count=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestAssuredDeletion = AssuredDeletionMachine.TestCase

"""Property-based tests for the crypto substrate (hypothesis)."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.bulk import ctr_transform
from repro.crypto.hmac import hmac_digest
from repro.crypto.modes import aes_cbc_decrypt, aes_cbc_encrypt, aes_ctr
from repro.crypto.padding import pad, unpad
from repro.crypto.sha1 import sha1
from repro.crypto.sha256 import sha256
from tests.conftest import scaled_examples

keys128 = st.binary(min_size=16, max_size=16)
keys_any = st.sampled_from([16, 24, 32]).flatmap(
    lambda n: st.binary(min_size=n, max_size=n))
nonces = st.binary(min_size=8, max_size=8)
ivs = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)
payloads = st.binary(max_size=2048)


@given(st.binary(max_size=4096))
def test_sha1_matches_hashlib(message):
    assert sha1(message) == hashlib.sha1(message).digest()


@given(st.binary(max_size=4096))
def test_sha256_matches_hashlib(message):
    assert sha256(message) == hashlib.sha256(message).digest()


@given(st.binary(min_size=1, max_size=200), st.binary(max_size=1000))
def test_hmac_matches_stdlib(key, message):
    from repro.crypto.sha1 import Sha1
    assert hmac_digest(key, message, Sha1) == \
        stdlib_hmac.new(key, message, hashlib.sha1).digest()


@given(keys_any, blocks)
def test_aes_block_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(keys128, nonces, payloads)
def test_ctr_is_an_involution(key, nonce, data):
    assert aes_ctr(key, nonce, aes_ctr(key, nonce, data)) == data


@settings(max_examples=scaled_examples(30))
@given(keys128, nonces, payloads)
def test_bulk_ctr_matches_scalar(key, nonce, data):
    from repro.crypto.modes import aes_ctr_scalar
    assert ctr_transform(key, nonce, data) == aes_ctr_scalar(key, nonce, data)


@given(keys128, ivs, payloads)
def test_cbc_roundtrip(key, iv, data):
    assert aes_cbc_decrypt(key, iv, aes_cbc_encrypt(key, iv, data)) == data


@given(st.binary(max_size=500), st.integers(min_value=1, max_value=255))
def test_padding_roundtrip(data, block_size):
    assert unpad(pad(data, block_size), block_size) == data

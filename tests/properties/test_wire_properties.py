"""Fuzzing the wire codec: arbitrary values roundtrip; garbage never
crashes with anything but ProtocolError."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.protocol import messages as msg
from repro.protocol.wire import Reader, WireContext, Writer
from tests.conftest import scaled_examples

CTX = WireContext(modulator_width=20)
modulators = st.binary(min_size=20, max_size=20)


@settings(max_examples=scaled_examples(50),
          suppress_health_check=[HealthCheck.data_too_large,
                                 HealthCheck.too_slow])
@given(st.lists(st.sampled_from(["u8", "u16", "u32", "u64", "blob", "mod",
                                 "text"]), max_size=10),
       st.data())
def test_arbitrary_field_sequences_roundtrip(kinds, data):
    w = Writer(CTX)
    expected = []
    for kind in kinds:
        if kind == "u8":
            value = data.draw(st.integers(0, 255))
            w.u8(value)
        elif kind == "u16":
            value = data.draw(st.integers(0, 2 ** 16 - 1))
            w.u16(value)
        elif kind == "u32":
            value = data.draw(st.integers(0, 2 ** 32 - 1))
            w.u32(value)
        elif kind == "u64":
            value = data.draw(st.integers(0, 2 ** 64 - 1))
            w.u64(value)
        elif kind == "blob":
            value = data.draw(st.binary(max_size=100))
            w.blob(value)
        elif kind == "mod":
            value = data.draw(modulators)
            w.modulator(value)
        else:
            value = data.draw(st.text(max_size=30))
            w.text(value)
        expected.append((kind, value))

    r = Reader(CTX, w.getvalue())
    for kind, value in expected:
        reader = {"u8": r.u8, "u16": r.u16, "u32": r.u32, "u64": r.u64,
                  "blob": r.blob, "mod": r.modulator, "text": r.text}[kind]
        assert reader() == value
    r.expect_end()


@given(st.binary(max_size=300))
def test_garbage_decoding_is_contained(data):
    """Arbitrary bytes either decode to a message or raise ProtocolError."""
    try:
        message = msg.decode_message(CTX, data)
    except (ProtocolError, UnicodeDecodeError):
        return
    # Whatever decoded must re-encode (not necessarily byte-identically --
    # e.g. non-canonical optionals -- but without crashing).
    msg.encode_message(CTX, message)


@given(st.integers(0, 2 ** 64 - 1), st.binary(max_size=50), modulators)
def test_delete_request_roundtrip(item_id, blob, modulator):
    message = msg.DeleteCommit(file_id=1, item_id=item_id,
                               cut_slots=(1, 2), deltas=(modulator, modulator),
                               x_s_prime=None, dest_link=modulator,
                               dest_leaf=None, tree_version=9)
    assert msg.decode_message(CTX, msg.encode_message(CTX, message)) == message

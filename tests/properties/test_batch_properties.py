"""Property tests for batched deletion (ISSUE 1 satellite).

Two properties over random trees and random batches S:

* **Equivalence** -- ``delete_many(S)`` leaves every surviving data key
  (hence every surviving plaintext) identical to deleting the items of S
  one at a time, and kills exactly S.
* **Unrecoverability (Theorem 2)** -- after the batch, the full-power
  adversary (every server state ever held + the seized device) recovers
  no deleted item, while every survivor remains recoverable (soundness).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import UnknownItemError
from repro.core.modulated_chain import ChainEngine
from repro.core.scheme import LocalScheme
from repro.crypto.rng import DeterministicRandom
from repro.sim.threat import Adversary, snapshot_file
from tests.conftest import scaled_examples


@st.composite
def batches(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    k = draw(st.integers(min_value=1, max_value=n))
    positions = draw(st.permutations(range(n)))[:k]
    return n, list(positions)


def build(n, seed):
    scheme = LocalScheme(rng=DeterministicRandom(seed))
    items = [b"payload-%d" % i for i in range(n)]
    fid, ids = scheme.new_file(items)
    return scheme, fid, ids, items


def surviving_keys(scheme, fid, ids, survivors):
    """Data key of each surviving item under the scheme's current key."""
    engine = ChainEngine(scheme.params.chain_hash)
    tree = scheme.server.file_state(fid).tree
    key = scheme.client.keystore.get(f"master:{fid}")
    out = {}
    for index in survivors:
        view = tree.path_view(tree.slot_of_item(ids[index]))
        out[index] = engine.evaluate(key, view.modulator_list())
    return out


@given(batch=batches(), seed=st.integers(0, 2 ** 32))
@settings(max_examples=scaled_examples(25), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batch_equivalent_to_sequential(batch, seed):
    n, positions = batch
    batch_scheme, bfid, bids, items = build(n, f"beq-{seed}")
    seq_scheme, sfid, sids, _ = build(n, f"beq-{seed}")

    batch_scheme.delete_many(bfid, [bids[p] for p in positions])
    for p in positions:
        seq_scheme.delete(sfid, sids[p])

    survivors = [i for i in range(n) if i not in positions]
    # Surviving data keys are identical: both flows preserve each
    # survivor's original key through every rotation, so the two trees
    # (under their respective current master keys) agree bit-for-bit.
    assert surviving_keys(batch_scheme, bfid, bids, survivors) == \
        surviving_keys(seq_scheme, sfid, sids, survivors)
    if survivors:
        got = batch_scheme.fetch_file(bfid)
        assert got == {bids[i]: items[i] for i in survivors}
    for p in positions:
        with pytest.raises(UnknownItemError):
            batch_scheme.access(bfid, bids[p])


@given(batch=batches(), seed=st.integers(0, 2 ** 32))
@settings(max_examples=scaled_examples(25), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batch_theorem2_unrecoverable(batch, seed):
    n, positions = batch
    scheme, fid, ids, items = build(n, f"bt2-{seed}")
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))

    scheme.delete_many(fid, [ids[p] for p in positions])
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())

    for p in positions:
        assert adversary.try_recover(ids[p]) is None
    for i in range(n):
        if i not in positions:
            assert adversary.try_recover(ids[i]) == items[i]

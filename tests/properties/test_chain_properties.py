"""Property-based tests for the modulated hash chain (Lemma 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modulated_chain import (ChainEngine, releaf_modulator,
                                        rewrite_modulator, xor_bytes)
from tests.conftest import scaled_examples

modulators20 = st.binary(min_size=20, max_size=20)
keys = st.binary(min_size=16, max_size=16)
modulator_lists = st.lists(modulators20, min_size=1, max_size=12)


@settings(max_examples=scaled_examples(60))
@given(keys, keys, modulator_lists, st.data())
def test_lemma1_for_every_index(old_key, new_key, modulators, data):
    """For any list and any index i, the Eq. 3 rewrite preserves F."""
    engine = ChainEngine()
    index = data.draw(st.integers(min_value=1, max_value=len(modulators)))
    rewritten = list(modulators)
    rewritten[index - 1] = rewrite_modulator(engine, old_key, new_key,
                                             modulators, index)
    assert engine.evaluate(new_key, rewritten) == \
        engine.evaluate(old_key, modulators)


@settings(max_examples=scaled_examples(60))
@given(keys, keys, modulator_lists)
def test_key_change_without_rewrite_breaks_chain(old_key, new_key, modulators):
    engine = ChainEngine()
    if old_key == new_key:
        return
    assert engine.evaluate(new_key, modulators) != \
        engine.evaluate(old_key, modulators)


@settings(max_examples=scaled_examples(60))
@given(keys, modulator_lists)
def test_prefix_values_are_consistent(key, modulators):
    engine = ChainEngine()
    prefixes = engine.prefix_values(key, modulators)
    assert prefixes[0] == engine.pad_key(key)
    for i in range(1, len(prefixes)):
        assert prefixes[i] == engine.step(prefixes[i - 1], modulators[i - 1])


@settings(max_examples=scaled_examples(60))
@given(modulators20, modulators20, modulators20)
def test_releaf_identity(old_prefix, new_prefix, old_leaf):
    engine = ChainEngine()
    new_leaf = releaf_modulator(new_prefix, old_prefix, old_leaf)
    assert engine.h(xor_bytes(new_prefix, new_leaf)) == \
        engine.h(xor_bytes(old_prefix, old_leaf))


@settings(max_examples=scaled_examples(40))
@given(keys, modulator_lists, modulators20)
def test_extension_property(key, modulators, extra):
    """F(K, M + <x>) == H(F(K, M) xor x): the chain is truly recursive."""
    engine = ChainEngine()
    assert engine.evaluate(key, modulators + [extra]) == \
        engine.step(engine.evaluate(key, modulators), extra)

"""Cache-coherence properties (ISSUE 5 satellite).

Twin-world property: the same random op script, driven by identical
deterministic randomness, must produce identical plaintexts whether the
hot-path caches (client chain cache, server view cache) are cold, warm,
or randomly toggled mid-run.  Caches are performance-only -- any
divergence here is a correctness bug, not a slowdown.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scheme import LocalScheme
from repro.crypto.rng import DeterministicRandom
from tests.conftest import scaled_examples

OPS = ("access", "modify", "insert", "delete", "delete_many", "fetch",
       "toggle")


@st.composite
def scripts(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    length = draw(st.integers(min_value=3, max_value=12))
    ops = [(draw(st.sampled_from(OPS)),
            draw(st.integers(min_value=0, max_value=10 ** 6)))
           for _ in range(length)]
    return n, ops


def run(scheme, n, ops, toggler=None):
    """Interpret ``ops`` against ``scheme``; returns (live model, log).

    The interpreter is deterministic in (n, ops) apart from the scheme's
    own randomness, so two schemes seeded identically walk the same
    protocol transcript and the logs are comparable element-wise.
    """
    items = [b"item-%d" % i for i in range(n)]
    fid, ids = scheme.new_file(items)
    model = dict(zip(ids, items))
    log = []
    for op, arg in ops:
        live = sorted(model)
        if op == "toggle":
            if toggler is not None:
                toggler(arg)
        elif op == "access":
            item = live[arg % len(live)]
            log.append(scheme.access(fid, item))
        elif op == "modify":
            item = live[arg % len(live)]
            new = b"mod-%d" % arg
            scheme.modify(fid, item, new)
            model[item] = new
        elif op == "insert":
            new = b"ins-%d" % arg
            item = scheme.insert(fid, new)
            model[item] = new
            log.append(item)
        elif op == "delete":
            if len(live) < 2:  # keep one survivor so reads stay legal
                continue
            item = live[arg % len(live)]
            scheme.delete(fid, item)
            del model[item]
        elif op == "delete_many":
            if len(live) < 2:
                continue
            k = 1 + arg % (len(live) - 1)
            chosen = live[:k]
            scheme.delete_many(fid, chosen)
            for item in chosen:
                del model[item]
        elif op == "fetch":
            log.append(scheme.fetch_file(fid))
    log.append(scheme.fetch_file(fid))
    return fid, model, log


def warm_scheme(seed):
    scheme = LocalScheme(rng=DeterministicRandom(seed))
    scheme.client.enable_cache()
    return scheme


def cold_scheme(seed):
    scheme = LocalScheme(rng=DeterministicRandom(seed))
    scheme.server.view_cache_enabled = False
    return scheme


@given(script=scripts(), seed=st.integers(0, 2 ** 32))
@settings(max_examples=scaled_examples(20), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_warm_equals_cold(script, seed):
    n, ops = script
    warm = warm_scheme(f"coherence-{seed}")
    cold = cold_scheme(f"coherence-{seed}")
    _, warm_model, warm_log = run(warm, n, ops)
    _, cold_model, cold_log = run(cold, n, ops)
    assert warm_log == cold_log
    assert warm_model == cold_model


@given(script=scripts(), seed=st.integers(0, 2 ** 32))
@settings(max_examples=scaled_examples(20), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_toggled_caches_equal_cold(script, seed):
    """Flipping the caches mid-run (including the raw attribute flip
    that leaves stale entries behind) never changes any plaintext."""
    n, ops = script
    warm = warm_scheme(f"toggle-{seed}")
    cold = cold_scheme(f"toggle-{seed}")

    def toggler(arg):
        choice = arg % 3
        if choice == 0:
            warm.client.cache_enabled = not warm.client.cache_enabled
        elif choice == 1:
            warm.client.disable_cache()
            warm.client.enable_cache()
        else:
            warm.server.view_cache_enabled = \
                not warm.server.view_cache_enabled

    _, warm_model, warm_log = run(warm, n, ops, toggler=toggler)
    _, cold_model, cold_log = run(cold, n, ops)
    assert warm_log == cold_log
    assert warm_model == cold_model


@given(script=scripts(), seed=st.integers(0, 2 ** 32))
@settings(max_examples=scaled_examples(15), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_warm_world_matches_model(script, seed):
    """The warm world agrees with the plain dict model -- the final
    fetch returns exactly the surviving plaintexts."""
    n, ops = script
    warm = warm_scheme(f"model-{seed}")
    _, model, log = run(warm, n, ops)
    assert log[-1] == model

"""Stateful property test for the two-level file system.

Hypothesis drives random file-system operations (create, record
read/write/insert/delete, whole-file delete) against a dict-of-lists
oracle, verifying after every step that logical contents match and that
client key storage stays at one control key per group regardless of how
many files and records exist.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from tests.conftest import scaled_examples

payloads = st.binary(min_size=1, max_size=24)
groups = st.sampled_from(["hr", "mail"])


class FileSystemMachine(RuleBasedStateMachine):

    @initialize(seed=st.integers(0, 2 ** 32))
    def setup(self, seed):
        self.fs = OutsourcedFileSystem(rng=DeterministicRandom(f"fsm-{seed}"))
        self.oracle: dict[str, list[bytes]] = {}
        self.created = 0

    def _pick_file(self, data):
        names = sorted(self.oracle)
        return names[data.draw(st.integers(0, len(names) - 1))]

    @rule(group=groups, records=st.lists(payloads, max_size=4))
    def create_file(self, group, records):
        name = f"{group}/file-{self.created}"
        self.created += 1
        self.fs.create_file(name, records)
        self.oracle[name] = list(records)

    @rule(data=st.data())
    @precondition(lambda self: any(self.oracle.values()))
    def read_record(self, data):
        name = data.draw(st.sampled_from(
            sorted(n for n, recs in self.oracle.items() if recs)))
        position = data.draw(st.integers(0, len(self.oracle[name]) - 1))
        assert self.fs.open(name).read_record(position) == \
            self.oracle[name][position]

    @rule(data=st.data(), value=payloads)
    @precondition(lambda self: any(self.oracle.values()))
    def write_record(self, data, value):
        name = data.draw(st.sampled_from(
            sorted(n for n, recs in self.oracle.items() if recs)))
        position = data.draw(st.integers(0, len(self.oracle[name]) - 1))
        self.fs.open(name).write_record(position, value)
        self.oracle[name][position] = value

    @rule(data=st.data(), value=payloads)
    @precondition(lambda self: self.oracle)
    def insert_record(self, data, value):
        name = self._pick_file(data)
        position = data.draw(st.integers(0, len(self.oracle[name])))
        self.fs.open(name).insert_record(position, value)
        self.oracle[name].insert(position, value)

    @rule(data=st.data())
    @precondition(lambda self: any(self.oracle.values()))
    def delete_record(self, data):
        name = data.draw(st.sampled_from(
            sorted(n for n, recs in self.oracle.items() if recs)))
        position = data.draw(st.integers(0, len(self.oracle[name]) - 1))
        self.fs.open(name).delete_record(position)
        del self.oracle[name][position]

    @rule(data=st.data())
    @precondition(lambda self: self.oracle)
    def delete_file(self, data):
        name = self._pick_file(data)
        self.fs.delete_file(name)
        del self.oracle[name]

    @invariant()
    def contents_match_and_keys_stay_small(self):
        if not hasattr(self, "fs"):
            return
        assert sorted(self.fs.list_files()) == sorted(self.oracle)
        for name, records in self.oracle.items():
            assert self.fs.open(name).read_all() == records
        # One 16-byte control key per touched group, never more.
        assert self.fs.client_key_bytes() == 16 * self.fs.control_key_count()
        assert self.fs.control_key_count() <= 2


FileSystemMachine.TestCase.settings = settings(
    max_examples=scaled_examples(10), stateful_step_count=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestFileSystem = FileSystemMachine.TestCase

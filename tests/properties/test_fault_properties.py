"""Property test: random fault schedules never corrupt server state.

Whatever pattern of request drops, response drops, and duplicate
deliveries hits the channel, two things must survive:

* items the client *confirmed* deleted (Ack received, or finalised via
  ``resume_delete``) stay unrecoverable;
* items never touched by a deletion stay readable under the client's
  current keys.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client.client import AssuredDeletionClient
from repro.core.errors import ReproError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.faults import (DROP_REQUEST, DROP_RESPONSE, DUPLICATE,
                                   NONE, ChannelError, FaultInjectingChannel)
from repro.server.server import CloudServer
from repro.sim.threat import Adversary, snapshot_file
from tests.conftest import scaled_examples

fault_kinds = st.sampled_from([NONE, NONE, NONE, DROP_REQUEST, DROP_RESPONSE,
                               DUPLICATE])


@settings(max_examples=scaled_examples(15), deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=st.lists(fault_kinds, max_size=12),
       seed=st.integers(0, 2 ** 16))
def test_faults_never_corrupt_or_resurrect(schedule, seed):
    server = CloudServer()
    channel = FaultInjectingChannel(server, iter([]))
    client = AssuredDeletionClient(channel,
                                   rng=DeterministicRandom(f"fp-{seed}"))
    key = client.outsource(1, [b"item-%d" % i for i in range(6)])
    ids = client.item_ids_of(6)
    channel._schedule = iter(schedule)

    adversary = Adversary()
    adversary.observe(snapshot_file(server, 1))

    confirmed_deleted = []
    untouched = list(ids[3:])
    for victim in ids[:3]:
        try:
            key = client.delete(1, key, victim)
            confirmed_deleted.append(victim)
        except ChannelError:
            # Finalise through the journal; the replay cache makes this
            # exactly-once whether or not the commit had landed.
            try:
                key = client.resume_delete(1, victim)
                confirmed_deleted.append(victim)
            except ChannelError:
                pass  # still pending; deletion not confirmed, skip it
            except ReproError:
                pass
        except ReproError:
            pass
        adversary.observe(snapshot_file(server, 1))

    channel._schedule = iter([])  # calm network for the verdict phase

    # Confirmed-deleted items are dead even against the full adversary.
    adversary.seize_keystore(client.keystore.seize())
    for victim in confirmed_deleted:
        assert adversary.try_recover(victim) is None

    # Untouched items remain readable with the client's current key --
    # unless a deletion is still pending (its Ack carried the only proof
    # of which key generation the server is on), in which case the
    # client knows it is unresolved via pending_deletes().
    if not client.pending_deletes():
        for item in untouched:
            assert client.access(1, key, item) == \
                b"item-%d" % (ids.index(item))

"""Every example script must run cleanly against the public API."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = ["quickstart.py", "employee_roster.py", "mail_backup.py",
            "adversarial_audit.py", "multi_file_system.py",
            "sensor_log.py"]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_proves_unrecoverability():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "unrecoverable" in result.stdout


def test_adversarial_audit_contains_all_attacks():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "adversarial_audit.py")],
        capture_output=True, text=True, timeout=300)
    assert result.stdout.count("REJECTED") == 4
    assert "all attacks contained" in result.stdout

"""The binary wire codec: roundtrips and malformed-input rejection."""

import pytest

from repro.core.errors import ProtocolError
from repro.protocol.wire import Reader, WireContext, Writer

CTX = WireContext(modulator_width=20)


def roundtrip(write, read):
    w = Writer(CTX)
    write(w)
    r = Reader(CTX, w.getvalue())
    value = read(r)
    r.expect_end()
    return value


def test_integers():
    assert roundtrip(lambda w: w.u8(255), lambda r: r.u8()) == 255
    assert roundtrip(lambda w: w.u16(65535), lambda r: r.u16()) == 65535
    assert roundtrip(lambda w: w.u32(2 ** 32 - 1), lambda r: r.u32()) == 2 ** 32 - 1
    assert roundtrip(lambda w: w.u64(2 ** 64 - 1), lambda r: r.u64()) == 2 ** 64 - 1


def test_blob():
    for data in (b"", b"x", b"hello" * 100):
        assert roundtrip(lambda w: w.blob(data), lambda r: r.blob()) == data


def test_modulator():
    value = bytes(range(20))
    assert roundtrip(lambda w: w.modulator(value),
                     lambda r: r.modulator()) == value


def test_modulator_width_enforced():
    w = Writer(CTX)
    with pytest.raises(ProtocolError):
        w.modulator(b"\x00" * 19)


def test_opt_modulator():
    value = bytes(range(20))
    assert roundtrip(lambda w: w.opt_modulator(value),
                     lambda r: r.opt_modulator()) == value
    assert roundtrip(lambda w: w.opt_modulator(None),
                     lambda r: r.opt_modulator()) is None


def test_modulator_list():
    values = [bytes([i]) * 20 for i in range(5)]
    assert roundtrip(lambda w: w.modulator_list(values),
                     lambda r: r.modulator_list()) == values
    assert roundtrip(lambda w: w.modulator_list([]),
                     lambda r: r.modulator_list()) == []


def test_u64_list():
    values = [0, 1, 2 ** 63, 2 ** 64 - 1]
    assert roundtrip(lambda w: w.u64_list(values),
                     lambda r: r.u64_list()) == values


def test_text():
    assert roundtrip(lambda w: w.text("héllo"), lambda r: r.text()) == "héllo"


def test_chained_fields():
    w = Writer(CTX)
    w.u8(1).u32(2).blob(b"three").u64(4)
    r = Reader(CTX, w.getvalue())
    assert (r.u8(), r.u32(), r.blob(), r.u64()) == (1, 2, b"three", 4)
    r.expect_end()


def test_truncation_detected():
    w = Writer(CTX)
    w.u64(7)
    data = w.getvalue()[:-1]
    with pytest.raises(ProtocolError):
        Reader(CTX, data).u64()


def test_trailing_bytes_detected():
    w = Writer(CTX)
    w.u8(1)
    r = Reader(CTX, w.getvalue() + b"extra")
    r.u8()
    with pytest.raises(ProtocolError):
        r.expect_end()


def test_blob_length_beyond_buffer():
    w = Writer(CTX)
    w.u32(1000)  # claims 1000 bytes, none present
    with pytest.raises(ProtocolError):
        Reader(CTX, w.getvalue()).blob()

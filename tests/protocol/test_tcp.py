"""The TCP transport: the full protocol over a real socket."""

import threading
import time

import pytest

from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.faults import ChannelError
from repro.protocol.tcp import RetryPolicy, TcpChannel, TcpServerHost
from repro.server.server import CloudServer

pytestmark = pytest.mark.socket


@pytest.fixture
def hosted_server():
    server = CloudServer()
    with TcpServerHost(server) as host:
        yield server, host


def test_full_protocol_over_tcp(hosted_server):
    server, host = hosted_server
    with TcpChannel(host.address, server.ctx) as channel:
        client = AssuredDeletionClient(channel,
                                       rng=DeterministicRandom("tcp"))
        key = client.outsource(1, [b"net-%d" % i for i in range(5)])
        ids = client.item_ids_of(5)
        assert client.access(1, key, ids[0]) == b"net-0"
        key = client.delete(1, key, ids[2])
        client.modify(1, key, ids[1], b"net-1-v2")
        new_item = client.insert(1, key, b"net-new")
        data = client.fetch_file(1, key)
        assert data[ids[1]] == b"net-1-v2"
        assert data[new_item] == b"net-new"
        assert ids[2] not in data


def test_byte_accounting_matches_loopback(hosted_server):
    """The paper's metric must be transport-independent: the same
    operation costs the same protocol bytes over TCP and loopback."""
    from repro.protocol.channel import LoopbackChannel

    server, host = hosted_server
    with TcpChannel(host.address, server.ctx) as tcp_channel:
        tcp_client = AssuredDeletionClient(tcp_channel,
                                           rng=DeterministicRandom("acct"))
        tcp_client.outsource(1, [b"x"] * 8)
        ids = tcp_client.item_ids_of(8)
        tcp_client.access(1, tcp_client.keystore.get("master:1"), ids[0])
        tcp_record = tcp_client.metrics.for_op("access")[0]

    loop_server = CloudServer()
    loop_client = AssuredDeletionClient(LoopbackChannel(loop_server),
                                        rng=DeterministicRandom("acct"))
    loop_client.outsource(1, [b"x"] * 8)
    loop_ids = loop_client.item_ids_of(8)
    loop_client.access(1, loop_client.keystore.get("master:1"), loop_ids[0])
    loop_record = loop_client.metrics.for_op("access")[0]

    assert tcp_record.bytes_sent == loop_record.bytes_sent
    assert tcp_record.bytes_received == loop_record.bytes_received
    # Framing is tracked separately: 4 bytes each way per round trip.
    assert tcp_channel.frame_bytes == 8 * tcp_record.round_trips or \
        tcp_channel.frame_bytes >= 8


def test_multiple_sequential_connections(hosted_server):
    server, host = hosted_server
    with TcpChannel(host.address, server.ctx) as first:
        client = AssuredDeletionClient(first, rng=DeterministicRandom("c1"))
        key = client.outsource(7, [b"persist"])
        ids = client.item_ids_of(1)
    # A second connection sees the same server state.
    with TcpChannel(host.address, server.ctx) as second:
        client2 = AssuredDeletionClient(second, rng=DeterministicRandom("c2"))
        assert client2.access(7, key, ids[0]) == b"persist"


def test_server_survives_bad_frames(hosted_server):
    import socket

    server, host = hosted_server
    # Send garbage on a raw socket; the server must not die.
    with socket.create_connection(host.address, timeout=5) as raw:
        raw.sendall(b"\x00\x00\x00\x02\xff\xff")  # 2-byte garbage message
        length = raw.recv(4)
        assert len(length) == 4  # an ErrorReply frame came back

    # And the service still works afterwards.
    with TcpChannel(host.address, server.ctx) as channel:
        client = AssuredDeletionClient(channel, rng=DeterministicRandom("c3"))
        client.outsource(9, [b"alive"])


def test_host_requires_handle_bytes():
    with pytest.raises(TypeError):
        TcpServerHost(object())


def test_host_restart_after_stop():
    """stop() then start() must rebind the same address with a fresh
    acceptor thread (threading.Thread objects are single-use)."""
    server = CloudServer()
    host = TcpServerHost(server)
    host.start()
    address = host.address
    try:
        with TcpChannel(address, server.ctx) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("restart"))
            key = client.outsource(1, [b"still-here"])
            ids = client.item_ids_of(1)
        host.stop()
        host.start()
        assert host.address == address
        with TcpChannel(host.address, server.ctx) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("restart2"),
                                           store_keys=False)
            assert client.access(1, key, ids[0]) == b"still-here"
    finally:
        host.stop()


class _SlowOnce:
    """Backend wrapper: the first delivery stalls past the client timeout."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.ctx = inner.ctx
        self.delay = delay
        self.stalled = False

    def handle_bytes(self, data):
        if not self.stalled:
            self.stalled = True
            time.sleep(self.delay)
        return self.inner.handle_bytes(data)


class _SlowReplyOnce:
    """Backend wrapper: the first delete commit is APPLIED but its reply
    stalls past the client timeout (the retransmit-races-slow-Ack case)."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.ctx = inner.ctx
        self.delay = delay
        self.stalled = False

    def handle_bytes(self, data):
        response = self.inner.handle_bytes(data)
        request = msg.decode_message(self.ctx, data)
        if isinstance(request, msg.DeleteCommit) and not self.stalled:
            self.stalled = True
            time.sleep(self.delay)
        return response


def _seeded_file(address, ctx, seed, n=4):
    with TcpChannel(address, ctx) as channel:
        client = AssuredDeletionClient(channel, rng=DeterministicRandom(seed))
        key = client.outsource(1, [b"net-%d" % i for i in range(n)])
        ids = client.item_ids_of(n)
    return key, ids, client.keystore


def test_timed_out_request_never_desyncs_the_stream():
    """Regression for the stale-frame desync: after a timeout the late
    reply to request N must not be consumed as the reply to request N+1.
    The channel must tear the connection down, so the next request gets
    its own reply on a fresh stream."""
    server = CloudServer()
    backend = _SlowOnce(server, delay=1.0)
    with TcpServerHost(backend) as host:
        key, ids, _ks = _seeded_file(host.address, server.ctx, "desync")
        backend.stalled = False  # stall the next delivery
        with TcpChannel(host.address, server.ctx,
                        retry=RetryPolicy(attempts=1, timeout=0.2)) as channel:
            with pytest.raises(ChannelError):
                channel.request(msg.AccessRequest(file_id=1, item_id=ids[0]))
            # The stalled AccessReply is still in flight.  This request
            # must be answered by a FetchFileReply, not that stale frame.
            reply = channel.request(msg.FetchFileRequest(file_id=1))
            assert isinstance(reply, msg.FetchFileReply)
            assert len(reply.ciphertexts) == 4


def test_timeout_is_retried_transparently():
    server = CloudServer()
    backend = _SlowOnce(server, delay=1.0)
    with TcpServerHost(backend) as host:
        key, ids, keystore = _seeded_file(host.address, server.ctx, "retry")
        backend.stalled = False  # stall the next delivery
        retry = RetryPolicy(attempts=3, timeout=0.25, base_delay=0.01)
        with TcpChannel(host.address, server.ctx, retry=retry) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("retry2"),
                                           keystore=keystore, store_keys=False)
            # The first attempt times out; the retransmit succeeds without
            # the caller ever seeing the failure.
            assert client.access(1, key, ids[1]) == b"net-1"
            assert channel.counters.retransmits >= 1


def test_retransmitted_commit_applies_exactly_once_over_tcp():
    """A delete commit whose Ack is slow is retransmitted on a fresh
    connection; the server's request-id cache answers it without applying
    the deltas twice."""
    server = CloudServer()
    backend = _SlowReplyOnce(server, delay=1.0)
    with TcpServerHost(backend) as host:
        key, ids, keystore = _seeded_file(host.address, server.ctx, "idem")
        retry = RetryPolicy(attempts=4, timeout=0.25, base_delay=0.01)
        with TcpChannel(host.address, server.ctx, retry=retry) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("idem2"),
                                           keystore=keystore, store_keys=False)
            new_key = client.delete(1, key, ids[2])
            assert channel.counters.retransmits >= 1
            assert server.file_state(1).tree.leaf_count == 3
            assert server.file_state(1).version == 1  # applied exactly once
            for index in (0, 1, 3):
                assert client.access(1, new_key, ids[index]) == \
                    b"net-%d" % index


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0)
    with pytest.raises(ValueError):
        # The timeout lives inside the policy; passing both is ambiguous.
        TcpChannel(("127.0.0.1", 1), CloudServer().ctx, timeout=1.0,
                   retry=RetryPolicy())
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3)
    assert policy.delay_before(1) == pytest.approx(0.1)
    assert policy.delay_before(2) == pytest.approx(0.2)
    assert policy.delay_before(3) == pytest.approx(0.3)  # capped
    assert policy.delay_before(9) == pytest.approx(0.3)


# ---------------------------------------------------------------------
# Orderly shutdown: stop() joins in-flight handlers instead of relying
# on daemon threads, bounded by a grace deadline.
# ---------------------------------------------------------------------

class _SlowBackend:
    """Backend whose handling takes ``delay`` seconds (models a WAL
    fsync in progress when the host is asked to stop)."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.ctx = inner.ctx
        self.delay = delay
        self.entered = threading.Event()
        self.completed = 0

    def handle_bytes(self, data):
        self.entered.set()
        time.sleep(self.delay)
        response = self.inner.handle_bytes(data)
        self.completed += 1
        return response


def test_stop_joins_inflight_handler_work():
    """stop() must let a request already inside the backend finish (and
    its reply go out) rather than killing the thread mid-write."""
    server = CloudServer()
    backend = _SlowBackend(server, delay=0.5)
    host = TcpServerHost(backend).start()
    results = {}

    def worker():
        with TcpChannel(host.address, server.ctx,
                        retry=RetryPolicy(attempts=1, timeout=15.0)) as ch:
            results["reply"] = ch.request(msg.FetchFileRequest(file_id=1))

    thread = threading.Thread(target=worker)
    thread.start()
    assert backend.entered.wait(5.0)
    start = time.monotonic()
    host.stop()
    elapsed = time.monotonic() - start
    # The in-flight backend work ran to completion before stop returned...
    assert backend.completed == 1
    assert elapsed < 6.0
    # ...and the client still received the reply that was in flight.
    thread.join(timeout=5.0)
    assert isinstance(results.get("reply"), msg.ErrorReply)


def test_stop_prompt_with_idle_connection():
    """An idle persistent connection (handler parked in recv) must not
    make stop() wait out the whole grace period."""
    server = CloudServer()
    host = TcpServerHost(server).start()
    channel = TcpChannel(host.address, server.ctx)
    channel.request(msg.FetchFileRequest(file_id=1))  # handler now idle
    start = time.monotonic()
    host.stop(grace=10.0)
    assert time.monotonic() - start < 3.0
    channel.close()


def test_stop_abandons_wedged_handler_after_grace():
    """A backend that never returns cannot hang shutdown forever: after
    the grace deadline the handler is abandoned and stop() returns."""
    server = CloudServer()
    release = threading.Event()
    entered = threading.Event()

    class _Wedged:
        ctx = server.ctx

        def handle_bytes(self, data):
            entered.set()
            release.wait(30.0)
            return server.handle_bytes(data)

    host = TcpServerHost(_Wedged()).start()

    def worker():
        try:
            with TcpChannel(host.address, server.ctx,
                            retry=RetryPolicy(attempts=1,
                                              timeout=30.0)) as ch:
                ch.request(msg.FetchFileRequest(file_id=1))
        except Exception:
            pass  # the abandoned socket is force-closed under us

    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    assert entered.wait(5.0)
    start = time.monotonic()
    host.stop(grace=0.3)
    assert time.monotonic() - start < 5.0
    release.set()
    thread.join(timeout=5.0)


def test_max_conns_bounds_concurrent_connections():
    """With max_conns=1 a second connection is only served after the
    first closes (backpressure via the listen backlog)."""
    server = CloudServer()
    with TcpServerHost(server, max_conns=1) as host:
        first = TcpChannel(host.address, server.ctx)
        first.request(msg.FetchFileRequest(file_id=1))  # holds the slot
        done = threading.Event()
        results = {}

        def worker():
            with TcpChannel(host.address, server.ctx,
                            retry=RetryPolicy(attempts=1,
                                              timeout=15.0)) as ch:
                results["reply"] = ch.request(
                    msg.FetchFileRequest(file_id=1))
                done.set()

        thread = threading.Thread(target=worker)
        thread.start()
        # The second connection sits in the backlog while the first one
        # occupies the only slot.
        assert not done.wait(0.4)
        first.close()
        assert done.wait(10.0)
        thread.join(timeout=5.0)
        assert isinstance(results["reply"], msg.ErrorReply)


def test_max_conns_validation():
    with pytest.raises(ValueError):
        TcpServerHost(CloudServer(), max_conns=0)


def test_failed_dispatch_releases_conn_slot(monkeypatch):
    """Regression: if the handler thread cannot be started the slot
    acquired in process_request must be given back -- with max_conns=1 a
    leaked slot would lock every later client out forever."""
    server = CloudServer()
    with TcpServerHost(server, max_conns=1) as host:
        threaded = getattr(host, "_server", None)
        if threaded is None or not hasattr(threaded, "conn_slots"):
            return  # not the threaded host (async rerun): nothing to leak
        # Swallow the injected dispatch error instead of printing it.
        monkeypatch.setattr(threaded, "handle_error", lambda *a: None)
        tripped = []
        real_start = threading.Thread.start

        def flaky_start(self):
            target = getattr(self, "_target", None)
            if (not tripped
                    and getattr(target, "__name__", "")
                    == "process_request_thread"):
                tripped.append(True)
                raise RuntimeError("injected thread-creation failure")
            return real_start(self)

        monkeypatch.setattr(threading.Thread, "start", flaky_start)
        retry = RetryPolicy(attempts=3, timeout=5.0, base_delay=0.01)
        with TcpChannel(host.address, server.ctx, retry=retry) as channel:
            # First attempt dies with the injected failure; the retry
            # re-dials and must be served -- impossible if the slot leaked.
            reply = channel.request(msg.FetchFileRequest(file_id=1))
            assert isinstance(reply, msg.ErrorReply)
        assert tripped
        # And the (only) slot is free again for a fresh connection.
        with TcpChannel(host.address, server.ctx, retry=retry) as channel:
            reply = channel.request(msg.FetchFileRequest(file_id=1))
            assert isinstance(reply, msg.ErrorReply)


def test_close_interrupts_retry_backoff():
    """Regression: the exponential backoff used to sleep while holding
    the channel lock, so close() blocked for the full retry schedule."""
    import socket as socket_mod

    listener = socket_mod.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    try:
        # Accepts but never replies: every attempt times out, and the
        # huge base_delay parks the retry loop in its backoff sleep.
        retry = RetryPolicy(attempts=3, timeout=0.2, base_delay=30.0)
        channel = TcpChannel(listener.getsockname(), server_ctx(), retry=retry)
        failed = threading.Event()

        def worker():
            with pytest.raises(ChannelError):
                channel.request(msg.FetchFileRequest(file_id=1))
            failed.set()

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.5)  # first attempt timed out; now inside the backoff
        start = time.monotonic()
        channel.close()
        assert failed.wait(5.0)
        assert time.monotonic() - start < 5.0  # not the 30 s backoff
        thread.join(timeout=5.0)
    finally:
        listener.close()


def server_ctx():
    return CloudServer().ctx

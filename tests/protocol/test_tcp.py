"""The TCP transport: the full protocol over a real socket."""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import ProtocolError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.tcp import TcpChannel, TcpServerHost
from repro.server.server import CloudServer


@pytest.fixture
def hosted_server():
    server = CloudServer()
    with TcpServerHost(server) as host:
        yield server, host


def test_full_protocol_over_tcp(hosted_server):
    server, host = hosted_server
    with TcpChannel(host.address, server.ctx) as channel:
        client = AssuredDeletionClient(channel,
                                       rng=DeterministicRandom("tcp"))
        key = client.outsource(1, [b"net-%d" % i for i in range(5)])
        ids = client.item_ids_of(5)
        assert client.access(1, key, ids[0]) == b"net-0"
        key = client.delete(1, key, ids[2])
        client.modify(1, key, ids[1], b"net-1-v2")
        new_item = client.insert(1, key, b"net-new")
        data = client.fetch_file(1, key)
        assert data[ids[1]] == b"net-1-v2"
        assert data[new_item] == b"net-new"
        assert ids[2] not in data


def test_byte_accounting_matches_loopback(hosted_server):
    """The paper's metric must be transport-independent: the same
    operation costs the same protocol bytes over TCP and loopback."""
    from repro.protocol.channel import LoopbackChannel

    server, host = hosted_server
    with TcpChannel(host.address, server.ctx) as tcp_channel:
        tcp_client = AssuredDeletionClient(tcp_channel,
                                           rng=DeterministicRandom("acct"))
        tcp_client.outsource(1, [b"x"] * 8)
        ids = tcp_client.item_ids_of(8)
        tcp_client.access(1, tcp_client.keystore.get("master:1"), ids[0])
        tcp_record = tcp_client.metrics.for_op("access")[0]

    loop_server = CloudServer()
    loop_client = AssuredDeletionClient(LoopbackChannel(loop_server),
                                        rng=DeterministicRandom("acct"))
    loop_client.outsource(1, [b"x"] * 8)
    loop_ids = loop_client.item_ids_of(8)
    loop_client.access(1, loop_client.keystore.get("master:1"), loop_ids[0])
    loop_record = loop_client.metrics.for_op("access")[0]

    assert tcp_record.bytes_sent == loop_record.bytes_sent
    assert tcp_record.bytes_received == loop_record.bytes_received
    # Framing is tracked separately: 4 bytes each way per round trip.
    assert tcp_channel.frame_bytes == 8 * tcp_record.round_trips or \
        tcp_channel.frame_bytes >= 8


def test_multiple_sequential_connections(hosted_server):
    server, host = hosted_server
    with TcpChannel(host.address, server.ctx) as first:
        client = AssuredDeletionClient(first, rng=DeterministicRandom("c1"))
        key = client.outsource(7, [b"persist"])
        ids = client.item_ids_of(1)
    # A second connection sees the same server state.
    with TcpChannel(host.address, server.ctx) as second:
        client2 = AssuredDeletionClient(second, rng=DeterministicRandom("c2"))
        assert client2.access(7, key, ids[0]) == b"persist"


def test_server_survives_bad_frames(hosted_server):
    import socket

    server, host = hosted_server
    # Send garbage on a raw socket; the server must not die.
    with socket.create_connection(host.address, timeout=5) as raw:
        raw.sendall(b"\x00\x00\x00\x02\xff\xff")  # 2-byte garbage message
        length = raw.recv(4)
        assert len(length) == 4  # an ErrorReply frame came back

    # And the service still works afterwards.
    with TcpChannel(host.address, server.ctx) as channel:
        client = AssuredDeletionClient(channel, rng=DeterministicRandom("c3"))
        client.outsource(9, [b"alive"])


def test_host_requires_handle_bytes():
    with pytest.raises(TypeError):
        TcpServerHost(object())

"""Wire compatibility: the FULL sync-TCP suite against the async host.

The asyncio host must be a drop-in for the threaded one: the sync
:class:`~repro.protocol.tcp.TcpChannel` (untagged frames, one request
outstanding) has to pass every existing TCP test unchanged.  This module
re-collects ``test_tcp.py`` with its ``TcpServerHost`` name rebound to
:class:`~repro.protocol.aio.AsyncTcpServerHost` -- same tests, same
assertions, different host.
"""

import importlib.util
import os

import pytest

from repro.protocol.aio import AsyncTcpServerHost

pytestmark = pytest.mark.socket

_PATH = os.path.join(os.path.dirname(__file__), "test_tcp.py")
_SPEC = importlib.util.spec_from_file_location("repro_tcp_suite_rerun", _PATH)
tcp_suite = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(tcp_suite)


@pytest.fixture(autouse=True)
def _use_async_host(monkeypatch):
    """Rebind the suite's host class to the asyncio implementation."""
    monkeypatch.setattr(tcp_suite, "TcpServerHost", AsyncTcpServerHost)


# Re-export every test (and the fixtures they use) for collection here.
# The functions keep ``tcp_suite`` as their globals, so the autouse
# monkeypatch above swaps the host they construct.
hosted_server = tcp_suite.hosted_server

for _name in dir(tcp_suite):
    if _name.startswith("test_"):
        globals()[_name] = getattr(tcp_suite, _name)
del _name

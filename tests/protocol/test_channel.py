"""Metering channel: byte counting, payload split, network model."""

import pytest

from repro.core.errors import ProtocolError
from repro.protocol import messages as msg
from repro.protocol.channel import ChannelCounters, LoopbackChannel
from repro.protocol.wire import WireContext
from repro.server.server import CloudServer
from repro.sim.network import EC2_PROFILE, LAN_PROFILE, NetworkModel


def test_counts_real_encoded_bytes():
    server = CloudServer()
    channel = LoopbackChannel(server)
    request = msg.DeleteFileRequest(file_id=3)
    encoded = msg.encode_message(server.ctx, request)
    reply = channel.request(request)
    assert isinstance(reply, msg.Ack)
    assert channel.counters.bytes_sent == len(encoded)
    assert channel.counters.bytes_received == \
        len(msg.encode_message(server.ctx, reply))
    assert channel.counters.round_trips == 1


def test_payload_split(scheme):
    fid, ids = scheme.new_file([b"A" * 1000])
    counters_before = scheme.channel.counters.snapshot()
    scheme.access(fid, ids[0])
    delta = scheme.channel.counters.delta(counters_before)
    assert delta.payload_received >= 1000
    assert delta.payload_sent == 0
    assert delta.bytes_received > delta.payload_received


def test_counters_snapshot_delta():
    a = ChannelCounters(bytes_sent=10, bytes_received=20, payload_sent=1,
                        payload_received=2, round_trips=1)
    b = ChannelCounters(bytes_sent=25, bytes_received=60, payload_sent=4,
                        payload_received=12, round_trips=3)
    delta = b.delta(a)
    assert (delta.bytes_sent, delta.bytes_received) == (15, 40)
    assert (delta.payload_sent, delta.payload_received) == (3, 10)
    assert delta.round_trips == 2


def test_network_model_accumulates_virtual_time():
    server = CloudServer()
    channel = LoopbackChannel(server, network=NetworkModel(
        rtt_seconds=0.1, uplink_bytes_per_second=1000,
        downlink_bytes_per_second=1000))
    channel.request(msg.DeleteFileRequest(file_id=1))
    counters = channel.counters
    expected = 0.1 + (counters.bytes_sent + counters.bytes_received) / 1000
    assert counters.simulated_seconds == pytest.approx(expected)


def test_network_profiles_ordering():
    assert LAN_PROFILE.round_trip_seconds(1000, 1000) < \
        EC2_PROFILE.round_trip_seconds(1000, 1000)


def test_server_time_is_metered():
    server = CloudServer()
    channel = LoopbackChannel(server)
    channel.request(msg.DeleteFileRequest(file_id=1))
    assert channel.counters.server_seconds > 0


def test_channel_requires_wire_context():
    class Bare:
        def handle_bytes(self, data):
            return data

    with pytest.raises(ProtocolError):
        LoopbackChannel(Bare())
    channel = LoopbackChannel(Bare(), ctx=WireContext(modulator_width=20))
    assert channel.ctx.modulator_width == 20

"""Every protocol message roundtrips through the wire codec."""

import pytest

from repro.baselines import messages as bmsg
from repro.core.errors import ProtocolError
from repro.core.ops import BalanceMove
from repro.core.tree import BalanceView, CutEntry, MTView, PathView
from repro.protocol import messages as msg
from repro.protocol.wire import WireContext

CTX = WireContext(modulator_width=20)


def m(byte: int) -> bytes:
    return bytes([byte]) * 20


PATH = PathView(path_slots=(1, 2, 5), path_links=(m(1), m(2)), leaf_mod=m(3))
MT = MTView(path_slots=(1, 2, 5), path_links=(m(1), m(2)), leaf_mod=m(3),
            cut=(CutEntry(slot=3, link_mod=m(4), is_leaf=False),
                 CutEntry(slot=4, link_mod=m(5), is_leaf=True, leaf_mod=m(6))))
BALANCE = BalanceView(t_path=PATH, s_slot=4, s_link_mod=m(7), s_leaf_mod=m(8))

MESSAGES = [
    msg.Ack(tree_version=9, item_id=3),
    msg.ErrorReply(code=msg.E_STALE_STATE, detail="try again"),
    msg.OutsourceRequest(file_id=1, item_ids=(10, 11), links=(m(1), m(2)),
                         leaves=(m(3), m(4)), ciphertexts=(b"ct-a", b"ct-b"),
                         request_id=0xDEADBEEFCAFEF00D),
    msg.AccessRequest(file_id=1, item_id=10),
    msg.AccessReply(path=PATH, ciphertext=b"ct", tree_version=4),
    msg.ModifyCommit(file_id=1, item_id=10, ciphertext=b"ct2", tree_version=4,
                     request_id=1),
    msg.DeleteRequest(file_id=1, item_id=10),
    msg.DeleteChallenge(mt=MT, ciphertext=b"ct", balance=BALANCE,
                        tree_version=4),
    msg.DeleteChallenge(mt=MT, ciphertext=b"ct", balance=None, tree_version=4),
    msg.DeleteCommit(file_id=1, item_id=10, cut_slots=(3, 4),
                     deltas=(m(9), m(10)), x_s_prime=m(11), dest_link=None,
                     dest_leaf=m(12), tree_version=4,
                     request_id=(1 << 64) - 1),
    msg.InsertRequest(file_id=1),
    msg.InsertChallenge(path=PATH, tree_version=4),
    msg.InsertChallenge(path=None, tree_version=0),
    msg.InsertCommit(file_id=1, item_id=20, t_new_link=m(1), t_new_leaf=m(2),
                     e_link=m(3), e_leaf=m(4), ciphertext=b"ct",
                     tree_version=4, request_id=7),
    msg.InsertCommit(file_id=1, item_id=20, t_new_link=None, t_new_leaf=None,
                     e_link=None, e_leaf=m(4), ciphertext=b"ct",
                     tree_version=0),
    msg.FetchFileRequest(file_id=1),
    msg.FetchFileReply(n_leaves=2, item_ids=(10, 11), links=(m(1), m(2)),
                       leaves=(m(3), m(4)), ciphertexts=(b"a", b"b"),
                       tree_version=4),
    msg.DeleteFileRequest(file_id=1),
    msg.DeleteFileRequest(file_id=1, request_id=42),
    msg.BatchDeleteRequest(file_id=1, item_ids=(10, 12, 11)),
    msg.BatchDeleteReply(n_leaves=4, target_slots=(5, 7, 6),
                         links=(m(1), m(2), m(3), m(4), m(5), m(6)),
                         leaf_mods=(m(7), m(8), m(9), m(10)),
                         ciphertexts=(b"a", b"bb", b"ccc"), tree_version=4),
    msg.BatchDeleteCommit(file_id=1, item_ids=(10, 12, 11),
                          deltas=(m(1), m(2)),
                          moves=(BalanceMove(m(3), m(4), m(5)),
                                 BalanceMove(m(6), None, m(7)),
                                 BalanceMove(None, None, None)),
                          tree_version=4, request_id=0x0102030405060708),
    bmsg.BlobUploadAll(file_id=1, item_ids=(1, 2), ciphertexts=(b"x", b"y")),
    bmsg.BlobGet(file_id=1, item_id=2),
    bmsg.BlobReply(ciphertext=b"data"),
    bmsg.BlobGetAll(file_id=1),
    bmsg.BlobAllReply(item_ids=(1,), ciphertexts=(b"x",)),
    bmsg.BlobPut(file_id=1, item_id=2, ciphertext=b"z"),
    bmsg.BlobDelete(file_id=1, item_id=2),
]


@pytest.mark.parametrize("message", MESSAGES,
                         ids=[type(m_).__name__ + f"-{i}"
                              for i, m_ in enumerate(MESSAGES)])
def test_roundtrip(message):
    encoded = msg.encode_message(CTX, message)
    decoded = msg.decode_message(CTX, encoded)
    assert decoded == message


def test_unknown_type_rejected():
    with pytest.raises(ProtocolError):
        msg.decode_message(CTX, b"\xfa")


def test_trailing_garbage_rejected():
    encoded = msg.encode_message(CTX, msg.Ack())
    with pytest.raises(ProtocolError):
        msg.decode_message(CTX, encoded + b"\x00")


def test_payload_bytes_accounting():
    reply = msg.AccessReply(path=PATH, ciphertext=b"\x00" * 100,
                            tree_version=0)
    assert reply.payload_bytes() == 104  # blob framing + content
    assert msg.AccessRequest().payload_bytes() == 0
    upload = msg.OutsourceRequest(ciphertexts=(b"ab", b"cdef"))
    assert upload.payload_bytes() == (4 + 2) + (4 + 4)
    batch = msg.BatchDeleteReply(ciphertexts=(b"ab", b"cdef"))
    assert batch.payload_bytes() == (4 + 2) + (4 + 4)
    assert msg.BatchDeleteCommit().payload_bytes() == 0


def test_payload_is_smaller_than_message():
    reply = msg.AccessReply(path=PATH, ciphertext=b"\x00" * 100,
                            tree_version=0)
    assert reply.payload_bytes() < len(msg.encode_message(CTX, reply))


def test_type_tags_unique():
    from repro.protocol.messages import _REGISTRY
    assert len(_REGISTRY) >= 20

"""Recovery semantics under message loss and duplication.

These tests pin down what the protocol guarantees when the network
misbehaves -- in particular that *assured deletion stays assured* and
that versioned commits are never applied twice.
"""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import UnknownItemError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.faults import (CRASH_BEFORE_APPLY, DELAY, DROP_REQUEST,
                                   DROP_RESPONSE, DUPLICATE, NONE,
                                   ChannelError, FaultInjectingChannel)
from repro.server.server import CloudServer
from repro.sim.threat import Adversary, snapshot_file

pytestmark = pytest.mark.slow


def make_pair(schedule, seed="faults"):
    server = CloudServer()
    channel = FaultInjectingChannel(server, schedule)
    client = AssuredDeletionClient(channel, rng=DeterministicRandom(seed))
    return server, channel, client


def outsourced(schedule, n=4, seed="faults"):
    server, channel, client = make_pair(iter([]), seed)
    key = client.outsource(1, [b"item-%d" % i for i in range(n)])
    ids = client.item_ids_of(n)
    channel._schedule = iter(schedule)
    return server, channel, client, key, ids


def test_dropped_read_is_safely_retryable():
    server, channel, client, key, ids = outsourced([DROP_REQUEST])
    with pytest.raises(ChannelError):
        client.access(1, key, ids[0])
    assert client.access(1, key, ids[0]) == b"item-0"


def test_duplicated_read_is_harmless():
    _server, channel, client, key, ids = outsourced([DUPLICATE])
    assert client.access(1, key, ids[0]) == b"item-0"
    assert channel.faults_injected == [DUPLICATE]


def test_duplicated_delete_commit_applies_once():
    """A retransmitted commit must not XOR the deltas twice: the version
    bump on first application makes the duplicate a stale no-op."""
    # Schedule: challenge passes, commit duplicated.
    server, channel, client, key, ids = outsourced([NONE, DUPLICATE])
    new_key = client.delete(1, key, ids[1])
    # All surviving items still decrypt => deltas applied exactly once.
    for index in (0, 2, 3):
        assert client.access(1, new_key, ids[index]) == b"item-%d" % index


def test_duplicated_insert_commit_applies_once():
    server, channel, client, key, ids = outsourced([NONE, DUPLICATE])
    item = client.insert(1, key, b"fresh")
    assert client.access(1, key, item) == b"fresh"
    assert server.file_state(1).tree.leaf_count == 5  # not 6


def test_lost_delete_ack_is_resumable_and_then_assured():
    """The worst case: the server applied the deletion but the ACK is
    lost.  The client journals the commit before sending, so it can
    finalise through the server's replay cache: the deletion completes
    exactly once, the old key is then shredded (deletion time T), and
    both assurance and availability hold."""
    server, channel, client, key, ids = outsourced([NONE, DROP_RESPONSE])

    adversary = Adversary()
    adversary.observe(snapshot_file(server, 1))

    with pytest.raises(ChannelError):
        client.delete(1, key, ids[1])
    adversary.observe(snapshot_file(server, 1))

    # Before finalisation the deletion is NOT assured: the old key is
    # still on the device (the paper's T has not happened yet).
    assert client.pending_deletes() == [(1, ids[1])]

    new_key = client.resume_delete(1, ids[1])
    adversary.observe(snapshot_file(server, 1))

    # Now the device is seized: the deleted item is dead, survivors live.
    adversary.seize_keystore(client.keystore.seize())
    assert adversary.try_recover(ids[1]) is None
    assert client.access(1, new_key, ids[0]) == b"item-0"
    assert client.pending_deletes() == []


def test_lost_delete_ack_when_commit_never_arrived():
    """Same journal, other branch: the COMMIT was lost (server never
    acted).  resume_delete applies it now, exactly once."""
    server, channel, client, key, ids = outsourced([NONE, DROP_REQUEST])
    with pytest.raises(ChannelError):
        client.delete(1, key, ids[2])
    assert server.file_state(1).tree.leaf_count == 4  # nothing happened
    new_key = client.resume_delete(1, ids[2])
    assert server.file_state(1).tree.leaf_count == 3
    assert client.access(1, new_key, ids[0]) == b"item-0"
    with pytest.raises(UnknownItemError):
        client.access(1, new_key, ids[2])


def test_resume_delete_requires_a_journal_entry():
    _server, _channel, client, key, ids = outsourced([])
    with pytest.raises(UnknownItemError):
        client.resume_delete(1, ids[0])


def test_lost_batch_ack_is_resumable_and_then_assured():
    """Batch analogue of the lost-Ack worst case: the server applied the
    whole batch but the Ack was lost.  The journalled commit finalises
    through the replay cache -- applied exactly once -- and only then is
    the old key shredded."""
    server, channel, client, key, ids = outsourced([NONE, DROP_RESPONSE], n=6)
    victims = (ids[1], ids[4])

    adversary = Adversary()
    adversary.observe(snapshot_file(server, 1))

    with pytest.raises(ChannelError):
        client.delete_many(1, key, victims)
    adversary.observe(snapshot_file(server, 1))
    assert server.file_state(1).tree.leaf_count == 4  # server DID act
    assert client.pending_batch_deletes() == [(1, victims)]

    new_key = client.resume_delete_many(1, victims)
    adversary.observe(snapshot_file(server, 1))
    assert server.file_state(1).tree.leaf_count == 4  # applied exactly once

    adversary.seize_keystore(client.keystore.seize())
    for victim in victims:
        assert adversary.try_recover(victim) is None
    assert client.access(1, new_key, ids[0]) == b"item-0"
    assert client.pending_batch_deletes() == []


def test_lost_batch_commit_request_is_resumable():
    """Other branch: the batch COMMIT was lost (server never acted)."""
    server, channel, client, key, ids = outsourced([NONE, DROP_REQUEST], n=6)
    victims = (ids[0], ids[5], ids[2])
    with pytest.raises(ChannelError):
        client.delete_many(1, key, victims)
    assert server.file_state(1).tree.leaf_count == 6  # nothing happened
    new_key = client.resume_delete_many(1, victims)
    assert server.file_state(1).tree.leaf_count == 3
    assert client.access(1, new_key, ids[1]) == b"item-1"
    for victim in victims:
        with pytest.raises(UnknownItemError):
            client.access(1, new_key, victim)


def test_duplicated_batch_commit_applies_once():
    server, channel, client, key, ids = outsourced([NONE, DUPLICATE], n=6)
    new_key = client.delete_many(1, key, (ids[1], ids[3]))
    assert server.file_state(1).tree.leaf_count == 4
    assert server.file_state(1).version == 1
    for index in (0, 2, 4, 5):
        assert client.access(1, new_key, ids[index]) == b"item-%d" % index


def test_resume_batch_requires_a_journal_entry():
    _server, _channel, client, key, ids = outsourced([])
    with pytest.raises(UnknownItemError):
        client.resume_delete_many(1, (ids[0], ids[1]))


def test_lost_modify_commit_response():
    server, channel, client, key, ids = outsourced([NONE, DROP_RESPONSE])
    with pytest.raises(ChannelError):
        client.modify(1, key, ids[0], b"new-value")
    # The write actually landed; a re-read shows it.
    assert client.access(1, key, ids[0]) == b"new-value"


def test_unknown_fault_kind_rejected():
    server, channel, client, key, ids = outsourced(["explode"])
    with pytest.raises(ValueError):
        client.access(1, key, ids[0])


def test_delayed_request_still_succeeds():
    server, channel, client, key, ids = outsourced([DELAY])
    channel.delay_seconds = 0.01
    assert client.access(1, key, ids[0]) == b"item-0"
    assert channel.faults_injected == [DELAY]


def test_server_seconds_are_metered():
    """The fault channel must separate server time from client time the
    way the loopback channel does, or Figure-6 metrics lie under fault
    schedules."""
    server, channel, client, key, ids = outsourced([])
    assert channel.counters.server_seconds > 0.0  # the outsource itself

    before = channel.counters.snapshot()
    client.access(1, key, ids[0])
    single = channel.counters.delta(before).server_seconds
    assert single > 0.0

    # A duplicated delivery runs the server twice; both runs are metered.
    channel._schedule = iter([DUPLICATE])
    before = channel.counters.snapshot()
    client.access(1, key, ids[0])
    doubled = channel.counters.delta(before).server_seconds
    assert doubled > 0.0

    # A dropped response still cost the server its work.
    channel._schedule = iter([DROP_RESPONSE])
    before = channel.counters.snapshot()
    with pytest.raises(ChannelError):
        client.access(1, key, ids[0])
    assert channel.counters.delta(before).server_seconds > 0.0


def test_crash_trap_does_not_leak_to_later_requests():
    """A crash scheduled against a non-mutating request never fires (the
    crash points sit on the commit path); it must be disarmed rather than
    left waiting for the next mutating request."""
    server, channel, client, key, ids = outsourced([CRASH_BEFORE_APPLY])
    assert client.access(1, key, ids[0]) == b"item-0"
    assert channel.faults_injected == [CRASH_BEFORE_APPLY]
    client.delete(1, key, ids[1])  # would crash if the trap leaked
    assert server.file_state(1).tree.leaf_count == 3

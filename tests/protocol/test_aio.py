"""Pipelining semantics of the asyncio transport.

The wire-compatibility suite (``test_tcp_async_host.py``) proves the
async host serves the legacy untagged framing; this module pins what is
NEW: tagged frames correlated out of order, idempotent retransmission of
an in-flight pipelined mutator under a fresh tag, ordered untagged
replies under raw pipelining, and the error-reply echo (``request_id`` +
trace trailer) for failures.
"""

import socket
import struct
import threading
import time

import pytest

from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.aio import TAG_FLAG, AsyncTcpChannel, AsyncTcpServerHost
from repro.protocol.faults import ChannelError
from repro.protocol.tcp import RetryPolicy
from repro.server.server import CloudServer

pytestmark = pytest.mark.socket

_LEN = struct.Struct(">I")
_TAG = struct.Struct(">Q")


def _seeded(host, server, seed="aio", n=4):
    with AsyncTcpChannel(host.address, server.ctx) as channel:
        client = AssuredDeletionClient(channel, rng=DeterministicRandom(seed))
        key = client.outsource(1, [b"net-%d" % i for i in range(n)])
        ids = client.item_ids_of(n)
    return key, ids, client.keystore


class _StallFirstAccess:
    """Backend wrapper: AccessRequests park until released; everything
    else is served immediately (forces out-of-order completion)."""

    def __init__(self, inner):
        self.inner = inner
        self.ctx = inner.ctx
        self.release = threading.Event()
        self.parked = threading.Event()

    def handle_bytes(self, data):
        request = msg.decode_message(self.ctx, data)
        if isinstance(request, msg.AccessRequest):
            self.parked.set()
            assert self.release.wait(10.0)
        return self.inner.handle_bytes(data)


def test_out_of_order_replies_are_correlated_by_tag():
    """A fast request issued AFTER a stalled one completes first; both
    land on their own callers (no cross-talk, no teardown)."""
    server = CloudServer()
    backend = _StallFirstAccess(server)
    with AsyncTcpServerHost(backend) as host:
        key, ids, _ks = _seeded(host, server)
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            replies = {}

            def slow():
                replies["slow"] = channel.request(
                    msg.AccessRequest(file_id=1, item_id=ids[0]))

            slow_thread = threading.Thread(target=slow)
            slow_thread.start()
            assert backend.parked.wait(5.0)
            # The stalled access is in flight on the SAME connection;
            # this fetch must overtake it.
            reply = channel.request(msg.FetchFileRequest(file_id=1))
            assert isinstance(reply, msg.FetchFileReply)
            assert not replies  # the slow one is still parked
            backend.release.set()
            slow_thread.join(timeout=5.0)
            assert isinstance(replies["slow"], msg.AccessReply)
            assert channel.counters.retransmits == 0


class _SlowReplyOnce:
    """First ModifyCommit is APPLIED but its reply stalls past the
    client timeout (retransmit-races-slow-Ack, pipelined edition)."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.ctx = inner.ctx
        self.delay = delay
        self.stalled = False

    def handle_bytes(self, data):
        response = self.inner.handle_bytes(data)
        request = msg.decode_message(self.ctx, data)
        if isinstance(request, msg.ModifyCommit) and not self.stalled:
            self.stalled = True
            time.sleep(self.delay)
        return response


def test_inflight_mutator_retransmit_is_idempotent_and_keeps_connection():
    """A pipelined mutator whose reply is slow is retransmitted under a
    FRESH tag on the SAME connection; the server's request-id cache
    answers it without applying twice, and the late original reply is
    dropped by its stale tag."""
    server = CloudServer()
    backend = _SlowReplyOnce(server, delay=1.0)
    with AsyncTcpServerHost(backend) as host:
        key, ids, keystore = _seeded(host, server, seed="idem")
        retry = RetryPolicy(attempts=4, timeout=0.25, base_delay=0.01)
        with AsyncTcpChannel(host.address, server.ctx,
                             retry=retry) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("idem2"),
                                           keystore=keystore,
                                           store_keys=False)
            client.modify(1, key, ids[1], b"patched")
            assert channel.counters.retransmits >= 1
            # Unlike the sync channel, a timeout does not re-dial:
            # generation 1 is the initial connect.
            assert channel._generation == 1
            assert server.file_state(1).version == 0  # modify: no bump
            assert client.access(1, key, ids[1]) == b"patched"
            # Give the stalled original reply time to arrive and be
            # dropped; the channel must still work afterwards.
            time.sleep(1.0)
            assert client.access(1, key, ids[0]) == b"net-0"


def test_untagged_pipelining_preserves_reply_order():
    """Legacy untagged frames pipelined on a raw socket must come back
    in request order even when the first finishes last."""
    server = CloudServer()
    backend = _StallFirstAccess(server)
    with AsyncTcpServerHost(backend) as host:
        key, ids, _ks = _seeded(host, server, seed="order")
        access = msg.encode_message(server.ctx,
                                    msg.AccessRequest(file_id=1,
                                                      item_id=ids[0]))
        fetch = msg.encode_message(server.ctx,
                                   msg.FetchFileRequest(file_id=1))
        with socket.create_connection(host.address, timeout=10) as raw:
            raw.sendall(_LEN.pack(len(access)) + access)
            assert backend.parked.wait(5.0)
            raw.sendall(_LEN.pack(len(fetch)) + fetch)
            time.sleep(0.2)  # let the fetch finish server-side
            backend.release.set()
            replies = []
            for _ in range(2):
                (length,) = _LEN.unpack(_recv_exact(raw, 4))
                assert not length & TAG_FLAG
                replies.append(msg.decode_message(server.ctx,
                                                  _recv_exact(raw, length)))
        assert isinstance(replies[0], msg.AccessReply)
        assert isinstance(replies[1], msg.FetchFileReply)


def _recv_exact(sock, count):
    chunks = b""
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        assert chunk, "peer closed mid-frame"
        chunks += chunk
    return chunks


def test_error_reply_echoes_request_id():
    """A failing mutator's ErrorReply carries the request_id that caused
    it, so a pipelined client can correlate the failure."""
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            reply = channel.request(
                msg.ModifyCommit(file_id=999, item_id=1, ciphertext=b"x",
                                 tree_version=0, request_id=77))
            assert isinstance(reply, msg.ErrorReply)
            assert reply.request_id == 77


def test_garbage_tagged_frame_gets_tagged_error_reply():
    """An undecodable tagged request is answered (tag echoed) instead of
    killing the connection -- the other in-flight requests survive."""
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        with socket.create_connection(host.address, timeout=10) as raw:
            raw.sendall(_LEN.pack(TAG_FLAG | 2) + _TAG.pack(42) + b"\xff\xff")
            (word,) = _LEN.unpack(_recv_exact(raw, 4))
            assert word & TAG_FLAG
            (tag,) = _TAG.unpack(_recv_exact(raw, 8))
            assert tag == 42
            reply = msg.decode_message(server.ctx,
                                       _recv_exact(raw, word & ~TAG_FLAG))
            assert isinstance(reply, msg.ErrorReply)
            assert reply.request_id == 0  # nothing decodable to echo


def test_pipelined_channel_is_thread_safe_under_load():
    """Many threads hammer ONE channel; every reply lands on its caller
    (tags never cross) and the server state stays consistent."""
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        key, ids, _ks = _seeded(host, server, seed="load", n=8)
        # The state is read-only below, so each item's reply is a fixed
        # byte string: any tag cross-talk would hand a thread the bytes
        # of a DIFFERENT item's reply.
        expected = {
            item: server.handle_bytes(msg.encode_message(
                server.ctx, msg.AccessRequest(file_id=1, item_id=item)))
            for item in ids
        }
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            errors = []

            def reader(index):
                try:
                    for _ in range(25):
                        item = ids[index % len(ids)]
                        reply = channel.request(
                            msg.AccessRequest(file_id=1, item_id=item))
                        assert isinstance(reply, msg.AccessReply), reply
                        assert msg.encode_message(server.ctx, reply) == \
                            expected[item]
                except Exception as exc:  # noqa: BLE001 - report to main
                    errors.append(exc)

            threads = [threading.Thread(target=reader, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not errors


def test_channel_reconnects_after_host_restart():
    server = CloudServer()
    host = AsyncTcpServerHost(server).start()
    try:
        key, ids, _ks = _seeded(host, server, seed="reconnect")
        retry = RetryPolicy(attempts=4, timeout=5.0, base_delay=0.05)
        channel = AsyncTcpChannel(host.address, server.ctx, retry=retry)
        try:
            reply = channel.request(msg.AccessRequest(file_id=1,
                                                      item_id=ids[0]))
            assert isinstance(reply, msg.AccessReply)
            host.stop()
            host.start()
            reply = channel.request(msg.AccessRequest(file_id=1,
                                                      item_id=ids[1]))
            assert isinstance(reply, msg.AccessReply)
            assert channel._generation > 1  # it re-dialled
        finally:
            channel.close()
    finally:
        host.stop()


def test_close_interrupts_pending_requests():
    """close() fails in-flight waiters promptly instead of letting them
    wait out their full timeout."""
    server = CloudServer()
    backend = _StallFirstAccess(server)
    with AsyncTcpServerHost(backend) as host:
        key, ids, _ks = _seeded(host, server, seed="close")
        retry = RetryPolicy(attempts=1, timeout=30.0)
        channel = AsyncTcpChannel(host.address, server.ctx, retry=retry)
        failures = []

        def waiter():
            try:
                channel.request(msg.AccessRequest(file_id=1, item_id=ids[0]))
            except ChannelError as exc:
                failures.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert backend.parked.wait(5.0)
        start = time.monotonic()
        channel.close()
        thread.join(timeout=5.0)
        backend.release.set()
        assert not thread.is_alive()
        assert time.monotonic() - start < 5.0
        assert failures  # the pending request failed with ChannelError


def test_channel_validation():
    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        with pytest.raises(ValueError):
            AsyncTcpChannel(host.address, server.ctx, timeout=1.0,
                            retry=RetryPolicy())
    with pytest.raises(ValueError):
        AsyncTcpServerHost(server, max_inflight_per_conn=0)


def test_byte_accounting_matches_loopback_for_tagged_frames():
    """Protocol byte counts stay transport-independent; the 12-byte
    tagged framing is tracked separately."""
    from repro.protocol.channel import LoopbackChannel

    server = CloudServer()
    with AsyncTcpServerHost(server) as host:
        with AsyncTcpChannel(host.address, server.ctx) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("acct"))
            client.outsource(1, [b"x"] * 8)
            ids = client.item_ids_of(8)
            client.access(1, client.keystore.get("master:1"), ids[0])
            record = client.metrics.for_op("access")[0]
            assert channel.frame_bytes == 24 * channel.counters.round_trips

    loop_server = CloudServer()
    loop_client = AssuredDeletionClient(LoopbackChannel(loop_server),
                                        rng=DeterministicRandom("acct"))
    loop_client.outsource(1, [b"x"] * 8)
    loop_ids = loop_client.item_ids_of(8)
    loop_client.access(1, loop_client.keystore.get("master:1"), loop_ids[0])
    loop_record = loop_client.metrics.for_op("access")[0]
    assert record.bytes_sent == loop_record.bytes_sent
    assert record.bytes_received == loop_record.bytes_received

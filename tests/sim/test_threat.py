"""The threat-model simulator's own mechanics.

The actual Theorem-2 security arguments live in tests/security; this file
checks the simulator is a *sound* attacker: it must be able to recover
anything that is genuinely recoverable (otherwise the negative results
would be vacuous).
"""

from repro.sim.threat import Adversary, snapshot_file
from tests.conftest import make_scheme


def test_snapshot_captures_everything():
    scheme = make_scheme("snap")
    fid, ids = scheme.new_file([b"a", b"b", b"c"])
    snapshot = snapshot_file(scheme.server, fid)
    assert snapshot.n_leaves == 3
    assert set(snapshot.slot_of_item) == set(ids)
    assert set(snapshot.ciphertexts) == set(ids)
    assert len(snapshot.links) == 4
    assert len(snapshot.leaves) == 3


def test_modulator_list_reconstruction():
    scheme = make_scheme("snap2")
    fid, ids = scheme.new_file([b"a", b"b", b"c", b"d", b"e"])
    snapshot = snapshot_file(scheme.server, fid)
    tree = scheme.server.file_state(fid).tree
    for item in ids:
        expected = tree.path_view(tree.slot_of_item(item)).modulator_list()
        assert snapshot.modulator_list_for(item) == expected
    assert snapshot.modulator_list_for(9999) is None


def test_adversary_recovers_live_items():
    """Soundness control: with the device keys, live data IS readable."""
    scheme = make_scheme("adv-live")
    fid, ids = scheme.new_file([b"alpha", b"beta"])
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())
    assert adversary.try_recover(ids[0]) == b"alpha"
    assert adversary.try_recover(ids[1]) == b"beta"


def test_adversary_recovers_across_snapshots():
    """Old snapshots plus an old (still stored) key recover old content."""
    scheme = make_scheme("adv-old")
    fid, ids = scheme.new_file([b"v1"])
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))
    scheme.modify(fid, ids[0], b"v2")
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())
    # Modification keeps the data key, so both versions decrypt; the
    # recovery procedure returns one of them and knows both ciphertexts.
    assert adversary.try_recover(ids[0]) in (b"v1", b"v2")
    assert len(adversary.known_ciphertexts(ids[0])) == 2


def test_adversary_without_keys_fails():
    scheme = make_scheme("adv-nokey")
    fid, ids = scheme.new_file([b"data"])
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))
    assert adversary.try_recover(ids[0]) is None

"""Metrics collection and aggregation."""

import pytest

from repro.sim.metrics import MetricsCollector, OpRecord, Stopwatch


def record(op, sent=100, received=200, psent=0, preceived=50, seconds=0.5,
           hashes=7):
    return OpRecord(op=op, bytes_sent=sent, bytes_received=received,
                    payload_sent=psent, payload_received=preceived,
                    client_seconds=seconds, hash_calls=hashes)


def test_overhead_definition():
    r = record("delete")
    assert r.total_bytes == 300
    assert r.overhead_bytes == 250


def test_collector_aggregation():
    collector = MetricsCollector()
    collector.add(record("delete", sent=100))
    collector.add(record("delete", sent=300))
    collector.add(record("access", sent=10))
    assert len(collector.for_op("delete")) == 2
    assert collector.mean_overhead_bytes("delete") == \
        (250 + 450) / 2
    assert collector.mean_client_seconds("access") == 0.5
    assert collector.mean_hash_calls("delete") == 7


def test_collector_empty_op():
    collector = MetricsCollector()
    with pytest.raises(ValueError):
        collector.mean_overhead_bytes("nope")
    with pytest.raises(ValueError):
        collector.mean_client_seconds("nope")
    with pytest.raises(ValueError):
        collector.mean_hash_calls("nope")


def test_collector_clear():
    collector = MetricsCollector()
    collector.add(record("x"))
    collector.clear()
    assert collector.records == []


def test_stopwatch_accumulates():
    watch = Stopwatch()
    with watch.measure():
        pass
    first = watch.seconds
    with watch.measure():
        sum(range(1000))
    assert watch.seconds > first


def test_overhead_never_negative():
    # Hand-built record whose payload fields exceed the byte totals must
    # clamp to zero, not report negative overhead.
    r = OpRecord(op="weird", bytes_sent=10, bytes_received=10,
                 payload_sent=50, payload_received=50)
    assert r.overhead_bytes == 0


def test_mean_overhead_zero_records_raises():
    collector = MetricsCollector()
    with pytest.raises(ValueError, match="nope"):
        collector.mean_overhead_bytes("nope")
    # Records for *other* ops do not change that.
    collector.add(record("delete"))
    with pytest.raises(ValueError):
        collector.mean_overhead_bytes("nope")


def test_stopwatch_reentrant_counts_wall_time_once():
    import time

    watch = Stopwatch()
    with watch.measure():
        with watch.measure():   # nested: must not double-bill
            time.sleep(0.02)
    assert 0.015 < watch.seconds < 0.2

    # Sequential measures still accumulate.
    before = watch.seconds
    with watch.measure():
        time.sleep(0.01)
    assert watch.seconds > before


def test_stopwatch_depth_recovers_after_exception():
    watch = Stopwatch()
    with pytest.raises(RuntimeError):
        with watch.measure():
            raise RuntimeError("boom")
    first = watch.seconds
    assert first >= 0.0
    with watch.measure():
        sum(range(1000))
    assert watch.seconds > first

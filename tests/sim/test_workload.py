"""Workload generators."""

import pytest

from repro.crypto.rng import DeterministicRandom
from repro.sim.workload import (employee_roster, mail_messages, make_items,
                                make_record_items, operation_mix)


def test_make_items_shape(rng):
    items = make_items(10, 64, rng)
    assert len(items) == 10
    assert all(len(item) == 64 for item in items)
    assert len(set(items)) == 10


def test_make_items_deterministic():
    a = make_items(5, 32, DeterministicRandom("w"))
    b = make_items(5, 32, DeterministicRandom("w"))
    assert a == b


def test_make_items_validation(rng):
    with pytest.raises(ValueError):
        make_items(-1, 10, rng)
    with pytest.raises(ValueError):
        make_items(1, -1, rng)
    assert make_items(0, 10, rng) == []


def test_record_items_have_headers(rng):
    items = make_record_items(3, 64, rng, prefix=b"emp")
    assert all(item.startswith(b"emp-") for item in items)
    assert all(len(item) == 64 for item in items)
    tiny = make_record_items(1, 4, rng)
    assert len(tiny[0]) == 4


def test_employee_roster(rng):
    records = employee_roster(20, rng)
    assert len(records) == 20
    assert all(record.startswith(b"emp") for record in records)
    assert all(record.count(b",") == 3 for record in records)


def test_mail_messages(rng):
    messages = mail_messages(5, rng, body_size=100)
    assert len(messages) == 5
    assert all(m.startswith(b"From: user") for m in messages)
    assert all(len(m) > 100 for m in messages)


def test_operation_mix(rng):
    operations = list(operation_mix(200, rng, item_size=16))
    assert len(operations) == 200
    kinds = {op.kind for op in operations}
    assert kinds <= {"access", "modify", "insert", "delete"}
    assert len(kinds) >= 3  # with 200 draws all common kinds appear
    for op in operations:
        if op.kind in ("modify", "insert"):
            assert len(op.data) == 16
        else:
            assert op.data == b""


def test_operation_mix_custom_weights(rng):
    operations = list(operation_mix(50, rng, weights={"delete": 1}))
    assert all(op.kind == "delete" for op in operations)
    with pytest.raises(ValueError):
        list(operation_mix(1, rng, weights={}))

"""Key custody: storage, shredding, the global counter, and seizure."""

import pytest

from repro.client.keystore import KeyStore
from repro.core.errors import KeyShreddedError


def test_put_get():
    store = KeyStore()
    store.put("k", b"\x01" * 16)
    assert store.get("k") == b"\x01" * 16
    assert store.has("k")
    assert not store.has("other")


def test_replace():
    store = KeyStore()
    store.put("k", b"\x01" * 16)
    store.put("k", b"\x02" * 16)
    assert store.get("k") == b"\x02" * 16


def test_missing_key():
    with pytest.raises(KeyError):
        KeyStore().get("nope")


def test_shred_is_permanent_and_loud():
    store = KeyStore()
    store.put("k", b"\x01" * 16)
    store.shred("k")
    with pytest.raises(KeyShreddedError):
        store.get("k")
    assert not store.has("k")
    store.shred("k")  # idempotent


def test_put_after_shred_revives_slot():
    store = KeyStore()
    store.put("k", b"\x01" * 16)
    store.shred("k")
    store.put("k", b"\x02" * 16)
    assert store.get("k") == b"\x02" * 16


def test_shred_unknown_name_marks_it():
    store = KeyStore()
    store.shred("ghost")
    with pytest.raises(KeyShreddedError):
        store.get("ghost")


def test_counter_is_monotonic():
    store = KeyStore()
    ids = [store.next_item_id() for _ in range(100)]
    assert ids == sorted(set(ids))
    assert store.counter == ids[-1] + 1


def test_counter_start():
    store = KeyStore(first_item_id=1000)
    assert store.next_item_id() == 1000


def test_key_bytes_stored():
    store = KeyStore()
    assert store.key_bytes_stored() == 0
    store.put("a", b"\x01" * 16)
    store.put("b", b"\x02" * 32)
    assert store.key_bytes_stored() == 48
    store.shred("a")
    assert store.key_bytes_stored() == 32


def test_seizure_reflects_current_state_only():
    store = KeyStore()
    store.put("live", b"\x01" * 16)
    store.put("dead", b"\x02" * 16)
    store.shred("dead")
    seized = store.seize()
    assert seized == {"live": b"\x01" * 16}


def test_names():
    store = KeyStore()
    store.put("a", b"x")
    store.put("b", b"y")
    assert sorted(store.names()) == ["a", "b"]

"""End-to-end batched deletion: one rotation, one round-trip pair.

Covers the tentpole's client/server contract: batch-vs-sequential
equivalence, atomic versioning, the Theorem-2 refusal rules against a
lying server, and the wire-lean shape (no slot lists on the wire).
"""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import (IntegrityError, ReproError, UnknownItemError)
from repro.core.tree import ModulationTree
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from tests.conftest import make_scheme


def outsourced(n=10, seed="batch"):
    scheme = make_scheme(seed)
    items = [b"item-%d" % i for i in range(n)]
    fid, ids = scheme.new_file(items)
    return scheme, fid, ids, items


@pytest.mark.parametrize("positions", [
    [0], [3, 7], [0, 9, 5], [8, 9], list(range(10)),
])
def test_batch_delete_survivors_and_victims(positions):
    scheme, fid, ids, items = outsourced()
    victims = [ids[p] for p in positions]
    scheme.delete_many(fid, victims)
    survivors = {ids[i]: items[i] for i in range(10) if i not in positions}
    if survivors:
        assert scheme.fetch_file(fid) == survivors
    for victim in victims:
        with pytest.raises(UnknownItemError):
            scheme.access(fid, victim)


def test_batch_bumps_version_once_and_shrinks_tree():
    scheme, fid, ids, _items = outsourced()
    state = scheme.server.file_state(fid)
    assert state.version == 0
    scheme.delete_many(fid, [ids[1], ids[4], ids[8]])
    assert state.version == 1
    assert state.tree.leaf_count == 7


def test_batch_is_one_round_trip_pair():
    scheme, fid, ids, _items = outsourced()
    scheme.delete_many(fid, [ids[0], ids[5]])
    record = scheme.metrics.for_op("delete_many")[-1]
    assert record.round_trips == 2  # view fetch + commit, regardless of k
    assert record.retries == 0


def test_no_slot_lists_travel_on_the_wire():
    """Both commit directions derive slot sets locally: the reply carries
    only the targets' slots, the commit only item ids -- every other slot
    number is recomputed from (n_leaves, target_slots)."""
    scheme, fid, ids, _items = outsourced()
    sent = []
    original = scheme.channel.request

    def spy(message):
        sent.append(message)
        return original(message)

    scheme.channel.request = spy
    scheme.delete_many(fid, [ids[2], ids[6], ids[7]])
    commit = next(m for m in sent if isinstance(m, msg.BatchDeleteCommit))
    assert not hasattr(commit, "cut_slots")
    assert len(commit.deltas) == len(
        ModulationTree.union_cut_slots(
            tuple(19 if i == 9 else 10 + i for i in (2, 6, 7))))


def test_empty_batch_is_a_no_op():
    scheme, fid, ids, items = outsourced()
    key_before = scheme.client.keystore.get(f"master:{fid}")
    scheme.delete_many(fid, [])
    assert scheme.client.keystore.get(f"master:{fid}") == key_before
    assert scheme.metrics.for_op("delete_many") == []


def test_duplicate_ids_rejected_client_side():
    scheme, fid, ids, _items = outsourced()
    with pytest.raises(ReproError):
        scheme.delete_many(fid, [ids[0], ids[0]])


def test_unknown_item_rejected():
    scheme, fid, ids, _items = outsourced()
    with pytest.raises(UnknownItemError):
        scheme.delete_many(fid, [ids[0], 999999])
    # Nothing was deleted: the failure happened before the commit.
    assert scheme.server.file_state(fid).tree.leaf_count == 10


def test_batch_equals_sequential_plaintexts():
    batch, bfid, bids, items = outsourced(seed="pair")
    seq, sfid, sids, _ = outsourced(seed="pair")
    positions = [1, 6, 3]
    batch.delete_many(bfid, [bids[p] for p in positions])
    for p in positions:
        seq.delete(sfid, sids[p])
    survivors = [i for i in range(10) if i not in positions]
    got_batch = batch.fetch_file(bfid)
    got_seq = seq.fetch_file(sfid)
    assert [got_batch[bids[i]] for i in survivors] == \
        [got_seq[sids[i]] for i in survivors] == \
        [items[i] for i in survivors]


def test_mixed_batch_and_single_deletions_interoperate():
    scheme, fid, ids, items = outsourced(n=12, seed="mixed")
    scheme.delete(fid, ids[3])
    scheme.delete_many(fid, [ids[0], ids[11], ids[7]])
    scheme.delete(fid, ids[5])
    scheme.insert(fid, b"fresh")
    survivors = {i for i in range(12) if i not in (3, 0, 11, 7, 5)}
    for i in survivors:
        assert scheme.access(fid, ids[i]) == items[i]


def test_stale_version_rejected():
    scheme, fid, ids, _items = outsourced()
    client = scheme.client
    key = client.keystore.get(f"master:{fid}")
    reply = client._expect(
        client.channel.request(
            msg.BatchDeleteRequest(file_id=fid, item_ids=(ids[0], ids[1]))),
        msg.BatchDeleteReply)
    # Interleave a deletion so the fetched view goes stale.
    scheme.delete(fid, ids[5])
    commit = msg.BatchDeleteCommit(file_id=fid, item_ids=(ids[0], ids[1]),
                                   deltas=(), moves=(),
                                   tree_version=reply.tree_version)
    response = client.channel.request(commit)
    assert isinstance(response, msg.ErrorReply)
    assert response.code == msg.E_STALE_STATE


def test_server_rejects_malformed_batch_commits():
    scheme, fid, ids, _items = outsourced()
    state = scheme.server.file_state(fid)

    def error_of(**overrides):
        fields = dict(file_id=fid, item_ids=(ids[0], ids[1]),
                      deltas=(), moves=(), tree_version=state.version)
        fields.update(overrides)
        response = scheme.server.handle(msg.BatchDeleteCommit(**fields))
        assert isinstance(response, msg.ErrorReply), fields
        return response.code

    assert error_of() == msg.E_BAD_REQUEST                # no deltas/moves
    assert error_of(item_ids=()) == msg.E_BAD_REQUEST     # empty batch
    assert error_of(item_ids=(ids[0], ids[0])) == msg.E_BAD_REQUEST
    # Nothing was applied by any of the rejects.
    assert state.tree.leaf_count == 10
    assert state.version == 0


def test_client_rejects_wrong_ciphertext():
    """A server returning someone else's ciphertext for a target fails
    decrypt-verification and the client refuses to continue."""
    scheme, fid, ids, _items = outsourced()

    class LyingChannel:
        def __init__(self, inner):
            self.inner = inner
            self.counters = inner.counters

        def request(self, message):
            reply = self.inner.request(message)
            if isinstance(reply, msg.BatchDeleteReply):
                swapped = (reply.ciphertexts[1], reply.ciphertexts[0])
                reply = msg.BatchDeleteReply(
                    n_leaves=reply.n_leaves,
                    target_slots=reply.target_slots,
                    links=reply.links, leaf_mods=reply.leaf_mods,
                    ciphertexts=swapped, tree_version=reply.tree_version)
            return reply

    scheme.client.channel = LyingChannel(scheme.channel)
    with pytest.raises(IntegrityError):
        scheme.delete_many(fid, [ids[0], ids[1]])
    assert scheme.server.file_state(fid).tree.leaf_count == 10


def test_client_rejects_duplicate_modulators_in_view():
    """Theorem 2 refusal rule: a view with two equal modulators is
    rejected before any key material is used."""
    scheme, fid, ids, _items = outsourced()

    class DupChannel:
        def __init__(self, inner):
            self.inner = inner
            self.counters = inner.counters

        def request(self, message):
            reply = self.inner.request(message)
            if isinstance(reply, msg.BatchDeleteReply):
                links = list(reply.links)
                links[1] = links[0]
                reply = msg.BatchDeleteReply(
                    n_leaves=reply.n_leaves,
                    target_slots=reply.target_slots,
                    links=tuple(links), leaf_mods=reply.leaf_mods,
                    ciphertexts=reply.ciphertexts,
                    tree_version=reply.tree_version)
            return reply

    scheme.client.channel = DupChannel(scheme.channel)
    with pytest.raises(Exception):
        scheme.delete_many(fid, [ids[0], ids[1]])


def test_filesystem_delete_many_rotates_meta_once():
    from repro.fs.filesystem import OutsourcedFileSystem
    fs = OutsourcedFileSystem(rng=DeterministicRandom("fs-batch"))
    handle = fs.create_file("logs/app", [b"rec-%d" % i for i in range(8)])
    handle.delete_many([0, 2, 5])
    assert handle.record_count == 5
    assert handle.read_record(0) == b"rec-1"
    assert handle.read_record(1) == b"rec-3"
    assert handle.read_record(4) == b"rec-7"


def test_delete_many_store_keys_rotation():
    server = CloudServer()
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom("rotate"))
    old_key = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids = client.item_ids_of(4)
    new_key = client.delete_many(1, old_key, [ids[1], ids[2]])
    assert new_key != old_key
    assert client.keystore.get("master:1") == new_key
    assert client.access(1, new_key, ids[0]) == b"a"

"""The client-side chain cache (ISSUE 5 layer 2).

The cache must be performance-only: every plaintext a warm client sees is
byte-identical to a cold client's, hash-call savings are real, and wrong
keys or out-of-band rotations degrade to the slow path, never to wrong
answers.
"""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import IntegrityError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer


def make_pair(seed="cache-test", cache=True):
    server = CloudServer()
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom(seed),
                                   cache=cache)
    return server, client


def test_cache_is_off_by_default():
    _server, client = make_pair(cache=False)
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)
    client.access(1, key, ids[0])
    client.access(1, key, ids[0])
    assert client.cache_hits == 0 and client.cache_misses == 0
    assert not client._caches


def test_warm_access_skips_chain_hashes():
    _server, client = make_pair()
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    before = client.engine.hash_calls
    assert client.access(1, key, ids[1]) == b"b"
    assert client.engine.hash_calls == before  # seeded by outsource
    assert client.cache_hits == 1


def test_cold_access_populates_then_hits():
    server, _ = make_pair()
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom("warmup"),
                                   cache=True)
    seeder = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom("seeder"))
    key = seeder.outsource(1, [b"a", b"b"])
    ids = seeder.item_ids_of(2)
    assert client.access(1, key, ids[0]) == b"a"
    assert client.cache_misses == 1
    before = client.engine.hash_calls
    assert client.access(1, key, ids[0]) == b"a"
    assert client.engine.hash_calls == before
    assert client.cache_hits == 1


def test_delete_rotates_cache_in_place():
    _server, client = make_pair()
    key = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids = client.item_ids_of(4)
    key2 = client.delete(1, key, ids[1])
    entry = client._caches[1]
    assert entry.master_key == key2
    assert ids[1] not in entry.outputs
    before = client.engine.hash_calls
    assert client.access(1, key2, ids[0]) == b"a"
    assert client.engine.hash_calls == before  # survivor stayed warm
    assert client.fetch_file(1, key2) == {ids[0]: b"a", ids[2]: b"c",
                                          ids[3]: b"d"}


def test_delete_many_rotates_cache_in_place():
    _server, client = make_pair()
    key = client.outsource(1, [b"a", b"b", b"c", b"d", b"e"])
    ids = client.item_ids_of(5)
    key2 = client.delete_many(1, key, [ids[0], ids[3]])
    entry = client._caches[1]
    assert entry.master_key == key2
    assert not {ids[0], ids[3]} & set(entry.outputs)
    before = client.engine.hash_calls
    assert client.access(1, key2, ids[4]) == b"e"
    assert client.engine.hash_calls == before


def test_insert_adds_to_cache_and_keeps_survivors():
    _server, client = make_pair()
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)
    new_id = client.insert(1, key, b"fresh")
    before = client.engine.hash_calls
    assert client.access(1, key, new_id) == b"fresh"
    assert client.access(1, key, ids[0]) == b"a"
    assert client.engine.hash_calls == before


def test_modify_leaves_cache_warm():
    _server, client = make_pair()
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)
    client.modify(1, key, ids[0], b"patched")
    before = client.engine.hash_calls
    assert client.access(1, key, ids[0]) == b"patched"
    assert client.engine.hash_calls == before


def test_foreign_rotation_invalidates_by_version():
    """Another client's deletion bumps the version; the stale entry must
    miss (and the subsequent re-derivation still verifies)."""
    server, client = make_pair()
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    other = AssuredDeletionClient(LoopbackChannel(server),
                                  rng=DeterministicRandom("other"),
                                  store_keys=False)
    key2 = other.delete(1, key, ids[1])
    hits = client.cache_hits
    assert client.access(1, key2, ids[0]) == b"a"
    assert client.cache_hits == hits  # miss, not a stale hit
    assert client.cache_misses >= 1


def test_wrong_key_fails_closed_and_preserves_entry():
    _server, client = make_pair()
    key = client.outsource(1, [b"a"])
    ids = client.item_ids_of(1)
    with pytest.raises(IntegrityError):
        client.access(1, b"\x00" * 16, ids[0])
    assert client._caches[1].master_key == key
    assert client.access(1, key, ids[0]) == b"a"


def test_warm_fetch_file_skips_derivation():
    _server, client = make_pair()
    key = client.outsource(1, [bytes([i]) * 10 for i in range(8)])
    ids = client.item_ids_of(8)
    before = client.engine.hash_calls
    result = client.fetch_file(1, key)
    assert client.engine.hash_calls == before  # 3n-2 sweep skipped
    assert result == {item_id: bytes([i]) * 10
                      for i, item_id in enumerate(ids)}


def test_disable_cache_clears_state():
    _server, client = make_pair()
    key = client.outsource(1, [b"a"])
    ids = client.item_ids_of(1)
    client.disable_cache()
    assert not client._caches
    assert client.access(1, key, ids[0]) == b"a"
    client.enable_cache()
    assert client.access(1, key, ids[0]) == b"a"


def test_invalidate_cache_single_and_all():
    _server, client = make_pair()
    client.outsource(1, [b"a"])
    client.outsource(2, [b"b"])
    assert set(client._caches) == {1, 2}
    client.invalidate_cache(1)
    assert set(client._caches) == {2}
    client.invalidate_cache()
    assert not client._caches


def test_delete_file_state_drops_entry():
    _server, client = make_pair()
    client.outsource(1, [b"a"])
    client.delete_file_state(1)
    assert 1 not in client._caches


def test_cache_instruments_exported():
    from repro.obs import runtime as obs
    from repro.obs.instruments import CLIENT_CACHE_HITS, CLIENT_CACHE_MISSES
    _server, client = make_pair()
    obs.enable()
    try:
        key = client.outsource(1, [b"a"])
        ids = client.item_ids_of(1)
        hits0 = CLIENT_CACHE_HITS.value(op="access")
        client.access(1, key, ids[0])
        assert CLIENT_CACHE_HITS.value(op="access") == hits0 + 1
        assert CLIENT_CACHE_MISSES.value(op="access") >= 0
    finally:
        obs.disable()

"""Client protocol driver: verification, retries, and metrics."""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import IntegrityError, UnknownItemError
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer


@pytest.fixture
def pair():
    server = CloudServer()
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom("client-test"))
    return server, client


def test_outsource_and_access_roundtrip(pair):
    _server, client = pair
    key = client.outsource(1, [b"alpha", b"beta"])
    ids = client.item_ids_of(2)
    assert client.access(1, key, ids[0]) == b"alpha"
    assert client.access(1, key, ids[1]) == b"beta"


def test_access_wrong_key_raises_integrity_error(pair):
    _server, client = pair
    client.outsource(1, [b"alpha"])
    ids = client.item_ids_of(1)
    with pytest.raises(IntegrityError):
        client.access(1, b"\x00" * 16, ids[0])


def test_delete_returns_new_key_and_shreds_old(pair):
    _server, client = pair
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    new_key = client.delete(1, key, ids[1])
    assert new_key != key
    assert client.keystore.get("master:1") == new_key
    assert client.access(1, new_key, ids[0]) == b"a"
    with pytest.raises(UnknownItemError):
        client.access(1, new_key, ids[1])


def test_store_keys_flag(pair):
    server, _ = pair
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom("nk"),
                                   store_keys=False)
    client.outsource(5, [b"x"])
    assert not client.keystore.has("master:5")


def test_modify_stale_retry(pair):
    """A concurrent writer between access and commit triggers a retry."""
    server, client = pair
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)

    original_handle = server.handle
    interfered = {"done": False}

    def interfering_handle(request):
        if isinstance(request, msg.ModifyCommit) and not interfered["done"]:
            interfered["done"] = True
            # Another client inserts before the commit lands.
            server.file_state(1).version += 1
        return original_handle(request)

    server.handle = interfering_handle
    client.modify(1, key, ids[0], b"a-v2")
    record = client.metrics.for_op("modify")[-1]
    assert record.retries == 1
    server.handle = original_handle
    assert client.access(1, key, ids[0]) == b"a-v2"


def test_insert_returns_usable_item(pair):
    _server, client = pair
    key = client.outsource(1, [])
    item = client.insert(1, key, b"first")
    assert client.access(1, key, item) == b"first"
    second = client.insert(1, key, b"second")
    assert second != item
    assert client.access(1, key, second) == b"second"


def test_fetch_file_verifies_every_item(pair):
    _server, client = pair
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    data = client.fetch_file(1, key)
    assert data == {ids[0]: b"a", ids[1]: b"b", ids[2]: b"c"}
    with pytest.raises(IntegrityError):
        client.fetch_file(1, b"\x01" * 16)


def test_item_ids_of_requires_matching_outsource(pair):
    _server, client = pair
    client.outsource(1, [b"a"])
    with pytest.raises(Exception):
        client.item_ids_of(5)


def test_metrics_include_hash_counts(pair):
    _server, client = pair
    key = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids = client.item_ids_of(4)
    client.delete(1, key, ids[0])
    record = client.metrics.for_op("delete")[0]
    assert record.hash_calls > 0
    assert record.round_trips == 2
    assert record.overhead_bytes > 0
    assert record.client_seconds > 0


def test_deleting_twice_fails_cleanly(pair):
    _server, client = pair
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)
    key = client.delete(1, key, ids[0])
    with pytest.raises(UnknownItemError):
        client.delete(1, key, ids[0])

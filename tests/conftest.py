"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import Params
from repro.crypto.rng import DeterministicRandom


@pytest.fixture
def rng() -> DeterministicRandom:
    """A fresh deterministic random source per test."""
    return DeterministicRandom("test-fixture")


@pytest.fixture
def params() -> Params:
    """The paper's parameters (SHA-1 chains, AES-128)."""
    return Params()


def make_scheme(seed: str = "scheme", params: Params | None = None):
    """A LocalScheme with deterministic randomness (helper, not fixture)."""
    from repro.core.scheme import LocalScheme
    return LocalScheme(params=params, rng=DeterministicRandom(seed))


@pytest.fixture
def scheme():
    return make_scheme()

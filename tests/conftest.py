"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.params import Params
from repro.crypto.rng import DeterministicRandom

#: Multiplier applied to every property test's example budget via
#: :func:`scaled_examples`.  The nightly workflow sets it to 10.
HYPOTHESIS_SCALE = int(os.environ.get("REPRO_HYPOTHESIS_SCALE", "1"))


def scaled_examples(base: int) -> int:
    """A property test's example budget, scaled for deeper runs."""
    return base * HYPOTHESIS_SCALE


try:
    from hypothesis import HealthCheck, settings

    # 'ci' is the everyday budget; 'nightly' (selected in the scheduled
    # workflow via --hypothesis-profile=nightly, combined with
    # REPRO_HYPOTHESIS_SCALE=10 for the per-test budgets above) drops the
    # per-example deadline and slow-input health check so the scaled
    # budgets can run to completion.
    settings.register_profile("ci", settings(deadline=None))
    settings.register_profile(
        "nightly",
        settings(max_examples=scaled_examples(100), deadline=None,
                 suppress_health_check=[HealthCheck.too_slow]))
    settings.load_profile("ci")
except ImportError:  # hypothesis is optional outside the property suites
    pass


@pytest.fixture
def rng() -> DeterministicRandom:
    """A fresh deterministic random source per test."""
    return DeterministicRandom("test-fixture")


@pytest.fixture
def params() -> Params:
    """The paper's parameters (SHA-1 chains, AES-128)."""
    return Params()


def make_scheme(seed: str = "scheme", params: Params | None = None):
    """A LocalScheme with deterministic randomness (helper, not fixture)."""
    from repro.core.scheme import LocalScheme
    return LocalScheme(params=params, rng=DeterministicRandom(seed))


@pytest.fixture
def scheme():
    return make_scheme()

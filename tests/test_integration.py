"""Cross-cutting integration tests: the full stack over real sockets,
multiple clients, and custom deployment policies."""


from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.protocol.tcp import TcpChannel, TcpServerHost
from repro.server.server import CloudServer
from repro.sim.threat import Adversary, snapshot_file


def test_filesystem_over_tcp():
    """The complete Section V deployment across a real socket: meta
    trees, control keys, fine-grained and whole-file deletion."""
    server = CloudServer()
    with TcpServerHost(server) as host:
        with TcpChannel(host.address, server.ctx) as channel:
            fs = OutsourcedFileSystem(channel=channel,
                                      rng=DeterministicRandom("fs-tcp"))
            handle = fs.create_file("docs/networked",
                                    [b"rec-%d" % i for i in range(6)])
            assert handle.read_record(3) == b"rec-3"
            handle.delete_record(3)
            assert handle.read_all() == [b"rec-0", b"rec-1", b"rec-2",
                                         b"rec-4", b"rec-5"]
            fs.create_file("docs/second", [b"x"])
            fs.delete_file("docs/networked")
            assert fs.list_files() == ["docs/second"]


def test_two_clients_one_server_stale_detection():
    """Two clients sharing a file race on modification; the version
    check detects the interleaving and the retry converges."""
    from repro.client.keystore import KeyStore
    server = CloudServer()
    alice = AssuredDeletionClient(_loopback(server),
                                  rng=DeterministicRandom("alice"))
    # Item ids are the globally-unique r values; independent clients of a
    # shared file must carve disjoint counter ranges (a shared deployment
    # normally routes through one proxy / one keystore).
    bob = AssuredDeletionClient(_loopback(server),
                                rng=DeterministicRandom("bob"),
                                keystore=KeyStore(first_item_id=1_000_000))
    key = alice.outsource(1, [b"shared-1", b"shared-2"])
    ids = alice.item_ids_of(2)

    # Bob (given the key out of band) inserts between Alice's access and
    # commit by hooking the server's modify handler once.
    original = server.handle

    def interfere(request):
        from repro.protocol import messages as msg
        if isinstance(request, msg.ModifyCommit) and not interfere.done:
            interfere.done = True
            bob.insert(1, key, b"bob-was-here")
        return original(request)

    interfere.done = False
    server.handle = interfere
    alice.modify(1, key, ids[0], b"alice-edit")
    server.handle = original

    assert alice.metrics.for_op("modify")[-1].retries == 1
    data = bob.fetch_file(1, key)
    assert data[ids[0]] == b"alice-edit"
    assert b"bob-was-here" in data.values()


def _loopback(server):
    from repro.protocol.channel import LoopbackChannel
    return LoopbackChannel(server)


def test_custom_group_policy():
    """Section V: 'divide the master keys ... based on the directory
    structure OR FILE TYPES' -- grouping is a pluggable policy."""
    def by_extension(name: str) -> str:
        return name.rsplit(".", 1)[-1] if "." in name else "misc"

    fs = OutsourcedFileSystem(rng=DeterministicRandom("groups"),
                              group_of=by_extension)
    fs.create_file("a.log", [b"1"])
    fs.create_file("b.log", [b"2"])
    fs.create_file("c.db", [b"3"])
    assert fs.control_key_count() == 2  # 'log' and 'db'
    assert fs.client_key_bytes() == 32


def test_deletion_assured_across_transports():
    """Threat-model verdict is transport-independent: delete over TCP,
    attack with everything, stay dead."""
    server = CloudServer()
    with TcpServerHost(server) as host:
        with TcpChannel(host.address, server.ctx) as channel:
            client = AssuredDeletionClient(channel,
                                           rng=DeterministicRandom("tcp-sec"))
            key = client.outsource(1, [b"secret-a", b"secret-b"])
            ids = client.item_ids_of(2)
            adversary = Adversary()
            adversary.observe(snapshot_file(server, 1))
            client.delete(1, key, ids[0])
            adversary.observe(snapshot_file(server, 1))
            adversary.seize_keystore(client.keystore.seize())
            assert adversary.try_recover(ids[0]) is None
            assert adversary.try_recover(ids[1]) == b"secret-b"


def test_run_all_report_smoke(monkeypatch):
    """The one-shot report generator produces every section (tiny grids)."""
    from repro.analysis import config as cfg
    monkeypatch.setattr(cfg, "complexity_grid", lambda: [16, 64, 256])
    monkeypatch.setattr(cfg, "table2_item_count", lambda: 500)
    monkeypatch.setattr(cfg, "table2_master_key_measured_count", lambda: 100)
    monkeypatch.setattr(cfg, "figure_grid", lambda: [10, 100, 1000])
    monkeypatch.setattr(cfg, "table3_grid", lambda: [200])
    # The driver modules imported these at module load; patch there too.
    import repro.analysis.complexity as complexity
    import repro.analysis.figures as figures
    import repro.analysis.run_all as run_all
    import repro.analysis.table2 as table2
    import repro.analysis.table3 as table3
    monkeypatch.setattr(complexity, "complexity_grid", lambda: [16, 64, 256])
    monkeypatch.setattr(figures, "figure_grid", lambda: [10, 100, 1000])
    monkeypatch.setattr(run_all, "figure_grid", lambda: [10, 100, 1000])
    monkeypatch.setattr(run_all, "table2_item_count", lambda: 500)
    monkeypatch.setattr(table2, "table2_item_count", lambda: 500)
    monkeypatch.setattr(table2, "table2_master_key_measured_count",
                        lambda: 100)
    monkeypatch.setattr(table3, "table3_grid", lambda: [200])

    report = run_all.generate_report()
    for marker in ("Table I", "Table II", "Figure 5", "Figure 6",
                   "Table III", "Ablation 1", "Ablation 2", "Ablation 3"):
        assert marker in report

"""Theorem 2, case ii: every cheating server strategy is rejected by the
client *before* it emits any deltas (or is provably harmless)."""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import (DuplicateModulatorError, IntegrityError,
                               ProtocolError)
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.adversary import (CloneCutServer, DeltaSkippingServer,
                                    DuplicateInjectionServer, ReplayServer,
                                    WrongCiphertextServer, WrongLeafServer)
from repro.sim.threat import Adversary, snapshot_file


def make_client(server, seed):
    return AssuredDeletionClient(LoopbackChannel(server),
                                 rng=DeterministicRandom(seed))


def outsourced(server, seed, n=6):
    client = make_client(server, seed)
    key = client.outsource(1, [b"item-%d" % i for i in range(n)])
    return client, key, client.item_ids_of(n)


def test_wrong_leaf_substitution_rejected():
    """Server answers delete(k) with MT(k'): caught by the id binding."""
    server = WrongLeafServer()
    client, key, ids = outsourced(server, "adv-wrongleaf")
    with pytest.raises(IntegrityError):
        client.delete(1, key, ids[3])
    # No deltas were emitted: every item still decrypts.
    for i, item in enumerate(ids):
        assert client.access(1, key, item) == b"item-%d" % i


def test_wrong_ciphertext_rejected():
    """Correct MT(k), another item's ciphertext: decrypt-verify fails."""
    server = WrongCiphertextServer()
    client, key, ids = outsourced(server, "adv-wrongct")
    with pytest.raises(IntegrityError):
        client.delete(1, key, ids[0])


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_figure7_clone_cut_attack_rejected(depth):
    """Cloning path modulators into the cut necessarily duplicates a
    modulator inside MT(k); the distinctness rule fires.  When the cloned
    link also sits on the balancing path, the cross-view consistency
    check fires first -- either way the client refuses before emitting
    any delta."""
    server = CloneCutServer()
    server.clone_depth = depth
    client, key, ids = outsourced(server, f"adv-clone-{depth}", n=8)
    with pytest.raises((DuplicateModulatorError, IntegrityError)):
        client.delete(1, key, ids[2])
    # Nothing was committed: the tree version did not move.
    assert server.file_state(1).version == 0


def test_crude_duplicate_injection_rejected():
    server = DuplicateInjectionServer()
    client, key, ids = outsourced(server, "adv-dup")
    with pytest.raises(DuplicateModulatorError):
        client.delete(1, key, ids[1])


def test_delta_skipping_cannot_resurrect_the_deleted_item():
    """A server that ACKs but never applies the deltas sabotages the
    *surviving* data (out of scope: it could as well erase it), but the
    deleted item stays dead because the old master key is shredded."""
    server = DeltaSkippingServer()
    client, key, ids = outsourced(server, "adv-skip")

    adversary = Adversary()
    adversary.observe(snapshot_file(server, 1))

    new_key = client.delete(1, key, ids[2])
    adversary.observe(snapshot_file(server, 1))
    adversary.seize_keystore({"master": new_key})

    assert adversary.try_recover(ids[2]) is None

    # Availability damage is visible and detected, not silent:
    with pytest.raises(IntegrityError):
        client.access(1, new_key, ids[0])


def test_cross_item_replay_rejected_on_access():
    """Serving item j's ciphertext for item i fails the id binding."""
    server = ReplayServer()
    client, key, ids = outsourced(server, "adv-replay")
    state = server.file_state(1)
    # Cross-wire two ciphertexts.
    ct0 = state.ciphertexts.get(ids[0])
    state.ciphertexts.put(ids[0], state.ciphertexts.get(ids[1]))
    with pytest.raises(IntegrityError):
        client.access(1, key, ids[0])
    state.ciphertexts.put(ids[0], ct0)


def test_same_item_stale_replay_is_out_of_scope_but_detected_versions():
    """Replaying an item's own older ciphertext decrypts fine (same key,
    same id): freshness is integrity work the paper delegates to the
    provable-data-possession line ([1]-[4]).  This test documents the
    boundary explicitly."""
    server = ReplayServer()
    client, key, ids = outsourced(server, "adv-stale")
    client.modify(1, key, ids[0], b"item-0-v2")
    # The replay server now serves the original ciphertext again.
    value = client.access(1, key, ids[0])
    assert value == b"item-0"  # stale but cryptographically valid


def test_missing_balance_view_rejected():
    """A server withholding the balancing view for a multi-leaf tree is
    refused instead of leaving the tree unbalanced."""
    from repro.server.server import CloudServer
    from repro.protocol import messages as msg
    from dataclasses import replace

    class NoBalanceServer(CloudServer):
        def _on_delete_request(self, request):
            reply = super()._on_delete_request(request)
            if isinstance(reply, msg.DeleteChallenge):
                return replace(reply, balance=None)
            return reply

    server = NoBalanceServer()
    client, key, ids = outsourced(server, "adv-nobalance")
    with pytest.raises(ProtocolError):
        client.delete(1, key, ids[0])


def test_inconsistent_duplicate_location_values_rejected():
    """The same physical modulator reported with two different values
    across the MT and balance views is an inconsistency, not a duplicate:
    the client flags it as tampering."""
    from repro.server.server import CloudServer
    from repro.protocol import messages as msg
    from dataclasses import replace

    class InconsistentServer(CloudServer):
        def _on_delete_request(self, request):
            reply = super()._on_delete_request(request)
            if (isinstance(reply, msg.DeleteChallenge)
                    and reply.balance is not None):
                balance = reply.balance
                flipped = bytes([balance.s_leaf_mod[0] ^ 1]) + \
                    balance.s_leaf_mod[1:]
                # Only harmful when s is also a cut node of MT(k); choose
                # the deletion target accordingly in the test below.
                forged = replace(balance, s_leaf_mod=flipped)
                return replace(reply, balance=forged)
            return reply

    server = InconsistentServer()
    client, key, ids = outsourced(server, "adv-inconsistent", n=2)
    # n=2: deleting leaf slot 2 makes s (slot 2's sibling = 3)... choose
    # the first item so that s appears in both views.
    with pytest.raises((IntegrityError, DuplicateModulatorError)):
        client.delete(1, key, ids[1])

"""Theorem 2: deleted data is unrecoverable under the full threat model.

The adversary (:mod:`repro.sim.threat`) controls the server from the
start -- it snapshots every state the server ever holds, including every
ciphertext version -- and seizes the client device *after* the deletion.
The recovery procedure runs every honest derivation over everything it
has.  It must fail for deleted items, and -- the soundness controls --
succeed for live items and for the broken baseline variants.
"""


from repro.baselines.base import BlobStoreServer
from repro.baselines.master_key import MasterKeySolution
from repro.crypto.prf import prf
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.sim.threat import Adversary, snapshot_file
from tests.conftest import make_scheme


def test_deleted_item_unrecoverable_with_continuous_server_compromise():
    scheme = make_scheme("t2-main")
    items = [b"doc-%d" % i for i in range(10)]
    fid, ids = scheme.new_file(items)
    victim = ids[4]

    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))

    # Server is compromised the whole time: snapshot around every op.
    scheme.access(fid, ids[1])
    adversary.observe(snapshot_file(scheme.server, fid))
    scheme.modify(fid, ids[2], b"doc-2-v2")
    adversary.observe(snapshot_file(scheme.server, fid))

    # Time T: the client deletes the victim (old master key shredded).
    scheme.delete(fid, victim)
    adversary.observe(snapshot_file(scheme.server, fid))

    # After T: the device is seized.
    adversary.seize_keystore(scheme.client.keystore.seize())

    # The deleted item resists the full recovery procedure...
    assert adversary.try_recover(victim) is None
    # ...while every live item falls (soundness control).
    assert adversary.try_recover(ids[0]) == b"doc-0"
    # Both ciphertext versions of the modified item decrypt (same data
    # key); the recovery procedure surfaces one of them.
    assert adversary.try_recover(ids[2]) in (b"doc-2", b"doc-2-v2")


def test_multiple_deletions_all_stay_dead():
    scheme = make_scheme("t2-multi")
    fid, ids = scheme.new_file([b"secret-%d" % i for i in range(8)])
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))

    victims = [ids[0], ids[3], ids[7]]
    for victim in victims:
        scheme.delete(fid, victim)
        adversary.observe(snapshot_file(scheme.server, fid))
    new_item = scheme.insert(fid, b"post-deletion insert")
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())

    for victim in victims:
        assert adversary.try_recover(victim) is None
    assert adversary.try_recover(ids[1]) == b"secret-1"
    assert adversary.try_recover(new_item) == b"post-deletion insert"


def test_batched_deletion_kills_all_victims_at_once():
    """Theorem 2 for ``delete_many``: one key rotation kills every item
    in the batch against the full-power adversary (continuous server
    snapshots, device seized after the single deletion time T)."""
    scheme = make_scheme("t2-batch")
    fid, ids = scheme.new_file([b"batch-%d" % i for i in range(12)])
    victims = [ids[0], ids[5], ids[11], ids[6]]

    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))
    scheme.access(fid, ids[3])
    adversary.observe(snapshot_file(scheme.server, fid))

    scheme.delete_many(fid, victims)  # time T for the whole batch
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())

    for victim in victims:
        assert adversary.try_recover(victim) is None
    for index in (1, 2, 3, 4, 7, 8, 9, 10):
        assert adversary.try_recover(ids[index]) == b"batch-%d" % index


def test_batched_then_sequential_deletions_all_stay_dead():
    scheme = make_scheme("t2-batch-seq")
    fid, ids = scheme.new_file([b"v-%d" % i for i in range(9)])
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))

    scheme.delete_many(fid, [ids[2], ids[8]])
    adversary.observe(snapshot_file(scheme.server, fid))
    scheme.delete(fid, ids[4])
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())

    for victim in (ids[2], ids[8], ids[4]):
        assert adversary.try_recover(victim) is None
    assert adversary.try_recover(ids[0]) == b"v-0"


def test_compromise_before_deletion_reads_data_as_expected():
    """Seizing the device *before* T reveals undeleted data -- the threat
    model explicitly concedes this ("If the attackers manage to compromise
    the client's device before T, they will know the data")."""
    scheme = make_scheme("t2-before")
    fid, ids = scheme.new_file([b"exposed"])
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, fid))
    adversary.seize_keystore(scheme.client.keystore.seize())  # before T
    assert adversary.try_recover(ids[0]) == b"exposed"


def test_whole_file_deletion_via_meta_tree_kills_every_item():
    from repro.fs.filesystem import OutsourcedFileSystem
    fs = OutsourcedFileSystem(rng=DeterministicRandom("t2-fs"))
    handle = fs.create_file("vault/secrets", [b"s1", b"s2", b"s3"])
    fid = handle.file_id
    item_ids = [item for item, _size in handle._record.index.records()]

    adversary = Adversary()
    adversary.observe(snapshot_file(fs.server, fid))
    meta_fid = fs._group_manager("vault").meta_file_id
    adversary.observe(snapshot_file(fs.server, meta_fid))

    fs.delete_file("vault/secrets")
    adversary.seize_keystore(fs.client.keystore.seize())

    # The adversary holds every data ciphertext and the whole (old) tree,
    # plus the *current* control key -- but the master key item was
    # assuredly deleted from the meta tree, so nothing decrypts.
    for item in item_ids:
        assert adversary.try_recover(item) is None


def test_two_level_item_deletion_stays_dead_despite_meta_churn():
    """Fine-grained deletion through the fs layer: the meta tree's
    delete+insert replacement must not leave the *old* master key
    recoverable (the in-place-modify pitfall DESIGN.md documents)."""
    from repro.fs.filesystem import OutsourcedFileSystem
    fs = OutsourcedFileSystem(rng=DeterministicRandom("t2-fs2"))
    handle = fs.create_file("hr/roster", [b"alice", b"bob", b"carol"])
    fid = handle.file_id
    meta_fid = fs._group_manager("hr").meta_file_id
    item_ids = [item for item, _size in handle._record.index.records()]

    data_adversary = Adversary()
    meta_adversary = Adversary()
    data_adversary.observe(snapshot_file(fs.server, fid))
    meta_adversary.observe(snapshot_file(fs.server, meta_fid))

    handle.delete_record(0)  # delete alice

    data_adversary.observe(snapshot_file(fs.server, fid))
    meta_adversary.observe(snapshot_file(fs.server, meta_fid))
    seized = fs.client.keystore.seize()
    data_adversary.seize_keystore(seized)
    meta_adversary.seize_keystore(seized)

    # Step 1: the control key cannot resurrect the OLD master-key item in
    # the meta tree (it was assuredly deleted, not modified in place).
    old_meta_items = set(meta_adversary.snapshots[0].ciphertexts)
    new_meta_items = set(meta_adversary.snapshots[-1].ciphertexts)
    replaced = old_meta_items - new_meta_items
    assert replaced, "replacement must delete the old meta item"
    for meta_item in replaced:
        assert meta_adversary.try_recover(meta_item) is None

    # Step 2: consequently the deleted record stays dead even though the
    # adversary can recover the CURRENT master key through the meta tree.
    current_meta_items = new_meta_items - old_meta_items
    recovered_payloads = [meta_adversary.try_recover(item)
                          for item in current_meta_items]
    assert any(payload is not None for payload in recovered_payloads)
    current_master_keys = [payload[10:] for payload in recovered_payloads
                           if payload is not None]
    data_adversary.seized_keys.extend(current_master_keys)
    assert data_adversary.try_recover(item_ids[0]) is None
    assert data_adversary.try_recover(item_ids[1]) == b"bob"


def test_master_key_baseline_without_reencryption_leaks():
    """Soundness control for the broken shortcut: keeping the key while
    merely dropping the ciphertext does NOT delete anything."""
    server = BlobStoreServer()
    scheme = MasterKeySolution(LoopbackChannel(server),
                               rng=DeterministicRandom("t2-mk"))
    ids = scheme.outsource([b"secret", b"other"])

    # Compromised server keeps the ciphertext snapshot.
    snapshot = server.stored_items(scheme.file_id)
    scheme.delete_without_reencryption(ids[0])

    # Device seized after the "deletion": the unchanged master key plus
    # the retained ciphertext recover the item.
    master_key = scheme.keystore.get("master")
    data_key = prf(master_key, ids[0], length=20)
    message, recovered = scheme.codec.decrypt(data_key, snapshot[ids[0]])
    assert recovered == ids[0]
    assert message == b"secret"


def test_master_key_baseline_with_reencryption_is_safe():
    """The honest O(n) deletion of the baseline does work -- it is the
    cost, not the security, that the paper improves."""
    server = BlobStoreServer()
    scheme = MasterKeySolution(LoopbackChannel(server),
                               rng=DeterministicRandom("t2-mk2"))
    ids = scheme.outsource([b"secret", b"other"])
    snapshot = server.stored_items(scheme.file_id)

    scheme.delete(ids[0])

    master_key = scheme.keystore.get("master")  # the NEW key
    for candidate in (ids[0], ids[1]):
        data_key = prf(master_key, candidate, length=20)
        try:
            message, _r = scheme.codec.decrypt(data_key, snapshot[candidate])
        except Exception:
            message = None
        if candidate == ids[0]:
            assert message is None  # old ciphertext + new key: dead

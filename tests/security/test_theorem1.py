"""Theorem 1: deletion never disturbs any other data key.

Driven end-to-end through the real protocol: after every deletion (and
interleaved insertions/modifications) every surviving item must still
decrypt -- which can only happen if its data key is bit-identical, since
the ciphertexts are never touched by deletion.
"""

import pytest

from repro.crypto.rng import DeterministicRandom
from tests.conftest import make_scheme


@pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 16, 33])
def test_every_single_deletion_position(n):
    """Delete each position from a fresh n-item file; survivors intact."""
    for victim_index in range(n):
        scheme = make_scheme(f"t1-{n}-{victim_index}")
        items = [b"payload-%d" % i for i in range(n)]
        fid, ids = scheme.new_file(items)
        scheme.delete(fid, ids[victim_index])
        survivors = scheme.fetch_file(fid)
        expected = {ids[i]: items[i] for i in range(n) if i != victim_index}
        assert survivors == expected


def test_cascading_deletions_to_empty():
    scheme = make_scheme("t1-cascade")
    n = 12
    fid, ids = scheme.new_file([b"it-%d" % i for i in range(n)])
    rng = DeterministicRandom("order")
    remaining = dict(zip(ids, [b"it-%d" % i for i in range(n)]))
    order = list(ids)
    rng.shuffle(order)
    for victim in order:
        scheme.delete(fid, victim)
        del remaining[victim]
        assert scheme.fetch_file(fid) == remaining


def test_interleaved_operations_preserve_keys():
    scheme = make_scheme("t1-interleave")
    fid, ids = scheme.new_file([b"base-%d" % i for i in range(6)])
    oracle = {item: b"base-%d" % i for i, item in enumerate(ids)}

    scheme.delete(fid, ids[2]); del oracle[ids[2]]
    new_a = scheme.insert(fid, b"ins-a"); oracle[new_a] = b"ins-a"
    scheme.modify(fid, ids[0], b"mod-0"); oracle[ids[0]] = b"mod-0"
    scheme.delete(fid, ids[5]); del oracle[ids[5]]
    new_b = scheme.insert(fid, b"ins-b"); oracle[new_b] = b"ins-b"
    scheme.delete(fid, new_a); del oracle[new_a]

    assert scheme.fetch_file(fid) == oracle


def test_deletion_leaves_ciphertexts_untouched():
    """The whole point of key modulation: zero re-encryption on delete."""
    scheme = make_scheme("t1-untouched")
    fid, ids = scheme.new_file([b"x-%d" % i for i in range(8)])
    state = scheme.server.file_state(fid)
    before = {item: state.ciphertexts.get(item) for item in ids}
    scheme.delete(fid, ids[3])
    for item in ids:
        if item == ids[3]:
            continue
        assert state.ciphertexts.get(item) == before[item]


def test_deletion_touches_only_logarithmically_many_modulators():
    scheme = make_scheme("t1-ologn")
    n = 64
    fid, ids = scheme.new_file([bytes(8)] * n)
    tree = scheme.server.file_state(fid).tree
    before = {(kind, slot): value for kind, slot, value in tree.iter_modulators()}
    scheme.delete(fid, ids[10])
    after = {(kind, slot): value for kind, slot, value in tree.iter_modulators()}
    changed = {key for key in before if key in after and
               before[key] != after[key]}
    # Depth of a 64-leaf tree is 6; deltas touch <= 2 modulators per cut
    # node plus the balancing writes.
    assert 0 < len(changed) <= 4 * 7

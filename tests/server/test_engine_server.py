"""The out-of-core storage engine under real protocol traffic.

Twin-world discipline: a plain in-memory server and an engine-backed
server run the *same* deterministic client op sequence (same seed, so
identical modulators, request ids, and ciphertext bytes); their
per-file snapshots must be bit-identical at every comparison point --
across mid-sequence compactions, full restarts, and simulated crashes
at both compaction seams.
"""

import os
import pickle

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import ReproError, SimulatedCrash
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.channel import LoopbackChannel
from repro.server.cluster import ShardCluster
from repro.server.engine import make_engine
from repro.server.paging import NodeCache, PagedModulatorStore
from repro.server.server import (CRASH_POINT_AFTER_FLUSH,
                                 CRASH_POINT_BEFORE_FLUSH, CloudServer)
from repro.server.wal import CommitLog, checkpoint, recover_server
from repro.sim.threat import snapshot_file

pytestmark = pytest.mark.slow

DURABLE = ("log", "sqlite")


def _world(tmp_path, tag, *, backend=None, cache_nodes=65536, seed="twin"):
    """One (server, client, paths) world; same seed => same bytes."""
    wal_path = str(tmp_path / f"wal-{tag}")
    engine = None
    if backend is not None:
        engine = make_engine(backend, str(tmp_path / f"engine-{tag}"))
    server = CloudServer(wal=CommitLog(wal_path), engine=engine)
    if engine is not None and cache_nodes != 65536:
        server.attach_engine(engine, cache_nodes=cache_nodes)
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom(seed))
    return server, client, wal_path


def _script(server, client, checkpoints=()):
    """A fixed op mix; ``checkpoints[i]`` runs after step i (engine
    worlds pass compact_storage, the reference world passes nothing)."""
    def maybe(step):
        for at, action in checkpoints:
            if at == step:
                action()
    key1 = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids1 = client.item_ids_of(4)
    maybe(0)
    key1 = client.delete(1, key1, ids1[1])
    maybe(1)
    client.modify(1, key1, ids1[0], b"a-v2")
    key2 = client.outsource(2, [b"x", b"y"])
    ids2 = client.item_ids_of(2)
    maybe(2)
    key2 = client.delete_many(2, key2, [ids2[0]])
    new_id = client.insert(1, key1, b"e")
    maybe(3)
    key3 = client.outsource(3, [b"drop-me"])
    server.handle(msg.DeleteFileRequest(file_id=3))
    maybe(4)
    return {"keys": (key1, key2), "ids": (ids1, ids2, new_id)}


@pytest.mark.parametrize("backend", DURABLE)
def test_twin_world_bit_identical(tmp_path, backend):
    """Engine-backed state equals the in-memory reference, byte for
    byte, with compactions interleaved into the op sequence."""
    ref_server, ref_client, _ = _world(tmp_path, "ref")
    eng_server, eng_client, _ = _world(tmp_path, backend, backend=backend)
    _script(ref_server, ref_client)
    _script(eng_server, eng_client,
            checkpoints=[(1, eng_server.compact_storage),
                         (3, eng_server.compact_storage)])
    assert eng_server.file_ids() == ref_server.file_ids() == [1, 2]
    for file_id in (1, 2):
        assert snapshot_file(eng_server, file_id) == \
            snapshot_file(ref_server, file_id)


@pytest.mark.parametrize("backend", DURABLE)
def test_twin_world_survives_restart(tmp_path, backend):
    """Close everything, reopen the engine, recover: still identical --
    and the recovered server pages files in lazily (registry-free)."""
    ref_server, ref_client, _ = _world(tmp_path, "ref")
    eng_server, eng_client, wal_path = _world(tmp_path, backend,
                                              backend=backend)
    _script(ref_server, ref_client)
    _script(eng_server, eng_client)
    eng_server.compact_storage()
    eng_server.wal.close()
    eng_server.engine.close()

    engine = make_engine(backend, str(tmp_path / f"engine-{backend}"))
    recovered = recover_server(None, wal_path, engine=engine)
    assert recovered.last_recovery["replayed_records"] == 0  # compacted
    assert recovered.file_ids() == [1, 2]
    assert not recovered._files  # nothing materialised yet
    for file_id in (1, 2):
        assert snapshot_file(recovered, file_id) == \
            snapshot_file(ref_server, file_id)
    recovered.wal.close()
    engine.close()


@pytest.mark.parametrize("backend", DURABLE)
def test_recovered_server_keeps_serving(tmp_path, backend):
    """Mutations against paged-in (registry-free) files work and stay
    identical to the reference world applying the same mutations."""
    ref_server, ref_client, _ = _world(tmp_path, "ref")
    eng_server, eng_client, wal_path = _world(tmp_path, backend,
                                              backend=backend)
    out_ref = _script(ref_server, ref_client)
    _script(eng_server, eng_client)
    eng_server.compact_storage()
    eng_server.wal.close()
    eng_server.engine.close()

    engine = make_engine(backend, str(tmp_path / f"engine-{backend}"))
    recovered = recover_server(None, wal_path, engine=engine,
                               cache_nodes=4)  # force real paging
    client2 = AssuredDeletionClient(LoopbackChannel(recovered),
                                    rng=DeterministicRandom("twin-2"),
                                    keystore=eng_client.keystore,
                                    store_keys=False)
    ref_client2 = AssuredDeletionClient(LoopbackChannel(ref_server),
                                        rng=DeterministicRandom("twin-2"),
                                        keystore=ref_client.keystore,
                                        store_keys=False)
    key1, _key2 = out_ref["keys"]
    ids1 = out_ref["ids"][0]
    for cl in (ref_client2, client2):
        assert cl.access(1, key1, ids1[0]) == b"a-v2"
        cl.modify(1, key1, ids1[2], b"c-v2")
        cl.delete(1, key1, ids1[3])
    recovered.compact_storage()
    assert snapshot_file(recovered, 1) == snapshot_file(ref_server, 1)
    recovered.wal.close()
    engine.close()


@pytest.mark.parametrize("backend", DURABLE)
@pytest.mark.parametrize("point", [CRASH_POINT_BEFORE_FLUSH,
                                   CRASH_POINT_AFTER_FLUSH])
def test_compaction_crash_seams_recover(tmp_path, backend, point):
    """A crash on either side of the engine-flush barrier loses nothing:
    engine snapshot + WAL tail always rebuilds the reference state."""
    ref_server, ref_client, _ = _world(tmp_path, "ref")
    eng_server, eng_client, wal_path = _world(tmp_path, backend,
                                              backend=backend)
    _script(ref_server, ref_client)
    eng_server.compact_storage()  # a first snapshot to crash on top of

    def crashing_compact():
        eng_server.arm_crash(point)
        with pytest.raises(SimulatedCrash):
            eng_server.compact_storage()
    _script(eng_server, eng_client, checkpoints=[(2, crashing_compact)])

    # Process death: drop the handles (neither seam leaves staged,
    # unflushed engine writes -- torn flushes are the engine-format
    # tests' concern) and recover from what is on disk.
    eng_server.wal.close()
    eng_server.engine.close()
    engine = make_engine(backend, str(tmp_path / f"engine-{backend}"))
    recovered = recover_server(None, wal_path, engine=engine)
    if point == CRASH_POINT_BEFORE_FLUSH:
        # The WAL was not truncated: replay must redo the lost tail.
        assert recovered.last_recovery["replayed_records"] > 0
    assert recovered.file_ids() == [1, 2]
    for file_id in (1, 2):
        assert snapshot_file(recovered, file_id) == \
            snapshot_file(ref_server, file_id)
    recovered.wal.close()
    engine.close()


def test_compact_storage_is_incremental(tmp_path):
    """The second compaction flushes nothing: only state dirtied since
    the last one is written (the perf point of dirty-node tracking)."""
    server, client, _ = _world(tmp_path, "inc", backend="sqlite")
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    first = server.compact_storage()
    assert first["files_converted"] == 1
    second = server.compact_storage()
    assert second["dirty_records"] == 0
    assert second["files_converted"] == 0
    client.delete(1, key, ids[1])
    third = server.compact_storage()
    assert third["dirty_records"] > 0
    assert third["files_flushed"] == 1
    server.wal.close()
    server.engine.close()


def test_compact_storage_requires_engine(tmp_path):
    server = CloudServer()
    with pytest.raises(ReproError):
        server.compact_storage()


def test_engine_backed_server_is_not_picklable(tmp_path):
    server, _client, _ = _world(tmp_path, "nopickle", backend="sqlite")
    with pytest.raises(TypeError):
        pickle.dumps(server)
    server.wal.close()
    server.engine.close()


def test_checkpoint_delegates_to_compact_storage(tmp_path):
    """The legacy checkpoint entry point must not pickle an image for an
    engine-backed server; it compacts instead."""
    server, client, _ = _world(tmp_path, "ckpt", backend="sqlite")
    client.outsource(1, [b"a"])
    image = str(tmp_path / "server.img")
    checkpoint(server, image)
    assert not os.path.exists(image)
    assert server.wal.compactions == 1
    server.wal.close()
    server.engine.close()


def test_file_visibility_without_materialisation(tmp_path):
    """has_file / file_ids / file_count see engine-resident files the
    server never paged in."""
    server, client, wal_path = _world(tmp_path, "vis", backend="sqlite")
    client.outsource(1, [b"a"])
    client.outsource(2, [b"b"])
    server.compact_storage()
    server.wal.close()
    engine_path = str(tmp_path / "engine-vis")
    server.engine.close()
    engine = make_engine("sqlite", engine_path)
    fresh = recover_server(None, wal_path, engine=engine)
    assert fresh.has_file(1) and fresh.has_file(2)
    assert not fresh.has_file(3)
    assert fresh.file_ids() == [1, 2]
    assert fresh.file_count() == 2
    assert not fresh._files  # still nothing resident
    fresh.wal.close()
    engine.close()


def test_delete_file_reaches_the_engine(tmp_path):
    server, client, _ = _world(tmp_path, "del", backend="sqlite")
    client.outsource(1, [b"a"])
    server.compact_storage()
    assert server.engine.file_ids() == [1]
    server.handle(msg.DeleteFileRequest(file_id=1))
    assert server.engine.file_ids() == []
    assert server.file_ids() == []
    server.wal.close()
    server.engine.close()


# ---------------------------------------------------------------------
# Node cache
# ---------------------------------------------------------------------

def test_node_cache_bounds_and_eviction():
    cache = NodeCache(capacity=4)
    for slot in range(10):
        cache.put((1, 0, slot), b"v%d" % slot)
    assert len(cache) == 4
    assert cache.get((1, 0, 9)) == b"v9"
    assert cache.get((1, 0, 0)) is None  # evicted


def test_node_cache_purge_file():
    cache = NodeCache(capacity=16)
    cache.put((1, 0, 2), b"a")
    cache.put((2, 0, 2), b"b")
    cache.purge_file(1)
    assert cache.get((1, 0, 2)) is None
    assert cache.get((2, 0, 2)) == b"b"


def test_node_cache_capacity_zero_disables():
    cache = NodeCache(capacity=0)
    cache.put((1, 0, 2), b"a")
    assert cache.get((1, 0, 2)) is None
    assert len(cache) == 0


def test_paging_respects_cache_bound(tmp_path):
    """A tiny node cache stays tiny while serving reads over a larger
    paged-in file (the O(working-set) claim, in miniature)."""
    server, client, wal_path = _world(tmp_path, "bound", backend="sqlite")
    key = client.outsource(1, [b"r%d" % i for i in range(32)])
    ids = client.item_ids_of(32)
    server.compact_storage()
    server.wal.close()
    server.engine.close()
    engine = make_engine("sqlite", str(tmp_path / "engine-bound"))
    small = recover_server(None, wal_path, engine=engine, cache_nodes=8)
    client2 = AssuredDeletionClient(LoopbackChannel(small),
                                    rng=DeterministicRandom("bound-2"),
                                    keystore=client.keystore,
                                    store_keys=False)
    for i in range(0, 32, 5):
        assert client2.access(1, key, ids[i]) == b"r%d" % i
    assert len(small._node_cache) <= 8
    tree_store = small.file_state(1).tree.store
    assert isinstance(tree_store, PagedModulatorStore)
    small.wal.close()
    engine.close()


# ---------------------------------------------------------------------
# WAL compaction markers
# ---------------------------------------------------------------------

def test_wal_compact_truncates_and_marks(tmp_path):
    path = str(tmp_path / "wal")
    with CommitLog(path) as log:
        log.append(b"one")
        log.append(b"two")
        log.compact(b"snapshot files=1")
        assert log.records() == []
        assert log.compactions == 1
        assert log.snapshot_marker == b"snapshot files=1"
        log.append(b"three")
    with CommitLog(path) as log:  # reopen: marker survives, records too
        assert log.records() == [b"three"]
        assert log.snapshot_marker == b"snapshot files=1"


def test_wal_compact_is_crash_atomic(tmp_path):
    """The compacted log lands via tmp-write + rename: whatever the
    crash timing, reopening sees either the old or the new log, never a
    half-written one."""
    path = str(tmp_path / "wal")
    with CommitLog(path) as log:
        log.append(b"keep")
        log.compact(b"m1")
        log.append(b"after")
    # A stale compaction temp from a crashed run must not break reopen.
    with open(path + ".compact.tmp", "wb") as handle:
        handle.write(b"garbage")
    with CommitLog(path) as log:
        assert log.records() == [b"after"]


def test_wal_marker_not_replayed(tmp_path):
    """Recovery replays data records only -- the snapshot marker is
    metadata, not a request."""
    server, client, wal_path = _world(tmp_path, "marker", backend="sqlite")
    key = client.outsource(1, [b"a"])
    server.compact_storage()
    client.insert(1, key, b"b")  # one post-compaction record to replay
    server.wal.close()
    server.engine.close()
    engine = make_engine("sqlite", str(tmp_path / "engine-marker"))
    recovered = recover_server(None, wal_path, engine=engine)
    assert recovered.file_ids() == [1]
    recovered.wal.close()
    engine.close()


# ---------------------------------------------------------------------
# Sharded tier
# ---------------------------------------------------------------------

@pytest.mark.parametrize("backend", DURABLE)
def test_cluster_compact_and_recover_shard(tmp_path, backend):
    cluster = ShardCluster(2, data_dir=str(tmp_path), durable=True,
                           storage_backend=backend)
    try:
        donor = CloudServer()
        client = AssuredDeletionClient(LoopbackChannel(donor),
                                       rng=DeterministicRandom("shard"))
        client.outsource(1, [b"a", b"b"])
        client.outsource(2, [b"c"])
        cluster.adopt_server(donor)
        stats = cluster.compact()
        assert len(stats) == 2
        assert sum(s["files_converted"] for s in stats) == 2
        before = {fid: snapshot_file(cluster.server_for(fid), fid)
                  for fid in (1, 2)}
        for unit in cluster.units:
            cluster.recover_shard(unit.shard_id)
        after = {fid: snapshot_file(cluster.server_for(fid), fid)
                 for fid in (1, 2)}
        assert after == before
    finally:
        cluster.stop()

"""Direct behaviour of the malicious-server variants (the security
consequences are tested in tests/security)."""


from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.channel import LoopbackChannel
from repro.server.adversary import (CloneCutServer, ReplayServer,
                                    WrongCiphertextServer, WrongLeafServer)


def outsourced(server, n=4, seed="adv-unit"):
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom(seed))
    key = client.outsource(1, [b"v-%d" % i for i in range(n)])
    return client, key, client.item_ids_of(n)


def test_wrong_leaf_server_actually_swaps():
    server = WrongLeafServer()
    _client, _key, ids = outsourced(server)
    challenge = server.handle(msg.DeleteRequest(file_id=1, item_id=ids[2]))
    assert isinstance(challenge, msg.DeleteChallenge)
    # The served path leads to a different item's leaf.
    victim_slot = server.file_state(1).tree.slot_of_item(ids[2])
    assert challenge.mt.path_slots[-1] != victim_slot


def test_wrong_leaf_server_with_single_item_degrades_to_honest():
    server = WrongLeafServer()
    _client, _key, ids = outsourced(server, n=1)
    challenge = server.handle(msg.DeleteRequest(file_id=1, item_id=ids[0]))
    assert isinstance(challenge, msg.DeleteChallenge)


def test_wrong_ciphertext_server_swaps_payload_only():
    server = WrongCiphertextServer()
    _client, _key, ids = outsourced(server)
    honest = server.file_state(1)
    challenge = server.handle(msg.DeleteRequest(file_id=1, item_id=ids[0]))
    victim_slot = honest.tree.slot_of_item(ids[0])
    assert challenge.mt.path_slots[-1] == victim_slot  # path is honest
    assert challenge.ciphertext != honest.ciphertexts.get(ids[0])


def test_clone_cut_server_produces_equal_modulators():
    server = CloneCutServer()
    _client, _key, ids = outsourced(server, n=8)
    challenge = server.handle(msg.DeleteRequest(file_id=1, item_id=ids[2]))
    assert challenge.mt.cut[0].link_mod == challenge.mt.path_links[0]


def test_replay_server_serves_first_version():
    server = ReplayServer()
    client, key, ids = outsourced(server)
    original = client.access(1, key, ids[0])
    client.modify(1, key, ids[0], b"updated")
    assert client.access(1, key, ids[0]) == original  # stale replay

"""The honest cloud server: handlers, versioning, duplicate registry."""

import pytest

from repro.core.errors import ReproError
from repro.core.modstore import DenseModulatorStore
from repro.core.tree import ModulationTree
from repro.protocol import messages as msg
from repro.server.server import CloudServer
from repro.server.storage import InMemoryCiphertextStore


def test_unsupported_message():
    server = CloudServer()
    reply = server.handle(msg.Ack())
    assert isinstance(reply, msg.ErrorReply)
    assert reply.code == msg.E_BAD_REQUEST


def test_unknown_file_and_item(scheme):
    server = scheme.server
    reply = server.handle(msg.AccessRequest(file_id=404, item_id=1))
    assert isinstance(reply, msg.ErrorReply)
    fid, ids = scheme.new_file([b"x"])
    reply = server.handle(msg.AccessRequest(file_id=fid, item_id=999))
    assert isinstance(reply, msg.ErrorReply)
    assert reply.code == msg.E_UNKNOWN_ITEM


def test_outsource_validation():
    server = CloudServer()
    bad = msg.OutsourceRequest(file_id=1, item_ids=(1, 2),
                               links=(), leaves=(), ciphertexts=(b"x",))
    reply = server.handle(bad)
    assert isinstance(reply, msg.ErrorReply)


def test_outsource_rejects_duplicate_modulators():
    server = CloudServer()
    dup = b"\x01" * 20
    request = msg.OutsourceRequest(
        file_id=1, item_ids=(1, 2), links=(dup, dup),
        leaves=(b"\x02" * 20, b"\x03" * 20), ciphertexts=(b"a", b"b"))
    reply = server.handle(request)
    assert isinstance(reply, msg.ErrorReply)
    assert reply.code == msg.E_DUPLICATE_MODULATOR
    assert not server.has_file(1)


def test_stale_version_rejected(scheme):
    server = scheme.server
    fid, ids = scheme.new_file([b"a", b"b", b"c"])
    challenge = server.handle(msg.DeleteRequest(file_id=fid, item_id=ids[0]))
    assert isinstance(challenge, msg.DeleteChallenge)
    # Another operation bumps the version before the commit arrives.
    scheme.insert(fid, b"d")
    commit = msg.DeleteCommit(file_id=fid, item_id=ids[0],
                              cut_slots=(), deltas=(),
                              tree_version=challenge.tree_version)
    reply = server.handle(commit)
    assert isinstance(reply, msg.ErrorReply)
    assert reply.code == msg.E_STALE_STATE


def test_commit_cut_must_match_path(scheme):
    server = scheme.server
    fid, ids = scheme.new_file([b"a", b"b", b"c", b"d"])
    challenge = server.handle(msg.DeleteRequest(file_id=fid, item_id=ids[0]))
    wrong_cut = tuple(slot + 1 for slot in
                      (entry.slot for entry in challenge.mt.cut))
    commit = msg.DeleteCommit(file_id=fid, item_id=ids[0],
                              cut_slots=wrong_cut,
                              deltas=tuple(b"\x00" * 20 for _ in wrong_cut),
                              x_s_prime=b"\x01" * 20,
                              tree_version=challenge.tree_version)
    reply = server.handle(commit)
    assert isinstance(reply, msg.ErrorReply)


def test_registry_blocks_duplicate_balancing_value(scheme):
    """A client-supplied balancing modulator colliding with an existing one
    is rejected before any state changes."""
    server = scheme.server
    fid, ids = scheme.new_file([b"a", b"b", b"c", b"d"])
    state = server.file_state(fid)
    existing = state.tree.store.get_leaf(state.tree.slot_of_item(ids[1]))
    challenge = server.handle(msg.DeleteRequest(file_id=fid, item_id=ids[0]))
    version = challenge.tree_version
    commit = msg.DeleteCommit(
        file_id=fid, item_id=ids[0],
        cut_slots=tuple(e.slot for e in challenge.mt.cut),
        deltas=tuple(b"\x00" * 20 for _ in challenge.mt.cut),
        x_s_prime=existing,  # collides with a live leaf modulator
        dest_link=b"\x11" * 20, dest_leaf=b"\x12" * 20,
        tree_version=version)
    reply = server.handle(commit)
    assert isinstance(reply, msg.ErrorReply)
    assert reply.code == msg.E_DUPLICATE_MODULATOR
    assert server.file_state(fid).version == version  # nothing applied


def test_adopt_file_rejects_duplicates():
    store = DenseModulatorStore(20)
    store.set_link(2, b"\x01" * 20)
    store.set_link(3, b"\x01" * 20)
    store.set_leaf(2, b"\x02" * 20)
    store.set_leaf(3, b"\x03" * 20)
    tree = ModulationTree.adopt(store, 2, [1, 2])
    server = CloudServer()
    with pytest.raises(ReproError):
        server.adopt_file(1, tree, InMemoryCiphertextStore())


def test_fetch_file_reply_matches_state(scheme):
    fid, ids = scheme.new_file([b"a", b"b", b"c"])
    reply = scheme.server.handle(msg.FetchFileRequest(file_id=fid))
    assert isinstance(reply, msg.FetchFileReply)
    assert reply.n_leaves == 3
    assert len(reply.links) == 4
    assert len(reply.leaves) == 3
    assert len(reply.ciphertexts) == 3


def test_delete_file_is_idempotent():
    server = CloudServer()
    assert isinstance(server.handle(msg.DeleteFileRequest(file_id=5)), msg.Ack)


def test_handle_bytes_roundtrip():
    server = CloudServer()
    encoded = msg.encode_message(server.ctx, msg.DeleteFileRequest(file_id=1))
    reply = msg.decode_message(server.ctx, server.handle_bytes(encoded))
    assert isinstance(reply, msg.Ack)


def test_modify_requires_fresh_version(scheme):
    fid, ids = scheme.new_file([b"a", b"b"])
    server = scheme.server
    state = server.file_state(fid)
    reply = server.handle(msg.ModifyCommit(file_id=fid, item_id=ids[0],
                                           ciphertext=b"new",
                                           tree_version=state.version + 5))
    assert isinstance(reply, msg.ErrorReply)
    assert reply.code == msg.E_STALE_STATE

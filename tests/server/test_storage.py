"""Ciphertext storage backends."""

import pytest

from repro.core.errors import UnknownItemError
from repro.server.storage import (CallbackCiphertextStore,
                                  FileBackedCiphertextStore,
                                  InMemoryCiphertextStore)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryCiphertextStore()
    return FileBackedCiphertextStore(str(tmp_path / "store"))


def test_put_get_delete(store):
    store.put(1, b"ciphertext-one")
    assert store.get(1) == b"ciphertext-one"
    store.put(1, b"replaced")
    assert store.get(1) == b"replaced"
    store.delete(1)
    with pytest.raises(UnknownItemError):
        store.get(1)


def test_delete_is_idempotent(store):
    store.delete(42)
    store.delete(42)


def test_missing_item(store):
    with pytest.raises(UnknownItemError):
        store.get(7)


def test_file_backed_persists(tmp_path):
    root = str(tmp_path / "persist")
    first = FileBackedCiphertextStore(root)
    first.put(9, b"durable")
    second = FileBackedCiphertextStore(root)
    assert second.get(9) == b"durable"


def test_in_memory_len_and_ids():
    store = InMemoryCiphertextStore()
    store.put(1, b"a")
    store.put(2, b"b")
    assert len(store) == 2
    assert sorted(store.item_ids()) == [1, 2]


def test_callback_store_derives_and_overlays():
    store = CallbackCiphertextStore(lambda item_id: b"derived-%d" % item_id)
    assert store.get(5) == b"derived-5"
    store.put(5, b"written")
    assert store.get(5) == b"written"
    store.delete(5)
    with pytest.raises(UnknownItemError):
        store.get(5)
    # Other items still derive.
    assert store.get(6) == b"derived-6"
    # Re-put after delete resurrects (used by insert-after-delete flows).
    store.put(5, b"again")
    assert store.get(5) == b"again"

"""Kill -9 semantics: every mutating operation is all-or-nothing.

The harness runs the real client against a WAL-backed server through the
fault-injecting channel, fires a simulated crash at each commit crash
point, restarts the server from disk (``recover_server``), and then
replays the client's retransmission -- the same encoded bytes, same
request id.  The pinned property is the one the paper's assurance
argument needs: after recovery the operation is either fully applied or
fully absent, and the retry converges to applied *exactly once*.
"""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import UnknownItemError
from repro.crypto.rng import DeterministicRandom
from repro.protocol import messages as msg
from repro.protocol.faults import (CRASH_AFTER_APPLY, CRASH_BEFORE_APPLY,
                                   DROP_RESPONSE, NONE, ChannelError,
                                   FaultInjectingChannel)
from repro.server.server import CloudServer
from repro.server.wal import CommitLog, checkpoint, recover_server
from repro.sim.threat import snapshot_file

pytestmark = pytest.mark.slow

CRASH_POINTS = [CRASH_BEFORE_APPLY, CRASH_AFTER_APPLY]


class Harness:
    """One durable server + client pair with deterministic randomness."""

    def __init__(self, directory, seed="crash", n=6, group_commit=False):
        directory.mkdir(exist_ok=True)
        self.image = str(directory / "server.img")
        self.wal_path = str(directory / "server.wal")
        self.server = CloudServer(wal=CommitLog(self.wal_path,
                                                group_commit=group_commit))
        self.channel = FaultInjectingChannel(self.server, [])
        self.client = AssuredDeletionClient(self.channel,
                                            rng=DeterministicRandom(seed))
        self.key = self.client.outsource(
            1, [b"item-%d" % i for i in range(n)])
        self.ids = self.client.item_ids_of(n)
        checkpoint(self.server, self.image)

    def schedule(self, faults):
        self.channel._schedule = iter(faults)

    def restart(self):
        """Simulate the kill -9: only the on-disk state survives."""
        self.server.wal.close()
        self.server = recover_server(self.image, self.wal_path)
        self.channel._server = self.server  # the client re-dials
        return self.server


# Each operation, with the fault-schedule prefix covering its
# non-mutating message(s) and the file id its commit lands on.
def _op_modify(h):
    h.client.modify(1, h.key, h.ids[0], b"patched")


def _op_insert(h):
    h.client.insert(1, h.key, b"fresh")


def _op_delete(h):
    h.client.delete(1, h.key, h.ids[1])


def _op_batch_delete(h):
    h.client.delete_many(1, h.key, (h.ids[1], h.ids[4]))


def _op_outsource(h):
    h.client.outsource(2, [b"second-file"])


def _op_delete_file(h):
    h.client.delete_file_state(1)


OPS = [
    ("modify", _op_modify, [NONE], 1),
    ("insert", _op_insert, [NONE], 1),
    ("delete", _op_delete, [NONE], 1),
    ("batch-delete", _op_batch_delete, [NONE], 1),
    ("outsource", _op_outsource, [], 2),
    ("delete-file", _op_delete_file, [], 1),
]


@pytest.mark.parametrize("crash", CRASH_POINTS)
@pytest.mark.parametrize("name,op,prefix,file_id", OPS,
                         ids=[name for name, *_ in OPS])
def test_crash_then_retry_applies_exactly_once(tmp_path, name, op, prefix,
                                               file_id, crash):
    """The WAL record is durable before either crash point, so recovery
    applies the operation; the retransmission is answered from the
    request-id cache without a second application, and the final state
    equals a crash-free run with identical randomness."""
    h = Harness(tmp_path / "crashed")
    twin = Harness(tmp_path / "twin")
    op(twin)  # the crash-free outcome (same seed, same rng draws)

    h.schedule(prefix + [crash])
    with pytest.raises(ChannelError):
        op(h)
    commit_bytes = h.channel.last_request_bytes

    recovered = h.restart()
    # The client's retry: same bytes, same request id -- twice, to pin
    # idempotence of the retry itself.
    first = recovered.handle_bytes(commit_bytes)
    assert isinstance(msg.decode_message(recovered.ctx, first), msg.Ack)
    assert recovered.handle_bytes(commit_bytes) == first

    if name == "delete-file":
        assert not recovered.has_file(1)
        assert not twin.server.has_file(1)
    else:
        assert snapshot_file(recovered, file_id) == \
            snapshot_file(twin.server, file_id)
        assert recovered.file_state(file_id).version == \
            twin.server.file_state(file_id).version


@pytest.mark.parametrize("crash", CRASH_POINTS)
def test_journalled_delete_converges_across_restart(tmp_path, crash):
    """End to end through the client: the deletion journal survives the
    server crash, resume_delete converges, and only then is the old key
    shredded (the paper's deletion time T)."""
    h = Harness(tmp_path)
    h.schedule([NONE, crash])
    with pytest.raises(ChannelError):
        h.client.delete(1, h.key, h.ids[2])
    assert h.client.pending_deletes() == [(1, h.ids[2])]

    h.restart()
    new_key = h.client.resume_delete(1, h.ids[2])
    assert h.client.pending_deletes() == []
    assert h.server.file_state(1).tree.leaf_count == 5
    assert h.server.file_state(1).version == 1  # exactly once
    assert h.client.access(1, new_key, h.ids[0]) == b"item-0"
    with pytest.raises(UnknownItemError):
        h.client.access(1, new_key, h.ids[2])


@pytest.mark.parametrize("crash", CRASH_POINTS)
def test_journalled_batch_converges_across_restart(tmp_path, crash):
    h = Harness(tmp_path)
    victims = (h.ids[1], h.ids[4])
    h.schedule([NONE, crash])
    with pytest.raises(ChannelError):
        h.client.delete_many(1, h.key, victims)
    assert h.client.pending_batch_deletes() == [(1, victims)]

    h.restart()
    new_key = h.client.resume_delete_many(1, victims)
    assert h.server.file_state(1).tree.leaf_count == 4
    assert h.server.file_state(1).version == 1
    for index in (0, 2, 3, 5):
        assert h.client.access(1, new_key, h.ids[index]) == b"item-%d" % index
    for victim in victims:
        with pytest.raises(UnknownItemError):
            h.client.access(1, new_key, victim)


@pytest.mark.parametrize("group_commit", [False, True],
                         ids=["per-append", "group-commit"])
def test_every_wal_truncation_point_is_all_or_nothing(tmp_path,
                                                      group_commit):
    """Sweep the kill -9 over every byte of the WAL write itself.

    A commit crashes after application; its WAL file is then truncated at
    every possible offset (the torn record a real crash mid-``write``
    leaves).  Recovery from each prefix must yield either the pre-commit
    state (record torn => fully absent) or the applied state (record
    durable => fully applied), and the client's retransmitted commit must
    converge to the same applied-exactly-once state from both.  Group
    commit must not change the on-disk story at any cut."""
    h = Harness(tmp_path / "origin", n=5, group_commit=group_commit)
    baseline = snapshot_file(h.server, 1)
    h.schedule([NONE, CRASH_AFTER_APPLY])
    with pytest.raises(ChannelError):
        h.client.delete(1, h.key, h.ids[1])
    commit_bytes = h.channel.last_request_bytes
    h.server.wal.close()

    wal_bytes = (tmp_path / "origin" / "server.wal").read_bytes()
    record_start = 6  # header: magic + u16 version
    assert len(wal_bytes) > record_start  # exactly one logged commit
    applied = None
    for cut in range(len(wal_bytes) + 1):
        trial = tmp_path / f"cut-{cut}"
        trial.mkdir()
        wal_copy = trial / "server.wal"
        wal_copy.write_bytes(wal_bytes[:cut])
        recovered = recover_server(h.image, str(wal_copy))
        torn = cut < len(wal_bytes)
        if torn:
            assert snapshot_file(recovered, 1) == baseline  # fully absent
            assert recovered.file_state(1).version == 0
        # The client's journalled retry: same commit bytes either way.
        reply = msg.decode_message(recovered.ctx,
                                   recovered.handle_bytes(commit_bytes))
        assert isinstance(reply, msg.Ack)
        final = snapshot_file(recovered, 1)
        if applied is None:
            applied = final
        assert final == applied
        assert final != baseline
        assert recovered.file_state(1).version == 1
        recovered.wal.close()


@pytest.mark.parametrize("group_commit", [False, True],
                         ids=["per-append", "group-commit"])
def test_append_failure_then_crash_keeps_acknowledged_commits(tmp_path,
                                                              group_commit):
    """Injected append failure mid-run: the commit whose fsync failed was
    never acknowledged, the commits before AND after it were.  Recovery
    must replay exactly the acknowledged ones -- the torn record cannot
    be allowed to hide the later appends from the scan."""
    failures = {"armed": False}

    class _FailingSyncLog(CommitLog):
        def _sync(self, fileno):
            if failures["armed"]:
                failures["armed"] = False
                raise OSError(28, "No space left on device")
            super()._sync(fileno)

    directory = tmp_path / "flaky"
    directory.mkdir()
    image = str(directory / "server.img")
    wal_path = str(directory / "server.wal")
    server = CloudServer(wal=_FailingSyncLog(wal_path,
                                             group_commit=group_commit))
    client = AssuredDeletionClient(FaultInjectingChannel(server, []),
                                   rng=DeterministicRandom("flaky"))
    key = client.outsource(1, [b"item-%d" % i for i in range(4)])
    ids = client.item_ids_of(4)
    checkpoint(server, image)

    client.modify(1, key, ids[0], b"acknowledged-1")
    failures["armed"] = True
    with pytest.raises(OSError):
        client.modify(1, key, ids[1], b"never-acknowledged")
    client.modify(1, key, ids[2], b"acknowledged-2")  # after the repair
    expected = snapshot_file(server, 1)
    server.wal.close()

    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == expected
    recovered.wal.close()


def test_missing_wal_directory_entry_recovers_from_image(tmp_path):
    """The lost-directory-entry crash: the WAL file's name never became
    durable and the file is simply gone after restart.  Recovery must
    fall back to the checkpoint image, recreate the log (and this time
    fsync the directory), and keep serving durably."""
    h = Harness(tmp_path)
    h.client.modify(1, h.key, h.ids[0], b"checkpointed")
    checkpoint(h.server, h.image)
    expected = snapshot_file(h.server, 1)
    h.server.wal.close()
    import os
    os.unlink(h.wal_path)  # the directory entry the crash forgot

    recovered = recover_server(h.image, h.wal_path)
    assert os.path.exists(h.wal_path)  # recreated, header only
    assert snapshot_file(recovered, 1) == expected
    # And the recreated log keeps accepting durable commits.
    client = AssuredDeletionClient(FaultInjectingChannel(recovered, []),
                                   rng=DeterministicRandom("post"),
                                   keystore=h.client.keystore,
                                   store_keys=False)
    client.modify(1, h.key, h.ids[1], b"after-recreate")
    recovered.wal.close()
    again = recover_server(h.image, h.wal_path)
    assert snapshot_file(again, 1) == snapshot_file(recovered, 1)
    again.wal.close()


def test_retry_after_checkpoint_answers_from_persisted_cache(tmp_path):
    """The Ack is lost, the server checkpoints (WAL reset!) and crashes.
    The only thing that can answer the client's retry correctly is the
    replay cache persisted inside the image -- without it the retry
    would bounce off the version check as stale."""
    h = Harness(tmp_path)
    h.schedule([NONE, DROP_RESPONSE])
    with pytest.raises(ChannelError):
        h.client.delete(1, h.key, h.ids[3])
    checkpoint(h.server, h.image)

    h.restart()
    with open(h.wal_path, "rb") as handle:
        assert len(handle.read()) == 6  # nothing left to replay
    new_key = h.client.resume_delete(1, h.ids[3])
    assert h.server.file_state(1).version == 1  # answered, not re-applied
    assert h.client.access(1, new_key, h.ids[0]) == b"item-0"


def test_crash_without_wal_stays_consistent_in_memory():
    """Crash points also work without a WAL attached (pure fault test):
    before-apply leaves the state untouched, after-apply leaves it
    applied, and the journalled retry converges either way."""
    server = CloudServer()
    channel = FaultInjectingChannel(server, [])
    client = AssuredDeletionClient(channel, rng=DeterministicRandom("mem"))
    key = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids = client.item_ids_of(4)

    channel._schedule = iter([NONE, CRASH_BEFORE_APPLY])
    with pytest.raises(ChannelError):
        client.delete(1, key, ids[1])
    assert server.file_state(1).tree.leaf_count == 4  # untouched
    key = client.resume_delete(1, ids[1])
    assert server.file_state(1).tree.leaf_count == 3

    channel._schedule = iter([NONE, CRASH_AFTER_APPLY])
    with pytest.raises(ChannelError):
        client.delete(1, key, ids[2])
    assert server.file_state(1).tree.leaf_count == 2  # applied
    key = client.resume_delete(1, ids[2])
    assert server.file_state(1).tree.leaf_count == 2  # exactly once
    assert client.access(1, key, ids[0]) == b"a"

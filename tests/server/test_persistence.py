"""Server state persistence: save, reload, and keep operating."""

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import ProtocolError
from repro.core.params import SHA256_PARAMS
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.persistence import load_server, save_server
from repro.sim.threat import snapshot_file
from tests.conftest import make_scheme


def test_roundtrip_preserves_state(tmp_path, scheme):
    fid, ids = scheme.new_file([b"a", b"b", b"c", b"d"])
    scheme.delete(fid, ids[1])
    scheme.modify(fid, ids[0], b"a-v2")
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)

    restored = load_server(path)
    before = snapshot_file(scheme.server, fid)
    after = snapshot_file(restored, fid)
    assert before == after
    assert restored.file_state(fid).version == \
        scheme.server.file_state(fid).version


def test_client_continues_against_restored_server(tmp_path, scheme):
    fid, ids = scheme.new_file([b"x", b"y", b"z"])
    key = scheme._key(fid)
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)

    restored = load_server(path)
    client = AssuredDeletionClient(LoopbackChannel(restored),
                                   rng=DeterministicRandom("restore"),
                                   keystore=scheme.client.keystore,
                                   store_keys=False)
    assert client.access(fid, key, ids[0]) == b"x"
    new_key = client.delete(fid, key, ids[1])
    assert client.fetch_file(fid, new_key) == {ids[0]: b"x", ids[2]: b"z"}


def test_multiple_files(tmp_path, scheme):
    fid1, _ = scheme.new_file([b"one"])
    fid2, _ = scheme.new_file([b"two", b"three"])
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    restored = load_server(path)
    assert restored.has_file(fid1)
    assert restored.has_file(fid2)
    assert restored.file_state(fid2).tree.leaf_count == 2


def test_empty_server(tmp_path):
    scheme = make_scheme("empty-persist")
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    restored = load_server(path)
    assert not restored.has_file(1)


def test_rejects_garbage(tmp_path):
    path = str(tmp_path / "garbage")
    with open(path, "wb") as handle:
        handle.write(b"NOPE" + b"\x00" * 40)
    with pytest.raises(ProtocolError):
        load_server(path)


def test_rejects_wrong_parameters(tmp_path, scheme):
    fid, _ = scheme.new_file([b"a"])
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    with pytest.raises(ProtocolError):
        load_server(path, params=SHA256_PARAMS)


def test_refuses_to_save_missing_ciphertext(tmp_path, scheme):
    """A tree entry without its ciphertext is corruption.  Writing a
    silently smaller image would look like a clean deletion on reload, so
    save must refuse instead of dropping the item."""
    fid, ids = scheme.new_file([b"a", b"b"])
    scheme.server.file_state(fid).ciphertexts.delete(ids[0])
    path = str(tmp_path / "server.state")
    with pytest.raises(ProtocolError, match="no ciphertext"):
        save_server(scheme.server, path)
    assert not (tmp_path / "server.state").exists()  # nothing half-written


def test_roundtrip_single_item_tree(tmp_path, scheme):
    fid, ids = scheme.new_file([b"only"])
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    restored = load_server(path)
    assert snapshot_file(restored, fid) == snapshot_file(scheme.server, fid)
    assert restored.file_state(fid).tree.leaf_count == 1
    client = AssuredDeletionClient(LoopbackChannel(restored),
                                   rng=DeterministicRandom("single"),
                                   keystore=scheme.client.keystore,
                                   store_keys=False)
    assert client.access(fid, scheme._key(fid), ids[0]) == b"only"


def test_roundtrip_post_delete_states(tmp_path, scheme):
    """Deletion reshapes the tree (leaf moves, shrunk slot range); the
    image must capture those states too, down to a single survivor."""
    fid, ids = scheme.new_file([b"a", b"b", b"c", b"d"])
    scheme.delete(fid, ids[0])
    scheme.delete(fid, ids[3])
    scheme.delete(fid, ids[2])
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    restored = load_server(path)
    assert snapshot_file(restored, fid) == snapshot_file(scheme.server, fid)
    assert restored.file_state(fid).tree.leaf_count == 1
    assert restored.file_state(fid).version == 3
    client = AssuredDeletionClient(LoopbackChannel(restored),
                                   rng=DeterministicRandom("post-delete"),
                                   keystore=scheme.client.keystore,
                                   store_keys=False)
    assert client.access(fid, scheme._key(fid), ids[1]) == b"b"


def test_idempotency_cache_round_trips(tmp_path):
    """The request-id replay table rides in the image (format v2): a
    commit whose Ack was lost is answered, not re-applied, by the
    restored server."""
    from repro.protocol.faults import (DROP_RESPONSE, NONE, ChannelError,
                                       FaultInjectingChannel)
    from repro.server.server import CloudServer

    server = CloudServer()
    channel = FaultInjectingChannel(server, [])
    client = AssuredDeletionClient(channel,
                                   rng=DeterministicRandom("replay-table"))
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    channel._schedule = iter([NONE, DROP_RESPONSE])
    with pytest.raises(ChannelError):
        client.delete(1, key, ids[1])

    path = str(tmp_path / "server.state")
    save_server(server, path)
    restored = load_server(path)
    assert restored.replay_cache_entries() == server.replay_cache_entries()

    channel._server = restored
    new_key = client.resume_delete(1, ids[1])
    assert restored.file_state(1).version == 1  # answered from the cache
    assert client.access(1, new_key, ids[0]) == b"a"

"""Server state persistence: save, reload, and keep operating."""

import pytest

from repro.core.errors import ProtocolError
from repro.core.params import SHA256_PARAMS
from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.persistence import load_server, save_server
from repro.sim.threat import snapshot_file
from tests.conftest import make_scheme


def test_roundtrip_preserves_state(tmp_path, scheme):
    fid, ids = scheme.new_file([b"a", b"b", b"c", b"d"])
    scheme.delete(fid, ids[1])
    scheme.modify(fid, ids[0], b"a-v2")
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)

    restored = load_server(path)
    before = snapshot_file(scheme.server, fid)
    after = snapshot_file(restored, fid)
    assert before == after
    assert restored.file_state(fid).version == \
        scheme.server.file_state(fid).version


def test_client_continues_against_restored_server(tmp_path, scheme):
    fid, ids = scheme.new_file([b"x", b"y", b"z"])
    key = scheme._key(fid)
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)

    restored = load_server(path)
    client = AssuredDeletionClient(LoopbackChannel(restored),
                                   rng=DeterministicRandom("restore"),
                                   keystore=scheme.client.keystore,
                                   store_keys=False)
    assert client.access(fid, key, ids[0]) == b"x"
    new_key = client.delete(fid, key, ids[1])
    assert client.fetch_file(fid, new_key) == {ids[0]: b"x", ids[2]: b"z"}


def test_multiple_files(tmp_path, scheme):
    fid1, _ = scheme.new_file([b"one"])
    fid2, _ = scheme.new_file([b"two", b"three"])
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    restored = load_server(path)
    assert restored.has_file(fid1)
    assert restored.has_file(fid2)
    assert restored.file_state(fid2).tree.leaf_count == 2


def test_empty_server(tmp_path):
    scheme = make_scheme("empty-persist")
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    restored = load_server(path)
    assert not restored.has_file(1)


def test_rejects_garbage(tmp_path):
    path = str(tmp_path / "garbage")
    with open(path, "wb") as handle:
        handle.write(b"NOPE" + b"\x00" * 40)
    with pytest.raises(ProtocolError):
        load_server(path)


def test_rejects_wrong_parameters(tmp_path, scheme):
    fid, _ = scheme.new_file([b"a"])
    path = str(tmp_path / "server.state")
    save_server(scheme.server, path)
    with pytest.raises(ProtocolError):
        load_server(path, params=SHA256_PARAMS)

"""ShardCluster unit behaviour (tier: server).

Loopback cluster lifecycle, placement bookkeeping, per-shard health
probes feeding ``/readyz``, durable per-shard recovery, and the TCP
path through :meth:`OutsourcedFileSystem.connect_sharded`.
"""

from __future__ import annotations

import pytest

from repro.fs.filesystem import OutsourcedFileSystem
from repro.fs.sharding import ShardRoutingChannel
from repro.obs.health import HEALTH
from repro.server.cluster import ShardCluster
from repro.server.wal import CommitLog


def _routed_fs(cluster: ShardCluster) -> OutsourcedFileSystem:
    return OutsourcedFileSystem(
        channel=ShardRoutingChannel(cluster.shard_map()))


def test_rejects_bad_configuration(tmp_path):
    with pytest.raises(ValueError):
        ShardCluster(0)
    with pytest.raises(ValueError):
        ShardCluster(2, transport="carrier-pigeon")
    with pytest.raises(ValueError):
        ShardCluster(2, data_dir=str(tmp_path), durable=True,
                     wal_factory=CommitLog)


def test_loopback_cluster_places_files_on_ring_shards(tmp_path):
    cluster = ShardCluster(4, data_dir=str(tmp_path),
                           wal_factory=CommitLog, fresh=True)
    try:
        fs = _routed_fs(cluster)
        for i in range(8):
            fs.create_file(f"f{i}.txt", [b"x"])
        counts = cluster.file_counts()
        assert sum(counts.values()) == 9  # 8 data trees + 1 meta tree
        for unit in cluster.units:
            for file_id in unit.server.file_ids():
                assert cluster.shard_of(file_id) == unit.shard_id
        assert cluster.total_wal_records() > 0
    finally:
        cluster.stop()


def test_adopt_server_splits_files_across_the_ring():
    source_fs = OutsourcedFileSystem()
    for i in range(6):
        source_fs.create_file(f"v{i}.txt", [b"a", b"b"])
    cluster = ShardCluster(3)
    try:
        placed = cluster.adopt_server(source_fs.server)
        assert placed == len(source_fs.server.file_ids())
        for unit in cluster.units:
            for file_id in unit.server.file_ids():
                assert cluster.shard_of(file_id) == unit.shard_id
    finally:
        cluster.stop()


def test_per_shard_health_probes_gate_readiness(tmp_path):
    HEALTH.reset()
    cluster = ShardCluster(3, data_dir=str(tmp_path),
                           wal_factory=CommitLog, fresh=True)
    try:
        cluster.register_health()
        report = HEALTH.run_checks()
        assert report["ready"] is True
        assert sorted(report["checks"]) == ["shard-0", "shard-1",
                                            "shard-2"]
        # One shard's WAL failing closed must flip the WHOLE tier to
        # not-ready: /readyz is ready only when every shard is.
        cluster.units[1].wal._failed = True
        report = HEALTH.run_checks()
        assert report["ready"] is False
        assert report["checks"]["shard-1"]["ok"] is False
        assert report["checks"]["shard-0"]["ok"] is True
        cluster.unregister_health()
        assert HEALTH.run_checks()["checks"] == {}
    finally:
        cluster.stop()
        HEALTH.reset()


def test_durable_cluster_recovers_each_shard_independently(tmp_path):
    cluster = ShardCluster(2, data_dir=str(tmp_path), durable=True)
    fs = _routed_fs(cluster)
    fs.create_file("keep.txt", [b"one", b"two"])
    file_ids = {unit.shard_id: set(unit.server.file_ids())
                for unit in cluster.units}
    cluster.checkpoint()
    cluster.stop()

    reopened = ShardCluster(2, data_dir=str(tmp_path), durable=True)
    try:
        assert reopened.had_state
        for unit in reopened.units:
            assert set(unit.server.file_ids()) == file_ids[unit.shard_id]
    finally:
        reopened.stop()


def test_fresh_wipes_previous_state(tmp_path):
    cluster = ShardCluster(2, data_dir=str(tmp_path), durable=True)
    _routed_fs(cluster).create_file("stale.txt", [b"x"])
    cluster.checkpoint()
    cluster.stop()
    wiped = ShardCluster(2, data_dir=str(tmp_path), durable=True,
                         fresh=True)
    try:
        assert not wiped.had_state
        assert all(unit.server.file_count() == 0 for unit in wiped.units)
    finally:
        wiped.stop()


@pytest.mark.socket
def test_tcp_cluster_serves_connect_sharded(tmp_path):
    with ShardCluster(3, transport="tcp", data_dir=str(tmp_path),
                      wal_factory=CommitLog, fresh=True) as cluster:
        fs = OutsourcedFileSystem.connect_sharded(cluster.addresses())
        fs.create_file("wire.txt", [b"alpha", b"beta"])
        assert fs.open("wire.txt").read_all() == [b"alpha", b"beta"]
        assert fs.shard_of("wire.txt") == cluster.shard_of(
            fs.open("wire.txt").file_id)
        fs.open("wire.txt").delete_record(0)
        assert fs.open("wire.txt").read_all() == [b"beta"]
        fs.client.channel.close()


@pytest.mark.socket
def test_async_cluster_serves_connect_sharded(tmp_path):
    with ShardCluster(2, transport="async", data_dir=str(tmp_path),
                      wal_factory=lambda p: CommitLog(p, group_commit=True),
                      fresh=True) as cluster:
        fs = OutsourcedFileSystem.connect_sharded(cluster.addresses(),
                                                  transport="async")
        fs.create_file("aio.txt", [b"alpha"])
        assert fs.open("aio.txt").read_all() == [b"alpha"]
        fs.client.channel.close()


def test_addresses_requires_serving():
    cluster = ShardCluster(2)
    try:
        with pytest.raises(RuntimeError):
            cluster.addresses()
    finally:
        cluster.stop()

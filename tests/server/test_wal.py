"""The write-ahead commit log: format, torn tails, checkpoint, recovery."""

import os
import struct
import threading

import pytest

import repro.server.wal as wal_module
from repro.client.client import AssuredDeletionClient
from repro.core.errors import ProtocolError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.persistence import load_server, save_server
from repro.server.server import CloudServer
from repro.server.wal import (CommitLog, checkpoint, fsync_directory,
                              recover_server)
from repro.sim.threat import snapshot_file

pytestmark = pytest.mark.slow

HEADER = b"RWAL" + struct.pack(">H", 1)


def test_empty_log_roundtrip(tmp_path):
    path = str(tmp_path / "log")
    with CommitLog(path) as log:
        assert log.records() == []
    assert (tmp_path / "log").read_bytes() == HEADER


def test_append_and_reopen(tmp_path):
    path = str(tmp_path / "log")
    payloads = [b"alpha", b"", b"\x00" * 100, b"tail"]
    with CommitLog(path) as log:
        for payload in payloads:
            log.append(payload)
        assert log.appended == len(payloads)
    with CommitLog(path) as log:
        assert log.records() == payloads
        assert log.appended == 0  # counter is per-session, not historical


def test_torn_tail_is_truncated_and_log_stays_usable(tmp_path):
    path = tmp_path / "log"
    with CommitLog(str(path)) as log:
        log.append(b"first")
        log.append(b"second")
    whole = path.read_bytes()
    # Tear the last record anywhere: inside its length/CRC prefix or its
    # payload.  Every cut must recover the intact prefix of the log.
    second_start = len(HEADER) + 8 + len(b"first")
    for cut in range(second_start + 1, len(whole)):
        path.write_bytes(whole[:cut])
        with CommitLog(str(path)) as log:
            assert log.records() == [b"first"]
            log.append(b"replacement")  # appends after the truncation point
        with CommitLog(str(path)) as log:
            assert log.records() == [b"first", b"replacement"]


def test_corrupt_crc_drops_the_record(tmp_path):
    path = tmp_path / "log"
    with CommitLog(str(path)) as log:
        log.append(b"ok")
        log.append(b"mangled")
    whole = bytearray(path.read_bytes())
    whole[-1] ^= 0xFF  # flip a payload byte of the tail record
    path.write_bytes(bytes(whole))
    with CommitLog(str(path)) as log:
        assert log.records() == [b"ok"]


def test_torn_header_is_rewritten(tmp_path):
    path = tmp_path / "log"
    for cut in range(len(HEADER)):
        path.write_bytes(HEADER[:cut])
        with CommitLog(str(path)) as log:
            assert log.records() == []
        assert path.read_bytes() == HEADER


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "log"
    path.write_bytes(b"not a commit log at all")
    with pytest.raises(ProtocolError):
        CommitLog(str(path))


def test_rejects_unknown_version(tmp_path):
    path = tmp_path / "log"
    path.write_bytes(b"RWAL" + struct.pack(">H", 99))
    with pytest.raises(ProtocolError):
        CommitLog(str(path))


def test_reset_empties_the_log(tmp_path):
    path = tmp_path / "log"
    with CommitLog(str(path)) as log:
        log.append(b"x")
        log.reset()
        assert log.appended == 0
        log.append(b"y")
    with CommitLog(str(path)) as log:
        assert log.records() == [b"y"]


# ---------------------------------------------------------------------
# Append failure: torn-record repair, fail-closed, durable prefix
# ---------------------------------------------------------------------

class _FailingSyncLog(CommitLog):
    """CommitLog whose fsync can be armed to fail (disk-full model)."""

    def __init__(self, path, **kwargs):
        self.fail_next_sync = False
        super().__init__(path, **kwargs)

    def _sync(self, fileno):
        if self.fail_next_sync:
            self.fail_next_sync = False
            raise OSError(28, "No space left on device")
        super()._sync(fileno)


@pytest.mark.parametrize("group_commit", [False, True],
                         ids=["per-append", "group-commit"])
def test_append_failure_keeps_acknowledged_records(tmp_path, group_commit):
    """An fsync failure mid-run must not poison the log: the torn record
    is cut back to the durable prefix, later appends land cleanly, and
    recovery sees every ACKNOWLEDGED record -- not silently fewer."""
    path = str(tmp_path / "log")
    log = _FailingSyncLog(path, group_commit=group_commit)
    log.append(b"before-1")
    log.append(b"before-2")
    log.fail_next_sync = True
    with pytest.raises(OSError):
        log.append(b"never-acknowledged")
    # The log repaired itself: the failed record is gone and appends
    # keep working.
    log.append(b"after")
    log.close()
    with CommitLog(path) as reopened:
        assert reopened.records() == [b"before-1", b"before-2", b"after"]


def test_append_failure_without_repair_fails_closed(tmp_path, monkeypatch):
    """If even the truncate-back repair fails, the log must refuse all
    further appends rather than acknowledge commits it may lose."""
    path = str(tmp_path / "log")
    log = _FailingSyncLog(path)
    log.append(b"durable")
    log.fail_next_sync = True
    # Break the repair too: reopening the handle fails.
    real_open = open

    def failing_open(name, *args, **kwargs):
        if name == path:
            raise OSError(5, "I/O error")
        return real_open(name, *args, **kwargs)

    monkeypatch.setattr("builtins.open", failing_open)
    with pytest.raises(OSError):
        log.append(b"lost")
    monkeypatch.setattr("builtins.open", real_open)
    with pytest.raises(ProtocolError, match="failed closed"):
        log.append(b"rejected")
    # reset() (the checkpoint path) rewrites the file and re-arms it.
    log.reset()
    log.append(b"fresh-start")
    log.close()
    with CommitLog(path) as reopened:
        assert reopened.records() == [b"fresh-start"]


# ---------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------

def test_group_commit_knob_validation(tmp_path):
    with pytest.raises(ValueError):
        CommitLog(str(tmp_path / "a"), group_max_batch=0)
    with pytest.raises(ValueError):
        CommitLog(str(tmp_path / "b"), group_max_wait=-1)


def test_group_commit_appends_are_durable_and_format_compatible(tmp_path):
    """Concurrent grouped appends all land, and the file is readable by
    a plain (per-append) CommitLog: group commit changes the fsync
    schedule, never the on-disk format."""
    path = str(tmp_path / "log")
    log = CommitLog(path, group_commit=True, group_max_batch=8)
    payloads = [b"record-%02d" % i for i in range(48)]
    errors = []

    def appender(chunk):
        try:
            for payload in chunk:
                log.append(payload)
        except Exception as exc:  # noqa: BLE001 - surface in main thread
            errors.append(exc)

    threads = [threading.Thread(target=appender,
                                args=(payloads[i::6],)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors
    assert log.appended == len(payloads)
    log.close()
    with CommitLog(path) as reopened:  # plain reader
        assert sorted(reopened.records()) == sorted(payloads)


def test_group_commit_coalesces_concurrent_appends(tmp_path):
    """While one fsync is in flight the other appenders pile up and ride
    a later leader's batch: fewer fsyncs than records."""
    path = str(tmp_path / "log")

    syncs = []

    class _SlowSyncLog(CommitLog):
        def _sync(self, fileno):
            syncs.append(1)
            import time
            time.sleep(0.02)
            super()._sync(fileno)

    log = _SlowSyncLog(path, group_commit=True)
    workers = 8
    per_worker = 5
    barrier = threading.Barrier(workers)

    def appender(index):
        barrier.wait()
        for i in range(per_worker):
            log.append(b"w%d-%d" % (index, i))

    threads = [threading.Thread(target=appender, args=(i,))
               for i in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    log.close()
    assert len(syncs) < workers * per_worker  # strictly coalesced
    with CommitLog(path) as reopened:
        assert len(reopened.records()) == workers * per_worker


def test_group_commit_max_wait_linger(tmp_path):
    """A tiny linger still commits single appends promptly."""
    path = str(tmp_path / "log")
    with CommitLog(path, group_commit=True, group_max_wait=0.005) as log:
        log.append(b"lone")
        log.append(b"pair")
    with CommitLog(path) as reopened:
        assert reopened.records() == [b"lone", b"pair"]


def test_group_commit_failure_fails_every_rider(tmp_path):
    """An fsync failure fails every append in the batch -- none of them
    were acknowledged, so all must raise, and the file stays clean."""
    path = str(tmp_path / "log")
    log = _FailingSyncLog(path, group_commit=True)
    log.append(b"good")
    log.fail_next_sync = True
    with pytest.raises(OSError):
        log.append(b"bad")
    log.append(b"recovered")
    log.close()
    with CommitLog(path) as reopened:
        assert reopened.records() == [b"good", b"recovered"]


# ---------------------------------------------------------------------
# Directory durability
# ---------------------------------------------------------------------

def test_directory_fsync_on_create_reset_and_checkpoint(tmp_path,
                                                        monkeypatch):
    """Log creation, reset(), and the checkpoint image replace must all
    sync the parent directory, or a crash can lose the file's very name."""
    synced = []
    real = fsync_directory
    monkeypatch.setattr(wal_module, "fsync_directory",
                        lambda path: (synced.append(path), real(path)))

    path = str(tmp_path / "log")
    log = CommitLog(path)  # creation
    assert synced == [path]
    log.append(b"x")
    log.reset()
    assert synced == [path, path]
    log.close()

    synced.clear()
    image = str(tmp_path / "server.img")
    save_server(CloudServer(), image)  # tmp-write + os.replace
    assert synced == [image]


def test_fsync_directory_is_a_posix_guarded_noop(tmp_path, monkeypatch):
    """On non-POSIX platforms the helper must do nothing (no O_DIRECTORY
    semantics to rely on) instead of failing."""
    monkeypatch.setattr(os, "name", "nt")
    fsync_directory(str(tmp_path / "whatever"))  # must not raise


def _durable_pair(tmp_path, seed="wal"):
    image = str(tmp_path / "server.img")
    wal_path = str(tmp_path / "server.wal")
    server = CloudServer(wal=CommitLog(wal_path))
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom(seed))
    return server, client, image, wal_path


def test_recovery_from_wal_alone(tmp_path):
    """No checkpoint image yet: the WAL holds the full history."""
    server, client, image, wal_path = _durable_pair(tmp_path)
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    key = client.delete(1, key, ids[1])

    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == snapshot_file(server, 1)
    assert recovered.file_state(1).version == 1
    # The recovered server keeps logging: a further commit survives too.
    client2 = AssuredDeletionClient(LoopbackChannel(recovered),
                                    rng=DeterministicRandom("wal-2"),
                                    keystore=client.keystore, store_keys=False)
    client2.modify(1, key, ids[0], b"a-v2")
    again = recover_server(image, wal_path)
    assert snapshot_file(again, 1) == snapshot_file(recovered, 1)


def test_checkpoint_folds_wal_into_image(tmp_path):
    server, client, image, wal_path = _durable_pair(tmp_path)
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)
    client.delete(1, key, ids[0])
    assert server.wal.appended >= 2

    checkpoint(server, image)
    assert server.wal.appended == 0
    with open(wal_path, "rb") as handle:
        assert handle.read() == HEADER
    # The image alone now reproduces the state.
    assert snapshot_file(load_server(image), 1) == snapshot_file(server, 1)
    # And recovery (image + empty WAL) agrees.
    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == snapshot_file(server, 1)


def test_wal_replay_after_checkpoint_is_idempotent(tmp_path):
    """Crash between image replace and WAL reset: the logged commits are
    already in the image, and the request-id cache (persisted with it)
    answers the replay instead of applying the deltas twice."""
    server, client, image, wal_path = _durable_pair(tmp_path)
    key = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids = client.item_ids_of(4)
    new_key = client.delete(1, key, ids[2])

    # Checkpoint WITHOUT resetting the WAL, simulating the torn middle of
    # repro.server.wal.checkpoint.
    from repro.server.persistence import save_server
    save_server(server, image)

    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == snapshot_file(server, 1)
    assert recovered.file_state(1).version == 1  # not applied twice
    client2 = AssuredDeletionClient(LoopbackChannel(recovered),
                                    rng=DeterministicRandom("wal-3"),
                                    keystore=client.keystore, store_keys=False)
    assert client2.access(1, new_key, ids[0]) == b"a"

"""The write-ahead commit log: format, torn tails, checkpoint, recovery."""

import struct

import pytest

from repro.client.client import AssuredDeletionClient
from repro.core.errors import ProtocolError
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.persistence import load_server
from repro.server.server import CloudServer
from repro.server.wal import CommitLog, checkpoint, recover_server
from repro.sim.threat import snapshot_file

HEADER = b"RWAL" + struct.pack(">H", 1)


def test_empty_log_roundtrip(tmp_path):
    path = str(tmp_path / "log")
    with CommitLog(path) as log:
        assert log.records() == []
    assert (tmp_path / "log").read_bytes() == HEADER


def test_append_and_reopen(tmp_path):
    path = str(tmp_path / "log")
    payloads = [b"alpha", b"", b"\x00" * 100, b"tail"]
    with CommitLog(path) as log:
        for payload in payloads:
            log.append(payload)
        assert log.appended == len(payloads)
    with CommitLog(path) as log:
        assert log.records() == payloads
        assert log.appended == 0  # counter is per-session, not historical


def test_torn_tail_is_truncated_and_log_stays_usable(tmp_path):
    path = tmp_path / "log"
    with CommitLog(str(path)) as log:
        log.append(b"first")
        log.append(b"second")
    whole = path.read_bytes()
    # Tear the last record anywhere: inside its length/CRC prefix or its
    # payload.  Every cut must recover the intact prefix of the log.
    second_start = len(HEADER) + 8 + len(b"first")
    for cut in range(second_start + 1, len(whole)):
        path.write_bytes(whole[:cut])
        with CommitLog(str(path)) as log:
            assert log.records() == [b"first"]
            log.append(b"replacement")  # appends after the truncation point
        with CommitLog(str(path)) as log:
            assert log.records() == [b"first", b"replacement"]


def test_corrupt_crc_drops_the_record(tmp_path):
    path = tmp_path / "log"
    with CommitLog(str(path)) as log:
        log.append(b"ok")
        log.append(b"mangled")
    whole = bytearray(path.read_bytes())
    whole[-1] ^= 0xFF  # flip a payload byte of the tail record
    path.write_bytes(bytes(whole))
    with CommitLog(str(path)) as log:
        assert log.records() == [b"ok"]


def test_torn_header_is_rewritten(tmp_path):
    path = tmp_path / "log"
    for cut in range(len(HEADER)):
        path.write_bytes(HEADER[:cut])
        with CommitLog(str(path)) as log:
            assert log.records() == []
        assert path.read_bytes() == HEADER


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "log"
    path.write_bytes(b"not a commit log at all")
    with pytest.raises(ProtocolError):
        CommitLog(str(path))


def test_rejects_unknown_version(tmp_path):
    path = tmp_path / "log"
    path.write_bytes(b"RWAL" + struct.pack(">H", 99))
    with pytest.raises(ProtocolError):
        CommitLog(str(path))


def test_reset_empties_the_log(tmp_path):
    path = tmp_path / "log"
    with CommitLog(str(path)) as log:
        log.append(b"x")
        log.reset()
        assert log.appended == 0
        log.append(b"y")
    with CommitLog(str(path)) as log:
        assert log.records() == [b"y"]


def _durable_pair(tmp_path, seed="wal"):
    image = str(tmp_path / "server.img")
    wal_path = str(tmp_path / "server.wal")
    server = CloudServer(wal=CommitLog(wal_path))
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom(seed))
    return server, client, image, wal_path


def test_recovery_from_wal_alone(tmp_path):
    """No checkpoint image yet: the WAL holds the full history."""
    server, client, image, wal_path = _durable_pair(tmp_path)
    key = client.outsource(1, [b"a", b"b", b"c"])
    ids = client.item_ids_of(3)
    key = client.delete(1, key, ids[1])

    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == snapshot_file(server, 1)
    assert recovered.file_state(1).version == 1
    # The recovered server keeps logging: a further commit survives too.
    client2 = AssuredDeletionClient(LoopbackChannel(recovered),
                                    rng=DeterministicRandom("wal-2"),
                                    keystore=client.keystore, store_keys=False)
    client2.modify(1, key, ids[0], b"a-v2")
    again = recover_server(image, wal_path)
    assert snapshot_file(again, 1) == snapshot_file(recovered, 1)


def test_checkpoint_folds_wal_into_image(tmp_path):
    server, client, image, wal_path = _durable_pair(tmp_path)
    key = client.outsource(1, [b"a", b"b"])
    ids = client.item_ids_of(2)
    client.delete(1, key, ids[0])
    assert server.wal.appended >= 2

    checkpoint(server, image)
    assert server.wal.appended == 0
    with open(wal_path, "rb") as handle:
        assert handle.read() == HEADER
    # The image alone now reproduces the state.
    assert snapshot_file(load_server(image), 1) == snapshot_file(server, 1)
    # And recovery (image + empty WAL) agrees.
    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == snapshot_file(server, 1)


def test_wal_replay_after_checkpoint_is_idempotent(tmp_path):
    """Crash between image replace and WAL reset: the logged commits are
    already in the image, and the request-id cache (persisted with it)
    answers the replay instead of applying the deltas twice."""
    server, client, image, wal_path = _durable_pair(tmp_path)
    key = client.outsource(1, [b"a", b"b", b"c", b"d"])
    ids = client.item_ids_of(4)
    new_key = client.delete(1, key, ids[2])

    # Checkpoint WITHOUT resetting the WAL, simulating the torn middle of
    # repro.server.wal.checkpoint.
    from repro.server.persistence import save_server
    save_server(server, image)

    recovered = recover_server(image, wal_path)
    assert snapshot_file(recovered, 1) == snapshot_file(server, 1)
    assert recovered.file_state(1).version == 1  # not applied twice
    client2 = AssuredDeletionClient(LoopbackChannel(recovered),
                                    rng=DeterministicRandom("wal-3"),
                                    keystore=client.keystore, store_keys=False)
    assert client2.access(1, new_key, ids[0]) == b"a"

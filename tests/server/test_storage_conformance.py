"""Conformance suite: every storage backend obeys the same contract.

Two backend families are exercised through one shared test body each:

* :class:`~repro.server.storage.CiphertextStore` implementations
  (in-memory, file-backed, callback overlay);
* :class:`~repro.server.engine.TreeStore` engines (memory, append-only
  log, SQLite).

A backend that passes here is substitutable for any other in the
server; the twin-world tests in ``test_engine_server.py`` then prove
the substitution is bit-identical under real protocol traffic.
"""

import os
import pickle

import pytest

from repro.core.errors import UnknownItemError
from repro.server.engine import (KIND_LEAF, KIND_LINK, FileMeta,
                                 LogTreeStore, MemoryTreeStore,
                                 SQLiteTreeStore, make_engine)
from repro.server.storage import (CallbackCiphertextStore,
                                  FileBackedCiphertextStore,
                                  InMemoryCiphertextStore)

# ---------------------------------------------------------------------
# CiphertextStore conformance
# ---------------------------------------------------------------------

CT_BACKENDS = ("memory", "file", "callback")


def make_ct_store(kind: str, tmp_path):
    if kind == "memory":
        return InMemoryCiphertextStore()
    if kind == "file":
        return FileBackedCiphertextStore(str(tmp_path / "cts"))
    return CallbackCiphertextStore(lambda item_id: b"derived-%d" % item_id)


@pytest.fixture(params=CT_BACKENDS)
def ct_store(request, tmp_path):
    return make_ct_store(request.param, tmp_path)


def test_ct_put_get_roundtrip(ct_store):
    ct_store.put(7, b"cipher-7")
    assert ct_store.get(7) == b"cipher-7"


def test_ct_put_replaces(ct_store):
    ct_store.put(7, b"v1")
    ct_store.put(7, b"v2")
    assert ct_store.get(7) == b"v2"


def test_ct_unknown_item_raises(ct_store):
    if isinstance(ct_store, CallbackCiphertextStore):
        pytest.skip("callback store derives any untouched id by design")
    with pytest.raises(UnknownItemError):
        ct_store.get(12345)


def test_ct_delete_then_get_raises(ct_store):
    ct_store.put(9, b"doomed")
    ct_store.delete(9)
    with pytest.raises(UnknownItemError):
        ct_store.get(9)


def test_ct_delete_is_idempotent(ct_store):
    ct_store.put(3, b"x")
    ct_store.delete(3)
    ct_store.delete(3)  # second delete of the same id must not raise
    ct_store.delete(99999)  # nor deleting a never-stored id


def test_ct_values_are_defensive_copies(ct_store):
    value = bytearray(b"mutable")
    ct_store.put(1, value)
    value[0] = 0x00
    assert ct_store.get(1) == b"mutable"


def test_ct_distinct_ids_are_independent(ct_store):
    ct_store.put(1, b"one")
    ct_store.put(2, b"two")
    ct_store.delete(1)
    assert ct_store.get(2) == b"two"


@pytest.mark.parametrize("kind", ["memory", "file"])
def test_ct_survives_pickle(kind, tmp_path):
    """Server state containing any non-callback store must pickle
    (the CLI vault snapshot path)."""
    store = make_ct_store(kind, tmp_path)
    store.put(5, b"five")
    clone = pickle.loads(pickle.dumps(store))
    assert clone.get(5) == b"five"


def test_filebacked_crash_mid_write_leaves_old_value(tmp_path):
    """A torn put (crash between tmp write and rename) must preserve
    the previous ciphertext: the tmp file is invisible to reads."""
    store = FileBackedCiphertextStore(str(tmp_path / "cts"))
    store.put(4, b"old")
    # Simulate the crash: the tmp file exists, the rename never ran.
    tmp = store._path(4) + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(b"half-writ")
    assert store.get(4) == b"old"
    # And a later clean put wins over the stale tmp.
    store.put(4, b"new")
    assert store.get(4) == b"new"


def test_filebacked_put_fsyncs_directory(tmp_path, monkeypatch):
    """The rename's directory entry gets its own fsync (a crash must
    not forget a freshly acknowledged ciphertext)."""
    import repro.server.wal as wal_module
    synced = []
    monkeypatch.setattr(wal_module, "fsync_directory",
                        lambda path: synced.append(path))
    store = FileBackedCiphertextStore(str(tmp_path / "cts"))
    store.put(1, b"durable")
    assert synced == [store._path(1)]


# ---------------------------------------------------------------------
# TreeStore engine conformance
# ---------------------------------------------------------------------

ENGINES = ("memory", "log", "sqlite")
DURABLE_ENGINES = ("log", "sqlite")


def make_tree_store(kind: str, tmp_path):
    if kind == "memory":
        return MemoryTreeStore()
    return make_engine(kind, str(tmp_path / f"engine-{kind}"))


def reopen(engine, kind: str, tmp_path):
    """Close and reopen a durable engine (memory reopens as itself)."""
    if kind == "memory":
        return engine
    engine.close()
    return make_engine(kind, str(tmp_path / f"engine-{kind}"))


@pytest.fixture(params=ENGINES)
def engine_kind(request):
    return request.param


@pytest.fixture
def engine(engine_kind, tmp_path):
    store = make_tree_store(engine_kind, tmp_path)
    yield store
    store.close()


FID = 42


def test_engine_meta_roundtrip(engine):
    assert engine.get_meta(FID) is None
    engine.set_meta(FileMeta(FID, version=3, n_leaves=8))
    meta = engine.get_meta(FID)
    assert (meta.file_id, meta.version, meta.n_leaves) == (FID, 3, 8)
    engine.set_meta(FileMeta(FID, version=4, n_leaves=16))
    assert engine.get_meta(FID).version == 4


def test_engine_nodes_roundtrip(engine):
    engine.write_nodes(FID, [(KIND_LINK, 2, b"L" * 20),
                             (KIND_LEAF, 4, b"F" * 20)])
    assert engine.get_node(FID, KIND_LINK, 2) == b"L" * 20
    assert engine.get_node(FID, KIND_LEAF, 4) == b"F" * 20
    with pytest.raises(KeyError):
        engine.get_node(FID, KIND_LINK, 3)
    # Same slot, different kind: independent addresses.
    with pytest.raises(KeyError):
        engine.get_node(FID, KIND_LEAF, 2)


def test_engine_node_delete(engine):
    engine.write_nodes(FID, [(KIND_LEAF, 4, b"x" * 20)])
    engine.write_nodes(FID, [(KIND_LEAF, 4, None)])
    with pytest.raises(KeyError):
        engine.get_node(FID, KIND_LEAF, 4)


def test_engine_items_bidirectional(engine):
    engine.write_items(FID, [(100, 4), (101, 5)])
    assert engine.get_slot(FID, 100) == 4
    assert engine.get_item(FID, 5) == 101
    assert engine.get_slot(FID, 999) is None
    assert engine.get_item(FID, 6) is None


def test_engine_item_move_is_order_independent(engine):
    """A batch that moves an item onto a just-vacated slot must apply
    two-pass (removals first), whatever the entry order."""
    engine.write_items(FID, [(100, 4), (101, 5)])
    # 101 vanishes, 100 moves onto 101's old slot -- in the 'bad' order.
    engine.write_items(FID, [(100, 5), (101, None)])
    assert engine.get_slot(FID, 100) == 5
    assert engine.get_item(FID, 5) == 100
    assert engine.get_slot(FID, 101) is None
    assert engine.get_item(FID, 4) is None


def test_engine_item_swap(engine):
    engine.write_items(FID, [(100, 4), (101, 5)])
    engine.write_items(FID, [(100, 5), (101, 4)])
    assert engine.get_item(FID, 4) == 101
    assert engine.get_item(FID, 5) == 100


def test_engine_ciphertexts_roundtrip(engine):
    engine.write_ciphertexts(FID, [(100, b"ct-100")])
    assert engine.get_ciphertext(FID, 100) == b"ct-100"
    engine.write_ciphertexts(FID, [(100, None)])
    with pytest.raises(KeyError):
        engine.get_ciphertext(FID, 100)


def test_engine_files_are_isolated(engine):
    engine.set_meta(FileMeta(1, 0, 4))
    engine.set_meta(FileMeta(2, 0, 4))
    engine.write_nodes(1, [(KIND_LEAF, 4, b"a" * 20)])
    engine.write_nodes(2, [(KIND_LEAF, 4, b"b" * 20)])
    engine.drop_file(1)
    assert engine.get_meta(1) is None
    assert engine.get_node(2, KIND_LEAF, 4) == b"b" * 20
    assert engine.file_ids() == [2]


def test_engine_drop_is_idempotent(engine):
    engine.drop_file(777)  # never stored
    engine.set_meta(FileMeta(777, 0, 2))
    engine.drop_file(777)
    engine.drop_file(777)
    assert engine.get_meta(777) is None


def test_engine_replay_table(engine):
    entries = [(11, b"reply-a"), (12, b"reply-b")]
    engine.set_replay_entries(entries)
    assert engine.replay_entries() == entries
    engine.set_replay_entries([(13, b"reply-c")])  # replace, not append
    assert engine.replay_entries() == [(13, b"reply-c")]


def test_engine_u64_ids(engine):
    """File, item, and request ids are uniform u64 -- the top bit set
    half the time.  Every backend must store them faithfully (SQLite
    maps through two's complement; the log packs ``>Q``)."""
    big_fid = 2**64 - 3
    big_item = 2**63 + 17
    engine.set_meta(FileMeta(big_fid, 1, 2))
    engine.write_items(big_fid, [(big_item, 2)])
    engine.write_ciphertexts(big_fid, [(big_item, b"big")])
    engine.set_replay_entries([(2**64 - 1, b"r")])
    assert engine.get_meta(big_fid).file_id == big_fid
    assert engine.get_slot(big_fid, big_item) == 2
    assert engine.get_item(big_fid, 2) == big_item
    assert engine.get_ciphertext(big_fid, big_item) == b"big"
    assert engine.replay_entries() == [(2**64 - 1, b"r")]
    assert engine.file_ids() == [big_fid]


def test_engine_read_your_writes_before_flush(engine):
    """Staged writes must be visible to reads before the flush barrier."""
    engine.write_nodes(FID, [(KIND_LEAF, 4, b"staged" + b"\0" * 14)])
    assert engine.get_node(FID, KIND_LEAF, 4).startswith(b"staged")


@pytest.mark.parametrize("kind", DURABLE_ENGINES)
def test_engine_reopen_durability(kind, tmp_path):
    engine = make_tree_store(kind, tmp_path)
    engine.set_meta(FileMeta(FID, 2, 4))
    engine.write_nodes(FID, [(KIND_LINK, 2, b"l" * 20),
                             (KIND_LEAF, 4, b"f" * 20)])
    engine.write_items(FID, [(100, 4)])
    engine.write_ciphertexts(FID, [(100, b"ct")])
    engine.set_replay_entries([(1, b"r")])
    engine.flush()
    engine = reopen(engine, kind, tmp_path)
    try:
        assert engine.get_meta(FID).version == 2
        assert engine.get_node(FID, KIND_LINK, 2) == b"l" * 20
        assert engine.get_slot(FID, 100) == 4
        assert engine.get_ciphertext(FID, 100) == b"ct"
        assert engine.replay_entries() == [(1, b"r")]
    finally:
        engine.close()


@pytest.mark.parametrize("kind", DURABLE_ENGINES)
def test_engine_unflushed_writes_do_not_survive_crash(kind, tmp_path):
    """Everything since the last flush is gone after a crash -- the
    contract ``compact_storage`` relies on when truncating the WAL."""
    path = str(tmp_path / f"engine-{kind}")
    engine = make_engine(kind, path)
    engine.set_meta(FileMeta(FID, 1, 2))
    engine.flush()
    engine.write_nodes(FID, [(KIND_LEAF, 2, b"lost" + b"\0" * 16)])
    engine.set_meta(FileMeta(FID, 9, 2))
    # Crash: no flush, no close.  SQLite keeps an open transaction that
    # the journal rolls back; the log has no COMMIT after the records.
    if kind == "sqlite":
        # Emulate process death: roll back instead of committing.
        engine._conn.rollback()
        engine._conn.close()
    else:
        # Drop the handles without emitting a COMMIT record: the bytes
        # may reach the file, but the opening scan discards them.
        engine._append.close()
        engine._read.close()
    engine = make_engine(kind, path)
    try:
        assert engine.get_meta(FID).version == 1
        with pytest.raises(KeyError):
            engine.get_node(FID, KIND_LEAF, 2)
    finally:
        engine.close()


def test_log_engine_truncates_torn_tail(tmp_path):
    """A partial append (crash mid-write) must truncate back to the
    last COMMIT; earlier flushed state stays readable."""
    path = str(tmp_path / "engine.log")
    engine = LogTreeStore(path)
    engine.set_meta(FileMeta(FID, 1, 2))
    engine.write_nodes(FID, [(KIND_LEAF, 2, b"ok" + b"\0" * 18)])
    engine.flush()
    engine.close()
    size = os.path.getsize(path)
    with open(path, "ab") as handle:  # torn frame: length but no payload
        handle.write(b"\x00\x00\x00\x30\xde\xad")
    for cut in (size + 2, size + 6):
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        engine = LogTreeStore(path)
        assert engine.get_meta(FID).version == 1
        assert engine.get_node(FID, KIND_LEAF, 2)[:2] == b"ok"
        engine.close()


def test_log_engine_compact_drops_dead_records(tmp_path):
    """Backend compaction rewrites only live state: the file shrinks
    after churn, and everything live survives the rewrite."""
    path = str(tmp_path / "engine.log")
    engine = LogTreeStore(path)
    engine.set_meta(FileMeta(FID, 0, 4))
    for round_no in range(50):
        engine.write_nodes(FID, [(KIND_LEAF, 4, bytes([round_no]) * 20)])
        engine.flush()
    before = os.path.getsize(path)
    engine.compact()
    after = os.path.getsize(path)
    assert after < before
    assert engine.get_node(FID, KIND_LEAF, 4) == bytes([49]) * 20
    engine.close()
    # And the compacted file reopens clean.
    engine = LogTreeStore(path)
    assert engine.get_node(FID, KIND_LEAF, 4) == bytes([49]) * 20
    engine.close()


def test_sqlite_engine_compact_vacuums(tmp_path):
    path = str(tmp_path / "engine.db")
    engine = SQLiteTreeStore(path)
    engine.set_meta(FileMeta(FID, 0, 256))
    engine.write_ciphertexts(FID, [(i, os.urandom(256))
                                   for i in range(512)])
    engine.flush()
    engine.write_ciphertexts(FID, [(i, None) for i in range(512)])
    engine.flush()
    before = os.path.getsize(path)
    engine.compact()
    assert os.path.getsize(path) < before
    assert engine.get_meta(FID).n_leaves == 256
    engine.close()


@pytest.mark.parametrize("kind", DURABLE_ENGINES)
def test_engine_pickle_reopens_by_path(kind, tmp_path):
    """Engines pickle as a path reference (flush + reopen), so test
    fixtures holding one can round-trip without copying state."""
    engine = make_tree_store(kind, tmp_path)
    engine.set_meta(FileMeta(FID, 5, 4))
    clone = pickle.loads(pickle.dumps(engine))
    try:
        assert clone.get_meta(FID).version == 5
    finally:
        clone.close()
        engine.close()

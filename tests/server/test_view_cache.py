"""The server view/encode cache (ISSUE 5 layer 3).

The cache must be bytes-invisible: a warm reply encodes identically to
a cold one, every mutation (including modify, which does not bump the
tree version) invalidates before it applies, and the public
``file_state`` accessor drops the cache so out-of-band tampering is
always reflected -- correctness over warmth.
"""

import pickle

import pytest

from repro.core.errors import IntegrityError
from repro.protocol import messages as msg
from repro.protocol.messages import encode_message
from repro.protocol.wire import WireContext
from tests.conftest import make_scheme

CTX = WireContext(modulator_width=20)


def test_warm_reply_is_byte_identical():
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"a", b"b", b"c"])
    request = msg.AccessRequest(file_id=fid, item_id=ids[1])
    cold = scheme.server.handle(request)
    warm = scheme.server.handle(request)
    assert warm is cold  # served from the cache, not rebuilt
    assert encode_message(CTX, warm) == encode_message(CTX, cold)


def test_disabled_cache_serves_equal_bytes():
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"a", b"b"])
    request = msg.FetchFileRequest(file_id=fid)
    cached_reply = scheme.server.handle(request)
    scheme.server.view_cache_enabled = False
    uncached_reply = scheme.server.handle(request)
    assert uncached_reply is not cached_reply  # flag bypasses the cache
    assert encode_message(CTX, uncached_reply) == encode_message(
        CTX, cached_reply)


def test_mutations_invalidate_under_the_lock():
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"a", b"b", b"c"])
    assert scheme.access(fid, ids[0]) == b"a"
    assert scheme.server._view_caches.get(fid)
    scheme.delete(fid, ids[1])
    assert not scheme.server._view_caches.get(fid)
    assert scheme.access(fid, ids[0]) == b"a"


def test_modify_invalidates_despite_unchanged_version():
    """Modify does not bump the tree version, so a version-keyed cache
    alone would serve the old ciphertext; the lock-scope invalidation
    must catch it."""
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"old", b"other"])
    version = scheme.server._state(fid).version
    assert scheme.access(fid, ids[0]) == b"old"
    scheme.modify(fid, ids[0], b"new")
    assert scheme.server._state(fid).version == version
    assert scheme.access(fid, ids[0]) == b"new"
    assert scheme.fetch_file(fid) == {ids[0]: b"new", ids[1]: b"other"}


def test_public_file_state_invalidates():
    """Out-of-band tampering through the public accessor must be
    visible to the next read, never masked by a stale cached reply."""
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"a", b"b"])
    scheme.access(fid, ids[0])  # warm the cache
    state = scheme.server.file_state(fid)
    good = state.ciphertexts.get(ids[0])
    state.ciphertexts.put(ids[0], b"\x00" * len(good))
    with pytest.raises(IntegrityError):
        scheme.access(fid, ids[0])
    state = scheme.server.file_state(fid)
    state.ciphertexts.put(ids[0], good)
    assert scheme.access(fid, ids[0]) == b"a"


def test_cache_limit_bounds_entries():
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([bytes([i]) for i in range(6)])
    scheme.server.VIEW_CACHE_LIMIT = 3
    for item_id in ids:
        scheme.server.handle(msg.AccessRequest(file_id=fid, item_id=item_id))
    assert len(scheme.server._view_caches[fid]) <= 3
    for i, item_id in enumerate(ids):  # replies stay correct after clears
        assert scheme.access(fid, item_id) == bytes([i])


def test_pickling_drops_view_caches():
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"a", b"b"])
    scheme.server.handle(msg.AccessRequest(file_id=fid, item_id=ids[0]))
    assert scheme.server._view_caches
    clone = pickle.loads(pickle.dumps(scheme.server))
    assert clone._view_caches == {}
    reply = clone.handle(msg.AccessRequest(file_id=fid, item_id=ids[0]))
    assert isinstance(reply, msg.AccessReply)


def test_view_cache_instrumented():
    from repro.obs import runtime as obs
    from repro.obs.instruments import SERVER_VIEW_CACHE
    scheme = make_scheme("view-cache")
    fid, ids = scheme.new_file([b"a"])
    obs.enable()
    try:
        misses0 = SERVER_VIEW_CACHE.value(outcome="miss")
        hits0 = SERVER_VIEW_CACHE.value(outcome="hit")
        request = msg.AccessRequest(file_id=fid, item_id=ids[0])
        scheme.server.handle(request)
        scheme.server.handle(request)
        assert SERVER_VIEW_CACHE.value(outcome="miss") == misses0 + 1
        assert SERVER_VIEW_CACHE.value(outcome="hit") == hits0 + 1
    finally:
        obs.disable()

#!/usr/bin/env python
"""The paper's motivating workload: delete one employee record from a
large outsourced roster ("a retired employee record from a large
roster") without re-encrypting anything else.

Demonstrates the full two-level deployment of Section V: many files under
an outsourced meta modulation tree, the client holding a single control
key per directory group, record addressing by position and by byte
offset, and a comparison of the deletion cost against the master-key
strawman at the same scale.

Run:  python examples/employee_roster.py
"""

from repro.baselines.base import BlobStoreServer
from repro.baselines.master_key import MasterKeySolution
from repro.crypto.rng import DeterministicRandom
from repro.fs import OutsourcedFileSystem
from repro.protocol.channel import LoopbackChannel
from repro.sim.workload import employee_roster

ROSTER_SIZE = 500


def main() -> None:
    rng = DeterministicRandom("roster-example")
    fs = OutsourcedFileSystem(rng=rng.fork("fs"))

    print(f"== outsourcing an HR roster of {ROSTER_SIZE} employees ==")
    records = employee_roster(ROSTER_SIZE, rng.fork("records"))
    roster = fs.create_file("hr/roster.csv", records)
    fs.create_file("hr/payroll.csv", [b"payroll-row-%d" % i for i in range(50)])
    fs.create_file("mail/archive.mbox", [b"msg-%d" % i for i in range(50)])
    print(f"files: {fs.list_files()}")
    print(f"client key storage: {fs.client_key_bytes()} bytes "
          f"({fs.control_key_count()} control keys for "
          f"{len(fs.list_files())} files with {ROSTER_SIZE + 100} records)")

    print("\n== an employee retires: delete exactly their record ==")
    victim_position = 137
    print("record :", roster.read_record(victim_position).decode())
    fs.metrics.clear()
    roster.delete_record(victim_position)
    bytes_total = sum(r.overhead_bytes for r in fs.metrics.records)
    round_trips = sum(r.round_trips for r in fs.metrics.records)
    print(f"assured deletion cost (two-level: file tree + meta tree): "
          f"{bytes_total} bytes over {round_trips} round trips")
    print(f"records remaining: {roster.record_count}")
    print("neighbour records survive untouched:")
    print("  ", roster.read_record(victim_position - 1).decode())
    print("  ", roster.read_record(victim_position).decode())

    print("\n== byte-offset deletion (paper footnote 2) ==")
    located = roster.locate(4096)
    print(f"byte 4096 falls in record #{located.position} "
          f"(item {located.item_id})")
    roster.delete_at(4096)
    print(f"records remaining: {roster.record_count}")

    print("\n== the same deletion under the master-key strawman ==")
    strawman = MasterKeySolution(LoopbackChannel(BlobStoreServer()),
                                 rng=rng.fork("strawman"))
    ids = strawman.outsource(employee_roster(ROSTER_SIZE, rng.fork("records2")))
    strawman.delete(ids[victim_position])
    record = strawman.metrics.for_op("delete")[0]
    print(f"master-key solution moved {record.total_bytes:,} bytes and "
          f"re-encrypted {ROSTER_SIZE - 1} records for ONE deletion")
    print(f"our deletion moved {bytes_total:,} bytes "
          f"({record.total_bytes // max(bytes_total, 1)}x less) and "
          f"re-encrypted nothing")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Expiring messages from an outsourced mail backup -- and why the
third-party (FADE/Ephemerizer) alternative fails the paper's threat model.

Part 1 expires individual messages from a backup mailbox with the paper's
scheme; part 2 runs the same scenario against a FADE-style third party
and shows that compromising the third party voids every deletion, while
our two-party deletions survive the compromise of *both* machines.

Run:  python examples/mail_backup.py
"""

from repro.baselines.ephemerizer import Ephemerizer, PolicyClient, PolicyCloud
from repro.core import LocalScheme
from repro.core.ciphertext import ItemCodec
from repro.core.params import Params
from repro.crypto.modes import aes_ctr
from repro.crypto.rng import DeterministicRandom
from repro.sim.threat import Adversary, snapshot_file
from repro.sim.workload import mail_messages


def two_party_scheme(messages) -> None:
    print("== part 1: two-party fine-grained expiry (this paper) ==")
    scheme = LocalScheme(rng=DeterministicRandom("mail"))
    file_id, item_ids = scheme.new_file(messages)

    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, file_id))

    expired = item_ids[:3]
    for item in expired:
        scheme.delete(file_id, item)
        adversary.observe(snapshot_file(scheme.server, file_id))
    print(f"expired {len(expired)} messages one by one "
          f"(~{scheme.metrics.for_op('delete')[-1].overhead_bytes} bytes each)")

    adversary.seize_keystore(scheme.client.keystore.seize())
    recovered = [adversary.try_recover(item) for item in expired]
    print(f"adversary with full server history + seized device recovers: "
          f"{recovered}")
    assert recovered == [None, None, None]
    live = adversary.try_recover(item_ids[5])
    print(f"(a live message falls with the device, as expected: "
          f"{live[:30]!r}...)")


def third_party_scheme(messages) -> None:
    print("\n== part 2: the FADE-style third party under the same attack ==")
    rng = DeterministicRandom("mail-eph")
    ephemerizer = Ephemerizer(rng.fork("third-party"))
    cloud = PolicyCloud()
    client = PolicyClient(ephemerizer, cloud, rng=rng.fork("client"))

    ephemerizer.create_policy("expire-2026-07")
    ids = client.outsource(1, "expire-2026-07", messages)

    # The attacker reaches the third party (court order, breach...) and
    # the cloud keeps everything it ever stored -- same threat model.
    stolen_policies = ephemerizer.compromise()
    server_snapshot = cloud.snapshot()

    client.delete_policy("expire-2026-07")
    print("policy revoked: the honest access path is dead...")

    stored = server_snapshot[1]
    policy_key = stolen_policies["policy:expire-2026-07"]
    data_key = aes_ctr(policy_key, stored.wrapped_key[:8],
                       stored.wrapped_key[8:])
    codec = ItemCodec(Params())
    message, _rid = codec.decrypt(data_key.ljust(20, b"\x00"),
                                  stored.ciphertexts[ids[0]])
    print(f"...but the attacker decrypts a 'deleted' message anyway: "
          f"{message[:40]!r}")
    print("=> third-party schemes protect nothing once the third party "
          "falls; the two-party scheme above had no third party to fall")


def main() -> None:
    messages = mail_messages(10, DeterministicRandom("mailgen"),
                             body_size=256)
    two_party_scheme(messages)
    third_party_scheme(messages)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A departmental file system: many files, grouped control keys, a
multi-user key proxy, and simulated WAN cost -- the full Section V
deployment.

Run:  python examples/multi_file_system.py
"""

from repro.crypto.rng import DeterministicRandom
from repro.fs import OutsourcedFileSystem
from repro.fs.proxy import ALL_RIGHTS, READ, WRITE, KeyProxy, PermissionError_
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from repro.sim.network import EC2_PROFILE
from repro.sim.workload import make_record_items


def main() -> None:
    rng = DeterministicRandom("mfs-example")

    # A cloud server behind a simulated campus->EC2 WAN link: the channel
    # accumulates virtual network time from real message sizes.
    server = CloudServer()
    channel = LoopbackChannel(server, network=EC2_PROFILE)
    fs = OutsourcedFileSystem(channel=channel, rng=rng.fork("fs"))

    print("== populating three departments ==")
    for department, count in (("hr", 4), ("finance", 3), ("eng", 5)):
        for i in range(count):
            fs.create_file(f"{department}/file-{i:02d}",
                           make_record_items(8, 128, rng.fork(f"{department}{i}")))
    print(f"{len(fs.list_files())} files, "
          f"{fs.control_key_count()} control keys "
          f"({fs.client_key_bytes()} bytes of client key storage)")

    print("\n== multi-user access through the key proxy ==")
    proxy = KeyProxy(fs)
    proxy.grant("hr-clerk", "hr/file-00", [READ, WRITE])
    proxy.grant("auditor", "*", [READ])
    proxy.grant("admin", "*", list(ALL_RIGHTS))

    print("hr-clerk reads its file  :",
          proxy.read_record("hr-clerk", "hr/file-00", 0)[:20], "...")
    print("auditor reads any file   :",
          proxy.read_record("auditor", "finance/file-01", 2)[:20], "...")
    try:
        proxy.delete_record("auditor", "finance/file-01", 2)
    except PermissionError_ as exc:
        print("auditor cannot delete   :", exc)

    print("\n== fine-grained deletions across files ==")
    fs.metrics.clear()
    proxy.delete_record("admin", "eng/file-03", 5)
    proxy.delete_record("admin", "hr/file-02", 0)
    for record in fs.metrics.records:
        if record.op == "delete":
            print(f"  delete: {record.overhead_bytes} B overhead, "
                  f"{record.round_trips} round trips")
    wan_seconds = channel.counters.simulated_seconds
    print(f"simulated WAN time so far: {wan_seconds:.2f} s "
          f"({channel.counters.round_trips} round trips over a "
          f"{EC2_PROFILE.rtt_seconds * 1e3:.0f} ms RTT link)")

    print("\n== assured whole-file deletion ==")
    print("files before:", len(fs.list_files()))
    proxy.delete_file("admin", "finance/file-00")
    print("files after :", len(fs.list_files()))
    print("the deleted file's master key was shredded from the finance "
          "meta tree; its ciphertexts are cryptographic noise wherever "
          "they were copied")

    print("\n== the client still holds only the control keys ==")
    print(f"client key storage: {fs.client_key_bytes()} bytes")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""An audit of every malicious-server strategy from Theorem 2.

Runs the client against each cheating server implemented in
``repro.server.adversary`` and reports how the client's refusal rules
(decrypt-verification, item-id binding, duplicate-modulator rule,
structural checks) shut each attack down -- the executable version of
the paper's security analysis.

Run:  python examples/adversarial_audit.py
"""

from repro.client.client import AssuredDeletionClient
from repro.core.errors import (DuplicateModulatorError, IntegrityError,
                               ProtocolError)
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.adversary import (CloneCutServer, DeltaSkippingServer,
                                    DuplicateInjectionServer,
                                    WrongCiphertextServer, WrongLeafServer)
from repro.sim.threat import Adversary, snapshot_file

ATTACKS = [
    (WrongLeafServer,
     "answer delete(k) with MT(k') of a different leaf",
     "item-id binding: the decrypted r names the wrong item"),
    (WrongCiphertextServer,
     "correct MT(k) but another item's ciphertext",
     "decrypt-verification: H(m||r) does not match"),
    (CloneCutServer,
     "Figure 7: clone path modulators into the cut to alias the key",
     "duplicate/consistency rule inside MT(k)"),
    (DuplicateInjectionServer,
     "crudely duplicate a modulator in the served view",
     "duplicate-modulator rule"),
]


def run_rejected_attacks() -> None:
    for server_class, description, defence in ATTACKS:
        server = server_class()
        client = AssuredDeletionClient(
            LoopbackChannel(server),
            rng=DeterministicRandom(f"audit-{server_class.__name__}"))
        key = client.outsource(1, [b"doc-%d" % i for i in range(8)])
        ids = client.item_ids_of(8)

        print(f"attack : {description}")
        try:
            client.delete(1, key, ids[3])
        except (IntegrityError, DuplicateModulatorError, ProtocolError) as exc:
            print(f"client : REJECTED ({type(exc).__name__}: {exc})")
        else:
            raise SystemExit("attack was NOT rejected -- security bug!")
        # Rejection happened before any delta left the client: the tree
        # is untouched and everything still decrypts.
        assert server.file_state(1).version == 0
        assert client.access(1, key, ids[3]) == b"doc-3"
        print(f"defence: {defence}; no delta was emitted, file intact\n")


def run_delta_skipper() -> None:
    print("attack : ACK the deletion commit but never apply the deltas")
    server = DeltaSkippingServer()
    client = AssuredDeletionClient(LoopbackChannel(server),
                                   rng=DeterministicRandom("audit-skip"))
    key = client.outsource(1, [b"doc-%d" % i for i in range(8)])
    ids = client.item_ids_of(8)

    adversary = Adversary()
    adversary.observe(snapshot_file(server, 1))
    new_key = client.delete(1, key, ids[3])
    adversary.observe(snapshot_file(server, 1))
    adversary.seize_keystore({"master": new_key})

    print(f"deleted item recoverable by the adversary? "
          f"{adversary.try_recover(ids[3])!r}  <- still dead")
    try:
        client.access(1, new_key, ids[0])
    except IntegrityError:
        print("client : surviving data now FAILS verification -- the "
              "sabotage is visible, not silent")
    print("note   : a server with full control can always destroy data; "
          "the paper's guarantee (and ours) is that it cannot RESURRECT "
          "deleted data\n")


def main() -> None:
    print("=== adversarial audit: Theorem 2, case ii ===\n")
    run_rejected_attacks()
    run_delta_skipper()
    print("=== all attacks contained ===")


if __name__ == "__main__":
    main()

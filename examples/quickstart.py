#!/usr/bin/env python
"""Quickstart: assured deletion of a single data item in one file.

The smallest end-to-end tour of the library: outsource a file, read it
back, assuredly delete one record, and watch the full-power adversary
fail to recover it.

Run:  python examples/quickstart.py
"""

from repro.core import LocalScheme
from repro.sim.threat import Adversary, snapshot_file


def main() -> None:
    # A client plus an in-process cloud server joined by a metering
    # channel -- every byte below is really serialised and counted.
    scheme = LocalScheme()

    print("== outsourcing a 6-record file ==")
    records = [f"record {i}: confidential payload".encode() for i in range(6)]
    file_id, item_ids = scheme.new_file(records)
    print(f"file id {file_id}; the client keeps ONE 16-byte master key for it")

    # The adversary of the paper's threat model controls the server the
    # whole time: give it a snapshot of everything the server holds.
    adversary = Adversary()
    adversary.observe(snapshot_file(scheme.server, file_id))

    print("\n== normal operation ==")
    print("read  :", scheme.access(file_id, item_ids[2]).decode())
    scheme.modify(file_id, item_ids[2], b"record 2: amended payload")
    print("modify:", scheme.access(file_id, item_ids[2]).decode())
    new_id = scheme.insert(file_id, b"record 6: appended later")
    print("insert:", scheme.access(file_id, new_id).decode())
    adversary.observe(snapshot_file(scheme.server, file_id))

    print("\n== assured deletion of record 4 ==")
    victim = item_ids[4]
    scheme.delete(file_id, victim)
    adversary.observe(snapshot_file(scheme.server, file_id))
    record = scheme.metrics.for_op("delete")[-1]
    print(f"deletion exchanged {record.overhead_bytes} protocol bytes, "
          f"{record.hash_calls} chain hashes, "
          f"{record.client_seconds * 1e3:.2f} ms client time")

    print("\n== the attack ==")
    print("the adversary has: every server state ever, every ciphertext")
    print("version, and (seized after deletion) the client's keystore")
    adversary.seize_keystore(scheme.client.keystore.seize())

    recovered = adversary.try_recover(victim)
    print(f"recovery of the deleted record : {recovered!r}  <- unrecoverable")
    survivor = adversary.try_recover(item_ids[2])
    print(f"recovery of a live record      : {survivor!r}")
    print("(live data falls with the device, exactly as the threat model "
          "concedes; the *deleted* record is gone forever)")

    print("\n== everything else is intact, with zero re-encryption ==")
    for item_id, value in sorted(scheme.fetch_file(file_id).items()):
        print(f"  item {item_id}: {value.decode()}")


if __name__ == "__main__":
    main()

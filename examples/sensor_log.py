#!/usr/bin/env python
"""Deleting an erroneous entry from an outsourced sensor log -- over an
unreliable network.

The paper's introduction motivates fine-grained deletion with "an
erroneous entry of a sensor data file".  This example outsources a
sensor log, deletes one bad reading, and then repeats the exercise with
the acknowledgement *lost in transit*: the client's deletion journal and
the server's replay cache finalise the deletion exactly once, and only
then is the old master key shredded (deletion time T).

Run:  python examples/sensor_log.py
"""

from repro.client.client import AssuredDeletionClient
from repro.crypto.rng import DeterministicRandom
from repro.protocol.faults import (DROP_RESPONSE, NONE, ChannelError,
                                   FaultInjectingChannel)
from repro.server.server import CloudServer
from repro.sim.threat import Adversary, snapshot_file


def make_log(rng, count=20):
    readings = []
    for i in range(count):
        temperature = 18.0 + rng.below(100) / 10
        readings.append(b"2026-07-04T%02d:00Z sensor-7 temp=%.1fC" %
                        (i % 24, temperature))
    # One corrupted reading (the one we will need to assuredly delete --
    # say it embeds another tenant's data after a buffer bug).
    readings[13] = b"2026-07-04T13:00Z sensor-7 temp=ERR LEAKED:cc=4111-1111"
    return readings


def main() -> None:
    rng = DeterministicRandom("sensor-example")
    server = CloudServer()
    channel = FaultInjectingChannel(server, iter([]))
    client = AssuredDeletionClient(channel, rng=rng.fork("client"))

    print("== outsourcing 20 sensor readings ==")
    readings = make_log(rng.fork("log"))
    key = client.outsource(1, readings)
    ids = client.item_ids_of(20)
    print("reading 13:", client.access(1, key, ids[13]).decode())

    adversary = Adversary()
    adversary.observe(snapshot_file(server, 1))

    print("\n== attempt 1: the deletion ACK is lost ==")
    channel._schedule = iter([NONE, DROP_RESPONSE])
    try:
        client.delete(1, key, ids[13])
    except ChannelError as exc:
        print(f"network: {exc}")
    print(f"pending deletions: {client.pending_deletes()}")
    print("the old master key is still on the device -- deletion time T "
          "has NOT happened yet")

    print("\n== finalising through the journal ==")
    channel._schedule = iter([])
    key = client.resume_delete(1, ids[13])
    print("server's replay cache answered the resent commit exactly once;")
    print("old key shredded NOW -- this is T")
    adversary.observe(snapshot_file(server, 1))

    print("\n== verdict ==")
    adversary.seize_keystore(client.keystore.seize())
    print("adversary (full server history + seized device) recovers the "
          f"leaked reading: {adversary.try_recover(ids[13])!r}")
    print("neighbour reading still fine:",
          client.access(1, key, ids[12]).decode())
    print(f"total live readings: "
          f"{len(client.fetch_file(1, key))} (one assuredly gone)")


if __name__ == "__main__":
    main()

"""Deterministically-seeded concurrency stress harness.

Runs ``workers`` client threads against a shard cluster of ``shards``
independent server instances (one by default) -- over loopback
channels, a real TCP socket per shard, or the pipelined async host --
each thread driving its own
:class:`~repro.fs.filesystem.OutsourcedFileSystem` tenant (disjoint
file-id space, own keys) through a randomized mix of put / read / modify
/ insert / delete / batch-delete / drop operations, while optional
*foreign reader* threads hammer raw ``AccessRequest``/``FetchFileRequest``
messages at every file id the tenants publish.  That shape maximises
contention on exactly the structures the per-vault locking protects: the
file registry (concurrent outsource/drop), per-file locks (reads racing
commits), the shared WAL append path, and the replay caches.

Everything random derives from ``StressConfig.seed``: per-worker op
sequences, record contents, and client randomness (modulators, request
ids) are exact functions of the seed, so a failing run reproduces by
seed alone (thread *interleavings* still vary -- the invariants below
must hold for every interleaving).

After the workers join, the harness verifies linearizability-style
invariants:

1. **version accounting** -- every surviving tree's version equals the
   number of version-bumping commits the model applied to it (and the
   server holds exactly the files the model says survive);
2. **surviving data decrypts** -- every live file reads back equal to
   the model, through the full two-level key derivation under the final
   master/control keys;
3. **cross-shard placement** -- every live file lives on exactly the
   shard the consistent-hash ring assigns it, and on no other (requests
   were routed correctly and no state leaked between shards);
4. **Theorem 2** -- every deleted item resists the paper's full recovery
   procedure at both levels: the data-tree attack (every historical
   server state plus the final master keys) fails on deleted records,
   and the meta-tree attack (every historical meta state plus the seized
   control keys) fails on shredded master keys -- while live items and
   live master keys remain recoverable (soundness controls);
5. **WAL replay** -- re-executing each shard's write-ahead log from an
   empty server (or, for engine-backed runs, from a copy of the engine
   snapshot plus the WAL tail left by mid-run compaction) reproduces
   that shard's exact per-file state, byte for byte (modulators, item
   maps, ciphertexts, versions);
6. **audit chain** -- each shard's tamper-evident audit log verifies end
   to end (hash chain, sequence numbers, head anchor) and its per-file
   record sequence equals that shard's WAL-decoded op history exactly
   (the WAL history is a *suffix* of the audit history when mid-run
   compaction truncated the log) -- the evidence trail matches what was
   actually committed.

With ``backend`` set to ``log`` or ``sqlite``, every shard pages its
files from a storage engine and a compactor thread races
``compact_storage`` (flush + WAL truncation) against the workers.

Any violation raises :class:`InvariantViolation` naming the invariant.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.fs.sharding import ShardRoutingChannel
from repro.obs import audit as audit_mod
from repro.protocol import messages as msg
from repro.server.cluster import ShardCluster
from repro.server.server import CloudServer
from repro.server.wal import CommitLog, recover_server
from repro.sim.threat import Adversary, snapshot_file

#: Version bumps per model operation (data tree, meta tree).  A record
#: deletion rotates the data tree once and assuredly replaces the master
#: key in the meta tree (delete + insert = two meta commits); see
#: :meth:`repro.core.meta.MetaKeyManager.replace_master_key`.
_BUMPS = {
    "create": (0, 1),        # register = one meta insert
    "read": (0, 0),
    "read_all": (0, 0),
    "modify": (0, 0),        # same data key, no version bump
    "insert": (1, 0),
    "delete": (1, 2),
    "batch_delete": (1, 2),
    "drop": (0, 1),          # remove = one meta delete
}


class InvariantViolation(AssertionError):
    """A stress-run invariant did not hold."""


@dataclass(frozen=True)
class StressConfig:
    """Knobs for one seeded stress run (all derived state is a function
    of ``seed``)."""

    seed: str = "stress"
    workers: int = 4
    ops_per_worker: int = 16
    files_per_worker: int = 2
    min_records: int = 3
    max_records: int = 8
    transport: str = "loopback"  # "loopback" | "tcp" | "async"
    #: Independent server shards behind the consistent-hash router.
    #: Every transport routes through the ring even at ``shards=1``,
    #: so the op mix is identical across shard counts for one seed.
    shards: int = 1
    readers: int = 1
    verify_theorem2: bool = True
    wal_dir: str | None = None
    #: Randomly flip the client chain cache and the server view cache
    #: mid-run.  The caches must be *correctness-invisible*: every
    #: invariant below (including byte-exact reads against the model)
    #: must hold across any on/off interleaving.
    toggle_caches: bool = False
    #: Storage engine behind every shard.  Non-memory backends run a
    #: compactor thread that repeatedly flushes dirty state and
    #: truncates each shard's WAL *while the workers mutate*, so the
    #: invariants below also prove compaction is correctness-invisible
    #: (engine snapshot + WAL tail always reproduces live state).
    backend: str = "memory"

    def __post_init__(self) -> None:
        if self.transport not in ("loopback", "tcp", "async"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.backend not in ("memory", "log", "sqlite"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.workers < 1 or self.ops_per_worker < 1:
            raise ValueError("workers and ops_per_worker must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if not 1 <= self.min_records <= self.max_records:
            raise ValueError("need 1 <= min_records <= max_records")


@dataclass
class StressReport:
    """What one run did and verified."""

    config: StressConfig
    ops: dict[str, int] = field(default_factory=dict)
    foreign_reads: int = 0
    files_created: int = 0
    files_dropped: int = 0
    items_deleted: int = 0
    invariants: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    wal_records: int = 0
    audit_records: int = 0
    wal_compactions: int = 0

    def summary(self) -> dict:
        return {
            "seed": self.config.seed,
            "transport": self.config.transport,
            "backend": self.config.backend,
            "shards": self.config.shards,
            "workers": self.config.workers,
            "ops": dict(sorted(self.ops.items())),
            "foreign_reads": self.foreign_reads,
            "files_created": self.files_created,
            "files_dropped": self.files_dropped,
            "items_deleted": self.items_deleted,
            "wal_records": self.wal_records,
            "audit_records": self.audit_records,
            "wal_compactions": self.wal_compactions,
            "invariants": self.invariants,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


class _Tenant:
    """One worker thread's world: a file system plus its model."""

    #: Meta-id head-room per tenant (one group per tenant in practice).
    _META_STRIDE = 1_000
    _FILE_STRIDE = 1_000_000

    def __init__(self, index: int, config: StressConfig,
                 cluster: ShardCluster, channel) -> None:
        self.index = index
        self.config = config
        self.cluster = cluster
        self.ops = random.Random(f"{config.seed}/ops/{index}")
        self.fs = OutsourcedFileSystem(
            channel=channel,
            rng=DeterministicRandom(f"{config.seed}/client/{index}"),
            meta_id_base=1 + index * self._META_STRIDE,
            file_id_base=self._FILE_STRIDE * (index + 1))
        #: name -> list of current plaintext records (the model).
        self.model: dict[str, list[bytes]] = {}
        #: file name -> server file id.
        self.file_ids: dict[str, int] = {}
        #: file id -> expected tree version (data and meta files alike).
        self.expected_version: dict[int, int] = {}
        #: data file id -> the Theorem-2 adversary watching it.
        self.adversaries: dict[int, Adversary] = {}
        #: meta file id -> the adversary watching the meta tree.
        self.meta_adversaries: dict[int, Adversary] = {}
        #: meta file id -> meta item ids whose master keys were shredded.
        self.meta_killed: dict[int, list[int]] = {}
        #: data file id -> [(item_id, plaintext)] assuredly deleted.
        self.killed: dict[int, list[tuple[int, bytes]]] = {}
        #: file ids of dropped (whole-file-deleted) files.
        self.dropped: list[int] = []
        self.counts: dict[str, int] = {}
        self.error: BaseException | None = None
        self._record_serial = 0

    # -- model bookkeeping ---------------------------------------------

    def _manager(self, name: str):
        return self.fs.group_manager_of(name)

    def _bump(self, op: str, name: str) -> None:
        data_bump, meta_bump = _BUMPS[op]
        file_id = self.file_ids[name]
        self.expected_version[file_id] = (
            self.expected_version.get(file_id, 0) + data_bump)
        meta_id = self._manager(name).meta_file_id
        self.expected_version[meta_id] = (
            self.expected_version.get(meta_id, 0) + meta_bump)
        self.counts[op] = self.counts.get(op, 0) + 1

    def _observe(self, name: str, meta: bool = False,
                 data: bool = True) -> None:
        """Give the adversaries the server state after an operation (the
        threat model's continuous server compromise)."""
        if not self.config.verify_theorem2:
            return
        if data:
            file_id = self.file_ids.get(name)
            if file_id is not None and file_id in self.adversaries:
                self.adversaries[file_id].observe(snapshot_file(
                    self.cluster.server_for(file_id), file_id))
        if meta:
            meta_id = self._manager(name).meta_file_id
            adversary = self.meta_adversaries.get(meta_id)
            if adversary is None:
                adversary = Adversary(params=self.fs.params)
                self.meta_adversaries[meta_id] = adversary
            adversary.observe(snapshot_file(
                self.cluster.server_for(meta_id), meta_id))

    def _note_meta_replacement(self, name: str, old_meta_item: int) -> None:
        """A master-key record was assuredly deleted from the meta tree."""
        meta_id = self._manager(name).meta_file_id
        self.meta_killed.setdefault(meta_id, []).append(old_meta_item)

    def _fresh_record(self) -> bytes:
        self._record_serial += 1
        return (f"t{self.index}-r{self._record_serial}-"
                f"{self.ops.getrandbits(32):08x}").encode()

    # -- operations -----------------------------------------------------

    def _op_create(self) -> None:
        name = f"f{self.index}-{len(self.file_ids) + len(self.dropped)}"
        records = [self._fresh_record() for _ in range(
            self.ops.randint(self.config.min_records,
                             self.config.max_records))]
        handle = self.fs.create_file(name, records)
        self.model[name] = list(records)
        self.file_ids[name] = handle.file_id
        self.expected_version[handle.file_id] = 0
        self.killed.setdefault(handle.file_id, [])
        if self.config.verify_theorem2:
            self.adversaries[handle.file_id] = Adversary(
                params=self.fs.params)
        self._bump("create", name)
        self._observe(name, meta=True)

    def _op_read(self, name: str) -> None:
        position = self.ops.randrange(len(self.model[name]))
        data = self.fs.open(name).read_record(position)
        if data != self.model[name][position]:
            raise InvariantViolation(
                f"read returned {data!r}, model has "
                f"{self.model[name][position]!r}")
        self._bump("read", name)

    def _op_read_all(self, name: str) -> None:
        data = self.fs.open(name).read_all()
        if data != self.model[name]:
            raise InvariantViolation(f"read_all mismatch on {name!r}")
        self._bump("read_all", name)

    def _op_modify(self, name: str) -> None:
        position = self.ops.randrange(len(self.model[name]))
        value = self._fresh_record()
        self.fs.open(name).write_record(position, value)
        self.model[name][position] = value
        self._bump("modify", name)
        self._observe(name)

    def _op_insert(self, name: str) -> None:
        value = self._fresh_record()
        self.fs.open(name).append_record(value)
        self.model[name].append(value)
        self._bump("insert", name)
        self._observe(name)

    def _delete_positions(self, name: str, positions: list[int]) -> None:
        handle = self.fs.open(name)
        file_id = self.file_ids[name]
        index = handle._record.index
        for position in positions:
            self.killed[file_id].append((index.item_id_at(position),
                                         self.model[name][position]))
        old_meta_item = self._manager(name).meta_item_of(file_id)
        if len(positions) == 1:
            handle.delete_record(positions[0])
        else:
            handle.delete_many(positions)
        self._note_meta_replacement(name, old_meta_item)
        for position in sorted(positions, reverse=True):
            del self.model[name][position]

    def _op_delete(self, name: str) -> None:
        self._delete_positions(name, [self.ops.randrange(
            len(self.model[name]))])
        self._bump("delete", name)
        self._observe(name, meta=True)

    def _op_batch_delete(self, name: str) -> None:
        count = min(len(self.model[name]), self.ops.randint(2, 3))
        positions = self.ops.sample(range(len(self.model[name])), count)
        self._delete_positions(name, positions)
        self._bump("batch_delete", name)
        self._observe(name, meta=True)

    def _op_drop(self, name: str) -> None:
        file_id = self.file_ids[name]
        index = self.fs.open(name)._record.index
        for position, value in enumerate(self.model[name]):
            self.killed[file_id].append((index.item_id_at(position), value))
        old_meta_item = self._manager(name).meta_item_of(file_id)
        # Final pre-drop snapshot: the adversary holds the last state in
        # which the file's ciphertexts still existed.
        self._observe(name, meta=True)
        self._bump("drop", name)  # account before the entries vanish
        self.fs.delete_file(name)
        self._note_meta_replacement(name, old_meta_item)
        self._observe(name, meta=True, data=False)  # post-drop meta state
        self.dropped.append(file_id)
        del self.model[name]
        del self.file_ids[name]
        self.expected_version.pop(file_id, None)

    # -- the seeded run -------------------------------------------------

    def run(self, published: list[int], publish_lock: threading.Lock) -> None:
        try:
            for _ in range(self.config.files_per_worker):
                self._op_create()
            with publish_lock:
                published.extend(self.file_ids.values())
            for _ in range(self.config.ops_per_worker):
                self._step()
        except BaseException as exc:  # surfaced by the harness
            self.error = exc

    def _toggle_caches(self) -> None:
        """Randomly flip the hot-path caches (coherence under churn).

        Flipping the raw client flag (without clearing) deliberately
        leaves entries behind while mutations skip their cache upkeep:
        re-enabling must still never serve a wrong answer, because stale
        entries carry a retired ``(master_key, version)`` pair and every
        lookup checks both.
        """
        client = self.fs.client
        roll = self.ops.random()
        if roll < 0.4:
            client.cache_enabled = not client.cache_enabled
        elif roll < 0.6:
            client.disable_cache()
            client.enable_cache()
        else:
            for unit in self.cluster.units:
                unit.server.view_cache_enabled = \
                    not unit.server.view_cache_enabled

    def _step(self) -> None:
        if self.config.toggle_caches and self.ops.random() < 0.15:
            self._toggle_caches()
        names = [n for n in self.model if self.model[n]]
        if not names:
            self._op_create()
            return
        name = self.ops.choice(sorted(names))
        roll = self.ops.random()
        if roll < 0.30:
            self._op_read(name)
        elif roll < 0.40:
            self._op_read_all(name)
        elif roll < 0.55:
            self._op_modify(name)
        elif roll < 0.67:
            self._op_insert(name)
        elif roll < 0.82:
            self._op_delete(name)
        elif roll < 0.92 and len(self.model[name]) >= 2:
            self._op_batch_delete(name)
        elif roll < 0.97 and len(self.model) > 1:
            self._op_drop(name)
        else:
            self._op_insert(name)


def _foreign_reader(index: int, seed: str, make_channel, published: list[int],
                    publish_lock: threading.Lock, stop: threading.Event,
                    counts: list[int], errors: list[BaseException]) -> None:
    """Hammer raw read requests at other tenants' files.

    The reader holds no keys, so it can only exercise the server's shared
    locks and wire paths; any reply -- data or error -- is acceptable, a
    transport failure is not.
    """
    rng = random.Random(f"{seed}/reader/{index}")
    channel = make_channel()
    done = 0
    try:
        while not stop.is_set():
            with publish_lock:
                targets = list(published)
            if not targets:
                time.sleep(0.001)
                continue
            file_id = rng.choice(targets)
            if rng.random() < 0.5:
                reply = channel.request(msg.AccessRequest(
                    file_id=file_id, item_id=rng.randrange(1, 64)))
            else:
                reply = channel.request(msg.FetchFileRequest(file_id=file_id))
            if not isinstance(reply, (msg.AccessReply, msg.FetchFileReply,
                                      msg.ErrorReply)):
                raise InvariantViolation(
                    f"foreign read got {type(reply).__name__}")
            done += 1
    except BaseException as exc:
        errors.append(exc)
    finally:
        counts[index] = done
        close = getattr(channel, "close", None)
        if close is not None:
            close()


def _file_fingerprint(server: CloudServer, file_id: int):
    """Everything the server holds for one file, in canonical form."""
    state = server.file_state(file_id)
    tree = state.tree
    item_ids = tree.item_ids()
    return (
        state.version,
        tree.leaf_count,
        tuple(tree.iter_modulators()),
        tuple(sorted((iid, tree.slot_of_item(iid)) for iid in item_ids)),
        tuple(sorted((iid, state.ciphertexts.get(iid)) for iid in item_ids)),
    )


def run_stress(config: StressConfig) -> StressReport:
    """Run one seeded stress iteration and verify every invariant.

    Returns the :class:`StressReport` on success; raises
    :class:`InvariantViolation` (or the first worker exception) on
    failure.
    """
    report = StressReport(config=config)
    start = time.perf_counter()

    # Every shard is an isolated server + WAL + audit chain; routing to
    # it goes through the consistent-hash ring regardless of transport.
    # The async transport exercises the group-commit WAL path: many
    # pipelined mutators coalescing into shared fsyncs, with the usual
    # per-shard WAL-replay invariant still checked at the end.  Audit
    # fsyncs are off: the chain's *structure* is what the invariant
    # verifies, and the harness runs hundreds of seeded iterations in CI.
    wal_dir = config.wal_dir or tempfile.mkdtemp(prefix="repro-stress-")
    cluster = ShardCluster(
        config.shards, transport=config.transport, data_dir=wal_dir,
        fresh=True, audit=True, audit_sync="off",
        storage_backend=config.backend,
        wal_factory=lambda path: CommitLog(
            path, group_commit=(config.transport == "async")))

    channels = []
    try:
        cluster.start()
        shard_map = cluster.shard_map()

        def make_channel():
            channel = ShardRoutingChannel(shard_map)
            channels.append(channel)
            return channel

        tenants = [_Tenant(i, config, cluster, make_channel())
                   for i in range(config.workers)]
        published: list[int] = []
        publish_lock = threading.Lock()
        stop = threading.Event()
        reader_counts = [0] * config.readers
        reader_errors: list[BaseException] = []

        threads = [threading.Thread(target=tenant.run,
                                    args=(published, publish_lock),
                                    name=f"stress-worker-{tenant.index}")
                   for tenant in tenants]
        readers = [threading.Thread(target=_foreign_reader,
                                    args=(i, config.seed, make_channel,
                                          published, publish_lock, stop,
                                          reader_counts, reader_errors),
                                    name=f"stress-reader-{i}")
                   for i in range(config.readers)]
        compactor = None
        compactor_errors: list[BaseException] = []
        if config.backend != "memory":
            # Repeatedly flush + WAL-compact every shard while the
            # workers mutate; the end-of-run invariants then prove the
            # engine snapshot + remaining WAL tail still reproduce the
            # live state exactly, whatever the interleaving.
            def _compact_loop() -> None:
                try:
                    while not stop.wait(0.02):
                        cluster.compact()
                except BaseException as exc:
                    compactor_errors.append(exc)
            compactor = threading.Thread(target=_compact_loop,
                                         name="stress-compactor")
        for thread in threads + readers + ([compactor] if compactor else []):
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        for thread in readers + ([compactor] if compactor else []):
            thread.join()

        for tenant in tenants:
            if tenant.error is not None:
                raise tenant.error
        if reader_errors:
            raise reader_errors[0]
        if compactor_errors:
            raise compactor_errors[0]

        _verify(cluster, tenants, report)

        for tenant in tenants:
            for count_op, count in tenant.counts.items():
                report.ops[count_op] = report.ops.get(count_op, 0) + count
            report.files_dropped += len(tenant.dropped)
            report.items_deleted += sum(len(v) for v in
                                        tenant.killed.values())
        report.files_created = report.ops.get("create", 0)
        report.foreign_reads = sum(reader_counts)
        report.wal_records = cluster.total_wal_records()
        report.audit_records = cluster.total_audit_records()
        report.wal_compactions = sum(
            unit.wal.compactions for unit in cluster.units
            if unit.wal is not None)
        report.elapsed_seconds = time.perf_counter() - start
        return report
    finally:
        for channel in channels:
            channel.close()
        cluster.stop()


def _verify(cluster: ShardCluster, tenants: list[_Tenant],
            report: StressReport) -> None:
    # 1. The cluster holds exactly the surviving files, at the exact
    #    versions the model predicts -- and no file id is resident on
    #    more than one shard.
    expected: dict[int, int] = {}
    for tenant in tenants:
        overlap = expected.keys() & tenant.expected_version.keys()
        if overlap:
            raise InvariantViolation(f"tenants shared file ids {overlap}")
        expected.update(tenant.expected_version)
    placement: dict[int, int] = {}
    for unit in cluster.units:
        for file_id in unit.server.file_ids():
            if file_id in placement:
                raise InvariantViolation(
                    f"file {file_id} resident on shards "
                    f"{placement[file_id]} and {unit.shard_id}")
            placement[file_id] = unit.shard_id
    live = set(placement)
    if live != set(expected):
        raise InvariantViolation(
            f"cluster holds files {sorted(live)}, model expects "
            f"{sorted(expected)}")
    for file_id, version in expected.items():
        actual = cluster.server_for(file_id).file_state(file_id).version
        if actual != version:
            raise InvariantViolation(
                f"file {file_id}: version {actual}, expected {version} "
                f"(lost or doubled commits)")
    report.invariants.append("version-accounting")

    # 2. Every surviving record decrypts to the model's plaintext under
    #    the final keys.
    for tenant in tenants:
        for name, records in tenant.model.items():
            data = tenant.fs.open(name).read_all()
            if data != records:
                raise InvariantViolation(
                    f"tenant {tenant.index} file {name!r}: surviving "
                    f"content diverged from the model")
    report.invariants.append("surviving-data-decrypts")

    # 3. Consistent-hash placement: every live file sits on exactly the
    #    shard the ring assigns it (routing never strayed, and no state
    #    migrated or leaked between shards).  Trivially true at
    #    shards=1, but checked unconditionally so the invariant list is
    #    identical across shard counts.
    for file_id in sorted(live):
        owner = cluster.shard_of(file_id)
        if placement[file_id] != owner:
            raise InvariantViolation(
                f"file {file_id} resident on shard {placement[file_id]}, "
                f"ring assigns shard {owner}")
    report.invariants.append("cross-shard-placement")

    # 4. Theorem 2 at both levels: deleted records and shredded master
    #    keys resist the recovery procedure; live ones fall to it (the
    #    soundness control that keeps the negative result meaningful).
    if all(tenant.config.verify_theorem2 for tenant in tenants):
        for tenant in tenants:
            _verify_theorem2(tenant)
        report.invariants.append("theorem2-deleted-unrecoverable")

    # 5. Replaying each shard's WAL from an empty server reproduces that
    #    shard's live state exactly -- and only that shard's files (a
    #    file's commits never land in a sibling's log).  Engine-backed
    #    shards recover from a *copy* of the engine file plus the WAL,
    #    exactly as a post-crash restart would: the engine snapshot (as
    #    of whatever mid-run compaction last ran) plus the WAL tail must
    #    still rebuild the live state byte for byte.  Copying mid-test
    #    is safe because the engine file only mutates inside
    #    ``compact_storage`` and the compactor thread has quiesced.
    wal_payloads_by_shard: dict[int, list[bytes]] = {}
    for unit in cluster.units:
        shard_live = {file_id for file_id, shard_id in placement.items()
                      if shard_id == unit.shard_id}
        tmp_engine = None
        if unit.engine is not None:
            from repro.server.engine import make_engine
            copy_dir = tempfile.mkdtemp(prefix="repro-stress-verify-")
            wal_copy = os.path.join(copy_dir, "wal")
            engine_copy = os.path.join(
                copy_dir, os.path.basename(unit.engine_path))
            shutil.copy(unit.wal_path, wal_copy)
            shutil.copy(unit.engine_path, engine_copy)
            tmp_engine = make_engine(cluster.storage_backend, engine_copy)
            recovered = recover_server(None, wal_copy, engine=tmp_engine)
        else:
            recovered = recover_server(unit.wal_path + ".noimage",
                                       unit.wal_path)
        recovered_live = set(recovered.file_ids())
        if recovered_live != shard_live:
            raise InvariantViolation(
                f"shard {unit.shard_id}: WAL replay rebuilt files "
                f"{sorted(recovered_live)}, live shard has "
                f"{sorted(shard_live)}")
        for file_id in sorted(shard_live):
            if _file_fingerprint(recovered, file_id) != \
                    _file_fingerprint(unit.server, file_id):
                raise InvariantViolation(
                    f"shard {unit.shard_id}: WAL replay diverged on "
                    f"file {file_id}")
        wal_payloads_by_shard[unit.shard_id] = recovered.wal.records()
        recovered.wal.close()
        if tmp_engine is not None:
            tmp_engine.close()
    report.invariants.append("wal-replay-reproduces-state")

    # 6. Each shard's audit chain verifies untampered and its per-file
    #    record sequence equals that shard's WAL-decoded op history.
    #    (Per-file, not global: both logs append under the per-file
    #    lock, so different files' records may interleave differently
    #    between the two.)
    for unit in cluster.units:
        wal_payloads = wal_payloads_by_shard[unit.shard_id]
        try:
            audit_records = audit_mod.verify_log(unit.audit_path)
        except audit_mod.AuditError as exc:
            raise InvariantViolation(
                f"shard {unit.shard_id}: audit chain failed to verify: "
                f"{exc}")
        compacted = unit.wal is not None and unit.wal.compactions > 0
        if not compacted and len(audit_records) != len(wal_payloads):
            raise InvariantViolation(
                f"shard {unit.shard_id}: audit log holds "
                f"{len(audit_records)} records, WAL holds "
                f"{len(wal_payloads)} -- a mutation escaped the trail")
        if compacted and len(audit_records) < len(wal_payloads):
            raise InvariantViolation(
                f"shard {unit.shard_id}: audit log holds "
                f"{len(audit_records)} records, compacted WAL still "
                f"holds {len(wal_payloads)} -- a mutation escaped the "
                f"trail")
        wal_history: dict[int, list[tuple[str, int]]] = {}
        for payload in wal_payloads:
            request = msg.decode_message(unit.server.ctx, payload)
            wal_history.setdefault(request.file_id, []).append(
                (type(request).__name__,
                 getattr(request, "request_id", 0)))
        audit_history: dict[int, list[tuple[str, int]]] = {}
        for record in audit_records:
            audit_history.setdefault(record["file_id"], []).append(
                (record["op"], record["request_id"]))
        if compacted:
            # Compaction truncated the WAL mid-run, so each file's WAL
            # sequence is the *suffix* of its audit sequence (the audit
            # chain keeps the full history by design -- it is the
            # deletion evidence trail, never truncated).
            for file_id, ops in wal_history.items():
                audit_ops = audit_history.get(file_id, [])
                if (len(ops) > len(audit_ops)
                        or ops != audit_ops[len(audit_ops) - len(ops):]):
                    raise InvariantViolation(
                        f"shard {unit.shard_id}: file {file_id}: "
                        f"compacted WAL history is not a suffix of the "
                        f"audit history")
        elif audit_history != wal_history:
            diverged = sorted(
                file_id for file_id in
                set(wal_history) | set(audit_history)
                if wal_history.get(file_id) != audit_history.get(file_id))
            raise InvariantViolation(
                f"shard {unit.shard_id}: audit history diverged from "
                f"the WAL on files {diverged}")
    report.invariants.append("audit-chain-matches-history")


def _verify_theorem2(tenant: _Tenant) -> None:
    """Both levels of the paper's deletion argument, per tenant.

    Data level: an adversary with every historical state of a data tree
    plus the file's FINAL master key cannot recover deleted records.
    Meta level: an adversary with every historical state of the meta tree
    plus the seized device (all final control keys) cannot recover a
    shredded master key record.  Soundness controls assert the same
    attacks succeed against live records and live master keys.
    """
    seized = tenant.fs.client.keystore.seize()

    # -- data trees of surviving files ---------------------------------
    for name, file_id in tenant.file_ids.items():
        adversary = tenant.adversaries.get(file_id)
        if adversary is None:
            continue
        adversary.seized_keys = list(seized.values())
        adversary.seized_keys.append(
            tenant._manager(name).master_key(file_id))
        adversary.observe(snapshot_file(
            tenant.cluster.server_for(file_id), file_id))
        for item_id, _plaintext in tenant.killed.get(file_id, ()):
            if adversary.try_recover(item_id) is not None:
                raise InvariantViolation(
                    f"Theorem 2 violated: deleted item {item_id} of "
                    f"file {name!r} was recovered")
        if tenant.model[name]:
            # Soundness control: a live record must fall to the attack
            # (any historical version of it counts as recovery).
            live_item = tenant.fs.open(name)._record.index.item_id_at(0)
            if adversary.try_recover(live_item) is None:
                raise InvariantViolation(
                    f"soundness control failed: live item {live_item} of "
                    f"{name!r} did not recover (the Theorem-2 check "
                    f"would be vacuous)")

    # -- data trees of dropped files: only historical snapshots remain --
    for file_id in tenant.dropped:
        adversary = tenant.adversaries.get(file_id)
        if adversary is None:
            continue
        adversary.seized_keys = list(seized.values())
        for item_id, _plaintext in tenant.killed.get(file_id, ()):
            if adversary.try_recover(item_id) is not None:
                raise InvariantViolation(
                    f"Theorem 2 violated: item {item_id} of dropped "
                    f"file {file_id} was recovered")

    # -- the meta trees: shredded master-key records stay dead ----------
    for meta_id, adversary in tenant.meta_adversaries.items():
        adversary.seized_keys = list(seized.values())
        adversary.observe(snapshot_file(
            tenant.cluster.server_for(meta_id), meta_id))
        for meta_item in tenant.meta_killed.get(meta_id, ()):
            if adversary.try_recover(meta_item) is not None:
                raise InvariantViolation(
                    f"Theorem 2 violated: shredded master-key record "
                    f"{meta_item} of meta file {meta_id} was recovered")
        live_files = [fid for name, fid in tenant.file_ids.items()
                      if tenant._manager(name).meta_file_id == meta_id]
        if live_files:
            name = next(n for n, fid in tenant.file_ids.items()
                        if fid == live_files[0])
            live_meta_item = tenant._manager(name).meta_item_of(
                live_files[0])
            if adversary.try_recover(live_meta_item) is None:
                raise InvariantViolation(
                    f"soundness control failed: live master-key record "
                    f"{live_meta_item} of meta file {meta_id} did not "
                    f"recover")

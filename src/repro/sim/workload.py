"""Workload generators for experiments, examples, and tests.

The paper's evaluation fixes the data-item size at 4 KB ("typical sector
size of newer hard disks") and sweeps the item count from 10 to 10^7.
These helpers generate such files, plus the structured record workloads
the introduction motivates (employee rosters, mail archives, sensor
logs), and random operation mixes for soak-style tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.crypto.rng import RandomSource

#: The paper's data-item size (Section VI-B).
PAPER_ITEM_SIZE = 4096

#: The paper's Table II file scale.
PAPER_ITEM_COUNT = 100_000


def make_items(count: int, size: int, rng: RandomSource) -> list[bytes]:
    """``count`` random items of exactly ``size`` bytes."""
    if count < 0 or size < 0:
        raise ValueError("count and size must be non-negative")
    block = rng.bytes(count * size)
    return [block[i * size:(i + 1) * size] for i in range(count)]


def make_record_items(count: int, size: int, rng: RandomSource,
                      prefix: bytes = b"record") -> list[bytes]:
    """Items with a readable header and random padding (fixed size)."""
    items = []
    for i in range(count):
        header = b"%s-%08d:" % (prefix, i)
        if len(header) > size:
            items.append(header[:size])
        else:
            items.append(header + rng.bytes(size - len(header)))
    return items


def employee_roster(count: int, rng: RandomSource) -> list[bytes]:
    """A structured roster: one CSV-ish record per employee."""
    departments = [b"engineering", b"sales", b"hr", b"legal", b"finance"]
    records = []
    for i in range(count):
        department = departments[rng.below(len(departments))]
        salary = 50_000 + rng.below(150_000)
        records.append(b"emp%06d,%s,%d,%s" % (
            i, department, salary, rng.bytes(8).hex().encode()))
    return records


def mail_messages(count: int, rng: RandomSource,
                  body_size: int = 1024) -> list[bytes]:
    """A mail-backup workload: headers plus a random body."""
    messages = []
    for i in range(count):
        header = (b"From: user%d@example.com\r\n"
                  b"Subject: message %d\r\n\r\n" % (rng.below(50), i))
        messages.append(header + rng.bytes(body_size))
    return messages


@dataclass(frozen=True)
class Operation:
    """One step of a generated operation mix."""

    kind: str          # "access" | "modify" | "insert" | "delete"
    position: int      # index into the live-item list (ignored for insert)
    data: bytes = b""  # new contents for modify/insert


def operation_mix(steps: int, rng: RandomSource, item_size: int = 64,
                  weights: dict[str, int] | None = None) -> Iterator[Operation]:
    """Yield a random operation sequence with the given kind weights."""
    if weights is None:
        weights = {"access": 5, "modify": 2, "insert": 2, "delete": 2}
    kinds: list[str] = []
    for kind, weight in sorted(weights.items()):
        kinds.extend([kind] * weight)
    if not kinds:
        raise ValueError("at least one operation kind required")
    for _ in range(steps):
        kind = kinds[rng.below(len(kinds))]
        data = rng.bytes(item_size) if kind in ("modify", "insert") else b""
        yield Operation(kind=kind, position=rng.below(1 << 30), data=data)

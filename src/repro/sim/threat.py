"""The threat-model simulator (Section II-C).

The adversary of the paper (1) controls the server at all times -- so it
keeps *every* state the server ever held -- and (2) seizes the client
device after the deletion time ``T`` -- so it holds every key present in
the keystore at seizure.  This module makes that adversary executable:

* :func:`snapshot_file` captures a server file's complete state (all
  modulators, the item map, all ciphertexts) -- call it as often as you
  like to model continuous compromise;
* :class:`Adversary` accumulates snapshots plus a seized keystore and
  runs the *recovery procedure*: for every (seized key, snapshot,
  ciphertext version) combination, derive the item's chain output through
  the honest key-modulation function and attempt decrypt-verification.

The recovery procedure is exactly the polynomial-time derivation an
attacker with the paper's assumed powers can run; Theorem 2 says it must
fail for deleted items.  The *control* direction matters equally: the
tests verify recovery SUCCEEDS for live items (the attacker with the
device can read anything not deleted -- inherent, not a flaw) and for the
broken baseline variants, which is what makes the negative result
meaningful rather than vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ciphertext import ItemCodec
from repro.core.errors import IntegrityError
from repro.core.modulated_chain import ChainEngine
from repro.core.params import Params
from repro.core.tree import ModulationTree
from repro.server.server import CloudServer


@dataclass(frozen=True)
class FileSnapshot:
    """Complete state of one server file at one instant."""

    n_leaves: int
    links: dict[int, bytes]
    leaves: dict[int, bytes]
    slot_of_item: dict[int, int]
    ciphertexts: dict[int, bytes]

    def modulator_list_for(self, item_id: int) -> list[bytes] | None:
        """Reconstruct ``M_k`` for an item as of this snapshot."""
        slot = self.slot_of_item.get(item_id)
        if slot is None:
            return None
        modulators = []
        for path_slot in ModulationTree.path_slots(slot)[1:]:
            link = self.links.get(path_slot)
            if link is None:
                return None
            modulators.append(link)
        leaf = self.leaves.get(slot)
        if leaf is None:
            return None
        modulators.append(leaf)
        return modulators


def snapshot_file(server: CloudServer, file_id: int) -> FileSnapshot:
    """Capture everything the server currently holds for ``file_id``."""
    state = server.file_state(file_id)
    tree = state.tree
    links: dict[int, bytes] = {}
    leaves: dict[int, bytes] = {}
    for kind, slot, value in tree.iter_modulators():
        (links if kind == "link" else leaves)[slot] = value
    from repro.core.errors import UnknownItemError
    slot_of_item = {}
    ciphertexts = {}
    for item_id in tree.item_ids():
        slot_of_item[item_id] = tree.slot_of_item(item_id)
        try:
            ciphertexts[item_id] = state.ciphertexts.get(item_id)
        except UnknownItemError:
            # A cheating server may have dropped a ciphertext while
            # leaving the tree stale; the snapshot records what exists.
            pass
    return FileSnapshot(n_leaves=tree.leaf_count, links=links, leaves=leaves,
                        slot_of_item=slot_of_item, ciphertexts=ciphertexts)


@dataclass
class Adversary:
    """Everything the threat model grants, plus the recovery procedure."""

    params: Params = field(default_factory=Params)
    snapshots: list[FileSnapshot] = field(default_factory=list)
    seized_keys: list[bytes] = field(default_factory=list)

    def observe(self, snapshot: FileSnapshot) -> None:
        """Record one server state (full server control, any time)."""
        self.snapshots.append(snapshot)

    def seize_keystore(self, keys: dict[str, bytes]) -> None:
        """Record the device seizure after time ``T``."""
        self.seized_keys.extend(keys.values())

    def known_ciphertexts(self, item_id: int) -> list[bytes]:
        """Every ciphertext version of ``item_id`` the server ever held."""
        seen: list[bytes] = []
        for snapshot in self.snapshots:
            ciphertext = snapshot.ciphertexts.get(item_id)
            if ciphertext is not None and ciphertext not in seen:
                seen.append(ciphertext)
        return seen

    def try_recover(self, item_id: int) -> bytes | None:
        """Run the full honest-derivation recovery attack on one item.

        Tries every seized key against every recorded modulator list for
        the item and every recorded ciphertext version.  Returns the
        plaintext on success, ``None`` when the item is unrecoverable.
        """
        engine = ChainEngine(self.params.chain_hash)
        codec = ItemCodec(self.params)

        modulator_lists: list[list[bytes]] = []
        for snapshot in self.snapshots:
            modulators = snapshot.modulator_list_for(item_id)
            if modulators is not None and modulators not in modulator_lists:
                modulator_lists.append(modulators)

        ciphertexts = self.known_ciphertexts(item_id)
        for key in self.seized_keys:
            for modulators in modulator_lists:
                chain_output = engine.evaluate(key, modulators)
                for ciphertext in ciphertexts:
                    try:
                        message, recovered = codec.decrypt(chain_output,
                                                           ciphertext)
                    except IntegrityError:
                        continue
                    if recovered == item_id:
                        return message
        return None

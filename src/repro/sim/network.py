"""Simple network cost model for the client <-> cloud link.

The paper runs its client in a Gainesville lab against Amazon EC2 and
explicitly does *not* measure end-to-end delay ("not unique to our
approach but a consequence of using remote cloud storage").  The model
here exists for the examples and for users who want wall-clock estimates:
given measured protocol bytes it charges a per-message round-trip time
plus serialisation at a fixed bandwidth, on a virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the simulated link."""

    rtt_seconds: float = 0.040
    uplink_bytes_per_second: float = 12.5e6   # ~100 Mbit/s
    downlink_bytes_per_second: float = 12.5e6

    def round_trip_seconds(self, bytes_sent: int, bytes_received: int) -> float:
        """Virtual time for one request/response exchange."""
        return (self.rtt_seconds
                + bytes_sent / self.uplink_bytes_per_second
                + bytes_received / self.downlink_bytes_per_second)


#: Rough profile of the paper's testbed link (campus to EC2).
EC2_PROFILE = NetworkModel(rtt_seconds=0.045,
                           uplink_bytes_per_second=6.25e6,
                           downlink_bytes_per_second=12.5e6)

#: Same-region datacenter link.
LAN_PROFILE = NetworkModel(rtt_seconds=0.0005,
                           uplink_bytes_per_second=125e6,
                           downlink_bytes_per_second=125e6)

"""Simulation substrate: metrics, network model, workloads, threat model."""

from repro.sim.metrics import MetricsCollector, OpRecord
from repro.sim.network import EC2_PROFILE, LAN_PROFILE, NetworkModel

__all__ = ["EC2_PROFILE", "LAN_PROFILE", "MetricsCollector", "NetworkModel",
           "OpRecord"]

"""Measurement plumbing for the experiment harness.

The paper's three metrics (Section VI) are client storage, communication
overhead, and client computation.  This module gives each a first-class
representation:

* byte counts come from the metering channel (exact, per direction, with
  item payload separated so the paper's "overhead does not include the
  data item itself" definition can be applied);
* client computation is wall-clock time around client-side work *plus*
  the exact chain-hash invocation count, since pure-Python wall-clock
  carries an interpreter constant the paper's C-speed numbers do not.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs import runtime as _obs


@dataclass
class OpRecord:
    """Everything measured about one client operation."""

    op: str
    bytes_sent: int = 0
    bytes_received: int = 0
    payload_sent: int = 0
    payload_received: int = 0
    client_seconds: float = 0.0
    hash_calls: int = 0
    round_trips: int = 0
    retries: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    @property
    def overhead_bytes(self) -> int:
        """Protocol bytes excluding item payload (the paper's metric).

        Clamped at zero: a record whose payload fields exceed its byte
        totals (hand-built, or totals lost to a transport error) reports
        no overhead rather than a negative byte count.
        """
        return max(0,
                   self.total_bytes - self.payload_sent
                   - self.payload_received)


@dataclass
class MetricsCollector:
    """Accumulates per-operation records for an experiment run."""

    records: list[OpRecord] = field(default_factory=list)

    def add(self, record: OpRecord) -> None:
        self.records.append(record)
        if _obs.enabled:
            _obs.record_op(record)

    def for_op(self, op: str) -> list[OpRecord]:
        return [r for r in self.records if r.op == op]

    def mean_overhead_bytes(self, op: str) -> float:
        records = self.for_op(op)
        if not records:
            raise ValueError(f"no records for operation {op!r}")
        return sum(r.overhead_bytes for r in records) / len(records)

    def mean_client_seconds(self, op: str) -> float:
        records = self.for_op(op)
        if not records:
            raise ValueError(f"no records for operation {op!r}")
        return sum(r.client_seconds for r in records) / len(records)

    def mean_hash_calls(self, op: str) -> float:
        records = self.for_op(op)
        if not records:
            raise ValueError(f"no records for operation {op!r}")
        return sum(r.hash_calls for r in records) / len(records)

    def clear(self) -> None:
        self.records.clear()


class Stopwatch:
    """Accumulating perf_counter stopwatch for client-side segments.

    Re-entrant: nested ``measure()`` blocks count their shared wall time
    once (only the outermost block accumulates), so instrumenting a
    helper that is also called from an already-measured section does not
    double-bill the overlap.
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._depth = 0

    @contextmanager
    def measure(self) -> Iterator[None]:
        self._depth += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self._depth -= 1
            if self._depth == 0:
                self.seconds += time.perf_counter() - start

"""Constant-time comparison helpers.

The client compares recomputed hashes ``H(m)`` against values arriving from
a possibly hostile server; those comparisons use :func:`bytes_eq` so the
comparison time does not leak the position of the first mismatching byte.
"""

from __future__ import annotations


def bytes_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings in time independent of their contents.

    Length inequality returns ``False`` immediately; lengths are public in
    every protocol message of this library.
    """
    if not isinstance(a, (bytes, bytearray)) or not isinstance(b, (bytes, bytearray)):
        raise TypeError("bytes_eq requires bytes-like arguments")
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0

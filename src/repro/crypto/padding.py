"""PKCS#7 padding (RFC 5652 section 6.3) for block cipher modes."""

from __future__ import annotations


class PaddingError(ValueError):
    """Raised when a padded plaintext fails validation on removal."""


def pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding so the result is a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in [1, 255]")
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length]) * pad_length


def unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in [1, 255]")
    if not data or len(data) % block_size:
        raise PaddingError("padded data length is not a multiple of the block size")
    pad_length = data[-1]
    if not 1 <= pad_length <= block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_length:] != bytes([pad_length]) * pad_length:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_length]

"""SHA-1 implemented from the FIPS 180-4 specification.

The paper uses SHA-1 as the one-way, collision-resistant hash ``H`` inside
its modulated hash chains; every modulator and chain value is one 160-bit
digest.  This module provides both an incremental hash object (:class:`Sha1`,
mirroring the familiar ``hashlib`` interface) and a one-shot helper
(:func:`sha1`).

SHA-1 is cryptographically broken for collision resistance against
well-funded adversaries; it is implemented here because the paper specifies
it.  The rest of the library treats the chain hash as a pluggable parameter
(see :class:`repro.core.modulated_chain.ChainHash`), and SHA-256 is available
as a drop-in replacement.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

# Per-round constants from FIPS 180-4 section 4.2.1.
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)

_INITIAL_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

_BLOCK_STRUCT = struct.Struct(">16I")
_DIGEST_STRUCT = struct.Struct(">5I")


def _rotl(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` bits."""
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _compress(state: tuple[int, int, int, int, int], block: bytes,
              offset: int = 0) -> tuple[int, int, int, int, int]:
    """Run the SHA-1 compression function on one 64-byte block."""
    w = list(_BLOCK_STRUCT.unpack_from(block, offset))
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

    a, b, c, d, e = state

    for t in range(0, 20):
        temp = (_rotl(a, 5) + ((b & c) | (~b & d)) + e + w[t] + _K[0]) & _MASK32
        a, b, c, d, e = temp, a, _rotl(b, 30), c, d
    for t in range(20, 40):
        temp = (_rotl(a, 5) + (b ^ c ^ d) + e + w[t] + _K[1]) & _MASK32
        a, b, c, d, e = temp, a, _rotl(b, 30), c, d
    for t in range(40, 60):
        temp = (_rotl(a, 5) + ((b & c) | (b & d) | (c & d)) + e + w[t]
                + _K[2]) & _MASK32
        a, b, c, d, e = temp, a, _rotl(b, 30), c, d
    for t in range(60, 80):
        temp = (_rotl(a, 5) + (b ^ c ^ d) + e + w[t] + _K[3]) & _MASK32
        a, b, c, d, e = temp, a, _rotl(b, 30), c, d

    h0, h1, h2, h3, h4 = state
    return (
        (h0 + a) & _MASK32,
        (h1 + b) & _MASK32,
        (h2 + c) & _MASK32,
        (h3 + d) & _MASK32,
        (h4 + e) & _MASK32,
    )


class Sha1:
    """Incremental SHA-1 hash object with a ``hashlib``-style interface."""

    #: Digest length in bytes.
    digest_size = 20
    #: Internal block length in bytes.
    block_size = 64
    #: Canonical algorithm name.
    name = "sha1"

    __slots__ = ("_state", "_buffer", "_length")

    def __init__(self, data: bytes = b"") -> None:
        self._state = _INITIAL_STATE
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes-like input, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        buffer = self._buffer + data
        state = self._state
        block_count = len(buffer) // 64
        for i in range(block_count):
            state = _compress(state, buffer, i * 64)
        self._state = state
        self._buffer = buffer[block_count * 64:]

    def digest(self) -> bytes:
        """Return the 20-byte digest of the data absorbed so far."""
        state = self._state
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + padding + struct.pack(">Q", bit_length)
        for i in range(len(tail) // 64):
            state = _compress(state, tail, i * 64)
        return _DIGEST_STRUCT.pack(*state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "Sha1":
        """Return an independent copy of the current hash state."""
        clone = Sha1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1: return the 20-byte digest of ``data``."""
    return Sha1(data).digest()

"""HKDF (RFC 5869) extract-and-expand key derivation.

Used to derive AES data keys from modulated-chain outputs and to derive
independent sub-keys (encryption vs. counter obfuscation) from one master
secret where the library needs more than one key.
"""

from __future__ import annotations

from repro.crypto.hmac import HashFactory, hmac_digest
from repro.crypto.sha256 import Sha256


def hkdf_extract(salt: bytes, ikm: bytes,
                 hash_factory: HashFactory = Sha256) -> bytes:
    """RFC 5869 extract step: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * hash_factory().digest_size
    return hmac_digest(salt, ikm, hash_factory)


def hkdf_expand(prk: bytes, info: bytes, length: int,
                hash_factory: HashFactory = Sha256) -> bytes:
    """RFC 5869 expand step: produce ``length`` bytes of output key material."""
    digest_size = hash_factory().digest_size
    if length <= 0:
        raise ValueError("output length must be positive")
    if length > 255 * digest_size:
        raise ValueError("requested output too long for HKDF-Expand")

    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_digest(prk, previous + info + bytes([counter]), hash_factory)
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32,
         hash_factory: HashFactory = Sha256) -> bytes:
    """Full HKDF: extract then expand ``ikm`` into ``length`` output bytes."""
    prk = hkdf_extract(salt, ikm, hash_factory)
    return hkdf_expand(prk, info, length, hash_factory)

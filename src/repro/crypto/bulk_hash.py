"""Vectorised SHA-1 over many independent messages (numpy).

SHA-1 is sequential *within* one message but embarrassingly parallel
*across* messages.  Whole-file key derivation hashes ``3n-2`` short
values, the whole-file fetch verifies ``n`` item tags, and the
master-key baseline re-hashes every item on every deletion -- all of
them batches of same-length inputs.  This module runs the FIPS 180-4
compression function across N messages at once with numpy vector ops,
giving a ~10-20x speedup over the scalar implementation at batch sizes
in the thousands.

Output is bit-identical to :func:`repro.crypto.sha1.sha1`; the test
suite cross-verifies against it (and hence against hashlib).
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from repro.crypto.sha1 import sha1

#: Below this batch size the scalar implementation wins on overhead.
MIN_BATCH = 16

_U32 = np.uint32
_K = (_U32(0x5A827999), _U32(0x6ED9EBA1), _U32(0x8F1BBCDC), _U32(0xCA62C1D6))
_INIT = (_U32(0x67452301), _U32(0xEFCDAB89), _U32(0x98BADCFE),
         _U32(0x10325476), _U32(0xC3D2E1F0))


def _rotl(values: np.ndarray, amount: int) -> np.ndarray:
    return (values << _U32(amount)) | (values >> _U32(32 - amount))


def _sha1_equal_length(messages: Sequence[bytes], length: int) -> list[bytes]:
    """Hash N messages of identical ``length`` in parallel."""
    count = len(messages)
    padded_length = ((length + 8) // 64 + 1) * 64
    data = np.zeros((count, padded_length), dtype=np.uint8)
    if length:
        flat = np.frombuffer(b"".join(messages), dtype=np.uint8)
        data[:, :length] = flat.reshape(count, length)
    data[:, length] = 0x80
    bit_length = struct.pack(">Q", length * 8)
    data[:, padded_length - 8:] = np.frombuffer(bit_length, dtype=np.uint8)

    # (count, blocks, 16) big-endian words.
    words = data.reshape(count, padded_length // 64, 16, 4)
    words = (words[..., 0].astype(_U32) << _U32(24)) \
        | (words[..., 1].astype(_U32) << _U32(16)) \
        | (words[..., 2].astype(_U32) << _U32(8)) \
        | words[..., 3].astype(_U32)

    h0 = np.full(count, _INIT[0], dtype=_U32)
    h1 = np.full(count, _INIT[1], dtype=_U32)
    h2 = np.full(count, _INIT[2], dtype=_U32)
    h3 = np.full(count, _INIT[3], dtype=_U32)
    h4 = np.full(count, _INIT[4], dtype=_U32)

    for block in range(words.shape[1]):
        w = [words[:, block, t] for t in range(16)]
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

        a, b, c, d, e = h0, h1, h2, h3, h4
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = _K[0]
            elif t < 40:
                f = b ^ c ^ d
                k = _K[1]
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = _K[2]
            else:
                f = b ^ c ^ d
                k = _K[3]
            temp = _rotl(a, 5) + f + e + w[t] + k
            a, b, c, d, e = temp, a, _rotl(b, 30), c, d

        h0 = h0 + a
        h1 = h1 + b
        h2 = h2 + c
        h3 = h3 + d
        h4 = h4 + e

    digests = np.empty((count, 5), dtype=_U32)
    digests[:, 0] = h0
    digests[:, 1] = h1
    digests[:, 2] = h2
    digests[:, 3] = h3
    digests[:, 4] = h4
    packed = digests.astype(">u4").tobytes()
    return [packed[i * 20:(i + 1) * 20] for i in range(count)]


def sha1_many(messages: Sequence[bytes]) -> list[bytes]:
    """SHA-1 of every message, vectorised across equal-length groups.

    Mixed lengths are supported: messages are grouped by length, each
    group hashed in one vectorised pass, tiny groups falling back to the
    scalar implementation.
    """
    results: list[bytes | None] = [None] * len(messages)
    by_length: dict[int, list[int]] = {}
    for index, message in enumerate(messages):
        by_length.setdefault(len(message), []).append(index)

    for length, indices in by_length.items():
        if len(indices) < MIN_BATCH:
            for index in indices:
                results[index] = sha1(messages[index])
        else:
            group = [messages[index] for index in indices]
            for index, digest in zip(indices, _sha1_equal_length(group, length)):
                results[index] = digest
    return results  # type: ignore[return-value]


def xor_many(pairs_a: Sequence[bytes], pairs_b: Sequence[bytes]) -> list[bytes]:
    """Element-wise XOR of two equal-shape byte-string sequences."""
    if len(pairs_a) != len(pairs_b):
        raise ValueError("sequences must have equal length")
    if not pairs_a:
        return []
    width = len(pairs_a[0])
    a = np.frombuffer(b"".join(pairs_a), dtype=np.uint8).reshape(-1, width)
    b = np.frombuffer(b"".join(pairs_b), dtype=np.uint8).reshape(-1, width)
    if a.shape != b.shape:
        raise ValueError("all strings must share one width")
    packed = (a ^ b).tobytes()
    return [packed[i * width:(i + 1) * width] for i in range(len(pairs_a))]

"""The pseudo-random function of the master-key baseline.

Section III-A of the paper derives per-item keys as ``k_i = PRF(K, i)``.
We realise PRF as HMAC-SHA1 of the big-endian index under the master key,
truncated to the requested key length -- a standard PRF construction whose
security reduces to HMAC.
"""

from __future__ import annotations

import struct

from repro.crypto.hmac import HashFactory, hmac_digest
from repro.crypto.sha1 import Sha1


def prf(key: bytes, index: int, *, length: int = 16,
        hash_factory: HashFactory = Sha1) -> bytes:
    """Return ``length`` bytes of PRF(key, index).

    ``index`` identifies a data item (0-based).  For lengths beyond one
    digest the output is extended counter-mode style, HMAC(key, index || j).
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    if length <= 0:
        raise ValueError("length must be positive")

    digest_size = hash_factory().digest_size
    blocks = []
    block_index = 0
    while len(blocks) * digest_size < length:
        message = struct.pack(">QI", index, block_index)
        blocks.append(hmac_digest(key, message, hash_factory))
        block_index += 1
    return b"".join(blocks)[:length]


def prf_many(key: bytes, indices: list[int], *, length: int = 16,
             hash_factory: HashFactory = Sha1) -> list[bytes]:
    """Batch PRF evaluation, bit-identical to per-index :func:`prf`.

    For the SHA-1 single-block case (length <= digest size) the HMAC
    inner and outer hashes are each one vectorised pass; other
    configurations fall back to the scalar path.  Used by the master-key
    baseline, which derives every item key twice per deletion.
    """
    digest_size = hash_factory().digest_size
    if (hash_factory is not Sha1 or length > digest_size
            or len(indices) < 16):
        return [prf(key, index, length=length, hash_factory=hash_factory)
                for index in indices]
    if any(index < 0 for index in indices):
        raise ValueError("index must be non-negative")
    if length <= 0:
        raise ValueError("length must be positive")

    from repro.crypto.bulk_hash import sha1_many
    block_size = hash_factory().block_size
    if len(key) > block_size:
        hasher = hash_factory()
        hasher.update(key)
        key = hasher.digest()
    key = key.ljust(block_size, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)

    inner = sha1_many([ipad + struct.pack(">QI", index, 0)
                       for index in indices])
    outer = sha1_many([opad + digest for digest in inner])
    return [digest[:length] for digest in outer]

"""AES-GCM authenticated encryption (NIST SP 800-38D).

The paper's item codec authenticates with ``H(m || r)`` inside the
ciphertext, which is what Theorem 2's decrypt-verification argument is
stated over, so GCM is not on the default data path.  It is provided as
part of the crypto substrate for deployments that prefer a standard AEAD
for the payload (the ``r`` binding then travels as associated data), and
is validated against the NIST GCM test vectors.

GHASH runs in GF(2^128) with the reflected reduction polynomial; this is
a straightforward, table-free implementation -- correct and adequate for
item-sized payloads, not tuned for bulk throughput.
"""

from __future__ import annotations

import struct

from repro.core.errors import IntegrityError
from repro.crypto.aes import AES
from repro.crypto.ct import bytes_eq

_R = 0xE1000000000000000000000000000000


def _gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) per SP 800-38D section 6.3."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _ghash(h: int, data: bytes) -> int:
    """GHASH_H over ``data`` (already padded to 16-byte blocks)."""
    y = 0
    for i in range(0, len(data), 16):
        block = int.from_bytes(data[i:i + 16], "big")
        y = _gf128_mul(y ^ block, h)
    return y


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return data + b"\x00" * (16 - remainder) if remainder else data


def _derive_j0(cipher: AES, h: int, iv: bytes) -> bytes:
    if len(iv) == 12:
        return iv + b"\x00\x00\x00\x01"
    lengths = struct.pack(">QQ", 0, len(iv) * 8)
    return _ghash(h, _pad16(iv) + lengths).to_bytes(16, "big")


def _gctr(cipher: AES, initial_block: bytes, data: bytes) -> bytes:
    """GCTR: CTR mode with a 32-bit wrapping counter in the last word."""
    if not data:
        return b""
    prefix = initial_block[:12]
    counter = int.from_bytes(initial_block[12:], "big")
    output = bytearray()
    for i in range(0, len(data), 16):
        keystream = cipher.encrypt_block(prefix + counter.to_bytes(4, "big"))
        chunk = data[i:i + 16]
        output.extend(x ^ y for x, y in zip(chunk, keystream))
        counter = (counter + 1) & 0xFFFFFFFF
    return bytes(output)


def _tag(cipher: AES, h: int, j0: bytes, aad: bytes, ciphertext: bytes,
         tag_length: int) -> bytes:
    lengths = struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
    s = _ghash(h, _pad16(aad) + _pad16(ciphertext) + lengths)
    full = _gctr(cipher, j0, s.to_bytes(16, "big"))
    return full[:tag_length]


def aes_gcm_encrypt(key: bytes, iv: bytes, plaintext: bytes,
                    aad: bytes = b"", *, tag_length: int = 16,
                    ) -> tuple[bytes, bytes]:
    """Encrypt; returns ``(ciphertext, tag)``."""
    if not 12 <= tag_length <= 16:
        raise ValueError("tag length must be 12..16 bytes")
    if not iv:
        raise ValueError("IV must be non-empty")
    cipher = AES(key)
    h = int.from_bytes(cipher.encrypt_block(b"\x00" * 16), "big")
    j0 = _derive_j0(cipher, h, iv)
    counter_1 = j0[:12] + ((int.from_bytes(j0[12:], "big") + 1)
                           & 0xFFFFFFFF).to_bytes(4, "big")
    ciphertext = _gctr(cipher, counter_1, plaintext)
    return ciphertext, _tag(cipher, h, j0, aad, ciphertext, tag_length)


def aes_gcm_decrypt(key: bytes, iv: bytes, ciphertext: bytes, tag: bytes,
                    aad: bytes = b"") -> bytes:
    """Decrypt and verify; raises :class:`IntegrityError` on a bad tag."""
    if not 12 <= len(tag) <= 16:
        raise ValueError("tag length must be 12..16 bytes")
    cipher = AES(key)
    h = int.from_bytes(cipher.encrypt_block(b"\x00" * 16), "big")
    j0 = _derive_j0(cipher, h, iv)
    expected = _tag(cipher, h, j0, aad, ciphertext, len(tag))
    if not bytes_eq(expected, tag):
        raise IntegrityError("GCM tag verification failed")
    counter_1 = j0[:12] + ((int.from_bytes(j0[12:], "big") + 1)
                           & 0xFFFFFFFF).to_bytes(4, "big")
    return _gctr(cipher, counter_1, ciphertext)

"""AES block cipher (FIPS 197) implemented from the specification.

The paper encrypts each 4 KB data item with AES under a 128-bit key taken
from the key modulation function's output.  This module provides the raw
block transform for AES-128/192/256; modes of operation live in
:mod:`repro.crypto.modes` and the numpy-vectorised bulk engine in
:mod:`repro.crypto.bulk`.

The S-box and its inverse are *derived*, not transcribed: each entry is the
multiplicative inverse in GF(2^8) (modulo the Rijndael polynomial
``x^8 + x^4 + x^3 + x + 1``) followed by the specified affine transform.
Encryption uses the standard 32-bit T-table formulation, which both the
scalar code here and the vectorised engine share.
"""

from __future__ import annotations

import struct

_RIJNDAEL_POLY = 0x11B


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the Rijndael polynomial."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a <<= 1
        if a & 0x100:
            a ^= _RIJNDAEL_POLY
        b >>= 1
    return product


def _build_sbox() -> tuple[bytes, bytes]:
    """Construct the AES S-box and inverse S-box from first principles."""
    # Multiplicative inverses via exponentiation by generator 3 (a primitive
    # element of GF(2^8)): log/antilog tables.
    antilog = [0] * 256
    log = [0] * 256
    value = 1
    for exponent in range(255):
        antilog[exponent] = value
        log[value] = exponent
        value = _gf_mul(value, 3)

    sbox = bytearray(256)
    inverse_sbox = bytearray(256)
    for x in range(256):
        inv = 0 if x == 0 else antilog[(255 - log[x]) % 255]
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        b = inv
        transformed = 0x63
        for shift in range(5):
            transformed ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = transformed
        inverse_sbox[transformed] = x
    return bytes(sbox), bytes(inverse_sbox)


SBOX, INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


def _build_encryption_tables() -> tuple[list[int], list[int], list[int], list[int]]:
    """Build the four 256-entry T-tables combining SubBytes/ShiftRows/MixColumns."""
    t0 = [0] * 256
    t1 = [0] * 256
    t2 = [0] * 256
    t3 = [0] * 256
    for x in range(256):
        s = SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        t0[x] = word
        t1[x] = ((word >> 8) | (word << 24)) & 0xFFFFFFFF
        t2[x] = ((word >> 16) | (word << 16)) & 0xFFFFFFFF
        t3[x] = ((word >> 24) | (word << 8)) & 0xFFFFFFFF
    return t0, t1, t2, t3


def _build_decryption_tables() -> tuple[list[int], list[int], list[int], list[int]]:
    """Build the inverse T-tables combining InvSubBytes/InvShiftRows/InvMixColumns."""
    d0 = [0] * 256
    d1 = [0] * 256
    d2 = [0] * 256
    d3 = [0] * 256
    for x in range(256):
        s = INV_SBOX[x]
        se = _gf_mul(s, 0x0E)
        s9 = _gf_mul(s, 0x09)
        sd = _gf_mul(s, 0x0D)
        sb = _gf_mul(s, 0x0B)
        word = (se << 24) | (s9 << 16) | (sd << 8) | sb
        d0[x] = word
        d1[x] = ((word >> 8) | (word << 24)) & 0xFFFFFFFF
        d2[x] = ((word >> 16) | (word << 16)) & 0xFFFFFFFF
        d3[x] = ((word >> 24) | (word << 8)) & 0xFFFFFFFF
    return d0, d1, d2, d3


T0, T1, T2, T3 = _build_encryption_tables()
D0, D1, D2, D3 = _build_decryption_tables()

_BLOCK_STRUCT = struct.Struct(">4I")


class AES:
    """The AES block transform for 128-, 192-, or 256-bit keys.

    Instances are immutable and reusable; key schedules are computed once at
    construction.  Only 16-byte blocks are handled here -- see
    :mod:`repro.crypto.modes` for messages of arbitrary length.
    """

    block_size = 16

    __slots__ = ("_round_keys", "_inverse_round_keys", "rounds", "key_size")

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._inverse_round_keys = self._invert_key_schedule(self._round_keys)

    def _expand_key(self, key: bytes) -> list[int]:
        """FIPS 197 key expansion into 4*(rounds+1) 32-bit words."""
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                        | (SBOX[(temp >> 16) & 0xFF] << 16)
                        | (SBOX[(temp >> 8) & 0xFF] << 8)
                        | SBOX[temp & 0xFF])
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                        | (SBOX[(temp >> 16) & 0xFF] << 16)
                        | (SBOX[(temp >> 8) & 0xFF] << 8)
                        | SBOX[temp & 0xFF])
            words.append(words[i - nk] ^ temp)
        return words

    def _invert_key_schedule(self, round_keys: list[int]) -> list[int]:
        """Derive the equivalent-inverse-cipher key schedule.

        Round keys are reversed round-wise, and InvMixColumns is applied to
        every round key except the first and last, matching the table-based
        decryption rounds.
        """
        rounds = self.rounds
        inverse = []
        for r in range(rounds, -1, -1):
            inverse.extend(round_keys[4 * r:4 * r + 4])
        for i in range(4, 4 * rounds):
            word = inverse[i]
            # InvMixColumns via the D tables composed with the forward S-box.
            inverse[i] = (D0[SBOX[(word >> 24) & 0xFF]]
                          ^ D1[SBOX[(word >> 16) & 0xFF]]
                          ^ D2[SBOX[(word >> 8) & 0xFF]]
                          ^ D3[SBOX[word & 0xFF]])
        return inverse

    @property
    def round_keys(self) -> tuple[int, ...]:
        """The expanded encryption key schedule as 32-bit words."""
        return tuple(self._round_keys)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES blocks are exactly 16 bytes")
        rk = self._round_keys
        s0, s1, s2, s3 = _BLOCK_STRUCT.unpack(block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]

        offset = 4
        for _ in range(self.rounds - 1):
            t0 = (T0[(s0 >> 24) & 0xFF] ^ T1[(s1 >> 16) & 0xFF]
                  ^ T2[(s2 >> 8) & 0xFF] ^ T3[s3 & 0xFF] ^ rk[offset])
            t1 = (T0[(s1 >> 24) & 0xFF] ^ T1[(s2 >> 16) & 0xFF]
                  ^ T2[(s3 >> 8) & 0xFF] ^ T3[s0 & 0xFF] ^ rk[offset + 1])
            t2 = (T0[(s2 >> 24) & 0xFF] ^ T1[(s3 >> 16) & 0xFF]
                  ^ T2[(s0 >> 8) & 0xFF] ^ T3[s1 & 0xFF] ^ rk[offset + 2])
            t3 = (T0[(s3 >> 24) & 0xFF] ^ T1[(s0 >> 16) & 0xFF]
                  ^ T2[(s1 >> 8) & 0xFF] ^ T3[s2 & 0xFF] ^ rk[offset + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        out0 = ((SBOX[(s0 >> 24) & 0xFF] << 24) | (SBOX[(s1 >> 16) & 0xFF] << 16)
                | (SBOX[(s2 >> 8) & 0xFF] << 8) | SBOX[s3 & 0xFF]) ^ rk[offset]
        out1 = ((SBOX[(s1 >> 24) & 0xFF] << 24) | (SBOX[(s2 >> 16) & 0xFF] << 16)
                | (SBOX[(s3 >> 8) & 0xFF] << 8) | SBOX[s0 & 0xFF]) ^ rk[offset + 1]
        out2 = ((SBOX[(s2 >> 24) & 0xFF] << 24) | (SBOX[(s3 >> 16) & 0xFF] << 16)
                | (SBOX[(s0 >> 8) & 0xFF] << 8) | SBOX[s1 & 0xFF]) ^ rk[offset + 2]
        out3 = ((SBOX[(s3 >> 24) & 0xFF] << 24) | (SBOX[(s0 >> 16) & 0xFF] << 16)
                | (SBOX[(s1 >> 8) & 0xFF] << 8) | SBOX[s2 & 0xFF]) ^ rk[offset + 3]
        return _BLOCK_STRUCT.pack(out0, out1, out2, out3)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES blocks are exactly 16 bytes")
        rk = self._inverse_round_keys
        s0, s1, s2, s3 = _BLOCK_STRUCT.unpack(block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]

        offset = 4
        for _ in range(self.rounds - 1):
            t0 = (D0[(s0 >> 24) & 0xFF] ^ D1[(s3 >> 16) & 0xFF]
                  ^ D2[(s2 >> 8) & 0xFF] ^ D3[s1 & 0xFF] ^ rk[offset])
            t1 = (D0[(s1 >> 24) & 0xFF] ^ D1[(s0 >> 16) & 0xFF]
                  ^ D2[(s3 >> 8) & 0xFF] ^ D3[s2 & 0xFF] ^ rk[offset + 1])
            t2 = (D0[(s2 >> 24) & 0xFF] ^ D1[(s1 >> 16) & 0xFF]
                  ^ D2[(s0 >> 8) & 0xFF] ^ D3[s3 & 0xFF] ^ rk[offset + 2])
            t3 = (D0[(s3 >> 24) & 0xFF] ^ D1[(s2 >> 16) & 0xFF]
                  ^ D2[(s1 >> 8) & 0xFF] ^ D3[s0 & 0xFF] ^ rk[offset + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        out0 = ((INV_SBOX[(s0 >> 24) & 0xFF] << 24)
                | (INV_SBOX[(s3 >> 16) & 0xFF] << 16)
                | (INV_SBOX[(s2 >> 8) & 0xFF] << 8)
                | INV_SBOX[s1 & 0xFF]) ^ rk[offset]
        out1 = ((INV_SBOX[(s1 >> 24) & 0xFF] << 24)
                | (INV_SBOX[(s0 >> 16) & 0xFF] << 16)
                | (INV_SBOX[(s3 >> 8) & 0xFF] << 8)
                | INV_SBOX[s2 & 0xFF]) ^ rk[offset + 1]
        out2 = ((INV_SBOX[(s2 >> 24) & 0xFF] << 24)
                | (INV_SBOX[(s1 >> 16) & 0xFF] << 16)
                | (INV_SBOX[(s0 >> 8) & 0xFF] << 8)
                | INV_SBOX[s3 & 0xFF]) ^ rk[offset + 2]
        out3 = ((INV_SBOX[(s3 >> 24) & 0xFF] << 24)
                | (INV_SBOX[(s2 >> 16) & 0xFF] << 16)
                | (INV_SBOX[(s1 >> 8) & 0xFF] << 8)
                | INV_SBOX[s0 & 0xFF]) ^ rk[offset + 3]
        return _BLOCK_STRUCT.pack(out0, out1, out2, out3)

"""AES-CMAC (RFC 4493 / NIST SP 800-38B).

A block-cipher MAC for deployments that want message authentication
without a hash function -- e.g. authenticating the client-side deletion
journal at rest.  Not on the paper's data path (item integrity is the
``H(m || r)`` binding); part of the substrate, validated against the
RFC 4493 test vectors.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.ct import bytes_eq

_BLOCK = 16
_RB = 0x87


def _double(block: bytes) -> bytes:
    """Left-shift by one bit in GF(2^128) with the CMAC reduction."""
    value = int.from_bytes(block, "big") << 1
    if value >> 128:
        value = (value & ((1 << 128) - 1)) ^ _RB
    return value.to_bytes(_BLOCK, "big")


def _subkeys(cipher: AES) -> tuple[bytes, bytes]:
    k1 = _double(cipher.encrypt_block(b"\x00" * _BLOCK))
    return k1, _double(k1)


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def aes_cmac(key: bytes, message: bytes, *, mac_length: int = 16) -> bytes:
    """Compute the CMAC of ``message`` under ``key``."""
    if not 1 <= mac_length <= 16:
        raise ValueError("MAC length must be 1..16 bytes")
    cipher = AES(key)
    k1, k2 = _subkeys(cipher)

    if message and len(message) % _BLOCK == 0:
        complete = True
        block_count = len(message) // _BLOCK
    else:
        complete = False
        block_count = len(message) // _BLOCK + 1

    state = b"\x00" * _BLOCK
    for i in range(block_count - 1):
        state = cipher.encrypt_block(_xor(state,
                                          message[i * _BLOCK:(i + 1) * _BLOCK]))

    last = message[(block_count - 1) * _BLOCK:]
    if complete:
        final = _xor(last, k1)
    else:
        padded = last + b"\x80" + b"\x00" * (_BLOCK - len(last) - 1)
        final = _xor(padded, k2)
    return cipher.encrypt_block(_xor(state, final))[:mac_length]


def aes_cmac_verify(key: bytes, message: bytes, mac: bytes) -> bool:
    """Constant-time CMAC verification."""
    return bytes_eq(aes_cmac(key, message, mac_length=len(mac)), mac)

"""Random source abstraction used throughout the library.

Every place the paper says the client "randomly selects" something (master
keys, modulators, the 160-bit replacement link modulator chosen during
balancing) draws from a :class:`RandomSource`.  Two implementations exist:

* :class:`SystemRandom` -- ``os.urandom``, for real deployments.
* :class:`DeterministicRandom` -- HMAC-DRBG seeded explicitly, so that unit
  tests, property tests, and benchmark runs are exactly reproducible.
"""

from __future__ import annotations

import abc
import os

from repro.crypto.drbg import HmacDrbg


class RandomSource(abc.ABC):
    """Source of cryptographic-quality random bytes."""

    @abc.abstractmethod
    def bytes(self, length: int) -> bytes:
        """Return ``length`` random bytes."""

    def uint(self, bits: int) -> int:
        """Return a uniformly random unsigned integer with ``bits`` bits."""
        if bits <= 0 or bits % 8:
            raise ValueError("bits must be a positive multiple of 8")
        return int.from_bytes(self.bytes(bits // 8), "big")

    def below(self, bound: int) -> int:
        """Return a uniformly random integer in ``[0, bound)``.

        Uses rejection sampling so the result is exactly uniform.
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        byte_length = (bound.bit_length() + 7) // 8
        limit = (256 ** byte_length // bound) * bound
        while True:
            candidate = int.from_bytes(self.bytes(byte_length), "big")
            if candidate < limit:
                return candidate % bound

    def choice(self, sequence):
        """Return a uniformly random element of a non-empty sequence."""
        if not sequence:
            raise ValueError("cannot choose from an empty sequence")
        return sequence[self.below(len(sequence))]

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.below(i + 1)
            items[i], items[j] = items[j], items[i]


class SystemRandom(RandomSource):
    """Operating-system randomness via ``os.urandom``."""

    def bytes(self, length: int) -> bytes:
        if length < 0:
            raise ValueError("length must be non-negative")
        return os.urandom(length)


class DeterministicRandom(RandomSource):
    """Reproducible randomness backed by an AES-CTR keystream.

    ``seed`` may be bytes, a string, or an int; identical seeds yield
    identical byte streams across runs and platforms.  The generator is a
    standard CTR_DRBG-style construction: the key and nonce are derived
    from the seed through HMAC-DRBG (SP 800-90A), and output is the
    AES-CTR keystream under that key -- cryptographically strong and,
    thanks to the vectorised AES engine, fast enough to generate the
    multi-megabyte workloads the experiments need.
    """

    _CHUNK_BLOCKS = 4096  # 64 KiB of keystream per refill

    def __init__(self, seed: bytes | str | int) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        drbg = HmacDrbg(seed, personalization=b"repro.rng")
        self._key = drbg.generate(16)
        self._nonce = drbg.generate(8)
        self._counter = 0
        self._buffer = b""

    def _refill(self, minimum: int) -> None:
        from repro.crypto.bulk import keystream
        blocks = max(self._CHUNK_BLOCKS, (minimum + 15) // 16)
        self._buffer += keystream(self._key, self._nonce, blocks,
                                  initial_counter=self._counter)
        self._counter += blocks

    def bytes(self, length: int) -> bytes:
        if length < 0:
            raise ValueError("length must be non-negative")
        if len(self._buffer) < length:
            self._refill(length - len(self._buffer))
        chunk, self._buffer = self._buffer[:length], self._buffer[length:]
        return chunk

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent child stream labelled ``label``.

        Useful to give client and server distinct but reproducible streams
        from a single experiment seed.
        """
        return DeterministicRandom(self.bytes(32) + label.encode("utf-8"))

"""Vectorised AES-CTR engine for bulk payloads (numpy).

The master-key baseline of the paper re-encrypts the *entire* outsourced
file on every deletion -- hundreds of megabytes at the paper's scale.  The
scalar interpreter-speed AES in :mod:`repro.crypto.aes` is exact but far too
slow for that, so this module evaluates the identical T-table round function
across all counter blocks at once with numpy gathers.  Output is verified
bit-for-bit against the scalar implementation in the test suite.

Only CTR (keystream generation, i.e. the forward transform) is needed in
bulk: both encryption and decryption of payloads XOR the same keystream.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import aes as _aes
from repro.crypto.aes import AES

_T0 = np.array(_aes.T0, dtype=np.uint32)
_T1 = np.array(_aes.T1, dtype=np.uint32)
_T2 = np.array(_aes.T2, dtype=np.uint32)
_T3 = np.array(_aes.T3, dtype=np.uint32)
_SBOX = np.array(list(_aes.SBOX), dtype=np.uint32)

_BYTE = np.uint32(0xFF)


def _encrypt_words(round_keys: tuple[int, ...], rounds: int,
                   s0: np.ndarray, s1: np.ndarray, s2: np.ndarray,
                   s3: np.ndarray) -> tuple[np.ndarray, ...]:
    """Run the AES forward transform on N parallel states (uint32 words)."""
    rk = [np.uint32(word) for word in round_keys]

    s0 = s0 ^ rk[0]
    s1 = s1 ^ rk[1]
    s2 = s2 ^ rk[2]
    s3 = s3 ^ rk[3]

    offset = 4
    for _ in range(rounds - 1):
        t0 = (_T0[(s0 >> 24) & _BYTE] ^ _T1[(s1 >> 16) & _BYTE]
              ^ _T2[(s2 >> 8) & _BYTE] ^ _T3[s3 & _BYTE] ^ rk[offset])
        t1 = (_T0[(s1 >> 24) & _BYTE] ^ _T1[(s2 >> 16) & _BYTE]
              ^ _T2[(s3 >> 8) & _BYTE] ^ _T3[s0 & _BYTE] ^ rk[offset + 1])
        t2 = (_T0[(s2 >> 24) & _BYTE] ^ _T1[(s3 >> 16) & _BYTE]
              ^ _T2[(s0 >> 8) & _BYTE] ^ _T3[s1 & _BYTE] ^ rk[offset + 2])
        t3 = (_T0[(s3 >> 24) & _BYTE] ^ _T1[(s0 >> 16) & _BYTE]
              ^ _T2[(s1 >> 8) & _BYTE] ^ _T3[s2 & _BYTE] ^ rk[offset + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
        offset += 4

    out0 = ((_SBOX[(s0 >> 24) & _BYTE] << 24) | (_SBOX[(s1 >> 16) & _BYTE] << 16)
            | (_SBOX[(s2 >> 8) & _BYTE] << 8) | _SBOX[s3 & _BYTE]) ^ rk[offset]
    out1 = ((_SBOX[(s1 >> 24) & _BYTE] << 24) | (_SBOX[(s2 >> 16) & _BYTE] << 16)
            | (_SBOX[(s3 >> 8) & _BYTE] << 8) | _SBOX[s0 & _BYTE]) ^ rk[offset + 1]
    out2 = ((_SBOX[(s2 >> 24) & _BYTE] << 24) | (_SBOX[(s3 >> 16) & _BYTE] << 16)
            | (_SBOX[(s0 >> 8) & _BYTE] << 8) | _SBOX[s1 & _BYTE]) ^ rk[offset + 2]
    out3 = ((_SBOX[(s3 >> 24) & _BYTE] << 24) | (_SBOX[(s0 >> 16) & _BYTE] << 16)
            | (_SBOX[(s1 >> 8) & _BYTE] << 8) | _SBOX[s2 & _BYTE]) ^ rk[offset + 3]
    return out0, out1, out2, out3


def keystream(key: bytes, nonce: bytes, block_count: int, *,
              initial_counter: int = 0) -> bytes:
    """Return ``block_count`` * 16 bytes of AES-CTR keystream.

    Counter blocks are ``nonce (8 bytes) || counter (8 bytes, big endian)``,
    counters running from ``initial_counter`` upward.
    """
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    if block_count < 0:
        raise ValueError("block count must be non-negative")
    if block_count == 0:
        return b""

    cipher = AES(key)
    counters = np.arange(initial_counter, initial_counter + block_count,
                         dtype=np.uint64)

    nonce_hi = int.from_bytes(nonce[0:4], "big")
    nonce_lo = int.from_bytes(nonce[4:8], "big")
    s0 = np.full(block_count, nonce_hi, dtype=np.uint32)
    s1 = np.full(block_count, nonce_lo, dtype=np.uint32)
    s2 = (counters >> np.uint64(32)).astype(np.uint32)
    s3 = (counters & np.uint64(0xFFFFFFFF)).astype(np.uint32)

    out0, out1, out2, out3 = _encrypt_words(cipher.round_keys, cipher.rounds,
                                            s0, s1, s2, s3)
    words = np.empty((block_count, 4), dtype=np.uint32)
    words[:, 0] = out0
    words[:, 1] = out1
    words[:, 2] = out2
    words[:, 3] = out3
    return words.astype(">u4").tobytes()


def ctr_transform(key: bytes, nonce: bytes, data: bytes, *,
                  initial_counter: int = 0) -> bytes:
    """Encrypt or decrypt ``data`` with AES-CTR (symmetric operation)."""
    if not data:
        return b""
    block_count = (len(data) + 15) // 16
    stream = keystream(key, nonce, block_count, initial_counter=initial_counter)
    data_array = np.frombuffer(data, dtype=np.uint8)
    stream_array = np.frombuffer(stream, dtype=np.uint8)[:len(data)]
    return (data_array ^ stream_array).tobytes()

"""Vectorised AES-CTR engine for bulk payloads (numpy).

The master-key baseline of the paper re-encrypts the *entire* outsourced
file on every deletion -- hundreds of megabytes at the paper's scale.  The
scalar interpreter-speed AES in :mod:`repro.crypto.aes` is exact but far too
slow for that, so this module evaluates the identical T-table round function
across all counter blocks at once with numpy gathers.  Output is verified
bit-for-bit against the scalar implementation in the test suite.

Only CTR (keystream generation, i.e. the forward transform) is needed in
bulk: both encryption and decryption of payloads XOR the same keystream.
"""

from __future__ import annotations

import numpy as np

from repro.crypto import aes as _aes
from repro.crypto.aes import AES

_T0 = np.array(_aes.T0, dtype=np.uint32)
_T1 = np.array(_aes.T1, dtype=np.uint32)
_T2 = np.array(_aes.T2, dtype=np.uint32)
_T3 = np.array(_aes.T3, dtype=np.uint32)
_SBOX = np.array(list(_aes.SBOX), dtype=np.uint32)

_BYTE = np.uint32(0xFF)


def _encrypt_words(round_keys, rounds: int,
                   s0: np.ndarray, s1: np.ndarray, s2: np.ndarray,
                   s3: np.ndarray) -> tuple[np.ndarray, ...]:
    """Run the AES forward transform on N parallel states (uint32 words).

    ``round_keys`` entries are either plain ints (one shared key schedule
    for every state) or uint32 arrays aligned with the states (cross-item
    batches where each block carries its own item's schedule); numpy
    broadcasting makes both shapes take the identical code path.
    """
    rk = [word if isinstance(word, np.ndarray) else np.uint32(word)
          for word in round_keys]

    s0 = s0 ^ rk[0]
    s1 = s1 ^ rk[1]
    s2 = s2 ^ rk[2]
    s3 = s3 ^ rk[3]

    offset = 4
    for _ in range(rounds - 1):
        t0 = (_T0[(s0 >> 24) & _BYTE] ^ _T1[(s1 >> 16) & _BYTE]
              ^ _T2[(s2 >> 8) & _BYTE] ^ _T3[s3 & _BYTE] ^ rk[offset])
        t1 = (_T0[(s1 >> 24) & _BYTE] ^ _T1[(s2 >> 16) & _BYTE]
              ^ _T2[(s3 >> 8) & _BYTE] ^ _T3[s0 & _BYTE] ^ rk[offset + 1])
        t2 = (_T0[(s2 >> 24) & _BYTE] ^ _T1[(s3 >> 16) & _BYTE]
              ^ _T2[(s0 >> 8) & _BYTE] ^ _T3[s1 & _BYTE] ^ rk[offset + 2])
        t3 = (_T0[(s3 >> 24) & _BYTE] ^ _T1[(s0 >> 16) & _BYTE]
              ^ _T2[(s1 >> 8) & _BYTE] ^ _T3[s2 & _BYTE] ^ rk[offset + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
        offset += 4

    out0 = ((_SBOX[(s0 >> 24) & _BYTE] << 24) | (_SBOX[(s1 >> 16) & _BYTE] << 16)
            | (_SBOX[(s2 >> 8) & _BYTE] << 8) | _SBOX[s3 & _BYTE]) ^ rk[offset]
    out1 = ((_SBOX[(s1 >> 24) & _BYTE] << 24) | (_SBOX[(s2 >> 16) & _BYTE] << 16)
            | (_SBOX[(s3 >> 8) & _BYTE] << 8) | _SBOX[s0 & _BYTE]) ^ rk[offset + 1]
    out2 = ((_SBOX[(s2 >> 24) & _BYTE] << 24) | (_SBOX[(s3 >> 16) & _BYTE] << 16)
            | (_SBOX[(s0 >> 8) & _BYTE] << 8) | _SBOX[s1 & _BYTE]) ^ rk[offset + 2]
    out3 = ((_SBOX[(s3 >> 24) & _BYTE] << 24) | (_SBOX[(s0 >> 16) & _BYTE] << 16)
            | (_SBOX[(s1 >> 8) & _BYTE] << 8) | _SBOX[s2 & _BYTE]) ^ rk[offset + 3]
    return out0, out1, out2, out3


def keystream(key: bytes, nonce: bytes, block_count: int, *,
              initial_counter: int = 0) -> bytes:
    """Return ``block_count`` * 16 bytes of AES-CTR keystream.

    Counter blocks are ``nonce (8 bytes) || counter (8 bytes, big endian)``,
    counters running from ``initial_counter`` upward.
    """
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    if block_count < 0:
        raise ValueError("block count must be non-negative")
    if block_count == 0:
        return b""

    cipher = AES(key)
    counters = np.arange(initial_counter, initial_counter + block_count,
                         dtype=np.uint64)

    nonce_hi = int.from_bytes(nonce[0:4], "big")
    nonce_lo = int.from_bytes(nonce[4:8], "big")
    s0 = np.full(block_count, nonce_hi, dtype=np.uint32)
    s1 = np.full(block_count, nonce_lo, dtype=np.uint32)
    s2 = (counters >> np.uint64(32)).astype(np.uint32)
    s3 = (counters & np.uint64(0xFFFFFFFF)).astype(np.uint32)

    out0, out1, out2, out3 = _encrypt_words(cipher.round_keys, cipher.rounds,
                                            s0, s1, s2, s3)
    words = np.empty((block_count, 4), dtype=np.uint32)
    words[:, 0] = out0
    words[:, 1] = out1
    words[:, 2] = out2
    words[:, 3] = out3
    return words.astype(">u4").tobytes()


def ctr_transform(key: bytes, nonce: bytes, data: bytes, *,
                  initial_counter: int = 0) -> bytes:
    """Encrypt or decrypt ``data`` with AES-CTR (symmetric operation)."""
    if not data:
        return b""
    block_count = (len(data) + 15) // 16
    stream = keystream(key, nonce, block_count, initial_counter=initial_counter)
    data_array = np.frombuffer(data, dtype=np.uint8)
    stream_array = np.frombuffer(stream, dtype=np.uint8)[:len(data)]
    return (data_array ^ stream_array).tobytes()


# ---------------------------------------------------------------------
# Cross-item batches: many (key, nonce, payload) triples in one sweep
# ---------------------------------------------------------------------

_U8 = np.uint32(8)
_U16 = np.uint32(16)
_U24 = np.uint32(24)


def expand_keys_128(keys: "list[bytes] | tuple[bytes, ...]") -> np.ndarray:
    """Vectorised FIPS 197 key expansion for many AES-128 keys at once.

    Returns a ``(len(keys), 44)`` uint32 array whose row ``i`` equals
    ``AES(keys[i]).round_keys``.  The expansion recurrence runs word by
    word (40 steps), but each step is one numpy sweep across every key,
    so a thousand schedules cost about as much as a handful of scalar
    ones.
    """
    n = len(keys)
    for key in keys:
        if len(key) != 16:
            raise ValueError("expand_keys_128 handles 16-byte keys only")
    schedule = np.empty((n, 44), dtype=np.uint32)
    schedule[:, :4] = (np.frombuffer(b"".join(keys), dtype=">u4")
                       .astype(np.uint32).reshape(n, 4))
    for i in range(4, 44):
        temp = schedule[:, i - 1]
        if i % 4 == 0:
            temp = (temp << _U8) | (temp >> _U24)  # RotWord
            temp = ((_SBOX[(temp >> _U24) & _BYTE] << _U24)
                    | (_SBOX[(temp >> _U16) & _BYTE] << _U16)
                    | (_SBOX[(temp >> _U8) & _BYTE] << _U8)
                    | _SBOX[temp & _BYTE])
            temp = temp ^ np.uint32(_aes._RCON[i // 4 - 1] << 24)
        schedule[:, i] = schedule[:, i - 4] ^ temp
    return schedule


def ctr_transform_many(keys, nonces, datas, *,
                       initial_counter: int = 0) -> list[bytes]:
    """AES-CTR over many independent ``(key, nonce, data)`` triples at once.

    One vectorised pass covers *all* items' counter blocks: key schedules
    are expanded in a single numpy sweep (:func:`expand_keys_128`), every
    block carries its item's schedule via one ``(blocks, 44)`` gather, and
    the whole batch shares one round-function evaluation.  Output is
    bit-identical to per-item :func:`ctr_transform` / scalar ``aes_ctr``.

    All keys must be 16 bytes (AES-128, the deployment's data-key width);
    callers with mixed widths fall back to the per-item path.
    """
    if not (len(keys) == len(nonces) == len(datas)):
        raise ValueError("batch arguments must have equal lengths")
    if not keys:
        return []
    for nonce in nonces:
        if len(nonce) != 8:
            raise ValueError("CTR nonce must be 8 bytes")
    if initial_counter < 0:
        raise ValueError("initial counter must be non-negative")

    # Items with empty payloads contribute no blocks but keep their slot.
    live = [i for i, data in enumerate(datas) if data]
    if not live:
        return [b"" for _ in datas]

    counts = np.array([(len(datas[i]) + 15) // 16 for i in live],
                      dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total_blocks = int(offsets[-1])
    item_index = np.repeat(np.arange(len(live)), counts)

    nonce_words = (np.frombuffer(b"".join(nonces[i] for i in live),
                                 dtype=">u4").astype(np.uint32)
                   .reshape(len(live), 2))
    s0 = nonce_words[item_index, 0]
    s1 = nonce_words[item_index, 1]
    counters = (np.arange(total_blocks, dtype=np.uint64)
                - np.repeat(offsets[:-1], counts).astype(np.uint64)
                + np.uint64(initial_counter))
    s2 = (counters >> np.uint64(32)).astype(np.uint32)
    s3 = (counters & np.uint64(0xFFFFFFFF)).astype(np.uint32)

    schedules = expand_keys_128([keys[i] for i in live])
    per_block = schedules[item_index]  # (blocks, 44) gather
    rk = [per_block[:, j] for j in range(44)]

    out0, out1, out2, out3 = _encrypt_words(rk, 10, s0, s1, s2, s3)
    words = np.empty((total_blocks, 4), dtype=np.uint32)
    words[:, 0] = out0
    words[:, 1] = out1
    words[:, 2] = out2
    words[:, 3] = out3
    stream = words.astype(">u4").view(np.uint8).reshape(-1)

    # One XOR over a block-aligned concatenation of every payload, then
    # slice each item's bytes back out.
    padded = np.zeros(total_blocks * 16, dtype=np.uint8)
    for j, i in enumerate(live):
        start = int(offsets[j]) * 16
        padded[start:start + len(datas[i])] = np.frombuffer(datas[i],
                                                            dtype=np.uint8)
    mixed = padded ^ stream
    mixed_bytes = mixed.tobytes()

    results: list[bytes] = [b""] * len(datas)
    for j, i in enumerate(live):
        start = int(offsets[j]) * 16
        results[i] = mixed_bytes[start:start + len(datas[i])]
    return results

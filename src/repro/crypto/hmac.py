"""HMAC (RFC 2104 / FIPS 198-1) over the in-repo hash implementations.

Used by the PRF of the master-key baseline, by HKDF, and by the HMAC-DRBG
deterministic random generator that makes experiments reproducible.
"""

from __future__ import annotations

from typing import Callable, Protocol


class HashObject(Protocol):
    """Structural type for the hash objects accepted by :class:`Hmac`."""

    digest_size: int
    block_size: int

    def update(self, data: bytes) -> None: ...

    def digest(self) -> bytes: ...

    def copy(self) -> "HashObject": ...


HashFactory = Callable[[], HashObject]


class Hmac:
    """Incremental HMAC keyed with ``key`` over hash ``hash_factory``.

    ``hash_factory`` is any zero-argument callable returning a fresh hash
    object (e.g. :class:`repro.crypto.sha1.Sha1`).
    """

    __slots__ = ("_inner", "_outer", "digest_size", "block_size")

    def __init__(self, key: bytes, hash_factory: HashFactory) -> None:
        probe = hash_factory()
        block_size = probe.block_size
        self.digest_size = probe.digest_size
        self.block_size = block_size

        if len(key) > block_size:
            keyed = hash_factory()
            keyed.update(key)
            key = keyed.digest()
        key = key.ljust(block_size, b"\x00")

        ipad = bytes(b ^ 0x36 for b in key)
        opad = bytes(b ^ 0x5C for b in key)

        self._inner = hash_factory()
        self._inner.update(ipad)
        self._outer = hash_factory()
        self._outer.update(opad)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the MAC computation."""
        self._inner.update(data)

    def digest(self) -> bytes:
        """Return the MAC over all data absorbed so far."""
        outer = self._outer.copy()
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        """Return the MAC as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "Hmac":
        """Return an independent copy of the current MAC state."""
        clone = object.__new__(Hmac)
        clone._inner = self._inner.copy()
        clone._outer = self._outer.copy()
        clone.digest_size = self.digest_size
        clone.block_size = self.block_size
        return clone


def hmac_digest(key: bytes, message: bytes, hash_factory: HashFactory) -> bytes:
    """One-shot HMAC of ``message`` under ``key``."""
    mac = Hmac(key, hash_factory)
    mac.update(message)
    return mac.digest()

"""Cryptographic substrate built from primary specifications.

This environment provides no third-party cryptography package, and the
reproduction mandate is to build every substrate from scratch, so this
subpackage implements the primitives the paper relies on:

* :mod:`repro.crypto.sha1` -- SHA-1 (FIPS 180-4), the paper's hash function
  for modulated hash chains (160-bit digests and modulators).
* :mod:`repro.crypto.sha256` -- SHA-256, offered as a drop-in alternative
  chain hash for the hash-choice ablation.
* :mod:`repro.crypto.hmac` -- HMAC (RFC 2104 / FIPS 198-1).
* :mod:`repro.crypto.hkdf` -- HKDF (RFC 5869) for key derivation.
* :mod:`repro.crypto.prf` -- the PRF used by the master-key baseline.
* :mod:`repro.crypto.drbg` -- HMAC-DRBG (NIST SP 800-90A) providing
  deterministic randomness for reproducible experiments.
* :mod:`repro.crypto.aes` -- the AES block cipher (FIPS 197).
* :mod:`repro.crypto.modes` -- ECB/CBC/CTR modes of operation.
* :mod:`repro.crypto.bulk` -- numpy-vectorised AES-CTR for bulk payloads.
* :mod:`repro.crypto.rng` -- random source abstraction (system / seeded).
* :mod:`repro.crypto.ct` -- constant-time comparison helpers.

Every primitive is validated against official test vectors in
``tests/crypto``.
"""

from repro.crypto.aes import AES
from repro.crypto.bulk_hash import sha1_many
from repro.crypto.drbg import HmacDrbg
from repro.crypto.gcm import aes_gcm_decrypt, aes_gcm_encrypt
from repro.crypto.hkdf import hkdf
from repro.crypto.hmac import Hmac, hmac_digest
from repro.crypto.modes import aes_cbc_decrypt, aes_cbc_encrypt, aes_ctr
from repro.crypto.prf import prf, prf_many
from repro.crypto.rng import DeterministicRandom, RandomSource, SystemRandom
from repro.crypto.sha1 import Sha1, sha1
from repro.crypto.sha256 import Sha256, sha256

__all__ = [
    "AES",
    "DeterministicRandom",
    "Hmac",
    "HmacDrbg",
    "RandomSource",
    "Sha1",
    "Sha256",
    "SystemRandom",
    "aes_cbc_decrypt",
    "aes_cbc_encrypt",
    "aes_ctr",
    "aes_gcm_decrypt",
    "aes_gcm_encrypt",
    "hkdf",
    "hmac_digest",
    "prf",
    "prf_many",
    "sha1",
    "sha1_many",
    "sha256",
]

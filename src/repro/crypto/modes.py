"""Block cipher modes of operation over the AES block transform.

The item codec (:mod:`repro.core.ciphertext`) uses AES-CTR so ciphertext
length equals plaintext length plus the nonce; CBC with PKCS#7 is provided
for completeness and for the NIST SP 800-38A conformance tests.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.padding import pad, unpad


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    return bytes(x ^ y for x, y in zip(a, b))


def aes_ecb_encrypt(cipher: AES, plaintext: bytes) -> bytes:
    """ECB encryption of a block-aligned plaintext (test vectors only)."""
    if len(plaintext) % 16:
        raise ValueError("ECB requires block-aligned input")
    return b"".join(cipher.encrypt_block(plaintext[i:i + 16])
                    for i in range(0, len(plaintext), 16))


def aes_ecb_decrypt(cipher: AES, ciphertext: bytes) -> bytes:
    """ECB decryption of a block-aligned ciphertext (test vectors only)."""
    if len(ciphertext) % 16:
        raise ValueError("ECB requires block-aligned input")
    return b"".join(cipher.decrypt_block(ciphertext[i:i + 16])
                    for i in range(0, len(ciphertext), 16))


def aes_cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes, *,
                    padded: bool = True) -> bytes:
    """CBC-encrypt ``plaintext`` under ``key`` with the given 16-byte IV."""
    if len(iv) != 16:
        raise ValueError("CBC IV must be 16 bytes")
    cipher = AES(key)
    if padded:
        plaintext = pad(plaintext, 16)
    elif len(plaintext) % 16:
        raise ValueError("unpadded CBC requires block-aligned input")

    blocks = []
    previous = iv
    for i in range(0, len(plaintext), 16):
        block = cipher.encrypt_block(_xor_bytes(plaintext[i:i + 16], previous))
        blocks.append(block)
        previous = block
    return b"".join(blocks)


def aes_cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes, *,
                    padded: bool = True) -> bytes:
    """CBC-decrypt ``ciphertext`` under ``key`` with the given 16-byte IV."""
    if len(iv) != 16:
        raise ValueError("CBC IV must be 16 bytes")
    if len(ciphertext) % 16:
        raise ValueError("CBC ciphertext must be block-aligned")
    cipher = AES(key)

    blocks = []
    previous = iv
    for i in range(0, len(ciphertext), 16):
        block = ciphertext[i:i + 16]
        blocks.append(_xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    plaintext = b"".join(blocks)
    return unpad(plaintext, 16) if padded else plaintext


#: Payloads at or below this many blocks run the scalar block loop: the
#: vectorised engine's fixed per-call cost (~35 blocks' worth of scalar
#: work) dominates below roughly half a kilobyte.
_SMALL_CTR_BLOCKS = 16


def aes_ctr(key: bytes, nonce: bytes, data: bytes, *,
            initial_counter: int = 0) -> bytes:
    """Encrypt or decrypt ``data`` with AES-CTR (the operation is symmetric).

    The counter block is ``nonce (8 bytes) || counter (8 bytes, big endian)``.
    Large payloads delegate to the vectorised engine in
    :mod:`repro.crypto.bulk`; small ones stay on the scalar block loop,
    which beats the engine's per-call setup cost.  Results are identical.
    """
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    if initial_counter < 0:
        raise ValueError("initial counter must be non-negative")
    if not data:
        return b""

    block_count = (len(data) + 15) // 16
    if block_count > _SMALL_CTR_BLOCKS:
        from repro.crypto.bulk import ctr_transform
        return ctr_transform(key, nonce, data, initial_counter=initial_counter)

    encrypt_block = AES(key).encrypt_block
    stream = b"".join(
        encrypt_block(nonce + (initial_counter + i).to_bytes(8, "big"))
        for i in range(block_count))
    return _xor_bytes(data, stream[:len(data)])


def aes_ctr_many(keys, nonces, datas, *, initial_counter: int = 0) -> list[bytes]:
    """AES-CTR over many independent ``(key, nonce, data)`` triples.

    Bit-identical to calling :func:`aes_ctr` per triple.  When every key
    is 16 bytes (the deployment's data-key width) and the batch has at
    least two items, the whole batch runs as *one* vectorised sweep in
    :mod:`repro.crypto.bulk` -- key schedules included -- instead of one
    engine invocation per item.
    """
    if not (len(keys) == len(nonces) == len(datas)):
        raise ValueError("batch arguments must have equal lengths")
    if len(keys) >= 2 and all(len(key) == 16 for key in keys):
        from repro.crypto.bulk import ctr_transform_many
        return ctr_transform_many(keys, nonces, datas,
                                  initial_counter=initial_counter)
    return [aes_ctr(key, nonce, data, initial_counter=initial_counter)
            for key, nonce, data in zip(keys, nonces, datas)]


def aes_ctr_scalar(key: bytes, nonce: bytes, data: bytes, *,
                   initial_counter: int = 0) -> bytes:
    """Pure-Python AES-CTR used as the reference for the vectorised engine."""
    if len(nonce) != 8:
        raise ValueError("CTR nonce must be 8 bytes")
    cipher = AES(key)
    output = bytearray()
    counter = initial_counter
    for i in range(0, len(data), 16):
        keystream = cipher.encrypt_block(nonce + counter.to_bytes(8, "big"))
        chunk = data[i:i + 16]
        output.extend(x ^ y for x, y in zip(chunk, keystream))
        counter += 1
    return bytes(output)

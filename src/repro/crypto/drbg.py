"""HMAC-DRBG (NIST SP 800-90A) deterministic random bit generator.

The paper's client "randomly picks" master keys and modulators.  For a
faithful deployment those draws come from the operating system; for the
reproduction's experiments they must additionally be *reproducible*, so the
library routes all randomness through :class:`repro.crypto.rng.RandomSource`
whose deterministic implementation is this DRBG.
"""

from __future__ import annotations

from repro.crypto.hmac import HashFactory, hmac_digest
from repro.crypto.sha256 import Sha256

_RESEED_INTERVAL = 1 << 48


class HmacDrbg:
    """HMAC-DRBG instantiated over a configurable hash (default SHA-256)."""

    def __init__(self, seed: bytes, *, personalization: bytes = b"",
                 hash_factory: HashFactory = Sha256) -> None:
        if not seed:
            raise ValueError("HMAC-DRBG requires non-empty seed material")
        self._hash_factory = hash_factory
        digest_size = hash_factory().digest_size
        self._key = b"\x00" * digest_size
        self._value = b"\x01" * digest_size
        self._reseed_counter = 1
        self._update(seed + personalization)

    def _update(self, provided_data: bytes) -> None:
        """SP 800-90A HMAC_DRBG_Update."""
        self._key = hmac_digest(self._key, self._value + b"\x00" + provided_data,
                                self._hash_factory)
        self._value = hmac_digest(self._key, self._value, self._hash_factory)
        if provided_data:
            self._key = hmac_digest(self._key, self._value + b"\x01" + provided_data,
                                    self._hash_factory)
            self._value = hmac_digest(self._key, self._value, self._hash_factory)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the generator state."""
        if not entropy:
            raise ValueError("reseed requires non-empty entropy")
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        if self._reseed_counter > _RESEED_INTERVAL:
            raise RuntimeError("HMAC-DRBG reseed required")
        output = bytearray()
        while len(output) < length:
            self._value = hmac_digest(self._key, self._value, self._hash_factory)
            output.extend(self._value)
        self._update(b"")
        self._reseed_counter += 1
        return bytes(output[:length])

"""Metering channels between client and server.

A channel carries encoded messages and counts every byte in both
directions, splitting item payload from protocol overhead.  The counters
are cumulative; the client snapshots them around each operation to build
per-operation records.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

from repro.core.errors import ProtocolError
from repro.obs import runtime as obs
from repro.obs.trace import span
from repro.protocol.messages import Message, decode_message, encode_message
from repro.protocol.wire import WireContext
from repro.sim.network import NetworkModel


@dataclass
class ChannelCounters:
    """Cumulative traffic counters (client perspective)."""

    bytes_sent: int = 0
    bytes_received: int = 0
    payload_sent: int = 0
    payload_received: int = 0
    round_trips: int = 0
    simulated_seconds: float = 0.0
    server_seconds: float = 0.0
    retransmits: int = 0

    def snapshot(self) -> "ChannelCounters":
        return ChannelCounters(self.bytes_sent, self.bytes_received,
                               self.payload_sent, self.payload_received,
                               self.round_trips, self.simulated_seconds,
                               self.server_seconds, self.retransmits)

    def delta(self, earlier: "ChannelCounters") -> "ChannelCounters":
        return ChannelCounters(
            self.bytes_sent - earlier.bytes_sent,
            self.bytes_received - earlier.bytes_received,
            self.payload_sent - earlier.payload_sent,
            self.payload_received - earlier.payload_received,
            self.round_trips - earlier.round_trips,
            self.simulated_seconds - earlier.simulated_seconds,
            self.server_seconds - earlier.server_seconds,
            self.retransmits - earlier.retransmits,
        )


class Channel(abc.ABC):
    """A request/response link from the client to one server."""

    def __init__(self, ctx: WireContext,
                 network: NetworkModel | None = None) -> None:
        self.ctx = ctx
        self.network = network
        self.counters = ChannelCounters()

    @abc.abstractmethod
    def _transport(self, request_bytes: bytes) -> bytes:
        """Deliver encoded request bytes; return encoded response bytes."""

    def request(self, message: Message) -> Message:
        """Send one request and return the decoded response, metering both."""
        if obs.enabled:
            return self._request_observed(message)
        return self._exchange(message, None)

    def _request_observed(self, message: Message) -> Message:
        """Traced/metered variant: a span per round trip, context on the
        wire, and per-message-type latency histograms."""
        import time as _time

        from repro.obs import instruments as ins
        mtype = type(message).__name__
        with span("rpc.request", type=mtype) as sp:
            start = _time.perf_counter()
            try:
                response = self._exchange(message, sp.context)
            except Exception:
                ins.RPC_FAILURES.inc()
                raise
            ins.RPC_SECONDS.observe(_time.perf_counter() - start,
                                    type=mtype)
            sp.annotate(response=type(response).__name__)
            return response

    def _exchange(self, message: Message, trace) -> Message:
        request_bytes = encode_message(self.ctx, message, trace=trace)
        response_bytes = self._transport(request_bytes)
        # Transport byte/round-trip metering happens BEFORE decoding: a
        # malformed reply still crossed the wire, and its bytes must not
        # vanish from the accounting when decode_message raises.
        self.counters.bytes_sent += len(request_bytes)
        self.counters.bytes_received += len(response_bytes)
        self.counters.payload_sent += message.payload_bytes()
        self.counters.round_trips += 1
        if self.network is not None:
            self.counters.simulated_seconds += self.network.round_trip_seconds(
                len(request_bytes), len(response_bytes))
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.RPC_BYTES.inc(len(request_bytes), direction="sent")
            ins.RPC_BYTES.inc(len(response_bytes), direction="received")
        response = decode_message(self.ctx, response_bytes)
        self.counters.payload_received += response.payload_bytes()
        return response


class LoopbackChannel(Channel):
    """In-process channel to a server object exposing ``handle_bytes``.

    Messages still round-trip through the real wire codec, so every byte
    count is exactly what a TCP deployment would transfer (sans TCP/IP
    framing, which the paper's numbers also exclude).
    """

    def __init__(self, server, ctx: WireContext | None = None,
                 network: NetworkModel | None = None) -> None:
        if ctx is None:
            ctx = getattr(server, "ctx", None)
        if ctx is None:
            raise ProtocolError("server does not expose a wire context")
        super().__init__(ctx, network)
        self._server = server

    def _transport(self, request_bytes: bytes) -> bytes:
        # Server time is metered separately so client-computation metrics
        # (the paper's Figure 6) exclude it even on a loopback link.
        start = time.perf_counter()
        try:
            return self._server.handle_bytes(request_bytes)
        finally:
            self.counters.server_seconds += time.perf_counter() - start

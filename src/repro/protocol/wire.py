"""Deterministic binary wire codec.

A tiny, explicit length-prefixed format: big-endian fixed-width integers,
``u32``-length-prefixed byte strings, and flag-prefixed optionals.
Modulators are written raw (their width is fixed per deployment and both
sides know it), which matters because the paper's communication-overhead
numbers are dominated by modulator traffic and must not be inflated by
per-modulator framing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import ProtocolError


@dataclass(frozen=True)
class WireContext:
    """Per-deployment constants the codec needs (modulator width)."""

    modulator_width: int


class Writer:
    """Accumulates encoded fields into one growable ``bytearray``.

    Fields are packed in place with :func:`struct.pack_into` rather than
    collected as per-field ``bytes`` parts: encoding a large reply then
    costs one buffer (amortised doubling) instead of thousands of small
    allocations plus a final join.  The produced bytes are identical to
    the part-list encoder this replaced.
    """

    __slots__ = ("ctx", "_buf", "_pos")

    _INITIAL_CAPACITY = 128

    def __init__(self, ctx: WireContext) -> None:
        self.ctx = ctx
        self._buf = bytearray(self._INITIAL_CAPACITY)
        self._pos = 0

    def _reserve(self, count: int) -> int:
        """Grow the buffer to fit ``count`` more bytes; return the offset."""
        pos = self._pos
        needed = pos + count
        if needed > len(self._buf):
            self._buf.extend(bytearray(max(needed - len(self._buf),
                                           len(self._buf))))
        self._pos = needed
        return pos

    def u8(self, value: int) -> "Writer":
        struct.pack_into(">B", self._buf, self._reserve(1), value)
        return self

    def u16(self, value: int) -> "Writer":
        struct.pack_into(">H", self._buf, self._reserve(2), value)
        return self

    def u32(self, value: int) -> "Writer":
        struct.pack_into(">I", self._buf, self._reserve(4), value)
        return self

    def u64(self, value: int) -> "Writer":
        struct.pack_into(">Q", self._buf, self._reserve(8), value)
        return self

    def blob(self, data: bytes) -> "Writer":
        """A ``u32``-length-prefixed byte string."""
        offset = self._reserve(4 + len(data))
        struct.pack_into(">I", self._buf, offset, len(data))
        self._buf[offset + 4:offset + 4 + len(data)] = data
        return self

    def raw(self, data: bytes) -> "Writer":
        """Unframed bytes (caller-defined fixed-width fields)."""
        offset = self._reserve(len(data))
        self._buf[offset:offset + len(data)] = data
        return self

    def modulator(self, value: bytes) -> "Writer":
        """A raw modulator of the deployment's fixed width."""
        width = self.ctx.modulator_width
        if len(value) != width:
            raise ProtocolError(
                f"modulator width {len(value)} != {width}")
        offset = self._reserve(width)
        self._buf[offset:offset + width] = value
        return self

    def opt_modulator(self, value: Optional[bytes]) -> "Writer":
        self.u8(1 if value is not None else 0)
        if value is not None:
            self.modulator(value)
        return self

    def modulator_list(self, values: Sequence[bytes]) -> "Writer":
        width = self.ctx.modulator_width
        for value in values:
            if len(value) != width:
                raise ProtocolError(
                    f"modulator width {len(value)} != {width}")
        self.u32(len(values))
        offset = self._reserve(width * len(values))
        for value in values:
            self._buf[offset:offset + width] = value
            offset += width
        return self

    def u64_list(self, values: Sequence[int]) -> "Writer":
        self.u32(len(values))
        offset = self._reserve(8 * len(values))
        struct.pack_into(f">{len(values)}Q", self._buf, offset, *values)
        return self

    def blob_list(self, values: Sequence[bytes]) -> "Writer":
        self.u32(len(values))
        for value in values:
            self.blob(value)
        return self

    def text(self, value: str) -> "Writer":
        return self.blob(value.encode("utf-8"))

    def getvalue(self) -> bytes:
        return bytes(memoryview(self._buf)[:self._pos])


class Reader:
    """Decodes fields from a byte buffer, tracking its position."""

    def __init__(self, ctx: WireContext, data: bytes) -> None:
        self.ctx = ctx
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ProtocolError("message truncated")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u32())

    def modulator(self) -> bytes:
        return self._take(self.ctx.modulator_width)

    def opt_modulator(self) -> Optional[bytes]:
        return self.modulator() if self.u8() else None

    def modulator_list(self) -> list[bytes]:
        return [self.modulator() for _ in range(self.u32())]

    def u64_list(self) -> list[int]:
        return [self.u64() for _ in range(self.u32())]

    def blob_list(self) -> list[bytes]:
        return [self.blob() for _ in range(self.u32())]

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def raw(self, count: int) -> bytes:
        """Unframed bytes (caller-defined fixed-width fields)."""
        return self._take(count)

    def remaining(self) -> int:
        """Bytes left to decode."""
        return len(self._data) - self._pos

    def peek_u8(self) -> int:
        """Next byte without consuming it (raises at end of data)."""
        if self._pos >= len(self._data):
            raise ProtocolError("message truncated")
        return self._data[self._pos]

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise ProtocolError(
                f"{len(self._data) - self._pos} trailing bytes in message")

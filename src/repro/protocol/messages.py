"""Typed protocol messages with exact binary encodings.

Operations map to messages as follows (client -> server -> client):

* outsource:  ``OutsourceRequest`` -> ``Ack``
* access:     ``AccessRequest`` -> ``AccessReply``
* modify:     ``AccessRequest`` -> ``AccessReply`` then
              ``ModifyCommit`` -> ``Ack``
* delete:     ``DeleteRequest`` -> ``DeleteChallenge`` then
              ``DeleteCommit`` -> ``Ack``
* insert:     ``InsertRequest`` -> ``InsertChallenge`` then
              ``InsertCommit`` -> ``Ack``
* whole file: ``FetchFileRequest`` -> ``FetchFileReply``
* drop file:  ``DeleteFileRequest`` -> ``Ack``
* batch delete: ``BatchDeleteRequest`` -> ``BatchDeleteReply`` then
              ``BatchDeleteCommit`` -> ``Ack``

Any failure is an ``ErrorReply``.  ``payload_bytes()`` reports how many of
a message's encoded bytes are item content (ciphertexts); the accounting
layer subtracts them where the paper's overhead definition requires
("the overhead does not include the data item itself").

Every *mutating* message carries a client-chosen ``request_id`` (a
non-zero random u64).  The server remembers the reply it produced for
each id, so a retransmission -- a transport-level retry after a timeout,
or a journalled client resend after a lost Ack -- is answered from that
cache instead of being applied twice.  ``request_id = 0`` opts out (the
message is then only protected by the tree-version check).

Any message may additionally carry an optional **trace-context trailer**
after its body (see ``docs/OBSERVABILITY.md``): a one-byte magic
``0x54`` ('T'), a 16-byte trace id, an 8-byte span id, and a one-byte
flags field, W3C Trace Context sized.  The trailer is pure telemetry:
:func:`encode_message` appends it only when a trace context is passed
(observability enabled), :func:`decode_message` detaches it before the
body's trailing-bytes check, and the canonical (trace-free) encoding is
what WAL records and replay digests are computed over, so tracing never
changes protocol semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Type

from repro.core.errors import ProtocolError
from repro.core.ops import BalanceMove
from repro.core.tree import BalanceView, CutEntry, MTView, PathView
from repro.protocol.wire import Reader, WireContext, Writer

# Error codes carried by ErrorReply.
E_UNKNOWN_FILE = 1
E_UNKNOWN_ITEM = 2
E_DUPLICATE_MODULATOR = 3
E_STALE_STATE = 4
E_BAD_REQUEST = 5

#: First byte of the optional trace-context trailer ('T').
TRACE_MAGIC = 0x54
#: Trailer length: magic + 16-byte trace id + 8-byte span id + flags.
TRACE_TRAILER_LEN = 1 + 16 + 8 + 1


def _write_path(w: Writer, view: PathView) -> None:
    w.u64_list(view.path_slots)
    w.modulator_list(view.path_links)
    w.modulator(view.leaf_mod)


def _read_path(r: Reader) -> PathView:
    slots = tuple(r.u64_list())
    links = tuple(r.modulator_list())
    leaf = r.modulator()
    return PathView(path_slots=slots, path_links=links, leaf_mod=leaf)


def _write_mt(w: Writer, view: MTView) -> None:
    w.u64_list(view.path_slots)
    w.modulator_list(view.path_links)
    w.modulator(view.leaf_mod)
    w.u32(len(view.cut))
    for entry in view.cut:
        w.u64(entry.slot)
        w.modulator(entry.link_mod)
        w.u8(1 if entry.is_leaf else 0)
        if entry.is_leaf:
            w.modulator(entry.leaf_mod)


def _read_mt(r: Reader) -> MTView:
    slots = tuple(r.u64_list())
    links = tuple(r.modulator_list())
    leaf = r.modulator()
    cut = []
    for _ in range(r.u32()):
        slot = r.u64()
        link_mod = r.modulator()
        is_leaf = bool(r.u8())
        leaf_mod = r.modulator() if is_leaf else None
        cut.append(CutEntry(slot=slot, link_mod=link_mod, is_leaf=is_leaf,
                            leaf_mod=leaf_mod))
    return MTView(path_slots=slots, path_links=links, leaf_mod=leaf,
                  cut=tuple(cut))


def _write_balance(w: Writer, view: Optional[BalanceView]) -> None:
    w.u8(1 if view is not None else 0)
    if view is not None:
        _write_path(w, view.t_path)
        w.u64(view.s_slot)
        w.modulator(view.s_link_mod)
        w.modulator(view.s_leaf_mod)


def _read_balance(r: Reader) -> Optional[BalanceView]:
    if not r.u8():
        return None
    t_path = _read_path(r)
    s_slot = r.u64()
    s_link = r.modulator()
    s_leaf = r.modulator()
    return BalanceView(t_path=t_path, s_slot=s_slot, s_link_mod=s_link,
                       s_leaf_mod=s_leaf)


class Message:
    """Base class: every message has a type tag and a body codec."""

    TYPE: ClassVar[int] = 0

    def encode_body(self, w: Writer) -> None:
        raise NotImplementedError

    @classmethod
    def decode_body(cls, r: Reader) -> "Message":
        raise NotImplementedError

    def payload_bytes(self) -> int:
        """Encoded bytes attributable to item content (default: none)."""
        return 0


_REGISTRY: dict[int, Type[Message]] = {}


def register(cls: Type[Message]) -> Type[Message]:
    if cls.TYPE in _REGISTRY:
        raise ValueError(f"duplicate message type {cls.TYPE}")
    _REGISTRY[cls.TYPE] = cls
    return cls


def encode_message(ctx: WireContext, message: Message,
                   trace: "TraceContext | None" = None) -> bytes:
    """Encode ``message``; with ``trace``, append the telemetry trailer.

    The trace-free encoding is canonical: WAL records and replay digests
    use it, so the same logical message always hashes identically no
    matter which (or whether a) trace context carried it.

    Replies the server's view cache marked with ``_cache_encoding``
    memoize their trace-free body after the first encode, so identical
    replies cost one lookup instead of a field-by-field re-encode; the
    trace trailer (which varies per request) is appended afterwards.
    """
    body = getattr(message, "_encoded_body", None)
    if body is None:
        w = Writer(ctx)
        w.u8(message.TYPE)
        message.encode_body(w)
        body = w.getvalue()
        if getattr(message, "_cache_encoding", False):
            object.__setattr__(message, "_encoded_body", body)
    if trace is not None:
        return b"".join((body, bytes((TRACE_MAGIC,)), trace.trace_id,
                         trace.span_id, bytes((trace.flags,))))
    return body


def decode_message(ctx: WireContext, data: bytes) -> Message:
    r = Reader(ctx, data)
    type_tag = r.u8()
    cls = _REGISTRY.get(type_tag)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_tag}")
    message = cls.decode_body(r)
    if r.remaining() == TRACE_TRAILER_LEN and r.peek_u8() == TRACE_MAGIC:
        from repro.obs.trace import TraceContext
        r.u8()
        attach_trace(message, TraceContext(trace_id=r.raw(16),
                                           span_id=r.raw(8),
                                           flags=r.u8()))
    r.expect_end()
    return message


def attach_trace(message: Message, trace: "TraceContext") -> None:
    """Pin a decoded trace context to a (frozen) message instance."""
    object.__setattr__(message, "_trace_context", trace)


def get_trace(message: Message) -> "TraceContext | None":
    """The trace context a message arrived with, if any."""
    return getattr(message, "_trace_context", None)


@register
@dataclass(frozen=True)
class Ack(Message):
    """Generic success acknowledgement, echoing the new tree version."""

    TYPE: ClassVar[int] = 1
    tree_version: int = 0
    item_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.tree_version).u64(self.item_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "Ack":
        return cls(tree_version=r.u64(), item_id=r.u64())


@register
@dataclass(frozen=True)
class ErrorReply(Message):
    """Failure reply with a machine-readable code.

    ``request_id`` echoes the failing request's idempotency id (0 when
    the request carried none or could not be decoded), so a pipelined
    client -- or the obs layer -- can correlate a server-side failure
    with the request that caused it.
    """

    TYPE: ClassVar[int] = 2
    code: int = 0
    detail: str = ""
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u16(self.code).text(self.detail).u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "ErrorReply":
        return cls(code=r.u16(), detail=r.text(), request_id=r.u64())


@register
@dataclass(frozen=True)
class OutsourceRequest(Message):
    """Initial upload: the whole modulation tree plus all ciphertexts.

    ``item_ids[i]`` and ``ciphertexts[i]`` belong to leaf slot ``n + i``;
    ``links`` holds the link modulators for slots ``2 .. 2n-1`` and
    ``leaves`` the leaf modulators for slots ``n .. 2n-1``, both in slot
    order.
    """

    TYPE: ClassVar[int] = 3
    file_id: int = 0
    item_ids: tuple[int, ...] = ()
    links: tuple[bytes, ...] = ()
    leaves: tuple[bytes, ...] = ()
    ciphertexts: tuple[bytes, ...] = ()
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)
        w.u64_list(self.item_ids)
        w.modulator_list(self.links)
        w.modulator_list(self.leaves)
        w.blob_list(self.ciphertexts)
        w.u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "OutsourceRequest":
        file_id = r.u64()
        item_ids = tuple(r.u64_list())
        links = tuple(r.modulator_list())
        leaves = tuple(r.modulator_list())
        ciphertexts = tuple(r.blob_list())
        return cls(file_id=file_id, item_ids=item_ids, links=links,
                   leaves=leaves, ciphertexts=ciphertexts,
                   request_id=r.u64())

    def payload_bytes(self) -> int:
        return sum(4 + len(c) for c in self.ciphertexts)


@register
@dataclass(frozen=True)
class AccessRequest(Message):
    """Fetch one item (also the first half of a modification)."""

    TYPE: ClassVar[int] = 4
    file_id: int = 0
    item_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "AccessRequest":
        return cls(file_id=r.u64(), item_id=r.u64())


@register
@dataclass(frozen=True)
class AccessReply(Message):
    """Path modulators plus the ciphertext (Section IV-E access)."""

    TYPE: ClassVar[int] = 5
    path: PathView = None  # type: ignore[assignment]
    ciphertext: bytes = b""
    tree_version: int = 0

    def encode_body(self, w: Writer) -> None:
        _write_path(w, self.path)
        w.blob(self.ciphertext)
        w.u64(self.tree_version)

    @classmethod
    def decode_body(cls, r: Reader) -> "AccessReply":
        path = _read_path(r)
        ciphertext = r.blob()
        version = r.u64()
        return cls(path=path, ciphertext=ciphertext, tree_version=version)

    def payload_bytes(self) -> int:
        return 4 + len(self.ciphertext)


@register
@dataclass(frozen=True)
class ModifyCommit(Message):
    """Second half of a modification: re-encrypted item under the same key."""

    TYPE: ClassVar[int] = 6
    file_id: int = 0
    item_id: int = 0
    ciphertext: bytes = b""
    tree_version: int = 0
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id).blob(self.ciphertext)
        w.u64(self.tree_version).u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "ModifyCommit":
        return cls(file_id=r.u64(), item_id=r.u64(), ciphertext=r.blob(),
                   tree_version=r.u64(), request_id=r.u64())

    def payload_bytes(self) -> int:
        return 4 + len(self.ciphertext)


@register
@dataclass(frozen=True)
class DeleteRequest(Message):
    """Start a deletion: ask for ``MT(k)`` and the balancing view."""

    TYPE: ClassVar[int] = 7
    file_id: int = 0
    item_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "DeleteRequest":
        return cls(file_id=r.u64(), item_id=r.u64())


@register
@dataclass(frozen=True)
class DeleteChallenge(Message):
    """Server's deletion data: ``MT(k)``, the ciphertext, balancing view."""

    TYPE: ClassVar[int] = 8
    mt: MTView = None  # type: ignore[assignment]
    ciphertext: bytes = b""
    balance: Optional[BalanceView] = None
    tree_version: int = 0

    def encode_body(self, w: Writer) -> None:
        _write_mt(w, self.mt)
        w.blob(self.ciphertext)
        _write_balance(w, self.balance)
        w.u64(self.tree_version)

    @classmethod
    def decode_body(cls, r: Reader) -> "DeleteChallenge":
        mt = _read_mt(r)
        ciphertext = r.blob()
        balance = _read_balance(r)
        version = r.u64()
        return cls(mt=mt, ciphertext=ciphertext, balance=balance,
                   tree_version=version)

    def payload_bytes(self) -> int:
        return 4 + len(self.ciphertext)


@register
@dataclass(frozen=True)
class DeleteCommit(Message):
    """Client's deltas and balancing modulators completing a deletion."""

    TYPE: ClassVar[int] = 9
    file_id: int = 0
    item_id: int = 0
    cut_slots: tuple[int, ...] = ()
    deltas: tuple[bytes, ...] = ()
    x_s_prime: Optional[bytes] = None
    dest_link: Optional[bytes] = None
    dest_leaf: Optional[bytes] = None
    tree_version: int = 0
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id)
        w.u64_list(self.cut_slots)
        w.modulator_list(self.deltas)
        w.opt_modulator(self.x_s_prime)
        w.opt_modulator(self.dest_link)
        w.opt_modulator(self.dest_leaf)
        w.u64(self.tree_version).u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "DeleteCommit":
        return cls(file_id=r.u64(), item_id=r.u64(),
                   cut_slots=tuple(r.u64_list()),
                   deltas=tuple(r.modulator_list()),
                   x_s_prime=r.opt_modulator(),
                   dest_link=r.opt_modulator(),
                   dest_leaf=r.opt_modulator(),
                   tree_version=r.u64(), request_id=r.u64())


@register
@dataclass(frozen=True)
class InsertRequest(Message):
    """Start an insertion: ask for the path to the split leaf."""

    TYPE: ClassVar[int] = 10
    file_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "InsertRequest":
        return cls(file_id=r.u64())


@register
@dataclass(frozen=True)
class InsertChallenge(Message):
    """Path ``P(t')`` to the leaf the insertion will split (Fig. 4)."""

    TYPE: ClassVar[int] = 11
    path: Optional[PathView] = None
    tree_version: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u8(1 if self.path is not None else 0)
        if self.path is not None:
            _write_path(w, self.path)
        w.u64(self.tree_version)

    @classmethod
    def decode_body(cls, r: Reader) -> "InsertChallenge":
        path = _read_path(r) if r.u8() else None
        return cls(path=path, tree_version=r.u64())


@register
@dataclass(frozen=True)
class InsertCommit(Message):
    """Client's modulators and ciphertext completing an insertion."""

    TYPE: ClassVar[int] = 12
    file_id: int = 0
    item_id: int = 0
    t_new_link: Optional[bytes] = None
    t_new_leaf: Optional[bytes] = None
    e_link: Optional[bytes] = None
    e_leaf: bytes = b""
    ciphertext: bytes = b""
    tree_version: int = 0
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id)
        w.opt_modulator(self.t_new_link)
        w.opt_modulator(self.t_new_leaf)
        w.opt_modulator(self.e_link)
        w.modulator(self.e_leaf)
        w.blob(self.ciphertext)
        w.u64(self.tree_version).u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "InsertCommit":
        return cls(file_id=r.u64(), item_id=r.u64(),
                   t_new_link=r.opt_modulator(),
                   t_new_leaf=r.opt_modulator(),
                   e_link=r.opt_modulator(),
                   e_leaf=r.modulator(),
                   ciphertext=r.blob(),
                   tree_version=r.u64(), request_id=r.u64())

    def payload_bytes(self) -> int:
        return 4 + len(self.ciphertext)


@register
@dataclass(frozen=True)
class FetchFileRequest(Message):
    """Fetch the whole file: every ciphertext plus the whole tree."""

    TYPE: ClassVar[int] = 13
    file_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "FetchFileRequest":
        return cls(file_id=r.u64())


@register
@dataclass(frozen=True)
class FetchFileReply(Message):
    """The whole tree (all modulators) and all ciphertexts.

    ``item_ids[i]`` / ``ciphertexts[i]`` belong to leaf slot ``n + i``
    (item-less leaves are impossible: every leaf encodes one item).
    ``links``/``leaves`` are slot-ordered as in :class:`OutsourceRequest`.
    """

    TYPE: ClassVar[int] = 14
    n_leaves: int = 0
    item_ids: tuple[int, ...] = ()
    links: tuple[bytes, ...] = ()
    leaves: tuple[bytes, ...] = ()
    ciphertexts: tuple[bytes, ...] = ()
    tree_version: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.n_leaves)
        w.u64_list(self.item_ids)
        w.modulator_list(self.links)
        w.modulator_list(self.leaves)
        w.blob_list(self.ciphertexts)
        w.u64(self.tree_version)

    @classmethod
    def decode_body(cls, r: Reader) -> "FetchFileReply":
        n_leaves = r.u64()
        item_ids = tuple(r.u64_list())
        links = tuple(r.modulator_list())
        leaves = tuple(r.modulator_list())
        ciphertexts = tuple(r.blob_list())
        return cls(n_leaves=n_leaves, item_ids=item_ids, links=links,
                   leaves=leaves, ciphertexts=ciphertexts,
                   tree_version=r.u64())

    def payload_bytes(self) -> int:
        return sum(4 + len(c) for c in self.ciphertexts)


@register
@dataclass(frozen=True)
class DeleteFileRequest(Message):
    """Drop an entire file's server-side state.

    On its own this is only best-effort space reclamation; *assured*
    whole-file deletion comes from shredding the file's master key in the
    meta modulation tree (Section V).
    """

    TYPE: ClassVar[int] = 15
    file_id: int = 0
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "DeleteFileRequest":
        return cls(file_id=r.u64(), request_id=r.u64())


@register
@dataclass(frozen=True)
class BatchDeleteRequest(Message):
    """Start a batched deletion: ask for the union view ``MT(S)``."""

    TYPE: ClassVar[int] = 16
    file_id: int = 0
    item_ids: tuple[int, ...] = ()

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)
        w.u64_list(self.item_ids)

    @classmethod
    def decode_body(cls, r: Reader) -> "BatchDeleteRequest":
        return cls(file_id=r.u64(), item_ids=tuple(r.u64_list()))


@register
@dataclass(frozen=True)
class BatchDeleteReply(Message):
    """The batch view ``MT(S)`` plus the targets' ciphertexts.

    ``target_slots[i]`` is the leaf slot of the ``i``-th requested item and
    ``ciphertexts[i]`` its ciphertext.  ``links`` and ``leaf_mods`` carry no
    slot numbers: both sides derive the slot lists deterministically from
    ``(n_leaves, target_slots)`` via
    :meth:`~repro.core.tree.ModulationTree.batch_link_slots` /
    :meth:`~repro.core.tree.ModulationTree.batch_leaf_mod_slots` and the
    modulators are in that ascending-slot order, so the server cannot
    misrepresent the view's shape and the message stays lean.
    """

    TYPE: ClassVar[int] = 17
    n_leaves: int = 0
    target_slots: tuple[int, ...] = ()
    links: tuple[bytes, ...] = ()
    leaf_mods: tuple[bytes, ...] = ()
    ciphertexts: tuple[bytes, ...] = ()
    tree_version: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.n_leaves)
        w.u64_list(self.target_slots)
        w.modulator_list(self.links)
        w.modulator_list(self.leaf_mods)
        w.blob_list(self.ciphertexts)
        w.u64(self.tree_version)

    @classmethod
    def decode_body(cls, r: Reader) -> "BatchDeleteReply":
        return cls(n_leaves=r.u64(),
                   target_slots=tuple(r.u64_list()),
                   links=tuple(r.modulator_list()),
                   leaf_mods=tuple(r.modulator_list()),
                   ciphertexts=tuple(r.blob_list()),
                   tree_version=r.u64())

    def payload_bytes(self) -> int:
        return sum(4 + len(c) for c in self.ciphertexts)


@register
@dataclass(frozen=True)
class BatchDeleteCommit(Message):
    """Deltas plus one rebalancing move per deleted item.

    ``deltas`` carries no cut slots: it is in canonical ascending order of
    :meth:`~repro.core.tree.ModulationTree.union_cut_slots`, which the
    server re-derives from the item set itself.  ``moves[i]`` rebalances the
    tree after deleting ``item_ids[i]`` (same order), with the
    ``delete_leaf`` convention for absent fields.
    """

    TYPE: ClassVar[int] = 18
    file_id: int = 0
    item_ids: tuple[int, ...] = ()
    deltas: tuple[bytes, ...] = ()
    moves: tuple[BalanceMove, ...] = ()
    tree_version: int = 0
    request_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)
        w.u64_list(self.item_ids)
        w.modulator_list(self.deltas)
        w.u32(len(self.moves))
        for move in self.moves:
            w.opt_modulator(move.x_s_prime)
            w.opt_modulator(move.dest_link)
            w.opt_modulator(move.dest_leaf)
        w.u64(self.tree_version).u64(self.request_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "BatchDeleteCommit":
        file_id = r.u64()
        item_ids = tuple(r.u64_list())
        deltas = tuple(r.modulator_list())
        moves = tuple(BalanceMove(x_s_prime=r.opt_modulator(),
                                  dest_link=r.opt_modulator(),
                                  dest_leaf=r.opt_modulator())
                      for _ in range(r.u32()))
        return cls(file_id=file_id, item_ids=item_ids, deltas=deltas,
                   moves=moves, tree_version=r.u64(), request_id=r.u64())

"""Client/server protocol: typed messages, binary wire codec, accounting.

The paper's communication-overhead metric (Section VI) counts "all
information that the client receives and sends for an operation",
excluding the data item itself when the operation fetches one.  To make
those numbers exact rather than estimated, every message in this package
serialises to real bytes (:mod:`repro.protocol.wire`), declares how many
of its bytes are item payload (:meth:`Message.payload_bytes`), and flows
through a channel (:mod:`repro.protocol.channel`) that meters both.
"""

from repro.protocol.channel import Channel, LoopbackChannel
from repro.protocol.messages import Message, decode_message, encode_message
from repro.protocol.wire import Reader, WireContext, Writer

__all__ = [
    "Channel",
    "LoopbackChannel",
    "Message",
    "Reader",
    "WireContext",
    "Writer",
    "decode_message",
    "encode_message",
]

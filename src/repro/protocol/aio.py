"""Asyncio transport: one event loop, thousands of connections, pipelining.

The thread-per-connection host (:class:`~repro.protocol.tcp.TcpServerHost`)
flattens out near a handful of clients: every idle persistent connection
pins a thread.  This module multiplexes all connections onto ONE asyncio
event loop and lets each connection keep **multiple requests in flight**
(pipelining), while protocol work still runs in a thread pool off the
loop -- the backend, its per-file RWLock table, and the WAL are shared
and untouched.

Framing
-------

The sync transport frames messages as ``u32 length | payload`` and the
length never exceeds :data:`~repro.protocol.tcp.MAX_FRAME` (1 << 30), so
the top bit of the length word is free.  A **tagged** frame sets it::

    untagged  u32 length            | payload              (legacy)
    tagged    u32 (0x80000000|len)  | u64 tag | payload    (pipelined)

* An untagged request gets an untagged reply, and untagged replies are
  written in request arrival order -- byte-for-byte what the sync
  :class:`~repro.protocol.tcp.TcpChannel` expects, so it passes the
  whole existing TCP suite against this host unchanged.
* A tagged request gets a tagged reply echoing its tag, and tagged
  replies may return **out of order**.  The tag is a transport-level
  correlation id chosen by the client, unrelated to the protocol-level
  idempotent ``request_id`` (which the server still dedupes on).

:class:`AsyncTcpChannel` is the pipelining client: many threads can
issue requests through one connection concurrently; a background reader
correlates replies by tag.  A timed-out request is retransmitted under a
FRESH tag on the same connection -- the late reply's stale tag no longer
matches anything and is dropped, so no connection teardown is needed
(unlike the sync channel, whose untagged stream cannot tell a late reply
from the next one).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import logging
import os
import socket
import struct
import threading
import time
from typing import Optional

from repro.core.errors import ProtocolError
from repro.obs import runtime as obs
from repro.obs.health import HEALTH
from repro.obs.trace import log_event
from repro.protocol.channel import Channel
from repro.protocol.faults import ChannelError
from repro.protocol.tcp import (MAX_FRAME, RetryPolicy, error_reply_bytes,
                                recv_exact)
from repro.protocol.wire import WireContext
from repro.sim.network import NetworkModel

_LENGTH = struct.Struct(">I")
_TAG = struct.Struct(">Q")
#: Top bit of the length word: set = tagged (pipelined) frame.
TAG_FLAG = 0x80000000

#: Period of the host's heartbeat task.  Each beat measures how late the
#: loop woke (scheduling lag -- THE async saturation signal) and samples
#: the executor queue depth; the ``/readyz`` probe calls the loop
#: unresponsive when beats stop arriving for several periods.
MONITOR_INTERVAL = 0.25

logger = logging.getLogger(__name__)


class _AioConnection:
    """Server side of one client connection on the event loop."""

    def __init__(self, host: "AsyncTcpServerHost",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._host = host
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._tasks: set[asyncio.Task] = set()
        #: Bounds requests in flight on THIS connection; excess frames
        #: stay unread in the socket (per-connection backpressure).
        self._inflight = asyncio.Semaphore(host.max_inflight_per_conn)
        # Untagged replies must leave in request arrival order even
        # though handlers finish out of order: a sequence number per
        # untagged request plus a reorder buffer at the writer.
        self._untagged_next_in = 0
        self._untagged_next_out = 0
        self._untagged_ready: dict[int, bytes] = {}
        self._broken = False

    async def serve(self) -> None:
        try:
            while True:
                try:
                    head = await self._reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    break
                (word,) = _LENGTH.unpack(head)
                length = word & ~TAG_FLAG
                if length > MAX_FRAME:
                    logger.warning("async host: peer announced an "
                                   "oversized frame; closing connection")
                    break
                try:
                    tag: Optional[int] = None
                    if word & TAG_FLAG:
                        (tag,) = _TAG.unpack(await self._reader.readexactly(8))
                    payload = await self._reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    break
                await self._inflight.acquire()
                seq = None
                if tag is None:
                    seq = self._untagged_next_in
                    self._untagged_next_in += 1
                task = asyncio.ensure_future(self._process(seq, tag, payload))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            await self._drain_and_close()

    async def _drain_and_close(self) -> None:
        # EOF (or peer reset): let the requests already in flight finish
        # and their replies flush before closing the socket.  A second
        # cancellation (stop() past its grace) aborts the in-flight
        # tasks instead of waiting them out.
        try:
            if self._tasks:
                await asyncio.gather(*list(self._tasks),
                                     return_exceptions=True)
        except asyncio.CancelledError:
            for task in list(self._tasks):
                task.cancel()
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
            raise
        finally:
            try:
                self._writer.close()
            except Exception:
                pass

    async def _process(self, seq: Optional[int], tag: Optional[int],
                       payload: bytes) -> None:
        host = self._host
        try:
            loop = asyncio.get_running_loop()
            try:
                response = await loop.run_in_executor(
                    host._pool, host.backend.handle_bytes, payload)
            except Exception as exc:
                response = error_reply_bytes(host.backend, payload, exc)
                if response is None:
                    logger.error(
                        "backend %r failed without a wire context to "
                        "report through: %s",
                        type(host.backend).__name__, exc)
                    self._broken = True
                    try:
                        self._writer.close()
                    except Exception:
                        pass
                    return
            await self._send(seq, tag, response)
        finally:
            self._inflight.release()

    async def _send(self, seq: Optional[int], tag: Optional[int],
                    response: bytes) -> None:
        if self._broken:
            return
        try:
            async with self._write_lock:
                if tag is not None:
                    self._writer.write(_LENGTH.pack(TAG_FLAG | len(response))
                                       + _TAG.pack(tag) + response)
                else:
                    # Reorder buffer: flush every consecutive untagged
                    # reply that is now ready, oldest first.
                    self._untagged_ready[seq] = response
                    while self._untagged_next_out in self._untagged_ready:
                        ready = self._untagged_ready.pop(
                            self._untagged_next_out)
                        self._untagged_next_out += 1
                        self._writer.write(_LENGTH.pack(len(ready)) + ready)
                await self._writer.drain()
        except (ConnectionError, OSError):
            self._broken = True
            try:
                self._writer.close()
            except Exception:
                pass


class AsyncTcpServerHost:
    """Hosts a ``handle_bytes`` backend on one asyncio event loop.

    Drop-in for :class:`~repro.protocol.tcp.TcpServerHost` (same
    constructor shape, ``start``/``stop``/``address``/context manager,
    restart after stop rebinds the same port) but built to multiplex
    1000+ connections: the loop owns all sockets, handlers run in a
    bounded thread pool, and each connection may pipeline many tagged
    requests (see the module docstring for the framing).

    ``max_conns`` bounds concurrently *served* connections: excess
    clients are accepted but not read until a slot frees (backpressure).
    ``stop()`` keeps the sync host's contract -- stop accepting, nudge
    idle connections closed, let in-flight handler work finish within
    ``grace`` seconds, force-abandon whatever is still wedged after it.
    """

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0,
                 max_conns: int | None = None,
                 max_inflight_per_conn: int = 64,
                 workers: int | None = None) -> None:
        if not hasattr(backend, "handle_bytes"):
            raise TypeError("backend must expose handle_bytes")
        if max_conns is not None and max_conns < 1:
            raise ValueError("max_conns must be >= 1")
        if max_inflight_per_conn < 1:
            raise ValueError("max_inflight_per_conn must be >= 1")
        self.backend = backend
        self.max_conns = max_conns
        self.max_inflight_per_conn = max_inflight_per_conn
        self.workers = workers or min(32, (os.cpu_count() or 4) + 4)
        self._bind_address = (host, port)
        # Bind eagerly (like the sync host) so the kernel-assigned port
        # is known before start() and survives stop()/start() cycles.
        self._sock: socket.socket | None = self._make_socket()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._conn_slots: asyncio.Semaphore | None = None
        self._started = False
        self._monitor_task: asyncio.Task | None = None
        self._last_beat = 0.0
        self._loop_lag = 0.0

    def _make_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(self._bind_address)
        self._bind_address = sock.getsockname()
        return sock

    @property
    def address(self) -> tuple[str, int]:
        return self._bind_address  # type: ignore[return-value]

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "AsyncTcpServerHost":
        if self._started:
            return self
        if self._sock is None:
            self._sock = self._make_socket()
        self._loop = asyncio.new_event_loop()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-aio-worker")
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-aio-server", daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self._startup(), self._loop).result(timeout=10.0)
        self._started = True
        HEALTH.register(self._health_name, self.health)
        return self

    def _run_loop(self) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            loop.run_forever()
        finally:
            loop.close()

    async def _startup(self) -> None:
        if self.max_conns is not None:
            self._conn_slots = asyncio.Semaphore(self.max_conns)
        self._server = await asyncio.start_server(self._on_connect,
                                                  sock=self._sock)
        self._last_beat = time.monotonic()
        self._monitor_task = asyncio.ensure_future(self._monitor())

    async def _monitor(self) -> None:
        """Heartbeat: loop scheduling lag + executor queue depth."""
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(MONITOR_INTERVAL)
            self._loop_lag = max(0.0,
                                 loop.time() - before - MONITOR_INTERVAL)
            self._last_beat = time.monotonic()
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.AIO_LOOP_LAG_SECONDS.set(self._loop_lag)
                pool = self._pool
                if pool is not None:
                    # Stdlib-private but stable: jobs not yet picked up
                    # by a worker thread.
                    ins.AIO_EXECUTOR_QUEUE.set(pool._work_queue.qsize())

    @property
    def _health_name(self) -> str:
        return f"aio-loop:{self._bind_address[1]}"

    def health(self) -> tuple[bool, str]:
        """Readiness probe: is the event loop still scheduling work?"""
        if not self._started:
            return False, "host is stopped"
        age = time.monotonic() - self._last_beat
        if age > max(8 * MONITOR_INTERVAL, 2.0):
            return False, f"event loop unresponsive for {age:.1f}s"
        return True, f"loop lag {self._loop_lag * 1e3:.2f}ms"

    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.TCP_CONNECTIONS.inc()
            ins.TCP_INFLIGHT.inc()
        try:
            if self._conn_slots is not None:
                # Backpressure: the connection is accepted but no frame
                # is read until a serving slot frees up.
                await self._conn_slots.acquire()
            try:
                await _AioConnection(self, reader, writer).serve()
            finally:
                if self._conn_slots is not None:
                    self._conn_slots.release()
        except asyncio.CancelledError:
            pass  # stop() abandoned this connection past its grace
        finally:
            self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.TCP_INFLIGHT.dec()
            try:
                writer.close()
            except Exception:
                pass

    def stop(self, grace: float = 5.0) -> None:
        """Stop accepting, drain connections (bounded by ``grace``)."""
        if not self._started:
            return
        assert self._loop is not None and self._thread is not None
        HEALTH.unregister(self._health_name)
        try:
            asyncio.run_coroutine_threadsafe(
                self._shutdown(grace),
                self._loop).result(timeout=max(0.0, grace) + 15.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if self._pool is not None:
                # Abandoned (wedged) handler work keeps its thread; do
                # not wait for it -- mirror the sync host's daemonic
                # abandon semantics as closely as the pool allows.
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._sock = None  # closed with the asyncio server
            self._loop = None
            self._thread = None
            self._pool = None
            self._server = None
            self._conn_tasks = set()
            self._conn_writers = set()
            self._conn_slots = None
            self._monitor_task = None
            self._started = False

    async def _shutdown(self, grace: float) -> None:
        assert self._server is not None
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        self._server.close()
        await self._server.wait_closed()

        # Nudge every open connection: shutting down the read half makes
        # an idle serve() loop see EOF immediately, while a connection
        # with requests in flight still drains them (and their replies).
        for writer in list(self._conn_writers):
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RD)
                except OSError:
                    pass

        tasks = list(self._conn_tasks)
        abandoned = 0
        pending: set[asyncio.Task] = set()
        if tasks:
            _done, pending = await asyncio.wait(
                tasks, timeout=max(0.0, grace))
            abandoned = len(pending)
            # Two cancellation rounds: the first breaks a connection out
            # of its read/accept wait into its drain, the second aborts
            # the drain itself (a wedged handler cannot be joined -- its
            # pool thread is abandoned, mirroring the sync host).
            for _round in range(2):
                if not pending:
                    break
                for task in pending:
                    task.cancel()
                _done, pending = await asyncio.wait(pending, timeout=1.0)
        # Force-close whatever sockets remain (abandoned connections).
        for writer in list(self._conn_writers):
            transport = writer.transport
            try:
                if transport is not None:
                    transport.abort()
            except Exception:
                pass
        if abandoned:
            logger.warning("async host stop: abandoned %d connection(s) "
                           "still busy after %.1fs grace", abandoned, grace)

    def __enter__(self) -> "AsyncTcpServerHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _Waiter:
    """One in-flight tagged request awaiting its correlated reply."""

    __slots__ = ("event", "response", "error", "generation")

    def __init__(self, generation: int) -> None:
        self.event = threading.Event()
        self.response: bytes | None = None
        self.error: Exception | None = None
        self.generation = generation


class AsyncTcpChannel(Channel):
    """Pipelining client channel over one persistent TCP connection.

    Safe for concurrent use from many threads: each request is sent as a
    tagged frame and a background reader thread correlates replies by
    tag, so MANY requests ride the same connection simultaneously
    (against :class:`AsyncTcpServerHost`, which replies to tagged frames
    possibly out of order).

    Timeouts do NOT tear the connection down: the retransmit goes out
    under a fresh tag and the late reply to the old tag -- if it ever
    arrives -- matches no waiter and is dropped.  Mutating messages stay
    exactly-once end to end because the server dedupes their protocol
    ``request_id``.  Connection failures reconnect transparently; the
    requests that were in flight fail over to their retry schedule.

    The inherited byte counters are cumulative across all threads (they
    are not synchronised per field; use single-threaded runs for exact
    accounting, as the paper's measurements do).
    """

    def __init__(self, address: tuple[str, int], ctx: WireContext,
                 network: NetworkModel | None = None,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None) -> None:
        super().__init__(ctx, network)
        if retry is None:
            retry = RetryPolicy(timeout=timeout if timeout is not None
                                else 30.0)
        elif timeout is not None:
            raise ValueError("pass the timeout inside the RetryPolicy")
        self.retry = retry
        self._address = address
        #: Transport framing bytes (12 per frame each way), kept apart
        #: from the protocol counters.
        self.frame_bytes = 0
        self._mutex = threading.Lock()  # socket state + pending table
        self._send_lock = threading.Lock()  # serialises sendall only
        self._closing = threading.Event()
        self._sock: socket.socket | None = None
        self._generation = 0
        self._next_tag = 0
        self._pending: dict[int, _Waiter] = {}
        with self._mutex:
            self._ensure_connected()  # fail fast if unreachable

    # -- connection management (mutex held) -----------------------------

    def _ensure_connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        if self._closing.is_set():
            raise ChannelError("channel is closed")
        sock = socket.create_connection(self._address,
                                        timeout=self.retry.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The reader thread blocks in recv indefinitely; per-request
        # timeouts are enforced by each waiter, not the socket.
        sock.settimeout(None)
        self._sock = sock
        self._generation += 1
        reader = threading.Thread(target=self._read_loop,
                                  args=(sock, self._generation),
                                  name="repro-aio-channel-reader",
                                  daemon=True)
        reader.start()
        return sock

    def _invalidate(self, generation: int,
                    error: Exception | None = None) -> None:
        """Drop the connection of ``generation`` and fail its waiters."""
        if generation != self._generation:
            return  # someone already reconnected past it
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._generation += 1  # retires the old reader thread
        failed = [w for w in self._pending.values()
                  if w.generation == generation]
        for waiter in failed:
            if waiter.error is None:
                waiter.error = error or ConnectionError("connection lost")
            waiter.event.set()

    # -- reader thread --------------------------------------------------

    def _read_loop(self, sock: socket.socket, generation: int) -> None:
        try:
            while True:
                (word,) = _LENGTH.unpack(recv_exact(sock, 4))
                if not word & TAG_FLAG:
                    raise ProtocolError(
                        "untagged frame on a pipelined channel")
                length = word & ~TAG_FLAG
                if length > MAX_FRAME:
                    raise ProtocolError("peer announced an oversized frame")
                (tag,) = _TAG.unpack(recv_exact(sock, 8))
                payload = recv_exact(sock, length)
                with self._mutex:
                    waiter = self._pending.pop(tag, None)
                if waiter is not None:
                    waiter.response = payload
                    waiter.event.set()
                # Unknown tag: the late reply to a request that already
                # timed out and was retransmitted under a fresh tag.
                elif obs.enabled:
                    log_event("rpc.late_reply_dropped", tag=tag)
        except Exception as exc:
            with self._mutex:
                self._invalidate(generation, exc)

    # -- request path ---------------------------------------------------

    def _register_and_send(self, request_bytes: bytes) -> tuple[_Waiter, int]:
        with self._mutex:
            sock = self._ensure_connected()
            self._next_tag += 1
            tag = self._next_tag
            waiter = _Waiter(self._generation)
            self._pending[tag] = waiter
            generation = self._generation
        frame = (_LENGTH.pack(TAG_FLAG | len(request_bytes))
                 + _TAG.pack(tag) + request_bytes)
        try:
            with self._send_lock:
                sock.sendall(frame)
        except (OSError, ConnectionError) as exc:
            with self._mutex:
                self._pending.pop(tag, None)
                self._invalidate(generation, exc)
            raise
        return waiter, tag

    def _transport(self, request_bytes: bytes) -> bytes:
        if len(request_bytes) > MAX_FRAME:
            raise ProtocolError("frame too large")
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            if attempt:
                if self._closing.wait(self.retry.delay_before(attempt)):
                    break
                self.counters.retransmits += 1
                if obs.enabled:
                    from repro.obs import instruments as ins
                    ins.RPC_RETRANSMITS.inc()
                    log_event("rpc.retransmit", attempt=attempt,
                              error=repr(last_error))
            try:
                waiter, tag = self._register_and_send(request_bytes)
            except ChannelError:
                raise
            except (OSError, ConnectionError) as exc:
                last_error = exc
                continue
            if not waiter.event.wait(self.retry.timeout):
                # Timed out: forget the tag (a late reply will be
                # dropped by the reader) and retransmit under a NEW tag.
                with self._mutex:
                    self._pending.pop(tag, None)
                last_error = TimeoutError(
                    f"no reply within {self.retry.timeout}s")
                continue
            if waiter.error is not None:
                last_error = waiter.error
                continue
            self.frame_bytes += 24  # u32 word + u64 tag, each way
            assert waiter.response is not None
            return waiter.response
        if self._closing.is_set():
            raise ChannelError("channel is closed")
        raise ChannelError(
            f"request failed after {self.retry.attempts} attempt(s): "
            f"{last_error!r}")

    def close(self) -> None:
        self._closing.set()
        with self._mutex:
            self._invalidate(self._generation,
                             ChannelError("channel is closed"))

    def __enter__(self) -> "AsyncTcpChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

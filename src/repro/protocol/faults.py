"""Fault-injecting channel for distributed-systems failure testing.

Wraps any transport and injects, deterministically from a seeded
schedule:

* **drops** -- the request never reaches the server (client sees
  :class:`ChannelError`, models a timeout);
* **response drops** -- the server processed the request but the reply is
  lost (the nasty case: state changed, client does not know);
* **duplicates** -- the request is delivered twice (models a retransmit
  racing a slow reply).

The tests in ``tests/protocol/test_faults.py`` pin down the library's
recovery semantics under each fault: reads are always safely retryable,
versioned commits are protected against duplicate application by the
tree-version check, and a lost deletion ACK is safe to replay the whole
deletion for (the challenge is re-requested, so the client never reuses
stale cut data).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.errors import ReproError
from repro.protocol.channel import Channel
from repro.protocol.wire import WireContext
from repro.sim.network import NetworkModel


class ChannelError(ReproError):
    """The request (or its response) was lost in transit."""


#: Fault kinds understood by the schedule.
DROP_REQUEST = "drop-request"
DROP_RESPONSE = "drop-response"
DUPLICATE = "duplicate"
NONE = "none"

_VALID = {DROP_REQUEST, DROP_RESPONSE, DUPLICATE, NONE}


class FaultInjectingChannel(Channel):
    """Delivers requests through ``inner`` according to a fault schedule.

    ``schedule`` is any iterable of fault kinds; it is consumed one entry
    per request and treated as :data:`NONE` once exhausted.
    """

    def __init__(self, server, schedule: Iterable[str],
                 ctx: WireContext | None = None,
                 network: NetworkModel | None = None) -> None:
        if ctx is None:
            ctx = getattr(server, "ctx", None)
        if ctx is None:
            raise ReproError("server does not expose a wire context")
        super().__init__(ctx, network)
        self._server = server
        self._schedule: Iterator[str] = iter(schedule)
        self.faults_injected: list[str] = []

    def _next_fault(self) -> str:
        fault = next(self._schedule, NONE)
        if fault not in _VALID:
            raise ValueError(f"unknown fault kind {fault!r}")
        return fault

    def _transport(self, request_bytes: bytes) -> bytes:
        fault = self._next_fault()
        if fault != NONE:
            self.faults_injected.append(fault)
        if fault == DROP_REQUEST:
            raise ChannelError("request lost (timeout)")
        if fault == DROP_RESPONSE:
            self._server.handle_bytes(request_bytes)  # server DID act
            raise ChannelError("response lost (timeout)")
        if fault == DUPLICATE:
            self._server.handle_bytes(request_bytes)  # shadow delivery
            return self._server.handle_bytes(request_bytes)
        return self._server.handle_bytes(request_bytes)

"""Fault-injecting channel for distributed-systems failure testing.

Wraps any transport and injects, deterministically from a seeded
schedule:

* **drops** -- the request never reaches the server (client sees
  :class:`ChannelError`, models a timeout);
* **response drops** -- the server processed the request but the reply is
  lost (the nasty case: state changed, client does not know);
* **duplicates** -- the request is delivered twice (models a retransmit
  racing a slow reply);
* **delays** -- the request is delivered after ``delay_seconds`` of
  injected latency (models a slow link; the reply still arrives);
* **crashes** -- the server process dies mid-commit, either after the
  WAL record was made durable but before it was applied
  (:data:`CRASH_BEFORE_APPLY`) or after it was applied but before the
  reply went out (:data:`CRASH_AFTER_APPLY`).  The client sees
  :class:`ChannelError`; the test harness must then restart the server
  from disk (``repro.server.wal.recover_server``), because the crashed
  in-memory instance is in a state a real ``kill -9`` would have lost.

The tests in ``tests/protocol/test_faults.py`` and
``tests/server/test_crash_recovery.py`` pin down the library's recovery
semantics under each fault: reads are always safely retryable, versioned
commits are protected against duplicate application by the tree-version
check and the request-id replay cache, and a lost deletion ACK is safe to
replay the journalled commit for (exactly-once either way).

Server computation time is metered into ``counters.server_seconds``
exactly as :class:`~repro.protocol.channel.LoopbackChannel` does --
including the shadow delivery of a duplicated request -- so Figure-6
style client-computation metrics stay honest under fault schedules.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator

from repro.core.errors import ReproError, SimulatedCrash
from repro.protocol.channel import Channel
from repro.protocol.wire import WireContext
from repro.sim.network import NetworkModel


class ChannelError(ReproError):
    """The request (or its response) was lost in transit."""


#: Fault kinds understood by the schedule.
DROP_REQUEST = "drop-request"
DROP_RESPONSE = "drop-response"
DUPLICATE = "duplicate"
DELAY = "delay"
CRASH_BEFORE_APPLY = "crash-before-apply"
CRASH_AFTER_APPLY = "crash-after-apply"
NONE = "none"

_VALID = {DROP_REQUEST, DROP_RESPONSE, DUPLICATE, DELAY,
          CRASH_BEFORE_APPLY, CRASH_AFTER_APPLY, NONE}

_CRASH_POINTS = {CRASH_BEFORE_APPLY: "before-apply",
                 CRASH_AFTER_APPLY: "after-apply"}


class FaultInjectingChannel(Channel):
    """Delivers requests through ``inner`` according to a fault schedule.

    ``schedule`` is any iterable of fault kinds; it is consumed one entry
    per request and treated as :data:`NONE` once exhausted.
    """

    def __init__(self, server, schedule: Iterable[str],
                 ctx: WireContext | None = None,
                 network: NetworkModel | None = None,
                 delay_seconds: float = 0.005) -> None:
        if ctx is None:
            ctx = getattr(server, "ctx", None)
        if ctx is None:
            raise ReproError("server does not expose a wire context")
        super().__init__(ctx, network)
        self._server = server
        self._schedule: Iterator[str] = iter(schedule)
        self.faults_injected: list[str] = []
        self.delay_seconds = delay_seconds
        #: Encoded bytes of the most recent request (crash-test hook: a
        #: client retransmission resends exactly these bytes).
        self.last_request_bytes: bytes | None = None

    def _next_fault(self) -> str:
        fault = next(self._schedule, NONE)
        if fault not in _VALID:
            raise ValueError(f"unknown fault kind {fault!r}")
        return fault

    def _deliver(self, request_bytes: bytes) -> bytes:
        """One server delivery, with server time metered (Figure 6)."""
        start = time.perf_counter()
        try:
            return self._server.handle_bytes(request_bytes)
        finally:
            self.counters.server_seconds += time.perf_counter() - start

    def _transport(self, request_bytes: bytes) -> bytes:
        self.last_request_bytes = request_bytes
        fault = self._next_fault()
        if fault != NONE:
            self.faults_injected.append(fault)
        if fault == DROP_REQUEST:
            raise ChannelError("request lost (timeout)")
        if fault == DROP_RESPONSE:
            self._deliver(request_bytes)  # server DID act
            raise ChannelError("response lost (timeout)")
        if fault == DUPLICATE:
            self._deliver(request_bytes)  # shadow delivery
            return self._deliver(request_bytes)
        if fault == DELAY:
            time.sleep(self.delay_seconds)
            return self._deliver(request_bytes)
        if fault in _CRASH_POINTS:
            self._server.arm_crash(_CRASH_POINTS[fault])
            try:
                return self._deliver(request_bytes)
            except SimulatedCrash as exc:
                raise ChannelError(f"server crashed mid-commit: {exc}") \
                    from exc
            finally:
                # A non-mutating request never reaches a commit crash
                # point; do not leave the trap armed for the next one.
                self._server.disarm_crash()
        return self._deliver(request_bytes)

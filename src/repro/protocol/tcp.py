"""TCP transport: run the cloud server as a real network service.

The loopback channel is exact for measurement, but a reproduction of a
*distributed* system should also actually cross a socket.  This module
frames the existing binary messages over TCP (4-byte big-endian length
prefix) and provides:

* :class:`TcpServerHost` -- a threaded TCP host wrapping any object with
  ``handle_bytes`` (the honest :class:`~repro.server.server.CloudServer`,
  a malicious variant, or a :class:`~repro.baselines.base.BlobStoreServer`);
* :class:`TcpChannel` -- a :class:`~repro.protocol.channel.Channel` that
  speaks the framing over a persistent connection, with the same byte
  accounting as the loopback channel.

The framing adds 4 bytes per message; the accounting counts message bytes
only (as the paper excludes transport framing), with the frame overhead
available separately.
"""

from __future__ import annotations

import socket
import socketserver
import struct
import threading

from repro.core.errors import ProtocolError
from repro.protocol.channel import Channel
from repro.protocol.wire import WireContext
from repro.sim.network import NetworkModel

_LENGTH = struct.Struct(">I")
#: Upper bound on one message frame (a whole-file reply can be large).
MAX_FRAME = 1 << 30


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError("frame too large")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame."""
    (length,) = _LENGTH.unpack(recv_exact(sock, 4))
    if length > MAX_FRAME:
        raise ProtocolError("peer announced an oversized frame")
    return recv_exact(sock, length)


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        backend = self.server.backend  # type: ignore[attr-defined]
        while True:
            try:
                request = recv_frame(self.request)
            except (ConnectionError, OSError):
                return
            try:
                response = backend.handle_bytes(request)
            except Exception as exc:  # never kill the connection silently
                from repro.protocol import messages as msg
                response = msg.encode_message(
                    backend.ctx, msg.ErrorReply(code=msg.E_BAD_REQUEST,
                                                detail=str(exc)))
            try:
                send_frame(self.request, response)
            except OSError:
                return


class _ThreadedServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TcpServerHost:
    """Hosts a ``handle_bytes`` backend on a TCP port.

    Usable as a context manager::

        with TcpServerHost(CloudServer()) as host:
            channel = TcpChannel(host.address, server.ctx)
    """

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0) -> None:
        if not hasattr(backend, "handle_bytes"):
            raise TypeError("backend must expose handle_bytes")
        self.backend = backend
        self._server = _ThreadedServer((host, port), _Handler)
        self._server.backend = backend  # type: ignore[attr-defined]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-tcp-server", daemon=True)
        self._started = False

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def start(self) -> "TcpServerHost":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            self._server.shutdown()
            self._server.server_close()
            self._started = False

    def __enter__(self) -> "TcpServerHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class TcpChannel(Channel):
    """Client channel over a persistent TCP connection."""

    def __init__(self, address: tuple[str, int], ctx: WireContext,
                 network: NetworkModel | None = None,
                 timeout: float = 30.0) -> None:
        super().__init__(ctx, network)
        self._sock = socket.create_connection(address, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        #: Transport framing bytes, kept apart from the protocol counters.
        self.frame_bytes = 0
        self._lock = threading.Lock()

    def _transport(self, request_bytes: bytes) -> bytes:
        with self._lock:
            send_frame(self._sock, request_bytes)
            response = recv_frame(self._sock)
        self.frame_bytes += 8  # 4-byte length each way
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

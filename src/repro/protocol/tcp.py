"""TCP transport: run the cloud server as a real network service.

The loopback channel is exact for measurement, but a reproduction of a
*distributed* system should also actually cross a socket.  This module
frames the existing binary messages over TCP (4-byte big-endian length
prefix) and provides:

* :class:`TcpServerHost` -- a threaded TCP host wrapping any object with
  ``handle_bytes`` (the honest :class:`~repro.server.server.CloudServer`,
  a malicious variant, or a :class:`~repro.baselines.base.BlobStoreServer`);
* :class:`TcpChannel` -- a :class:`~repro.protocol.channel.Channel` that
  speaks the framing over a persistent connection, with the same byte
  accounting as the loopback channel;
* :class:`RetryPolicy` -- per-request timeout and exponential-backoff
  retry knobs for the channel.

A request that fails mid-round-trip (timeout, reset, EINTR) *invalidates
the connection*: a late reply to request N must never be consumed as the
reply to request N+1, so the socket is torn down and re-dialled before
the retransmit.  Retransmits are safe because every mutating message
carries an idempotent ``request_id`` the server dedupes on.

The framing adds 4 bytes per message; the accounting counts message bytes
only (as the paper excludes transport framing), with the frame overhead
available separately.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import struct
import threading
import time
from dataclasses import dataclass

from repro.core.errors import ProtocolError
from repro.obs import runtime as obs
from repro.obs.trace import log_event
from repro.protocol.channel import Channel
from repro.protocol.faults import ChannelError
from repro.protocol.wire import WireContext
from repro.sim.network import NetworkModel

_LENGTH = struct.Struct(">I")
#: Upper bound on one message frame (a whole-file reply can be large).
MAX_FRAME = 1 << 30

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs for :class:`TcpChannel`.

    ``attempts`` bounds total tries (1 = no retry).  Attempt ``i`` waits
    ``min(max_delay, base_delay * multiplier ** (i-1))`` before its
    retransmit; delays are deterministic (no jitter) so tests and
    measurements are reproducible.
    """

    attempts: int = 4
    timeout: float = 30.0
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def delay_before(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (the first retry is 1)."""
        return min(self.max_delay,
                   self.base_delay * self.multiplier ** (attempt - 1))


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError("frame too large")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame."""
    (length,) = _LENGTH.unpack(recv_exact(sock, 4))
    if length > MAX_FRAME:
        raise ProtocolError("peer announced an oversized frame")
    return recv_exact(sock, length)


def error_reply_bytes(backend, request_bytes: bytes,
                      exc: Exception) -> bytes | None:
    """Encode an ErrorReply for a request the backend failed on.

    The failing request is re-decoded (best effort) so the reply echoes
    its ``request_id`` and trace trailer -- a pipelined client, and the
    obs layer, can then correlate the failure with the request that
    caused it.  Returns ``None`` when the backend has no wire context
    (a baseline backend cannot produce protocol messages at all).
    """
    ctx = getattr(backend, "ctx", None)
    if ctx is None:
        return None
    from repro.protocol import messages as msg
    request_id = 0
    trace = None
    try:
        request = msg.decode_message(ctx, request_bytes)
        request_id = getattr(request, "request_id", 0) or 0
        trace = msg.get_trace(request)
    except Exception:
        pass  # undecodable request: nothing to echo
    reply = msg.ErrorReply(code=msg.E_BAD_REQUEST, detail=str(exc),
                           request_id=request_id)
    return msg.encode_message(ctx, reply, trace=trace)


class _Handler(socketserver.BaseRequestHandler):
    def setup(self) -> None:
        super().setup()
        self.server.track_handler(self.request)  # type: ignore[attr-defined]
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.TCP_CONNECTIONS.inc()
            ins.TCP_INFLIGHT.inc()

    def finish(self) -> None:
        self.server.untrack_handler(self.request)  # type: ignore[attr-defined]
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.TCP_INFLIGHT.dec()
        super().finish()

    def handle(self) -> None:
        backend = self.server.backend  # type: ignore[attr-defined]
        while True:
            try:
                request = recv_frame(self.request)
            except (ConnectionError, OSError):
                return
            try:
                response = backend.handle_bytes(request)
            except Exception as exc:  # never kill the connection silently
                response = error_reply_bytes(backend, request, exc)
                if response is None:
                    # A baseline backend without a wire context cannot
                    # produce an ErrorReply; close the connection loudly
                    # instead of dying with an AttributeError.
                    logger.error("backend %r failed without a wire context "
                                 "to report through: %s",
                                 type(backend).__name__, exc)
                    return
            try:
                send_frame(self.request, response)
            except OSError:
                return


class _ThreadedServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    # Handler threads are daemonic so a crashed process still exits, but
    # TcpServerHost.stop() joins them itself (with a deadline) instead of
    # the unbounded join block_on_close would do in server_close().
    daemon_threads = True
    block_on_close = False

    def __init__(self, server_address, handler_class,
                 max_conns: int | None = None) -> None:
        super().__init__(server_address, handler_class)
        #: Bounds concurrently served connections: the accept loop blocks
        #: on a slot before dispatching a handler thread (backpressure --
        #: excess clients queue in the listen backlog).
        self.conn_slots = (threading.BoundedSemaphore(max_conns)
                           if max_conns else None)
        self._handlers_mutex = threading.Lock()
        #: Live handler threads and their client sockets, so shutdown can
        #: join them and unblock the ones parked in recv.
        self._handler_threads: dict[threading.Thread, socket.socket] = {}

    # -- connection bookkeeping (called from _Handler.setup/finish) -----

    def track_handler(self, sock: socket.socket) -> None:
        with self._handlers_mutex:
            self._handler_threads[threading.current_thread()] = sock

    def untrack_handler(self, _sock: socket.socket) -> None:
        with self._handlers_mutex:
            self._handler_threads.pop(threading.current_thread(), None)

    def live_handlers(self) -> list[tuple[threading.Thread, socket.socket]]:
        with self._handlers_mutex:
            return [(t, s) for t, s in self._handler_threads.items()
                    if t.is_alive()]

    # -- concurrency bound ----------------------------------------------

    def process_request(self, request, client_address) -> None:
        if self.conn_slots is not None:
            self.conn_slots.acquire()
        try:
            super().process_request(request, client_address)
        except BaseException:
            # Dispatch failed before process_request_thread could run
            # (e.g. thread creation hit a resource limit), so the
            # release in its finally block will never happen.  Give the
            # slot back here or the connection budget shrinks forever.
            if self.conn_slots is not None:
                self.conn_slots.release()
            raise

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            if self.conn_slots is not None:
                self.conn_slots.release()


class TcpServerHost:
    """Hosts a ``handle_bytes`` backend on a TCP port.

    Usable as a context manager::

        with TcpServerHost(CloudServer()) as host:
            channel = TcpChannel(host.address, server.ctx)

    A stopped host can be started again: ``start`` after ``stop``
    recreates the server socket (rebinding the same address) and a fresh
    acceptor thread.

    ``max_conns`` bounds the number of concurrently served connections;
    further clients wait in the listen backlog until a slot frees up.

    ``stop()`` shuts down in an orderly, bounded way: the accept loop is
    stopped, idle connections are nudged closed (read-half shutdown, so a
    reply in flight still goes out), and outstanding handler threads are
    *joined* up to ``grace`` seconds -- a handler mid-request (e.g. inside
    a WAL fsync) finishes its work instead of being killed mid-write.
    Only handlers still alive after the grace period are abandoned (their
    sockets force-closed) so a wedged backend cannot hang shutdown
    forever.
    """

    def __init__(self, backend, host: str = "127.0.0.1", port: int = 0,
                 max_conns: int | None = None) -> None:
        if not hasattr(backend, "handle_bytes"):
            raise TypeError("backend must expose handle_bytes")
        if max_conns is not None and max_conns < 1:
            raise ValueError("max_conns must be >= 1")
        self.backend = backend
        self.max_conns = max_conns
        self._bind_address = (host, port)
        self._server: _ThreadedServer | None = self._make_server()
        self._thread: threading.Thread | None = None
        self._started = False

    def _make_server(self) -> _ThreadedServer:
        server = _ThreadedServer(self._bind_address, _Handler,
                                 max_conns=self.max_conns)
        server.backend = self.backend  # type: ignore[attr-defined]
        # Remember the kernel-assigned port so a restart rebinds it.
        self._bind_address = server.server_address
        return server

    @property
    def address(self) -> tuple[str, int]:
        if self._server is not None:
            return self._server.server_address  # type: ignore[return-value]
        return self._bind_address

    def start(self) -> "TcpServerHost":
        if not self._started:
            if self._server is None:
                self._server = self._make_server()
            # threading.Thread objects are single-use: make a new one
            # per start so stop() -> start() works.
            self._thread = threading.Thread(target=self._server.serve_forever,
                                            name="repro-tcp-server",
                                            daemon=True)
            self._thread.start()
            self._started = True
        return self

    def stop(self, grace: float = 5.0) -> None:
        """Stop accepting, drain handlers (bounded by ``grace`` seconds)."""
        if not self._started:
            return
        assert self._server is not None
        server = self._server
        server.shutdown()  # stop the accept loop

        # Nudge every open connection: closing the read half makes a
        # handler parked in recv_frame() return immediately, while a
        # handler mid-request can still send its reply and the backend
        # work it started (WAL append + fsync) completes untouched.
        for _thread, sock in server.live_handlers():
            try:
                sock.shutdown(socket.SHUT_RD)
            except OSError:
                pass

        deadline = time.monotonic() + max(0.0, grace)
        abandoned = 0
        for thread, sock in server.live_handlers():
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                # Out of grace: force the socket closed and give the
                # thread one last brief chance before abandoning it
                # (it is daemonic and can no longer reach a live socket).
                abandoned += 1
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                thread.join(timeout=0.1)
        if abandoned:
            logger.warning("tcp host stop: abandoned %d handler thread(s) "
                           "still running after %.1fs grace", abandoned, grace)

        server.server_close()
        self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._started = False

    def __enter__(self) -> "TcpServerHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class TcpChannel(Channel):
    """Client channel over a persistent TCP connection.

    Round trips run under ``retry``: a timed-out or broken exchange tears
    the socket down (late replies die with it), re-dials, and retransmits
    the same encoded bytes.  Mutating messages carry idempotent request
    ids, so a retransmit the server already applied is answered from its
    replay cache.
    """

    def __init__(self, address: tuple[str, int], ctx: WireContext,
                 network: NetworkModel | None = None,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None) -> None:
        super().__init__(ctx, network)
        if retry is None:
            retry = RetryPolicy(timeout=timeout if timeout is not None
                                else 30.0)
        elif timeout is not None:
            raise ValueError("pass the timeout inside the RetryPolicy")
        self.retry = retry
        self._address = address
        self._sock: socket.socket | None = None
        #: Transport framing bytes, kept apart from the protocol counters.
        self.frame_bytes = 0
        self._lock = threading.Lock()
        #: Set by close(): wakes a retry parked in its backoff sleep and
        #: stops further attempts from re-dialling.
        self._closing = threading.Event()
        self._connect()  # fail fast if the server is unreachable

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(self._address,
                                        timeout=self.retry.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _invalidate(self) -> None:
        """Drop the connection: its byte stream can hold a stale reply."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _transport(self, request_bytes: bytes) -> bytes:
        last_error: Exception | None = None
        for attempt in range(self.retry.attempts):
            if attempt:
                # Back off OUTSIDE the lock: a concurrent close() (or
                # another caller) must not wait out the whole retry
                # schedule.  The wait doubles as the close interrupt.
                if self._closing.wait(self.retry.delay_before(attempt)):
                    break
                self.counters.retransmits += 1
                if obs.enabled:
                    from repro.obs import instruments as ins
                    ins.RPC_RETRANSMITS.inc()
                    log_event("rpc.retransmit", attempt=attempt,
                              error=repr(last_error))
            with self._lock:
                if self._closing.is_set():
                    break
                try:
                    sock = self._sock if self._sock is not None \
                        else self._connect()
                    send_frame(sock, request_bytes)
                    response = recv_frame(sock)
                except ProtocolError:
                    # Peer framing violation: not transient, do not retry.
                    self._invalidate()
                    raise
                except (OSError, ConnectionError) as exc:
                    # Includes socket.timeout/TimeoutError.  The stream
                    # may still deliver this request's reply later, so
                    # the socket must never be reused.
                    self._invalidate()
                    last_error = exc
                    continue
                self.frame_bytes += 8  # 4-byte length each way
                return response
        if self._closing.is_set():
            raise ChannelError("channel is closed")
        raise ChannelError(
            f"request failed after {self.retry.attempts} attempt(s): "
            f"{last_error!r}")

    def close(self) -> None:
        self._closing.set()  # wakes a retry parked in its backoff sleep
        with self._lock:
            self._invalidate()

    def __enter__(self) -> "TcpChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`repro.analysis.complexity` -- Table I (scaling-law fits).
* :mod:`repro.analysis.table2` -- Table II (deletion overhead at scale).
* :mod:`repro.analysis.figures` -- Figures 5 and 6 (per-op sweeps).
* :mod:`repro.analysis.table3` -- Table III (whole-file access ratios).
* :mod:`repro.analysis.ablation` -- hash / store / two-level ablations.
* :mod:`repro.analysis.run_all` -- one-shot regeneration of everything.
"""

from repro.analysis.config import full_scale
from repro.analysis.harness import (SeededFile, build_dense_file,
                                    build_seeded_file, measure_ops)

__all__ = ["SeededFile", "build_dense_file", "build_seeded_file",
           "full_scale", "measure_ops"]

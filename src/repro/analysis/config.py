"""Scale knobs for the experiment harness.

Defaults keep the whole benchmark suite runnable in minutes on a laptop;
setting ``REPRO_FULL_SCALE=1`` reproduces the paper's exact scales
(Table II at 10^5 items, Figures 5/6 up to 10^7 items) at the cost of a
much longer run.  Every regenerated table records which scale produced it.
"""

from __future__ import annotations

import os


def full_scale() -> bool:
    """Whether to run at the paper's exact scales."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false")


def table2_item_count() -> int:
    """Items in the Table II file (paper: 10^5)."""
    return 100_000 if full_scale() else 10_000


def table2_master_key_measured_count() -> int:
    """Real items measured for the master-key row before linear scaling."""
    return 10_000 if full_scale() else 500


def figure_grid() -> list[int]:
    """The n sweep of Figures 5 and 6 (paper: 10 .. 10^7)."""
    top = 8 if full_scale() else 7
    return [10 ** e for e in range(1, top)]


def figure_samples(n: int) -> int:
    """Per-operation samples at one grid point."""
    if n >= 1_000_000:
        return 10
    if n >= 10_000:
        return 20
    return 30


def table3_grid() -> list[int]:
    """File sizes for Table III (paper: 10^3 .. 10^6)."""
    return [1000, 10_000, 100_000, 1_000_000] if full_scale() else [1000, 4000]


def complexity_grid() -> list[int]:
    """Item counts for the Table I scaling fit.

    Few, widely-spaced points: the fit discriminates log from linear best
    when the grid spans two orders of magnitude.
    """
    return [64, 256, 1024, 4096]

"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that output aligned and readable both in terminal
capture files and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def format_bytes(count: float) -> str:
    """Human-readable byte count (binary units, as the paper's MB reads)."""
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024 or unit == "TB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration spanning microseconds to minutes."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60:.1f} min"


def format_count(value: float) -> str:
    """Counts with thousands separators (e.g. item totals)."""
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.1f}"


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned ASCII table with a title line."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in rows)
    return f"{title}\n" + "\n".join(body)


def render_series(title: str, x_label: str, series: dict[str, dict[int, float]],
                  value_format=format_bytes) -> str:
    """Render one figure's data as a table: x values down, series across."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [format_count(x)]
        for name in series:
            value = series[name].get(x)
            row.append(value_format(value) if value is not None else "-")
        rows.append(row)
    return render_table(title, headers, rows)

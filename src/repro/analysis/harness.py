"""Shared experiment plumbing: file factories and per-op measurement.

The central piece is :func:`build_seeded_file`, which stands up an
arbitrarily large outsourced file in O(1) time and memory: the modulation
tree is a :class:`~repro.core.modstore.LazySeededStore` (modulators
derived from a seed, writes in an overlay) and the ciphertexts come from
a callback that reproduces, on demand, exactly what the client would have
uploaded (keys derived from the *pristine* seed store under the original
master key, so ciphertexts stay valid across deletions by Theorem 1).
Per-operation bytes and client hash counts are identical to a dense
materialised setup -- asserted by ``tests/analysis/test_harness.py`` --
because they depend only on tree depth.  DESIGN.md records this as the
benchmark-scale substitution for the paper's EC2-resident 10^7-item files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.baselines.keymod import KeyModulationScheme
from repro.core.ciphertext import ItemCodec
from repro.core.modstore import LazySeededStore
from repro.core.modulated_chain import ChainEngine
from repro.core.params import Params
from repro.core.tree import ModulationTree
from repro.crypto.rng import DeterministicRandom
from repro.crypto.sha1 import Sha1
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from repro.server.storage import CallbackCiphertextStore
from repro.sim.metrics import MetricsCollector


@dataclass
class SeededFile:
    """Handles to a benchmark-scale outsourced file."""

    server: CloudServer
    scheme: KeyModulationScheme
    file_id: int
    n_items: int
    first_item_id: int
    item_size: int

    def item_id(self, index: int) -> int:
        if not 0 <= index < self.n_items:
            raise IndexError("item index out of range")
        return self.first_item_id + index


def _derive_nonce(seed: bytes, item_id: int) -> bytes:
    hasher = Sha1()
    hasher.update(seed)
    hasher.update(b"nonce")
    hasher.update(struct.pack(">Q", item_id))
    return hasher.digest()[:8]


def _derive_payload(seed: bytes, item_id: int, size: int) -> bytes:
    """Deterministic item contents (vectorised keystream expansion)."""
    if size == 0:
        return b""
    hasher = Sha1()
    hasher.update(seed)
    hasher.update(b"payload")
    hasher.update(struct.pack(">Q", item_id))
    digest = hasher.digest()
    from repro.crypto.bulk import keystream
    return keystream(digest[:16], digest[16:] + b"\x00" * 4,
                     (size + 15) // 16)[:size]


def build_seeded_file(n_items: int, item_size: int, *, seed: str = "bench",
                      params: Params | None = None, file_id: int = 1,
                      first_item_id: int = 1,
                      metrics: MetricsCollector | None = None) -> SeededFile:
    """Stand up an ``n_items`` x ``item_size`` file in O(1) time/memory."""
    params = params if params is not None else Params()
    seed_bytes = seed.encode("utf-8")
    width = params.modulator_size

    # Server side: lazily-seeded tree and callback ciphertexts.  The
    # duplicate-modulator registry is off (a 2^-80 event at this width),
    # which DESIGN.md lists among the benchmark-scale substitutions.
    store = LazySeededStore(width, seed_bytes)
    tree = ModulationTree.adopt_arithmetic(store, n_items, first_item_id)

    pristine = LazySeededStore(width, seed_bytes)
    engine = ChainEngine(params.chain_hash)
    codec = ItemCodec(params)
    master_key = DeterministicRandom(seed_bytes + b"master").bytes(
        params.master_key_size)

    def derive_ciphertext(item_id: int) -> bytes:
        index = item_id - first_item_id
        slot = n_items + index
        modulators = [pristine.get_link(s)
                      for s in ModulationTree.path_slots(slot)[1:]]
        modulators.append(pristine.get_leaf(slot))
        chain_output = engine.evaluate(master_key, modulators)
        payload = _derive_payload(seed_bytes, item_id, item_size)
        return codec.encrypt(chain_output, payload, item_id,
                             _derive_nonce(seed_bytes, item_id))

    ciphertexts = CallbackCiphertextStore(derive_ciphertext)
    server = CloudServer(params)
    server.adopt_file(file_id, tree, ciphertexts, build_registry=False)

    channel = LoopbackChannel(server)
    scheme = KeyModulationScheme(channel, params,
                                 rng=DeterministicRandom(seed_bytes + b"ops"),
                                 metrics=metrics, file_id=file_id)
    scheme.adopt_master_key(master_key)
    # Item ids must continue past the pre-seeded range for insertions.
    scheme.client.keystore._next_item_id = first_item_id + n_items

    return SeededFile(server=server, scheme=scheme, file_id=file_id,
                      n_items=n_items, first_item_id=first_item_id,
                      item_size=item_size)


def build_dense_file(n_items: int, item_size: int, *, seed: str = "dense",
                     params: Params | None = None, file_id: int = 1,
                     metrics: MetricsCollector | None = None,
                     ) -> tuple[SeededFile, list[int]]:
    """Fully materialised file via the real outsourcing protocol.

    Returns the handles plus the item ids.  Used for small scales and for
    the dense-vs-lazy equivalence checks.
    """
    params = params if params is not None else Params()
    rng = DeterministicRandom(seed)
    items = []
    block = rng.bytes(n_items * item_size)
    for i in range(n_items):
        items.append(block[i * item_size:(i + 1) * item_size])

    server = CloudServer(params)
    channel = LoopbackChannel(server)
    scheme = KeyModulationScheme(channel, params,
                                 rng=DeterministicRandom(seed + "-ops"),
                                 metrics=metrics, file_id=file_id)
    item_ids = scheme.outsource(items)
    handle = SeededFile(server=server, scheme=scheme, file_id=file_id,
                        n_items=n_items,
                        first_item_id=item_ids[0] if item_ids else 1,
                        item_size=item_size)
    return handle, item_ids


def measure_ops(handle: SeededFile, op: str, samples: int,
                rng: DeterministicRandom) -> MetricsCollector:
    """Run ``samples`` operations of one kind; return their records only."""
    collector = MetricsCollector()
    scheme = handle.scheme
    previous = scheme.metrics
    scheme.metrics = collector
    scheme.client.metrics = collector
    try:
        live = list(range(handle.n_items))
        payload = _derive_payload(b"op-payload", 0, handle.item_size)
        for _ in range(samples):
            if op == "access":
                index = live[rng.below(len(live))]
                scheme.access(handle.item_id(index))
            elif op == "insert":
                scheme.insert(payload)
            elif op == "delete":
                position = rng.below(len(live))
                index = live.pop(position)
                scheme.delete(handle.item_id(index))
            else:
                raise ValueError(f"unknown op {op!r}")
    finally:
        scheme.metrics = previous
        scheme.client.metrics = previous
    return collector

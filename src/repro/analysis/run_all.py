"""Regenerate every table and figure in one run.

Usage::

    python -m repro.analysis.run_all [output-path]

Prints all regenerated tables/series and, when an output path is given,
writes the same content there.  ``REPRO_FULL_SCALE=1`` switches to the
paper's exact scales (slower).
"""

from __future__ import annotations

import sys
import time

from repro.analysis.ablation import (run_hash_ablation, run_store_ablation,
                                     run_two_level_ablation)
from repro.analysis.complexity import run_table1
from repro.analysis.config import figure_grid, full_scale, table2_item_count
from repro.analysis.figures import render_figure5, render_figure6, run_sweep
from repro.analysis.table2 import run_table2
from repro.analysis.table3 import run_table3


def generate_report() -> str:
    """Run every experiment and return the full text report."""
    sections = []
    scale_note = ("paper scale (REPRO_FULL_SCALE=1)" if full_scale()
                  else "reduced scale (set REPRO_FULL_SCALE=1 for paper scale)")
    sections.append(f"# Regenerated evaluation -- {scale_note}\n")

    start = time.perf_counter()
    table1, _fits = run_table1()
    sections.append(table1)

    table2, _rows2 = run_table2()
    sections.append(table2)

    sweep = run_sweep()
    sections.append(render_figure5(sweep))
    sections.append(render_figure6(sweep))

    table3, _rows3 = run_table3()
    sections.append(table3)

    hash_table, _ = run_hash_ablation()
    sections.append(hash_table)
    store_table, _ = run_store_ablation()
    sections.append(store_table)
    two_level_table, _ = run_two_level_ablation()
    sections.append(two_level_table)

    elapsed = time.perf_counter() - start
    sections.append(f"(regenerated in {elapsed:.1f} s; "
                    f"figure grid up to n={max(figure_grid()):,}, "
                    f"Table II at n={table2_item_count():,})")
    return "\n\n".join(sections) + "\n"


def main(argv: list[str]) -> int:
    report = generate_report()
    print(report)
    if len(argv) > 1:
        with open(argv[1], "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"written to {argv[1]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""Table III: whole-file access overhead.

When the client fetches an entire file it additionally fetches the whole
modulation tree and derives every data key.  The paper defines

* the **communication overhead ratio**: tree bytes / file bytes, and
* the **computation overhead ratio**: key-derivation time / decryption
  time,

and finds both essentially independent of file size (< 1 % and < 0.3 %).

The communication ratio is a pure byte count and is computed exactly for
any ``n``.  The computation ratio is measured on real fetches at the
configured sizes; its numerator is ``3n-2`` short hashes and its
denominator ``n`` item decrypt-verifications, so the ratio is constant in
``n`` by construction -- the measurement confirms it and also exposes the
interpreter-constant skew discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.config import table3_grid
from repro.analysis.harness import build_dense_file
from repro.analysis.render import render_table
from repro.core.params import Params
from repro.protocol import messages as msg
from repro.sim.workload import PAPER_ITEM_SIZE


@dataclass
class Table3Row:
    n_items: int
    comm_ratio: float
    comp_ratio: float
    measured: bool


def exact_comm_ratio(n: int, item_size: int = PAPER_ITEM_SIZE,
                     params: Params | None = None) -> float:
    """Exact tree-bytes / file-bytes for an ``n``-item file.

    Tree bytes: ``(3n-2)`` modulators of one digest width (the wire
    framing adds a handful of fixed bytes, negligible and excluded as the
    paper excludes TCP framing).  File bytes: ``n`` ciphertexts.
    """
    params = params if params is not None else Params()
    width = params.modulator_size
    from repro.core.ciphertext import ItemCodec
    overhead = ItemCodec(params).overhead()
    tree_bytes = (3 * n - 2) * width
    file_bytes = n * (item_size + overhead)
    return tree_bytes / file_bytes


def measure_ratios(n: int, item_size: int = PAPER_ITEM_SIZE) -> Table3Row:
    """Fetch a real file once; split derivation time from decryption time."""
    handle, _ids = build_dense_file(n, item_size, seed=f"tab3-{n}")
    client = handle.scheme.client
    master_key = handle.scheme._key()

    reply = client.channel.request(msg.FetchFileRequest(file_id=handle.file_id))
    assert isinstance(reply, msg.FetchFileReply)

    # Communication ratio from the exact encoded sizes.
    width = client.params.modulator_size
    tree_bytes = (len(reply.links) + len(reply.leaves)) * width
    file_bytes = sum(len(c) for c in reply.ciphertexts)
    comm_ratio = tree_bytes / file_bytes

    # Computation ratio: derive all keys, then decrypt everything.
    start = time.perf_counter()
    outputs = client._derive_outputs(master_key, reply.n_leaves, reply.links,
                                     reply.leaves)
    derive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    client.codec.decrypt_many(
        [outputs[reply.n_leaves + i] for i in range(reply.n_leaves)],
        list(reply.ciphertexts))
    decrypt_seconds = time.perf_counter() - start

    return Table3Row(n_items=n, comm_ratio=comm_ratio,
                     comp_ratio=derive_seconds / decrypt_seconds,
                     measured=True)


#: The paper's Table III: n -> (comm ratio, comp ratio).
PAPER_VALUES = {
    1000: (0.0076, 0.0029),
    10_000: (0.0077, 0.0029),
    100_000: (0.0077, 0.0028),
    1_000_000: (0.0077, 0.0028),
}


def run_table3(grid: list[int] | None = None,
               exact_grid: list[int] = (1000, 10_000, 100_000, 1_000_000),
               ) -> tuple[str, list[Table3Row]]:
    """Regenerate Table III; returns (rendered text, measured rows)."""
    grid = grid if grid is not None else table3_grid()
    rows: list[Table3Row] = [measure_ratios(n) for n in grid]

    rendered = []
    for n in exact_grid:
        measured = next((r for r in rows if r.n_items == n), None)
        paper_comm, paper_comp = PAPER_VALUES.get(n, (None, None))
        comm = measured.comm_ratio if measured else exact_comm_ratio(n)
        comm_cell = (f"{comm * 100:.2f}%"
                     + (f" (paper {paper_comm * 100:.2f}%)" if paper_comm else ""))
        if measured:
            comp_cell = (f"{measured.comp_ratio * 100:.2f}%"
                         + (f" (paper {paper_comp * 100:.2f}%)"
                            if paper_comp else ""))
        else:
            comp_cell = "size-independent; see measured rows"
        rendered.append([f"{n:,}", comm_cell, comp_cell,
                         "measured" if measured else "comm exact"])
    for row in rows:
        if row.n_items not in exact_grid:
            rendered.append([f"{row.n_items:,}",
                             f"{row.comm_ratio * 100:.2f}%",
                             f"{row.comp_ratio * 100:.2f}%", "measured"])

    table = render_table(
        "Table III -- whole-file access overhead ratios (vs paper)",
        ["n items", "comm ratio", "comp ratio", "source"], rendered)
    return table, rows

"""Figures 5 and 6: per-operation overhead vs file size.

Figure 5 plots the average communication overhead (KB) of deleting,
inserting, or accessing one data item as the item count sweeps 10..10^7;
Figure 6 plots the average client computation time (ms) for the same
sweep.  Both grow logarithmically in the paper.

We regenerate both from one sweep.  Byte counts are exact.  For client
computation the harness reports wall-clock *and* the exact number of
chain-hash invocations: pure-Python wall time carries a large constant
from the per-item AES/hash work (the paper's C-speed constant is ~1000x
smaller), while the hash count isolates the tree-walk term whose
logarithmic growth is the paper's claim.  EXPERIMENTS.md reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.config import figure_grid, figure_samples
from repro.analysis.harness import build_seeded_file, measure_ops
from repro.analysis.render import (format_bytes, format_count, format_seconds,
                                   render_series)
from repro.crypto.rng import DeterministicRandom
from repro.sim.workload import PAPER_ITEM_SIZE

_OPS = ("delete", "insert", "access")


@dataclass
class SweepResult:
    """Per-op series over the n grid."""

    comm_bytes: dict[str, dict[int, float]] = field(default_factory=dict)
    comp_seconds: dict[str, dict[int, float]] = field(default_factory=dict)
    hash_calls: dict[str, dict[int, float]] = field(default_factory=dict)

    def ensure_op(self, op: str) -> None:
        self.comm_bytes.setdefault(op, {})
        self.comp_seconds.setdefault(op, {})
        self.hash_calls.setdefault(op, {})


def run_sweep(grid: list[int] | None = None,
              item_size: int = PAPER_ITEM_SIZE) -> SweepResult:
    """Measure delete/insert/access at every grid point."""
    grid = grid if grid is not None else figure_grid()
    result = SweepResult()
    for op in _OPS:
        result.ensure_op(op)
    for n in grid:
        handle = build_seeded_file(n, item_size, seed=f"fig-{n}")
        samples = figure_samples(n)
        rng = DeterministicRandom(f"fig-rng-{n}")
        # Non-destructive ops first so the tree is pristine for each kind.
        for op in ("access", "insert", "delete"):
            sample_count = min(samples, n) if op == "delete" else samples
            collector = measure_ops(handle, op, sample_count, rng)
            records = collector.records
            result.comm_bytes[op][n] = (
                sum(r.overhead_bytes for r in records) / len(records))
            result.comp_seconds[op][n] = (
                sum(r.client_seconds for r in records) / len(records))
            result.hash_calls[op][n] = (
                sum(r.hash_calls for r in records) / len(records))
    return result


def render_figure5(result: SweepResult) -> str:
    return render_series(
        "Figure 5 -- communication overhead per operation "
        "(protocol bytes, item payload excluded)",
        "n items", result.comm_bytes, value_format=format_bytes)


def render_figure6(result: SweepResult) -> str:
    time_table = render_series(
        "Figure 6 -- client computation per operation (wall clock)",
        "n items", result.comp_seconds, value_format=format_seconds)
    hash_table = render_series(
        "Figure 6 (companion) -- exact chain-hash invocations per operation",
        "n items", result.hash_calls, value_format=format_count)
    return time_table + "\n\n" + hash_table


def log_growth_ratio(series: dict[int, float]) -> float:
    """Mean per-decade increment / value at the first decade.

    Logarithmic series have a roughly constant per-decade increment; this
    ratio is used by tests to confirm the Figure 5/6 shape (clearly
    sub-linear, visibly growing).
    """
    ns = sorted(series)
    if len(ns) < 3:
        raise ValueError("need at least three decades")
    increments = [series[b] - series[a] for a, b in zip(ns, ns[1:])]
    mean_increment = sum(increments) / len(increments)
    return mean_increment / max(series[ns[0]], 1e-12)

"""Table I: complexity comparison of the three solutions.

The paper states the asymptotics analytically; we *measure* them.  Each
solution's client storage and per-deletion communication/computation are
sampled over a geometric grid of file sizes, and the growth law is
classified by least-squares fit against constant, logarithmic, and linear
models.  The regenerated table reports the fitted class next to the
paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.config import complexity_grid
from repro.analysis.render import render_table
from repro.baselines.base import BlobStoreServer
from repro.baselines.individual_key import IndividualKeySolution
from repro.baselines.keymod import KeyModulationScheme
from repro.baselines.master_key import MasterKeySolution
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from repro.sim.workload import make_items

_ITEM_SIZE = 64
_DELETES_PER_POINT = 21


def _robust(values: list[float]) -> float:
    """Lower-quartile aggregate: timing noise is one-sided (GC pauses,
    scheduler preemption only ever ADD time), so the lower quartile tracks
    the true cost far better than the mean or even the median."""
    ordered = sorted(values)
    return ordered[len(ordered) // 4]


def classify_growth(ns: list[int], ys: list[float]) -> str:
    """Least-squares classification into O(1) / O(log n) / O(n).

    Fits ``y = a + b*f(n)`` for f in {log n, n} and compares residuals
    against the constant model.  A more complex model is accepted only if
    it explains a substantial share of the variance (noise on
    microsecond-scale timings would otherwise always prefer the extra
    parameter) and its slope contributes a non-trivial fraction of the
    observed values.
    """
    x = np.asarray(ns, dtype=float)
    y = np.asarray(ys, dtype=float)
    if y.max() <= 0:
        return "O(1)"
    constant_residual = float(np.sum((y - y.mean()) ** 2))

    def fit(feature: np.ndarray) -> tuple[float, float]:
        design = np.column_stack([np.ones_like(feature), feature])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        fitted = design @ coef
        residual = float(np.sum((y - fitted) ** 2))
        slope_share = float(coef[1] * (feature.max() - feature.min())
                            / max(abs(y).max(), 1e-12))
        return residual, slope_share

    log_residual, log_share = fit(np.log2(x))
    lin_residual, lin_share = fit(x)

    # Growth must explain >= 60% of the variance and move the values by
    # >= 35% across the grid to count as growth at all -- the genuine
    # logarithmic terms of this system contribute ~45-60% over a 64x
    # grid, while microsecond-scale timer artefacts stay around 20%.
    explains = {
        "O(log n)": (log_residual < 0.4 * constant_residual
                     and log_share > 0.35),
        "O(n)": (lin_residual < 0.4 * constant_residual and lin_share > 0.35),
    }
    # Dynamic-range guard: a genuinely linear series over a grid spanning
    # R x in n grows by ~R x in y (modulo an additive constant); a noisy
    # logarithmic series never does.  Without this, one slow top-of-grid
    # sample can make the linear fit win on residuals alone.
    n_range = x.max() / x.min()
    y_range = y.max() / max(y.min(), 1e-12)
    if n_range >= 16 and y_range < max(4.0, 0.1 * n_range):
        explains["O(n)"] = False
    if not any(explains.values()):
        return "O(1)"
    if explains["O(log n)"] and explains["O(n)"]:
        return "O(log n)" if log_residual <= lin_residual else "O(n)"
    return "O(log n)" if explains["O(log n)"] else "O(n)"


@dataclass
class SchemeScaling:
    """Measured deletion scaling of one solution."""

    name: str
    storage_bytes: dict[int, float]
    comm_bytes: dict[int, float]
    comp_seconds: dict[int, float]

    def classified(self) -> tuple[str, str, str]:
        ns = sorted(self.storage_bytes)
        return (
            classify_growth(ns, [self.storage_bytes[n] for n in ns]),
            classify_growth(ns, [self.comm_bytes[n] for n in ns]),
            classify_growth(ns, [self.comp_seconds[n] for n in ns]),
        )


def _build(name: str, seed: str):
    rng = DeterministicRandom(seed)
    if name == "master-key":
        return MasterKeySolution(LoopbackChannel(BlobStoreServer()), rng=rng)
    if name == "individual-key":
        return IndividualKeySolution(LoopbackChannel(BlobStoreServer()), rng=rng)
    if name == "our-work":
        return KeyModulationScheme(LoopbackChannel(CloudServer()), rng=rng)
    raise ValueError(name)


def measure_scaling(name: str, grid: list[int] | None = None) -> SchemeScaling:
    """Measure one solution's deletion cost across the size grid."""
    grid = grid if grid is not None else complexity_grid()
    storage: dict[int, float] = {}
    comm: dict[int, float] = {}
    comp: dict[int, float] = {}
    for n in grid:
        scheme = _build(name, seed=f"tab1-{name}-{n}")
        items = make_items(n, _ITEM_SIZE, DeterministicRandom(f"items-{n}"))
        item_ids = scheme.outsource(items)
        storage[n] = float(scheme.client_storage_bytes())

        pick = DeterministicRandom(f"pick-{name}-{n}")
        live = list(item_ids)
        # The O(n) scheme's deletions are ms-to-seconds and noise-free;
        # three samples suffice there, while the microsecond-scale schemes
        # get the full count to beat timer noise.
        deletes = 3 if name == "master-key" else _DELETES_PER_POINT
        for _ in range(min(deletes, len(live))):
            victim = live.pop(pick.below(len(live)))
            scheme.delete(victim)
        records = scheme.metrics.for_op("delete")
        comm[n] = _robust([float(r.overhead_bytes) for r in records])
        comp[n] = _robust([r.client_seconds for r in records])
    return SchemeScaling(name=name, storage_bytes=storage, comm_bytes=comm,
                         comp_seconds=comp)


#: The paper's Table I claims, for side-by-side rendering.
PAPER_CLAIMS = {
    "master-key": ("O(1)", "O(n)", "O(n)"),
    "individual-key": ("O(n)", "O(1)", "O(1)"),
    "our-work": ("O(1)", "O(log n)", "O(log n)"),
}


def run_table1(grid: list[int] | None = None) -> tuple[str, dict[str, tuple]]:
    """Regenerate Table I; returns (rendered text, fitted classes)."""
    results = {}
    rows = []
    for name in ("master-key", "individual-key", "our-work"):
        scaling = measure_scaling(name, grid)
        fitted = scaling.classified()
        results[name] = fitted
        paper = PAPER_CLAIMS[name]
        rows.append([
            name,
            f"{fitted[0]} (paper {paper[0]})",
            f"{fitted[1]} (paper {paper[1]})",
            f"{fitted[2]} (paper {paper[2]})",
        ])
    table = render_table(
        "Table I -- complexity comparison (measured fit vs paper claim)",
        ["solution", "client storage", "deletion comm", "deletion comp"],
        rows)
    return table, results

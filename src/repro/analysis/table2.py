"""Table II: deletion overhead of the three solutions at the paper's scale.

Paper setting: one file of 10^5 items x 4 KB.  Reported values:

    ==================  ==========  ==============  =========
    overhead            master-key  individual-key  our work
    ==================  ==========  ==============  =========
    client storage      16 B        1.53 MB         16 B
    communication       391 MB      ~0              1.61 KB
    computation         5.5 min     ~0              0.24 ms
    ==================  ==========  ==============  =========

Measurement strategy (recorded in EXPERIMENTS.md):

* **our work** is measured directly at the target scale on a seeded file;
* **individual-key** deletion is O(1), measured on a real small instance;
  its client storage is ``n x 16 B`` by construction (verified on the
  small instance, scaled arithmetically);
* **master-key** deletion is O(n) with hundreds of megabytes of traffic
  and minutes of crypto at full scale; it is measured on a reduced real
  instance and scaled linearly in ``n`` -- the exact linearity the paper's
  own analysis asserts (every item is transferred and re-encrypted once).

One interpretation note: the paper reports 391 MB, which is one file
volume; our accounting counts both directions (download + re-upload),
roughly two file volumes.  Both directions are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.config import (table2_item_count,
                                   table2_master_key_measured_count)
from repro.analysis.harness import build_seeded_file, measure_ops
from repro.analysis.render import format_bytes, format_seconds, render_table
from repro.baselines.base import BlobStoreServer
from repro.baselines.individual_key import IndividualKeySolution
from repro.baselines.master_key import MasterKeySolution
from repro.crypto.rng import DeterministicRandom
from repro.protocol.channel import LoopbackChannel
from repro.sim.workload import PAPER_ITEM_SIZE, make_items


@dataclass
class Table2Row:
    """One solution's measured (or measured-and-scaled) deletion cost."""

    name: str
    storage_bytes: float
    comm_bytes: float
    comp_seconds: float
    note: str = ""


def measure_our_work(n: int, item_size: int = PAPER_ITEM_SIZE,
                     samples: int = 5) -> Table2Row:
    handle = build_seeded_file(n, item_size, seed=f"tab2-{n}")
    collector = measure_ops(handle, "delete", samples,
                            DeterministicRandom("tab2-ours"))
    records = collector.records
    return Table2Row(
        name="our-work",
        storage_bytes=float(handle.scheme.client_storage_bytes()),
        comm_bytes=sum(r.overhead_bytes for r in records) / len(records),
        comp_seconds=sum(r.client_seconds for r in records) / len(records),
        note=f"measured at n={n}",
    )


def measure_individual_key(n: int, measured_n: int = 500,
                           item_size: int = PAPER_ITEM_SIZE) -> Table2Row:
    scheme = IndividualKeySolution(LoopbackChannel(BlobStoreServer()),
                                   rng=DeterministicRandom("tab2-ik"))
    items = make_items(measured_n, item_size, DeterministicRandom("ik-items"))
    item_ids = scheme.outsource(items)
    per_item_storage = scheme.client_storage_bytes() / measured_n
    scheme.delete(item_ids[measured_n // 2])
    record = scheme.metrics.for_op("delete")[0]
    return Table2Row(
        name="individual-key",
        storage_bytes=per_item_storage * n,
        comm_bytes=float(record.overhead_bytes),
        comp_seconds=record.client_seconds,
        note=f"deletion measured at n={measured_n} (O(1) in n); "
             f"storage = n x {per_item_storage:.0f} B",
    )


def measure_master_key(n: int, measured_n: int | None = None,
                       item_size: int = PAPER_ITEM_SIZE) -> Table2Row:
    measured_n = (measured_n if measured_n is not None
                  else table2_master_key_measured_count())
    scheme = MasterKeySolution(LoopbackChannel(BlobStoreServer()),
                               rng=DeterministicRandom("tab2-mk"))
    items = make_items(measured_n, item_size, DeterministicRandom("mk-items"))
    item_ids = scheme.outsource(items)
    scheme.delete(item_ids[measured_n // 2])
    record = scheme.metrics.for_op("delete")[0]
    scale = n / measured_n
    return Table2Row(
        name="master-key",
        storage_bytes=float(scheme.client_storage_bytes()),
        comm_bytes=record.total_bytes * scale,
        comp_seconds=record.client_seconds * scale,
        note=f"measured at n={measured_n}, scaled x{scale:.0f} "
             f"(O(n): every item transferred and re-encrypted once)",
    )


#: The paper's Table II values for side-by-side rendering.
PAPER_VALUES = {
    "master-key": (16.0, 391 * 1024 * 1024, 5.5 * 60),
    "individual-key": (1.53 * 1024 * 1024, 0.0, 0.0),
    "our-work": (16.0, 1.61 * 1024, 0.24e-3),
}


def run_table2(n: int | None = None) -> tuple[str, dict[str, Table2Row]]:
    """Regenerate Table II; returns (rendered text, per-scheme rows)."""
    n = n if n is not None else table2_item_count()
    rows = {
        "master-key": measure_master_key(n),
        "individual-key": measure_individual_key(n),
        "our-work": measure_our_work(n),
    }
    rendered_rows = []
    for name in ("master-key", "individual-key", "our-work"):
        row = rows[name]
        paper_storage, paper_comm, paper_comp = PAPER_VALUES[name]
        rendered_rows.append([
            name,
            f"{format_bytes(row.storage_bytes)} "
            f"(paper {format_bytes(paper_storage)})",
            f"{format_bytes(row.comm_bytes)} "
            f"(paper {format_bytes(paper_comm)})",
            f"{format_seconds(row.comp_seconds)} "
            f"(paper {format_seconds(paper_comp)})",
        ])
    table = render_table(
        f"Table II -- deletion overhead at n={n}, 4 KB items "
        f"(measured vs paper)",
        ["solution", "client storage", "communication", "computation"],
        rendered_rows)
    notes = "\n".join(f"  note[{row.name}]: {row.note}"
                      for row in rows.values() if row.note)
    return table + "\n" + notes, rows

"""Hardware normalisation: predict the paper's absolute times from our
exact operation counts.

Pure-Python wall clock carries an interpreter constant the paper's
C-speed client does not, but the *operation counts* measured by this
harness are exact: chain-hash invocations, hashed payload bytes, and
AES-processed bytes.  Charging those counts with native per-operation
costs (a 3.4 GHz desktop of the paper's era: ~1000 cycles per short SHA-1
invocation, ~10 cycles/byte SHA-1 bulk, ~15 cycles/byte table-based AES)
predicts what the paper's testbed would measure for the same operation.

The Figure 6 benchmark uses this to check that our measured *counts*
reproduce the paper's measured *milliseconds* -- the strongest form of
the "same shape, interpreter constant aside" claim in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareProfile:
    """Per-operation costs of a native-code client."""

    name: str
    clock_hz: float
    cycles_per_short_hash: float   # one compression + call overhead
    cycles_per_hash_byte: float    # bulk hashing, amortised
    cycles_per_aes_byte: float     # table-based AES (pre-AES-NI era)

    def seconds(self, *, short_hashes: float = 0.0, hashed_bytes: float = 0.0,
                aes_bytes: float = 0.0) -> float:
        cycles = (short_hashes * self.cycles_per_short_hash
                  + hashed_bytes * self.cycles_per_hash_byte
                  + aes_bytes * self.cycles_per_aes_byte)
        return cycles / self.clock_hz


#: Roughly the paper's client: Intel Core i7 @ 3.4 GHz, C crypto, no AES-NI
#: assumed (2013-era OpenSSL software AES ~ 15-20 cycles/byte; SHA-1 ~ 8-12
#: cycles/byte bulk, ~1000 cycles per short call including overhead).
PAPER_CLIENT = HardwareProfile(name="i7-3.4GHz (paper)", clock_hz=3.4e9,
                               cycles_per_short_hash=1000,
                               cycles_per_hash_byte=10,
                               cycles_per_aes_byte=18)


def predict_delete_seconds(hash_calls: float, item_size: int,
                           profile: HardwareProfile = PAPER_CLIENT) -> float:
    """Predicted native time for one assured deletion.

    The client work is ``hash_calls`` short chain hashes plus one
    decrypt-verification of the target item (AES over the ciphertext and
    one hash over the plaintext).
    """
    return profile.seconds(short_hashes=hash_calls,
                           hashed_bytes=item_size,
                           aes_bytes=item_size)


def predict_access_seconds(hash_calls: float, item_size: int,
                           profile: HardwareProfile = PAPER_CLIENT) -> float:
    """Predicted native time for one access (path walk + decrypt-verify)."""
    return predict_delete_seconds(hash_calls, item_size, profile)


def predict_whole_file_ratio(n_items: int, item_size: int,
                             profile: HardwareProfile = PAPER_CLIENT) -> float:
    """Predicted Table III computation ratio on native hardware.

    Numerator: ``3n-2`` short hashes (whole-tree key derivation).
    Denominator: ``n`` item decrypt-verifications.
    """
    derive = profile.seconds(short_hashes=3 * n_items - 2)
    decrypt = profile.seconds(hashed_bytes=n_items * item_size,
                              aes_bytes=n_items * item_size)
    return derive / decrypt

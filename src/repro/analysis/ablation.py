"""Ablation studies for the design choices DESIGN.md calls out.

Not in the paper -- these quantify the knobs the reproduction exposes:

1. **Chain hash**: SHA-1 (the paper's 160-bit instantiation) vs SHA-256
   (256-bit modulators).  Wider modulators mean proportionally more bytes
   per level and a slower compression function.
2. **Store layout**: dense bytearray vs lazily-seeded store -- setup cost
   versus identical per-operation cost.
3. **Two-level key management** (Section V): a fine-grained deletion
   through the file system costs one deletion in the file tree *plus* an
   assured replace (delete + insert) in the meta tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.harness import build_dense_file, build_seeded_file, measure_ops
from repro.analysis.render import (format_bytes, format_seconds, render_table)
from repro.core.params import PAPER_PARAMS, SHA256_PARAMS
from repro.crypto.rng import DeterministicRandom
from repro.fs.filesystem import OutsourcedFileSystem
from repro.sim.workload import make_items


@dataclass
class HashAblationRow:
    name: str
    modulator_bits: int
    delete_comm_bytes: float
    delete_hashes: float
    delete_seconds: float


def run_hash_ablation(n: int = 4096, item_size: int = 256,
                      samples: int = 5) -> tuple[str, list[HashAblationRow]]:
    """Deletion cost under SHA-1 vs SHA-256 chains."""
    rows = []
    for name, params in (("sha1 (paper)", PAPER_PARAMS),
                         ("sha256", SHA256_PARAMS)):
        handle = build_seeded_file(n, item_size, seed=f"abl-hash-{name}",
                                   params=params)
        collector = measure_ops(handle, "delete", samples,
                                DeterministicRandom(f"abl-{name}"))
        records = collector.records
        rows.append(HashAblationRow(
            name=name,
            modulator_bits=params.modulator_size * 8,
            delete_comm_bytes=sum(r.overhead_bytes for r in records) / len(records),
            delete_hashes=sum(r.hash_calls for r in records) / len(records),
            delete_seconds=sum(r.client_seconds for r in records) / len(records),
        ))
    table = render_table(
        f"Ablation 1 -- chain hash (n={n})",
        ["chain hash", "modulator", "delete comm", "delete hashes",
         "delete client time"],
        [[r.name, f"{r.modulator_bits} bit", format_bytes(r.delete_comm_bytes),
          f"{r.delete_hashes:.0f}", format_seconds(r.delete_seconds)]
         for r in rows])
    return table, rows


def run_store_ablation(n: int = 4096, item_size: int = 64
                       ) -> tuple[str, dict[str, float]]:
    """Setup time of dense outsourcing vs seeded adoption at equal n."""
    start = time.perf_counter()
    dense_handle, _ids = build_dense_file(n, item_size, seed="abl-store")
    dense_setup = time.perf_counter() - start

    start = time.perf_counter()
    lazy_handle = build_seeded_file(n, item_size, seed="abl-store-lazy")
    lazy_setup = time.perf_counter() - start

    def delete_cost(handle) -> float:
        collector = measure_ops(handle, "delete", 5,
                                DeterministicRandom("abl-store-ops"))
        return (sum(r.overhead_bytes for r in collector.records)
                / len(collector.records))

    dense_delete = delete_cost(dense_handle)
    lazy_delete = delete_cost(lazy_handle)

    table = render_table(
        f"Ablation 2 -- store layout (n={n})",
        ["store", "setup time", "delete comm (identical expected)"],
        [["dense (real outsourcing)", format_seconds(dense_setup),
          format_bytes(dense_delete)],
         ["lazily seeded", format_seconds(lazy_setup),
          format_bytes(lazy_delete)]])
    return table, {"dense_setup": dense_setup, "lazy_setup": lazy_setup,
                   "dense_delete": dense_delete, "lazy_delete": lazy_delete}


def run_two_level_sweep(n_items: int = 256,
                        file_counts: tuple[int, ...] = (4, 16, 64, 256),
                        ) -> tuple[str, dict[int, float]]:
    """Two-level deletion cost as the file count m grows.

    The paper's Section V cost argument: a fine-grained deletion is one
    deletion in the file's tree (O(log n)) plus an assured replace in the
    meta tree (O(log m)).  The sweep shows the meta term growing
    logarithmically in m while the file term stays fixed.
    """
    results: dict[int, float] = {}
    for m in file_counts:
        fs = OutsourcedFileSystem(rng=DeterministicRandom(f"2lvl-{m}"))
        for i in range(m - 1):
            fs.create_file(f"g/file-{i:04d}", [b"x"])
        target = fs.create_file("g/target",
                                make_items(n_items, 64,
                                           DeterministicRandom(f"t-{m}")))
        fs.metrics.clear()
        target.delete_record(n_items // 2)
        results[m] = float(sum(r.overhead_bytes for r in fs.metrics.records))
    table = render_table(
        f"Ablation 3b -- two-level deletion vs file count (file n={n_items})",
        ["meta files m", "delete comm (file tree + meta tree)"],
        [[f"{m}", format_bytes(v)] for m, v in sorted(results.items())])
    return table, results


def run_two_level_ablation(n_items: int = 1024, n_files: int = 32
                           ) -> tuple[str, dict[str, float]]:
    """Single-level deletion vs full two-level (Section V) deletion."""
    # Single level: a standalone file of n items.
    handle = build_seeded_file(n_items, 256, seed="abl-2lvl")
    collector = measure_ops(handle, "delete", 5,
                            DeterministicRandom("abl-2lvl-ops"))
    single = collector.records
    single_bytes = sum(r.overhead_bytes for r in single) / len(single)
    single_rt = sum(r.round_trips for r in single) / len(single)

    # Two level: the same deletion through a file system whose meta tree
    # holds n_files master keys.
    fs = OutsourcedFileSystem(rng=DeterministicRandom("abl-fs"))
    target = None
    for i in range(n_files):
        records = make_items(4, 256, DeterministicRandom(f"abl-f{i}"))
        handle_fs = fs.create_file(f"group/file-{i:03d}", records)
        if i == n_files // 2:
            target = handle_fs
    big = fs.create_file("group/big-file",
                         make_items(n_items, 256,
                                    DeterministicRandom("abl-big")))
    fs.metrics.clear()
    big.delete_record(n_items // 2)
    two_level = fs.metrics.records
    two_bytes = sum(r.overhead_bytes for r in two_level)
    two_rt = sum(r.round_trips for r in two_level)

    table = render_table(
        f"Ablation 3 -- two-level key management "
        f"(file n={n_items}, meta m={n_files + 1})",
        ["configuration", "delete comm", "round trips"],
        [["single level (client holds master key)",
          format_bytes(single_bytes), f"{single_rt:.0f}"],
         ["two level (master keys in meta tree)",
          format_bytes(two_bytes), f"{two_rt:.0f}"]])
    return table, {"single_bytes": single_bytes, "two_level_bytes": two_bytes,
                   "single_round_trips": single_rt,
                   "two_level_round_trips": two_rt}

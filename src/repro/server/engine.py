"""Out-of-core storage engines: the ``TreeStore`` backend family.

The in-memory server keeps every modulator, item mapping, and ciphertext
of every file resident.  A :class:`TreeStore` engine moves that state
out-of-core: the server materialises only the root-to-leaf paths a
request touches (see :mod:`repro.server.paging`) and flushes dirty nodes
back at compaction time, so resident memory is O(active working set)
instead of O(n).

Three engines share one interface:

* :class:`MemoryTreeStore` -- dict-backed; the default and the twin-world
  reference the durable engines are tested against.
* :class:`LogTreeStore` -- a single append-only log-structured file.
  Every flush appends the dirty records followed by one COMMIT record
  and fsyncs; the opening scan discards any uncommitted tail, so a crash
  mid-flush atomically reverts to the previous durable state (the WAL
  then replays the lost tail through the normal handlers).  Values are
  read back by offset (``os.pread``), never held resident.
* :class:`SQLiteTreeStore` -- a single-file SQLite schema with per-file
  node, item, and ciphertext tables.  The node table's primary key
  ``(file_id, kind, slot)`` *is* the ``(file_id, node_path)`` index: a
  heap slot number encodes the root path bit-by-bit (see
  :meth:`repro.core.tree.ModulationTree.slot_path`), so a path lookup is
  a point query per level.  Dirty state accumulates in one transaction
  per flush; a crash rolls it back via SQLite's journal.

Addressing
----------

Tree nodes are addressed ``(file_id, kind, slot)`` with ``kind`` one of
:data:`KIND_LINK` / :data:`KIND_LEAF` -- the same slot numbering the
:class:`~repro.core.modstore.ModulatorStore` interface uses.  Items map
bidirectionally (``item_id <-> slot``); ciphertexts are keyed by item
id; per-file metadata is ``(version, n_leaves)``.  The request-id replay
table persists the idempotency cache so retried commits stay
exactly-once across an engine-backed restart (the role the checkpoint
image's replay section plays for pickle persistence).

Write batches
-------------

``write_nodes`` / ``write_items`` / ``write_ciphertexts`` stage changes;
``flush`` is the durability barrier.  Between the two, reads observe the
staged values (same-process read-your-writes); after a crash, everything
since the last ``flush`` is gone -- the contract the server's
``compact_storage`` relies on when it truncates the WAL only after
``flush`` returns.

``write_items`` applies in two passes (all old mappings removed before
any new mapping lands) so a batch that moves item A onto the slot item B
just vacated cannot corrupt the reverse index regardless of entry order.
"""

from __future__ import annotations

import abc
import os
import sqlite3
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.errors import ProtocolError

#: Node kinds (the engine-level encoding of tree.LINK / tree.LEAF).
KIND_LINK = 0
KIND_LEAF = 1

#: Engine backends selectable via ``make_engine`` and ``--backend``.
BACKENDS = ("memory", "log", "sqlite")

#: On-disk filename per durable backend (under a server's state dir).
ENGINE_FILENAMES = {"log": "state.log", "sqlite": "state.db"}


@dataclass
class FileMeta:
    """Per-file engine metadata: tree version and shape."""

    file_id: int
    version: int
    n_leaves: int


class TreeStore(abc.ABC):
    """Out-of-core storage for modulation trees, items, and ciphertexts."""

    # -- per-file metadata ---------------------------------------------

    @abc.abstractmethod
    def get_meta(self, file_id: int) -> Optional[FileMeta]:
        """Return the file's metadata, or ``None`` if unknown."""

    @abc.abstractmethod
    def set_meta(self, meta: FileMeta) -> None:
        """Create or update a file's metadata."""

    @abc.abstractmethod
    def drop_file(self, file_id: int) -> None:
        """Discard every record of ``file_id`` (idempotent)."""

    @abc.abstractmethod
    def file_ids(self) -> list[int]:
        """Ids of every stored file (sorted)."""

    # -- tree nodes -----------------------------------------------------

    @abc.abstractmethod
    def get_node(self, file_id: int, kind: int, slot: int) -> bytes:
        """Return one modulator value (raises ``KeyError`` if absent)."""

    @abc.abstractmethod
    def write_nodes(self, file_id: int,
                    entries: Iterable[tuple[int, int, Optional[bytes]]]) -> None:
        """Stage ``(kind, slot, value)`` writes; ``value=None`` deletes."""

    # -- item map -------------------------------------------------------

    @abc.abstractmethod
    def get_slot(self, file_id: int, item_id: int) -> Optional[int]:
        """Leaf slot of ``item_id``, or ``None`` if the item is unknown."""

    @abc.abstractmethod
    def get_item(self, file_id: int, slot: int) -> Optional[int]:
        """Item id at leaf ``slot``, or ``None`` if the slot is empty."""

    @abc.abstractmethod
    def write_items(self, file_id: int,
                    entries: Iterable[tuple[int, Optional[int]]]) -> None:
        """Stage ``(item_id, slot)`` mappings; ``slot=None`` removes."""

    # -- ciphertexts ----------------------------------------------------

    @abc.abstractmethod
    def get_ciphertext(self, file_id: int, item_id: int) -> bytes:
        """Return one ciphertext (raises ``KeyError`` if absent)."""

    @abc.abstractmethod
    def write_ciphertexts(self, file_id: int,
                          entries: Iterable[tuple[int, Optional[bytes]]]) -> None:
        """Stage ``(item_id, ciphertext)`` writes; ``None`` deletes."""

    # -- replay table ---------------------------------------------------

    @abc.abstractmethod
    def replay_entries(self) -> list[tuple[int, bytes]]:
        """Persisted ``(request_id, encoded reply)`` idempotency entries."""

    @abc.abstractmethod
    def set_replay_entries(self,
                           entries: Iterable[tuple[int, bytes]]) -> None:
        """Replace the persisted idempotency table (eviction order kept)."""

    # -- lifecycle ------------------------------------------------------

    @abc.abstractmethod
    def flush(self) -> None:
        """Durability barrier: staged writes survive a crash after this."""

    def compact(self) -> None:
        """Reclaim dead space (optional; durable backends override)."""

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()


class MemoryTreeStore(TreeStore):
    """Dict-backed engine: the default, and the twin-world reference."""

    def __init__(self) -> None:
        self._meta: dict[int, FileMeta] = {}
        self._nodes: dict[int, dict[tuple[int, int], bytes]] = {}
        self._slot_of: dict[int, dict[int, int]] = {}
        self._item_at: dict[int, dict[int, int]] = {}
        self._cts: dict[int, dict[int, bytes]] = {}
        self._replay: list[tuple[int, bytes]] = []

    def get_meta(self, file_id: int) -> Optional[FileMeta]:
        meta = self._meta.get(file_id)
        return None if meta is None else FileMeta(meta.file_id, meta.version,
                                                 meta.n_leaves)

    def set_meta(self, meta: FileMeta) -> None:
        self._meta[meta.file_id] = FileMeta(meta.file_id, meta.version,
                                            meta.n_leaves)

    def drop_file(self, file_id: int) -> None:
        for table in (self._meta, self._nodes, self._slot_of,
                      self._item_at, self._cts):
            table.pop(file_id, None)

    def file_ids(self) -> list[int]:
        return sorted(self._meta)

    def get_node(self, file_id: int, kind: int, slot: int) -> bytes:
        return self._nodes[file_id][(kind, slot)]

    def write_nodes(self, file_id, entries) -> None:
        nodes = self._nodes.setdefault(file_id, {})
        for kind, slot, value in entries:
            if value is None:
                nodes.pop((kind, slot), None)
            else:
                nodes[(kind, slot)] = bytes(value)

    def get_slot(self, file_id: int, item_id: int) -> Optional[int]:
        return self._slot_of.get(file_id, {}).get(item_id)

    def get_item(self, file_id: int, slot: int) -> Optional[int]:
        return self._item_at.get(file_id, {}).get(slot)

    def write_items(self, file_id, entries) -> None:
        slot_of = self._slot_of.setdefault(file_id, {})
        item_at = self._item_at.setdefault(file_id, {})
        pairs = list(entries)
        # Two passes: clear every touched item's old slot first, so a
        # move onto a just-vacated slot is order-independent.
        for item_id, _slot in pairs:
            old = slot_of.pop(item_id, None)
            if old is not None and item_at.get(old) == item_id:
                item_at.pop(old, None)
        for item_id, slot in pairs:
            if slot is not None:
                slot_of[item_id] = slot
                item_at[slot] = item_id

    def get_ciphertext(self, file_id: int, item_id: int) -> bytes:
        return self._cts[file_id][item_id]

    def write_ciphertexts(self, file_id, entries) -> None:
        cts = self._cts.setdefault(file_id, {})
        for item_id, value in entries:
            if value is None:
                cts.pop(item_id, None)
            else:
                cts[item_id] = bytes(value)

    def replay_entries(self) -> list[tuple[int, bytes]]:
        return list(self._replay)

    def set_replay_entries(self, entries) -> None:
        self._replay = [(rid, bytes(blob)) for rid, blob in entries]

    def flush(self) -> None:
        pass


# ---------------------------------------------------------------------
# Append-only log-structured engine
# ---------------------------------------------------------------------

_LOG_MAGIC = b"RSTR"
_LOG_VERSION = 1
_LOG_HEADER = _LOG_MAGIC + struct.pack(">H", _LOG_VERSION)
_FRAME = struct.Struct(">II")  # payload length | CRC-32 of payload

_TAG_META = 0x01
_TAG_NODE = 0x02
_TAG_ITEM = 0x03
_TAG_CT = 0x04
_TAG_DROP = 0x05
_TAG_REPLAY = 0x06
_TAG_COMMIT = 0x11

_META_REC = struct.Struct(">BQQQ")      # tag | file_id | version | n_leaves
_NODE_HDR = struct.Struct(">BQBQB")     # tag | file_id | kind | slot | present
_ITEM_REC = struct.Struct(">BQQBQ")     # tag | file_id | item_id | present | slot
_CT_HDR = struct.Struct(">BQQB")        # tag | file_id | item_id | present
_DROP_REC = struct.Struct(">BQ")        # tag | file_id
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")


class _FileIndex:
    """In-memory index of one file's records (values stay on disk)."""

    __slots__ = ("meta", "nodes", "slot_of", "item_at", "cts")

    def __init__(self, meta: FileMeta) -> None:
        self.meta = meta
        #: (kind, slot) -> (value offset, value length) in the log file.
        self.nodes: dict[tuple[int, int], tuple[int, int]] = {}
        self.slot_of: dict[int, int] = {}
        self.item_at: dict[int, int] = {}
        #: item_id -> (value offset, value length).
        self.cts: dict[int, tuple[int, int]] = {}


class LogTreeStore(TreeStore):
    """Append-only log-structured engine (one file, offset-indexed).

    Record stream: ``header | (u32 len | u32 crc | payload)*``.  Payload
    tags cover metadata, nodes, items, ciphertexts, whole-file drops,
    the replay table, and COMMIT markers.  Only records preceding a
    COMMIT are live: the opening scan truncates everything after the
    last committed offset, which makes each ``flush`` (records + COMMIT
    + fsync) atomic under crash.

    The index keeps offsets, not values; node and ciphertext reads are
    single ``pread`` calls.  Item mappings and metadata are small
    integers and stay resident -- the documented scaling limit of this
    backend versus SQLite (see ``docs/STORAGE.md``).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.RLock()
        self._index: dict[int, _FileIndex] = {}
        #: (offset, length) of the latest replay-table record, if any.
        self._replay_blob: Optional[tuple[int, int]] = None
        self._open()

    # -- open / scan ----------------------------------------------------

    def _open(self) -> None:
        self._index = {}
        self._replay_blob = None
        end = self._scan()
        self._append = open(self.path, "ab")
        if self._append.tell() != end:  # torn/uncommitted tail
            self._append.truncate(end)
            self._append.flush()
            os.fsync(self._append.fileno())
        self._read = open(self.path, "rb")
        self._end = end
        self._committed_end = end
        self._dirty = False

    def _scan(self) -> int:
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            with open(self.path, "wb") as handle:
                handle.write(_LOG_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            from repro.server.wal import fsync_directory
            fsync_directory(self.path)
            return len(_LOG_HEADER)
        if not data or (len(data) < len(_LOG_HEADER)
                        and _LOG_HEADER.startswith(data)):
            with open(self.path, "wb") as handle:
                handle.write(_LOG_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            return len(_LOG_HEADER)
        if data[:4] != _LOG_MAGIC:
            raise ProtocolError(f"{self.path!r} is not a tree-store log")
        version = struct.unpack(">H", data[4:6])[0]
        if version != _LOG_VERSION:
            raise ProtocolError(f"unsupported tree-store version {version}")

        pos = len(_LOG_HEADER)
        committed = pos
        pending: list[tuple[int, bytes]] = []  # (payload offset, payload)
        while pos < len(data):
            if pos + _FRAME.size > len(data):
                break
            length, crc = _FRAME.unpack_from(data, pos)
            payload_off = pos + _FRAME.size
            payload = data[payload_off:payload_off + length]
            if len(payload) < length:
                break
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break
            pos = payload_off + length
            if payload[0] == _TAG_COMMIT:
                for off, record in pending:
                    self._apply_record(off, record)
                pending.clear()
                committed = pos
            else:
                pending.append((payload_off, payload))
        return committed

    def _apply_record(self, payload_off: int, payload: bytes) -> None:
        tag = payload[0]
        if tag == _TAG_META:
            _t, file_id, version, n_leaves = _META_REC.unpack_from(payload)
            index = self._index.get(file_id)
            if index is None:
                self._index[file_id] = _FileIndex(
                    FileMeta(file_id, version, n_leaves))
            else:
                index.meta = FileMeta(file_id, version, n_leaves)
        elif tag == _TAG_NODE:
            _t, file_id, kind, slot, present = _NODE_HDR.unpack_from(payload)
            index = self._ensure(file_id)
            if present:
                index.nodes[(kind, slot)] = (
                    payload_off + _NODE_HDR.size,
                    len(payload) - _NODE_HDR.size)
            else:
                index.nodes.pop((kind, slot), None)
        elif tag == _TAG_ITEM:
            _t, file_id, item_id, present, slot = _ITEM_REC.unpack_from(payload)
            index = self._ensure(file_id)
            old = index.slot_of.pop(item_id, None)
            if old is not None and index.item_at.get(old) == item_id:
                index.item_at.pop(old, None)
            if present:
                index.slot_of[item_id] = slot
                index.item_at[slot] = item_id
        elif tag == _TAG_CT:
            _t, file_id, item_id, present = _CT_HDR.unpack_from(payload)
            index = self._ensure(file_id)
            if present:
                index.cts[item_id] = (payload_off + _CT_HDR.size,
                                      len(payload) - _CT_HDR.size)
            else:
                index.cts.pop(item_id, None)
        elif tag == _TAG_DROP:
            _t, file_id = _DROP_REC.unpack_from(payload)
            self._index.pop(file_id, None)
        elif tag == _TAG_REPLAY:
            self._replay_blob = (payload_off, len(payload))
        else:
            raise ProtocolError(f"unknown tree-store record tag {tag:#x}")

    def _ensure(self, file_id: int) -> _FileIndex:
        index = self._index.get(file_id)
        if index is None:
            index = _FileIndex(FileMeta(file_id, 0, 0))
            self._index[file_id] = index
        return index

    # -- append path ----------------------------------------------------

    def _emit(self, payload: bytes) -> int:
        """Append one framed record; returns the payload's file offset."""
        frame = _FRAME.pack(len(payload),
                            zlib.crc32(payload) & 0xFFFFFFFF) + payload
        payload_off = self._end + _FRAME.size
        self._append.write(frame)
        self._end += len(frame)
        self._dirty = True
        return payload_off

    def _pread(self, offset: int, length: int) -> bytes:
        with self._lock:
            if self._dirty:
                # Staged records live in the append handle's userspace
                # buffer; surface them to the read handle (no fsync --
                # durability waits for flush()).
                self._append.flush()
            return os.pread(self._read.fileno(), length, offset)

    # -- TreeStore API --------------------------------------------------

    def get_meta(self, file_id: int) -> Optional[FileMeta]:
        with self._lock:
            index = self._index.get(file_id)
            if index is None:
                return None
            meta = index.meta
            return FileMeta(meta.file_id, meta.version, meta.n_leaves)

    def set_meta(self, meta: FileMeta) -> None:
        with self._lock:
            self._emit(_META_REC.pack(_TAG_META, meta.file_id, meta.version,
                                      meta.n_leaves))
            self._ensure(meta.file_id).meta = FileMeta(
                meta.file_id, meta.version, meta.n_leaves)

    def drop_file(self, file_id: int) -> None:
        with self._lock:
            if file_id not in self._index:
                return
            self._emit(_DROP_REC.pack(_TAG_DROP, file_id))
            self._index.pop(file_id, None)

    def file_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._index)

    def get_node(self, file_id: int, kind: int, slot: int) -> bytes:
        with self._lock:
            index = self._index.get(file_id)
            if index is None:
                raise KeyError((file_id, kind, slot))
            offset, length = index.nodes[(kind, slot)]
        return self._pread(offset, length)

    def write_nodes(self, file_id, entries) -> None:
        with self._lock:
            index = self._ensure(file_id)
            for kind, slot, value in entries:
                if value is None:
                    if (kind, slot) in index.nodes:
                        self._emit(_NODE_HDR.pack(_TAG_NODE, file_id, kind,
                                                  slot, 0))
                        index.nodes.pop((kind, slot), None)
                else:
                    off = self._emit(_NODE_HDR.pack(_TAG_NODE, file_id, kind,
                                                    slot, 1) + bytes(value))
                    index.nodes[(kind, slot)] = (off + _NODE_HDR.size,
                                                 len(value))

    def get_slot(self, file_id: int, item_id: int) -> Optional[int]:
        with self._lock:
            index = self._index.get(file_id)
            return None if index is None else index.slot_of.get(item_id)

    def get_item(self, file_id: int, slot: int) -> Optional[int]:
        with self._lock:
            index = self._index.get(file_id)
            return None if index is None else index.item_at.get(slot)

    def write_items(self, file_id, entries) -> None:
        with self._lock:
            index = self._ensure(file_id)
            pairs = list(entries)
            for item_id, slot in pairs:
                self._emit(_ITEM_REC.pack(_TAG_ITEM, file_id, item_id,
                                          0 if slot is None else 1,
                                          0 if slot is None else slot))
            # Two-pass index update (matches the record replay semantics).
            for item_id, _slot in pairs:
                old = index.slot_of.pop(item_id, None)
                if old is not None and index.item_at.get(old) == item_id:
                    index.item_at.pop(old, None)
            for item_id, slot in pairs:
                if slot is not None:
                    index.slot_of[item_id] = slot
                    index.item_at[slot] = item_id

    def get_ciphertext(self, file_id: int, item_id: int) -> bytes:
        with self._lock:
            index = self._index.get(file_id)
            if index is None:
                raise KeyError((file_id, item_id))
            offset, length = index.cts[item_id]
        return self._pread(offset, length)

    def write_ciphertexts(self, file_id, entries) -> None:
        with self._lock:
            index = self._ensure(file_id)
            for item_id, value in entries:
                if value is None:
                    if item_id in index.cts:
                        self._emit(_CT_HDR.pack(_TAG_CT, file_id, item_id, 0))
                        index.cts.pop(item_id, None)
                else:
                    off = self._emit(_CT_HDR.pack(_TAG_CT, file_id, item_id, 1)
                                     + bytes(value))
                    index.cts[item_id] = (off + _CT_HDR.size, len(value))

    def replay_entries(self) -> list[tuple[int, bytes]]:
        with self._lock:
            blob_ref = self._replay_blob
        if blob_ref is None:
            return []
        payload = self._pread(*blob_ref)
        count = _U32.unpack_from(payload, 1)[0]
        pos = 1 + _U32.size
        entries = []
        for _ in range(count):
            request_id = _U64.unpack_from(payload, pos)[0]
            pos += _U64.size
            length = _U32.unpack_from(payload, pos)[0]
            pos += _U32.size
            entries.append((request_id, payload[pos:pos + length]))
            pos += length
        return entries

    def set_replay_entries(self, entries) -> None:
        parts = [bytes([_TAG_REPLAY]), b""]
        count = 0
        for request_id, blob in entries:
            parts.append(_U64.pack(request_id))
            parts.append(_U32.pack(len(blob)))
            parts.append(bytes(blob))
            count += 1
        parts[1] = _U32.pack(count)
        with self._lock:
            off = self._emit(b"".join(parts))
            self._replay_blob = (off, sum(len(p) for p in parts))

    def flush(self) -> None:
        with self._lock:
            if not self._dirty and self._end == self._committed_end:
                return
            self._emit(bytes([_TAG_COMMIT]))
            self._append.flush()
            os.fsync(self._append.fileno())
            self._committed_end = self._end
            self._dirty = False

    def compact(self) -> None:
        """Rewrite only the live records into a fresh log (atomic swap)."""
        with self._lock:
            self.flush()
            tmp = self.path + ".tmp"
            rewriter = LogTreeStore.__new__(LogTreeStore)
            rewriter.path = tmp
            rewriter._lock = threading.RLock()
            rewriter._index = {}
            rewriter._replay_blob = None
            with open(tmp, "wb") as handle:
                handle.write(_LOG_HEADER)
            rewriter._append = open(tmp, "ab")
            rewriter._read = open(tmp, "rb")
            rewriter._end = len(_LOG_HEADER)
            rewriter._committed_end = rewriter._end
            rewriter._dirty = False
            for file_id in self.file_ids():
                index = self._index[file_id]
                rewriter.set_meta(index.meta)
                rewriter.write_nodes(file_id, (
                    (kind, slot, self._pread(*ref))
                    for (kind, slot), ref in sorted(index.nodes.items())))
                rewriter.write_items(file_id, sorted(index.slot_of.items()))
                rewriter.write_ciphertexts(file_id, (
                    (item_id, self._pread(*ref))
                    for item_id, ref in sorted(index.cts.items())))
            rewriter.set_replay_entries(self.replay_entries())
            rewriter.flush()
            rewriter._append.close()
            rewriter._read.close()
            self._append.close()
            self._read.close()
            os.replace(tmp, self.path)
            from repro.server.wal import fsync_directory
            fsync_directory(self.path)
            self._index = rewriter._index
            self._replay_blob = rewriter._replay_blob
            self._append = open(self.path, "ab")
            self._read = open(self.path, "rb")
            self._end = rewriter._end
            self._committed_end = rewriter._committed_end
            self._dirty = False

    def close(self) -> None:
        with self._lock:
            self.flush()
            self._append.close()
            self._read.close()

    # -- pickling (reopen-by-path; used by conformance tests) -----------

    def __getstate__(self):
        self.flush()
        return {"path": self.path}

    def __setstate__(self, state) -> None:
        self.path = state["path"]
        self._lock = threading.RLock()
        self._open()


# ---------------------------------------------------------------------
# SQLite engine
# ---------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS files (
    file_id  INTEGER PRIMARY KEY,
    version  INTEGER NOT NULL,
    n_leaves INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    file_id INTEGER NOT NULL,
    kind    INTEGER NOT NULL,
    slot    INTEGER NOT NULL,
    value   BLOB NOT NULL,
    PRIMARY KEY (file_id, kind, slot)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS items (
    file_id INTEGER NOT NULL,
    item_id INTEGER NOT NULL,
    slot    INTEGER NOT NULL,
    PRIMARY KEY (file_id, item_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS items_by_slot ON items (file_id, slot);
CREATE TABLE IF NOT EXISTS ciphertexts (
    file_id INTEGER NOT NULL,
    item_id INTEGER NOT NULL,
    value   BLOB NOT NULL,
    PRIMARY KEY (file_id, item_id)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS replay (
    seq        INTEGER PRIMARY KEY,
    request_id INTEGER NOT NULL,
    reply      BLOB NOT NULL
);
"""


def _s64(value: int) -> int:
    """Map a u64 id into SQLite's signed 64-bit INTEGER range.

    File, item, and request ids are uniform 64-bit values, so the top
    bit is set half the time; storing them raw overflows SQLite's
    signed INTEGER.  The two's-complement reinterpretation is a
    bijection, so keys stay unique and point lookups exact.
    """
    return value - 0x1_0000_0000_0000_0000 \
        if value >= 0x8000_0000_0000_0000 else value


def _u64(value: int) -> int:
    """Inverse of :func:`_s64`."""
    return value & 0xFFFF_FFFF_FFFF_FFFF


class SQLiteTreeStore(TreeStore):
    """Single-file SQLite engine.

    The ``nodes`` primary key ``(file_id, kind, slot)`` doubles as the
    ``(file_id, node_path)`` index -- slot numbers *are* root-path
    encodings.  All staged writes ride one transaction committed by
    ``flush`` (rollback-journal crash safety); reads on the same
    connection observe the staged state, giving the engine contract's
    read-your-writes without extra buffering.  Ids are stored via the
    :func:`_s64` two's-complement mapping (they are u64 on the wire).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.RLock()
        self._connect()

    def _connect(self) -> None:
        self._conn = sqlite3.connect(self.path, check_same_thread=False,
                                     isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=DELETE").fetchone()
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.executescript(_SCHEMA)
        self._in_txn = False

    def _begin(self) -> None:
        if not self._in_txn:
            self._conn.execute("BEGIN")
            self._in_txn = True

    def get_meta(self, file_id: int) -> Optional[FileMeta]:
        with self._lock:
            row = self._conn.execute(
                "SELECT version, n_leaves FROM files WHERE file_id=?",
                (_s64(file_id),)).fetchone()
        return None if row is None else FileMeta(file_id, row[0], row[1])

    def set_meta(self, meta: FileMeta) -> None:
        with self._lock:
            self._begin()
            self._conn.execute(
                "INSERT OR REPLACE INTO files VALUES (?,?,?)",
                (_s64(meta.file_id), meta.version, meta.n_leaves))

    def drop_file(self, file_id: int) -> None:
        with self._lock:
            self._begin()
            for table in ("files", "nodes", "items", "ciphertexts"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE file_id=?",
                    (_s64(file_id),))

    def file_ids(self) -> list[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT file_id FROM files").fetchall()
        return sorted(_u64(row[0]) for row in rows)

    def get_node(self, file_id: int, kind: int, slot: int) -> bytes:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM nodes WHERE file_id=? AND kind=? AND slot=?",
                (_s64(file_id), kind, slot)).fetchone()
        if row is None:
            raise KeyError((file_id, kind, slot))
        return row[0]

    def write_nodes(self, file_id, entries) -> None:
        fid = _s64(file_id)
        removes, writes = [], []
        for kind, slot, value in entries:
            if value is None:
                removes.append((fid, kind, slot))
            else:
                writes.append((fid, kind, slot, bytes(value)))
        with self._lock:
            self._begin()
            if removes:
                self._conn.executemany(
                    "DELETE FROM nodes WHERE file_id=? AND kind=? AND slot=?",
                    removes)
            if writes:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO nodes VALUES (?,?,?,?)", writes)

    def get_slot(self, file_id: int, item_id: int) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT slot FROM items WHERE file_id=? AND item_id=?",
                (_s64(file_id), _s64(item_id))).fetchone()
        return None if row is None else row[0]

    def get_item(self, file_id: int, slot: int) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT item_id FROM items WHERE file_id=? AND slot=?",
                (_s64(file_id), slot)).fetchone()
        return None if row is None else _u64(row[0])

    def write_items(self, file_id, entries) -> None:
        pairs = list(entries)
        with self._lock:
            self._begin()
            # Two passes: every touched item's old row goes first, so a
            # move onto a just-vacated slot is order-independent.
            fid = _s64(file_id)
            self._conn.executemany(
                "DELETE FROM items WHERE file_id=? AND item_id=?",
                [(fid, _s64(item_id)) for item_id, _slot in pairs])
            self._conn.executemany(
                "INSERT INTO items VALUES (?,?,?)",
                [(fid, _s64(item_id), slot) for item_id, slot in pairs
                 if slot is not None])

    def get_ciphertext(self, file_id: int, item_id: int) -> bytes:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM ciphertexts WHERE file_id=? AND item_id=?",
                (_s64(file_id), _s64(item_id))).fetchone()
        if row is None:
            raise KeyError((file_id, item_id))
        return row[0]

    def write_ciphertexts(self, file_id, entries) -> None:
        fid = _s64(file_id)
        removes, writes = [], []
        for item_id, value in entries:
            if value is None:
                removes.append((fid, _s64(item_id)))
            else:
                writes.append((fid, _s64(item_id), bytes(value)))
        with self._lock:
            self._begin()
            if removes:
                self._conn.executemany(
                    "DELETE FROM ciphertexts WHERE file_id=? AND item_id=?",
                    removes)
            if writes:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO ciphertexts VALUES (?,?,?)",
                    writes)

    def replay_entries(self) -> list[tuple[int, bytes]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT request_id, reply FROM replay ORDER BY seq").fetchall()
        return [(_u64(row[0]), row[1]) for row in rows]

    def set_replay_entries(self, entries) -> None:
        with self._lock:
            self._begin()
            self._conn.execute("DELETE FROM replay")
            self._conn.executemany(
                "INSERT INTO replay VALUES (?,?,?)",
                [(seq, _s64(rid), bytes(blob))
                 for seq, (rid, blob) in enumerate(entries)])

    def flush(self) -> None:
        with self._lock:
            if self._in_txn:
                self._conn.execute("COMMIT")
                self._in_txn = False

    def compact(self) -> None:
        with self._lock:
            self.flush()
            self._conn.execute("VACUUM")

    def close(self) -> None:
        with self._lock:
            self.flush()
            self._conn.close()

    def __getstate__(self):
        self.flush()
        return {"path": self.path}

    def __setstate__(self, state) -> None:
        self.path = state["path"]
        self._lock = threading.RLock()
        self._connect()


def engine_path(state_dir: str, backend: str) -> str:
    """On-disk engine file for ``backend`` under a server's state dir."""
    return os.path.join(state_dir, ENGINE_FILENAMES[backend])


def make_engine(backend: str, path: Optional[str] = None) -> TreeStore:
    """Instantiate a storage engine by backend name.

    ``memory`` ignores ``path``; the durable backends require one.
    """
    if backend == "memory":
        return MemoryTreeStore()
    if path is None:
        raise ValueError(f"backend {backend!r} requires a path")
    if backend == "log":
        return LogTreeStore(path)
    if backend == "sqlite":
        return SQLiteTreeStore(path)
    raise ValueError(f"unknown storage backend {backend!r}; "
                     f"expected one of {BACKENDS}")

"""The honest cloud server.

The server stores, per file, a modulation tree (unencrypted, as the paper
prescribes), the item ciphertexts, and a tree version counter used to
detect interleaved updates between a challenge and its commit.  It also
maintains a duplicate-modulator registry implementing the paper's
server-side requirement that "all modulators in the tree should have
different values ... the server should inform the client to re-perform
the operation with a different modulator".

The server never sees any key material: its entire deletion role is to
ship ``MT(k)`` plus the balancing view, XOR the returned deltas into the
cut's child modulators (Eqs. 6-7), and perform the structural moves.
Everything security-critical is the client's verification; a *malicious*
server is modelled separately in :mod:`repro.server.adversary`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import ReproError, SimulatedCrash, UnknownItemError
from repro.core.params import Params
from repro.core.tree import LINK, ModulationTree, WriteLog
from repro.obs import runtime as obs
from repro.obs.trace import current as current_trace
from repro.obs.trace import log_event, span, trace_scope
from repro.protocol import messages as msg
from repro.protocol.wire import WireContext
from repro.server.locks import FileLockTable, RWLock
from repro.server.storage import CiphertextStore, InMemoryCiphertextStore

#: Crash points a test can arm via :meth:`CloudServer.arm_crash`.
CRASH_POINT_BEFORE_APPLY = "before-apply"
CRASH_POINT_AFTER_APPLY = "after-apply"
#: Compaction seams: before the engine flush (everything since the last
#: compaction is lost and replayed), and after it but before the WAL
#: truncate (state flushed twice; replay must be a no-op).
CRASH_POINT_BEFORE_FLUSH = "before-flush"
CRASH_POINT_AFTER_FLUSH = "after-flush"

#: Message types that mutate server state: WAL-logged and idempotent
#: under their ``request_id``.
MUTATING_REQUESTS = (msg.OutsourceRequest, msg.ModifyCommit,
                     msg.DeleteCommit, msg.BatchDeleteCommit,
                     msg.InsertCommit, msg.DeleteFileRequest)

#: Requests that change the *file table* itself: they serialise against
#: everything by taking the registry lock exclusively.
REGISTRY_REQUESTS = (msg.OutsourceRequest, msg.DeleteFileRequest)


@dataclass
class ServerFile:
    """Per-file server state.

    ``replay_cache`` holds the digest of the last applied state-changing
    commit and the Ack it produced: a retransmitted commit (duplicate
    delivery, or a client retrying after a lost Ack) is answered from the
    cache instead of being applied twice or rejected as stale -- standard
    at-most-once execution for a two-phase exchange.
    """

    tree: ModulationTree
    ciphertexts: CiphertextStore
    version: int = 0
    registry: Optional[dict[bytes, int]] = None
    replay_cache: Optional[tuple[bytes, "msg.Ack"]] = None


class CloudServer:
    """Honest server implementing the full message protocol.

    When a :class:`~repro.server.wal.CommitLog` is attached (``wal``
    argument or :meth:`attach_wal`), every mutating request is made
    durable *before* it is applied, so a crash at any point leaves a
    state that recovery (:func:`~repro.server.wal.recover_server`)
    resolves to all-or-nothing.  Mutating requests with a non-zero
    ``request_id`` are idempotent: the reply is cached (and persisted in
    checkpoint images), so retransmissions are answered without being
    applied twice.
    """

    #: Bound on the idempotency cache (oldest replies evicted first).
    REPLAY_CACHE_LIMIT = 4096

    #: Bound on each file's view/encode cache (cleared wholesale when hit;
    #: entries are version-keyed, so a full cache means a read-heavy
    #: steady state and the next requests simply rebuild).
    VIEW_CACHE_LIMIT = 4096

    #: Serve read replies (access/fetch/challenge views) from the per-file
    #: view cache.  Replies are cached *after* assembly and invalidated
    #: under the file's exclusive lock on every mutation, so a cached
    #: reply is byte-identical to a rebuilt one; flip off to benchmark
    #: the cold path.
    view_cache_enabled = True

    def __init__(self, params: Params | None = None, wal=None,
                 audit=None, engine=None) -> None:
        self.params = params if params is not None else Params()
        self.ctx = WireContext(modulator_width=self.params.modulator_size)
        self._files: dict[int, ServerFile] = {}
        self.wal = wal
        self.audit = audit
        #: Out-of-core storage engine (:mod:`repro.server.engine`); when
        #: attached, files are paged in on demand instead of resident.
        self.engine = None
        self._node_cache = None
        #: breakdown of the last ``recover_server`` run (load vs replay
        #: seconds); ``None`` for a server that never recovered.
        self.last_recovery: Optional[dict] = None
        #: request_id -> reply produced when it was first applied.
        self._applied: OrderedDict[int, msg.Message] = OrderedDict()
        self._crash_point: Optional[str] = None
        self._init_locks()
        if engine is not None:
            self.attach_engine(engine)

    def _init_locks(self) -> None:
        """(Re)create the concurrency-control state.

        Separated from ``__init__`` because lock objects cannot be
        pickled: checkpoint images and the CLI's vault snapshot drop them
        and rebuild fresh (necessarily uncontended) locks on load.
        """
        #: Guards the file table: shared by per-file requests, exclusive
        #: for outsourcing and whole-file deletion.
        self._registry_lock = RWLock()
        #: One reader-writer lock per file id, created on first touch.
        self._file_locks = FileLockTable()
        #: Guards the request-id idempotency cache.
        self._applied_mutex = threading.Lock()
        #: file id -> {key: reply} view/encode cache.  Populated by reads
        #: under the file's shared lock, invalidated under its exclusive
        #: lock, so per-file insertions and invalidations never race.
        self._view_caches: dict[int, dict] = {}
        #: Serialises on-demand file materialisation from the engine
        #: (two readers may race to page in the same file).
        self._materialise_lock = threading.Lock()

    #: Attributes recreated by :meth:`_init_locks` instead of pickled
    #: (the view cache holds replies with memoized encodings -- dropping
    #: it keeps checkpoint images lean and is always safe).
    _UNPICKLED = ("_registry_lock", "_file_locks", "_applied_mutex",
                  "_view_caches", "_materialise_lock")

    def __getstate__(self):
        if self.engine is not None:
            raise TypeError(
                "engine-backed server is not picklable: its durable state "
                "lives in the storage engine (use compact_storage instead "
                "of a pickle snapshot)")
        state = self.__dict__.copy()
        for name in self._UNPICKLED:
            state.pop(name, None)
        # Open log handles cannot travel in a snapshot; a restored server
        # re-attaches its WAL/audit sinks explicitly.
        state["wal"] = None
        state["audit"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._init_locks()

    # ------------------------------------------------------------------
    # Durability plumbing
    # ------------------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Start write-ahead logging mutating requests to ``wal``."""
        self.wal = wal

    def attach_engine(self, engine, *, cache_nodes: int = 65536) -> None:
        """Serve files out-of-core from a storage engine.

        Files already stored in ``engine`` are paged in on demand (a
        request materialises only its root-to-leaf paths, cached in a
        bounded LRU of ``cache_nodes`` nodes); files outsourced while
        running stay resident until :meth:`compact_storage` converts
        them.  The engine's persisted replay table is restored so
        retried commits stay exactly-once across restarts.

        Engine-materialised files run without a duplicate-modulator
        registry (building one would read the whole tree, defeating
        lazy paging); with random modulators a collision is a ~2^-160
        event, and freshly outsourced files keep their registry until
        restart.  ``docs/STORAGE.md`` records the tradeoff.
        """
        from repro.server.paging import NodeCache
        self.engine = engine
        self._node_cache = NodeCache(cache_nodes)
        entries = [(request_id, msg.decode_message(self.ctx, blob))
                   for request_id, blob in engine.replay_entries()]
        if entries:
            self.restore_replay_cache(entries)

    def attach_audit(self, audit) -> None:
        """Start emitting tamper-evident audit records for mutations.

        ``audit`` is an :class:`~repro.obs.audit.AuditLog` (anything with
        an ``append(dict)`` method works).  Every mutating request that
        reaches its handler -- applied or rejected -- is recorded under
        the file's lock, so per-file audit order equals apply order and
        matches the WAL record order exactly.
        """
        self.audit = audit

    def arm_crash(self, point: str) -> None:
        """Arm a one-shot simulated crash (fault-injection testing)."""
        if point not in (CRASH_POINT_BEFORE_APPLY, CRASH_POINT_AFTER_APPLY,
                         CRASH_POINT_BEFORE_FLUSH, CRASH_POINT_AFTER_FLUSH):
            raise ValueError(f"unknown crash point {point!r}")
        self._crash_point = point

    def disarm_crash(self) -> None:
        """Clear an armed crash point that did not fire."""
        self._crash_point = None

    def _fire_crash(self, point: str) -> None:
        if self._crash_point == point:
            self._crash_point = None
            raise SimulatedCrash(f"server crashed at {point}")

    def replay_cache_entries(self) -> list[tuple[int, msg.Message]]:
        """Idempotency cache in eviction order (persistence peer API)."""
        with self._applied_mutex:
            return list(self._applied.items())

    def restore_replay_cache(self,
                             entries: Sequence[tuple[int, msg.Message]]) -> None:
        """Reinstall a persisted idempotency cache (recovery path)."""
        with self._applied_mutex:
            self._applied = OrderedDict(entries)

    def _remember_applied(self, request_id: int, reply: msg.Message) -> None:
        with self._applied_mutex:
            self._applied[request_id] = reply
            while len(self._applied) > self.REPLAY_CACHE_LIMIT:
                self._applied.popitem(last=False)
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.REPLAY_CACHE_SIZE.set(len(self._applied))

    # ------------------------------------------------------------------
    # Transport entry points
    # ------------------------------------------------------------------

    def handle_bytes(self, data: bytes) -> bytes:
        """Decode a request, dispatch it, and encode the reply.

        A trace context arriving in the request's telemetry trailer is
        adopted for the duration of the dispatch, so server-side spans
        (handler, WAL append, fsync) and events (replay-cache hits)
        carry the client's ``trace_id``.
        """
        request = msg.decode_message(self.ctx, data)
        if obs.enabled:
            with trace_scope(msg.get_trace(request)):
                reply = self.handle(request)
        else:
            reply = self.handle(request)
        return msg.encode_message(self.ctx, reply)

    def handle(self, request: msg.Message) -> msg.Message:
        """Dispatch one decoded request to its handler."""
        if obs.enabled:
            return self._handle_observed(request)
        return self._dispatch(request)

    def _handle_observed(self, request: msg.Message) -> msg.Message:
        import time as _time

        from repro.obs import instruments as ins
        mtype = type(request).__name__
        ins.SERVER_REQUESTS.inc(type=mtype)
        with span("server.handle", type=mtype) as sp:
            start = _time.perf_counter()
            reply = self._dispatch(request)
            ins.SERVER_HANDLE_SECONDS.observe(
                _time.perf_counter() - start, type=mtype)
            if isinstance(reply, msg.ErrorReply):
                ins.SERVER_ERRORS.inc(type=mtype, code=str(reply.code))
                sp.annotate(error_code=reply.code)
            file_id = getattr(request, "file_id", None)
            if file_id is not None:
                state = self._files.get(file_id)
                if state is not None:
                    ins.TREE_VERSION.set(state.version,
                                         file_id=str(file_id))
            return reply

    def _dispatch(self, request: msg.Message) -> msg.Message:
        handlers = {
            msg.OutsourceRequest: self._on_outsource,
            msg.AccessRequest: self._on_access,
            msg.ModifyCommit: self._on_modify,
            msg.DeleteRequest: self._on_delete_request,
            msg.DeleteCommit: self._on_delete_commit,
            msg.BatchDeleteRequest: self._on_batch_delete_request,
            msg.BatchDeleteCommit: self._on_batch_delete_commit,
            msg.InsertRequest: self._on_insert_request,
            msg.InsertCommit: self._on_insert_commit,
            msg.FetchFileRequest: self._on_fetch_file,
            msg.DeleteFileRequest: self._on_delete_file,
        }
        handler = handlers.get(type(request))
        if handler is None:
            return msg.ErrorReply(code=msg.E_BAD_REQUEST,
                                  detail=f"unsupported request "
                                         f"{type(request).__name__}")
        mutating = isinstance(request, MUTATING_REQUESTS)
        request_id = getattr(request, "request_id", 0) if mutating else 0
        if request_id:
            with self._applied_mutex:
                cached = self._applied.get(request_id)
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.REPLAY_LOOKUPS.inc(cache="request_id")
                if cached is not None:
                    ins.REPLAY_HITS.inc(cache="request_id")
                    log_event("server.replay_cache_hit",
                              cache="request_id", request_id=request_id,
                              type=type(request).__name__)
            if cached is not None:
                return cached  # retransmission: answer, do not re-apply
        try:
            with self._lock_scope(request, mutating):
                if mutating:
                    if self.wal is not None:
                        # Durable before applied: the encode is
                        # deterministic, so the log holds exactly the
                        # bytes the wire carried.  Appending under the
                        # per-file lock keeps WAL order identical to
                        # apply order for each file.
                        self.wal.append(msg.encode_message(self.ctx, request))
                    self._fire_crash(CRASH_POINT_BEFORE_APPLY)
                audited = mutating and self.audit is not None
                version_before = self._version_of(request) if audited else None
                # Handler failures are converted to ErrorReply HERE,
                # inside the lock scope, so the audit record of a
                # rejected mutation is emitted in apply order too (the
                # WAL already holds the request either way).
                try:
                    reply = handler(request)
                except SimulatedCrash:
                    raise
                except UnknownItemError as exc:
                    reply = msg.ErrorReply(code=msg.E_UNKNOWN_ITEM,
                                           detail=str(exc),
                                           request_id=request_id)
                except ReproError as exc:
                    reply = msg.ErrorReply(code=msg.E_BAD_REQUEST,
                                           detail=str(exc),
                                           request_id=request_id)
                else:
                    if mutating:
                        self._fire_crash(CRASH_POINT_AFTER_APPLY)
                if audited:
                    self._emit_audit(request, reply, version_before)
        except SimulatedCrash:
            raise
        except UnknownItemError as exc:
            reply = msg.ErrorReply(code=msg.E_UNKNOWN_ITEM, detail=str(exc),
                                   request_id=request_id)
        except ReproError as exc:
            reply = msg.ErrorReply(code=msg.E_BAD_REQUEST, detail=str(exc),
                                   request_id=request_id)
        if request_id:
            self._remember_applied(request_id, reply)
        return reply

    # ------------------------------------------------------------------
    # Audit trail
    # ------------------------------------------------------------------

    def _version_of(self, request: msg.Message) -> Optional[int]:
        file_id = getattr(request, "file_id", None)
        if file_id is None:
            return None
        state = self._files.get(file_id)
        return None if state is None else state.version

    def _emit_audit(self, request: msg.Message, reply: msg.Message,
                    version_before: Optional[int]) -> None:
        """Append one chained audit record (file lock held).

        Runs under the same lock scope as the apply, so the audit log's
        per-file record order is exactly the apply order (and therefore
        the WAL order) -- the property the stress harness verifies.
        """
        items: list[int] = []
        item_id = getattr(request, "item_id", None)
        if item_id is not None:
            items.append(item_id)
        items.extend(getattr(request, "item_ids", ()))
        error = isinstance(reply, msg.ErrorReply)
        context = current_trace()
        record = {
            "op": type(request).__name__,
            "request_id": getattr(request, "request_id", 0),
            "trace_id": None if context is None else context.trace_id_hex,
            "file_id": getattr(request, "file_id", None),
            "items": items,
            "version_before": version_before,
            "version_after": self._version_of(request),
            "ok": not error,
            "code": reply.code if error else None,
        }
        self.audit.append(record)

    # ------------------------------------------------------------------
    # Concurrency control
    # ------------------------------------------------------------------

    @contextmanager
    def _lock_scope(self, request: msg.Message, mutating: bool):
        """Hold the locks one request needs, per the documented hierarchy.

        Registry-changing requests (outsource, whole-file delete) take
        the registry lock exclusively and therefore run alone.  Every
        other per-file request takes the registry lock shared plus its
        file's lock -- shared for pure reads (access, fetch, delete/
        insert/batch challenges), exclusive for commits -- so reads of
        one vault run in parallel while its mutations serialise.  See
        ``docs/CONCURRENCY.md``.
        """
        if isinstance(request, REGISTRY_REQUESTS):
            with self._registry_lock.exclusive(scope="registry"):
                self._view_caches.pop(getattr(request, "file_id", None), None)
                yield
            return
        file_id = getattr(request, "file_id", None)
        if file_id is None:
            yield
            return
        file_lock = self._file_locks.lock(file_id)
        with self._registry_lock.shared(scope="registry"):
            if not obs.enabled:
                if mutating:
                    with file_lock.exclusive():
                        self._view_caches.pop(file_id, None)
                        yield
                else:
                    with file_lock.shared():
                        yield
                return
            from repro.obs import instruments as ins
            ins.INFLIGHT_REQUESTS.inc(file_id=str(file_id))
            try:
                if mutating:
                    with file_lock.exclusive():
                        self._view_caches.pop(file_id, None)
                        yield
                else:
                    with file_lock.shared():
                        yield
            finally:
                ins.INFLIGHT_REQUESTS.dec(file_id=str(file_id))

    # ------------------------------------------------------------------
    # File adoption (used directly by benchmarks with lazy stores)
    # ------------------------------------------------------------------

    def adopt_file(self, file_id: int, tree: ModulationTree,
                   ciphertexts: CiphertextStore, *,
                   build_registry: Optional[bool] = None) -> None:
        """Install a pre-built file, bypassing the outsourcing message.

        ``build_registry`` defaults to the deployment parameter; pass
        ``False`` for benchmark-scale lazily-seeded trees.
        """
        if build_registry is None:
            build_registry = self.params.enforce_unique_modulators
        registry = None
        if build_registry:
            registry = {}
            for _kind, _slot, value in tree.iter_modulators():
                registry[value] = registry.get(value, 0) + 1
            if any(count > 1 for count in registry.values()):
                raise ReproError("tree contains duplicate modulators")
        self._files[file_id] = ServerFile(tree=tree, ciphertexts=ciphertexts,
                                          registry=registry)
        self._view_caches.pop(file_id, None)

    def _state(self, file_id: int) -> ServerFile:
        """Handler-internal state lookup (keeps the view cache intact).

        With an engine attached, a file absent from the resident table
        is materialised lazily: paged stores are installed that fetch
        nodes from the engine on demand, so this is O(1) regardless of
        file size -- the actual node reads happen as the handler walks
        its root-to-leaf paths.
        """
        state = self._files.get(file_id)
        if state is None and self.engine is not None:
            state = self._materialise(file_id)
        if state is None:
            raise UnknownItemError(f"unknown file id {file_id}")
        return state

    def _materialise(self, file_id: int) -> Optional[ServerFile]:
        """Page a file in from the engine (None if the engine lacks it)."""
        with self._materialise_lock:
            state = self._files.get(file_id)
            if state is not None:
                return state  # lost the race; the winner's state stands
            meta = self.engine.get_meta(file_id)
            if meta is None:
                return None
            from repro.server.paging import (PagedCiphertextStore,
                                             PagedItemMap,
                                             PagedModulatorStore)
            store = PagedModulatorStore(self.engine, file_id,
                                        self.params.modulator_size,
                                        self._node_cache)
            tree = ModulationTree.wrap(store, meta.n_leaves,
                                       PagedItemMap(self.engine, file_id))
            state = ServerFile(tree=tree,
                               ciphertexts=PagedCiphertextStore(self.engine,
                                                                file_id),
                               version=meta.version, registry=None)
            self._files[file_id] = state
            return state

    def file_state(self, file_id: int) -> ServerFile:
        """Direct state access (benchmarks, adversary subclasses, tests).

        Callers taking this door may mutate the state behind the
        protocol's back, so the file's view cache is dropped up front --
        correctness over warmth for out-of-band access.
        """
        self._view_caches.pop(file_id, None)
        return self._state(file_id)

    def install_file_state(self, file_id: int, state: ServerFile) -> None:
        """Install a complete per-file state wholesale.

        The shard-migration door: :meth:`adopt_file` rebuilds a file from
        its parts (resetting version and replay cache), whereas this
        moves an existing :class:`ServerFile` -- version, registry, and
        commit replay cache included -- between server instances.
        """
        self._files[file_id] = state
        self._view_caches.pop(file_id, None)

    def has_file(self, file_id: int) -> bool:
        if file_id in self._files:
            return True
        return (self.engine is not None
                and self.engine.get_meta(file_id) is not None)

    def file_ids(self) -> list[int]:
        """Ids of every file currently stored (sorted)."""
        if self.engine is None:
            return sorted(self._files)
        ids = set(self._files)
        ids.update(self.engine.file_ids())
        return sorted(ids)

    def file_count(self) -> int:
        """Number of files currently stored (cheap, for gauges)."""
        if self.engine is None:
            return len(self._files)
        return len(self.file_ids())

    # ------------------------------------------------------------------
    # Registry helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _registry_apply(registry: dict[bytes, int], log: WriteLog) -> bool:
        """Fold a write log into the registry; True if it stays duplicate-free."""
        ok = True
        for _kind, _slot, old, new in log:
            if old is not None:
                count = registry.get(old, 0) - 1
                if count <= 0:
                    registry.pop(old, None)
                else:
                    registry[old] = count
            if new is not None:
                count = registry.get(new, 0) + 1
                registry[new] = count
                if count > 1:
                    ok = False
        return ok

    @staticmethod
    def _registry_revert(registry: dict[bytes, int], log: WriteLog) -> None:
        """Undo a previous :meth:`_registry_apply` for the same log."""
        for _kind, _slot, old, new in reversed(log):
            if new is not None:
                count = registry.get(new, 0) - 1
                if count <= 0:
                    registry.pop(new, None)
                else:
                    registry[new] = count
            if old is not None:
                registry[old] = registry.get(old, 0) + 1

    def _replay_digest(self, request: msg.Message) -> bytes:
        from repro.crypto.sha1 import sha1
        return sha1(msg.encode_message(self.ctx, request))

    def _check_replay(self, state: ServerFile,
                      request: msg.Message) -> Optional[msg.Ack]:
        """Return the cached Ack if this exact commit was already applied."""
        if state.replay_cache is None:
            return None
        digest, ack = state.replay_cache
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.REPLAY_LOOKUPS.inc(cache="commit_digest")
        if digest == self._replay_digest(request):
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.REPLAY_HITS.inc(cache="commit_digest")
                log_event("server.replay_cache_hit", cache="commit_digest",
                          type=type(request).__name__)
            return ack
        return None

    def _remember_commit(self, state: ServerFile, request: msg.Message,
                         ack: msg.Ack) -> None:
        state.replay_cache = (self._replay_digest(request), ack)

    def _fresh_values_clash(self, state: ServerFile,
                            values: list[Optional[bytes]]) -> bool:
        """Pre-check client-chosen modulators against the registry."""
        if state.registry is None:
            return False
        present = [v for v in values if v is not None]
        if len(set(present)) != len(present):
            return True
        return any(v in state.registry for v in present)

    # ------------------------------------------------------------------
    # View/encode cache (read-path fast path)
    # ------------------------------------------------------------------

    def _cached_reply(self, file_id: int, key: tuple, build) -> msg.Message:
        """Serve a read reply from the file's view cache, building on miss.

        Keys embed the tree version as belt-and-suspenders, but the real
        coherence guarantee is the invalidation in :meth:`_lock_scope`:
        every mutating request (including modify, which does *not* bump
        the version) drops the file's whole cache under the exclusive
        lock before it applies.  Cached replies are flagged so
        :func:`~repro.protocol.messages.encode_message` memoizes their
        body -- a warm read costs one dict lookup and one join.
        """
        if not self.view_cache_enabled:
            return build()
        cache = self._view_caches.get(file_id)
        if cache is None:
            cache = self._view_caches.setdefault(file_id, {})
        reply = cache.get(key)
        hit = reply is not None
        if not hit:
            reply = build()
            object.__setattr__(reply, "_cache_encoding", True)
            if len(cache) >= self.VIEW_CACHE_LIMIT:
                cache.clear()
            cache[key] = reply
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.SERVER_VIEW_CACHE.inc(outcome="hit" if hit else "miss")
        return reply

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _on_outsource(self, request: msg.OutsourceRequest) -> msg.Message:
        n = len(request.item_ids)
        if len(request.ciphertexts) != n:
            raise ReproError("one ciphertext per item required")
        if len(request.links) != max(0, 2 * n - 2):
            raise ReproError("wrong number of link modulators")
        if len(request.leaves) != n:
            raise ReproError("wrong number of leaf modulators")

        from repro.core.modstore import DenseModulatorStore
        store = DenseModulatorStore(self.params.modulator_size)
        for i, link in enumerate(request.links):
            store.set_link(2 + i, link)
        for i, leaf in enumerate(request.leaves):
            store.set_leaf(n + i, leaf)
        tree = ModulationTree.adopt(store, n, list(request.item_ids))

        ciphertexts = InMemoryCiphertextStore()
        for item_id, ciphertext in zip(request.item_ids, request.ciphertexts):
            ciphertexts.put(item_id, ciphertext)

        try:
            self.adopt_file(request.file_id, tree, ciphertexts)
        except ReproError:
            return msg.ErrorReply(code=msg.E_DUPLICATE_MODULATOR,
                                  detail="outsourced tree has duplicate "
                                         "modulators; re-randomise and retry")
        return msg.Ack(tree_version=0)

    def _on_access(self, request: msg.AccessRequest) -> msg.Message:
        state = self._state(request.file_id)

        def build() -> msg.Message:
            slot = state.tree.slot_of_item(request.item_id)
            return msg.AccessReply(
                path=state.tree.path_view(slot),
                ciphertext=state.ciphertexts.get(request.item_id),
                tree_version=state.version)
        return self._cached_reply(request.file_id,
                                  ("access", request.item_id, state.version),
                                  build)

    def _on_modify(self, request: msg.ModifyCommit) -> msg.Message:
        state = self._state(request.file_id)
        if request.tree_version != state.version:
            return msg.ErrorReply(code=msg.E_STALE_STATE,
                                  detail="tree changed since access")
        state.tree.slot_of_item(request.item_id)  # existence check
        state.ciphertexts.put(request.item_id, request.ciphertext)
        return msg.Ack(tree_version=state.version)

    def _on_delete_request(self, request: msg.DeleteRequest) -> msg.Message:
        state = self._state(request.file_id)

        def build() -> msg.Message:
            slot = state.tree.slot_of_item(request.item_id)
            return msg.DeleteChallenge(
                mt=state.tree.mt_view(slot),
                ciphertext=state.ciphertexts.get(request.item_id),
                balance=state.tree.balance_view(),
                tree_version=state.version,
            )
        return self._cached_reply(request.file_id,
                                  ("delete", request.item_id, state.version),
                                  build)

    def _on_delete_commit(self, request: msg.DeleteCommit) -> msg.Message:
        state = self._state(request.file_id)
        replayed = self._check_replay(state, request)
        if replayed is not None:
            return replayed
        if request.tree_version != state.version:
            return msg.ErrorReply(code=msg.E_STALE_STATE,
                                  detail="tree changed since challenge")
        tree = state.tree
        slot = tree.slot_of_item(request.item_id)

        expected_cut = tuple(s ^ 1 for s in tree.path_slots(slot)[1:])
        if tuple(request.cut_slots) != expected_cut:
            raise ReproError("cut slots do not match the item's path")

        if self._fresh_values_clash(state, [request.x_s_prime,
                                            request.dest_link,
                                            request.dest_leaf]):
            return msg.ErrorReply(code=msg.E_DUPLICATE_MODULATOR,
                                  detail="balancing modulators collide; retry "
                                         "with fresh randomness")

        delta_log = tree.apply_deltas(list(request.cut_slots),
                                      list(request.deltas))
        if state.registry is not None:
            if not self._registry_apply(state.registry, delta_log):
                self._registry_revert(state.registry, delta_log)
                tree.rollback(delta_log)
                return msg.ErrorReply(code=msg.E_DUPLICATE_MODULATOR,
                                      detail="delta application produced a "
                                             "duplicate; retry with a new key")

        structure_log = tree.delete_leaf(slot, request.x_s_prime,
                                         request.dest_link, request.dest_leaf)
        if state.registry is not None:
            self._registry_apply(state.registry, structure_log)
        state.ciphertexts.delete(request.item_id)
        state.version += 1
        ack = msg.Ack(tree_version=state.version)
        self._remember_commit(state, request, ack)
        return ack

    def _on_batch_delete_request(self,
                                 request: msg.BatchDeleteRequest) -> msg.Message:
        state = self._state(request.file_id)
        if not request.item_ids:
            raise ReproError("empty batch")
        if len(set(request.item_ids)) != len(request.item_ids):
            raise ReproError("batch item ids must be distinct")
        def build() -> msg.Message:
            tree = state.tree
            slots = tuple(tree.slot_of_item(item_id)
                          for item_id in request.item_ids)
            view = tree.batch_view(slots)
            ciphertexts = tuple(state.ciphertexts.get(item_id)
                                for item_id in request.item_ids)
            return msg.BatchDeleteReply(n_leaves=view.n_leaves,
                                        target_slots=view.target_slots,
                                        links=view.links,
                                        leaf_mods=view.leaf_mods,
                                        ciphertexts=ciphertexts,
                                        tree_version=state.version)
        return self._cached_reply(request.file_id,
                                  ("batch", request.item_ids, state.version),
                                  build)

    @staticmethod
    def _validate_batch_moves(tree: ModulationTree,
                              item_ids: Sequence[int],
                              moves: Sequence["msg.BalanceMove"]) -> None:
        """Dry-run the batch's ``delete_leaf`` sequence without mutating.

        Replays the exact argument-shape checks and item relocations of
        :meth:`~repro.core.tree.ModulationTree.delete_leaf` for every move
        so the real applications below cannot fail halfway through -- the
        batch commit stays all-or-nothing.
        """
        current = {item_id: tree.slot_of_item(item_id)
                   for item_id in item_ids}
        owner = {slot: item_id for item_id, slot in current.items()}
        m = tree.leaf_count
        for item_id, move in zip(item_ids, moves):
            if m < 1:
                raise ReproError("more deletions than leaves")
            slot_k = current[item_id]
            if not m <= slot_k <= 2 * m - 1:
                raise ReproError(f"slot {slot_k} is not a leaf of the "
                                 f"current tree")
            owner.pop(slot_k, None)
            if m == 1:
                if (move.x_s_prime is not None or move.dest_link is not None
                        or move.dest_leaf is not None):
                    raise ReproError("last-leaf move carries no modulators")
                m = 0
                continue
            t_slot, s_slot, p_slot = 2 * m - 1, 2 * m - 2, m - 1
            if move.x_s_prime is None:
                raise ReproError("balancing value x_s' required for n >= 2")
            if s_slot in owner:
                moved = owner.pop(s_slot)
                owner[p_slot] = moved
                current[moved] = p_slot
            if slot_k == t_slot:
                if move.dest_link is not None or move.dest_leaf is not None:
                    raise ReproError("k == t move carries only x_s'")
            else:
                if move.dest_leaf is None:
                    raise ReproError("balancing value x_t' required when "
                                     "k != t")
                dest = p_slot if slot_k == s_slot else slot_k
                if dest == p_slot or dest == 1:
                    if move.dest_link is not None:
                        raise ReproError("dest link must be omitted when t "
                                         "inherits a slot's link")
                elif move.dest_link is None:
                    raise ReproError("fresh link modulator required")
                if t_slot in owner:
                    moved = owner.pop(t_slot)
                    owner[dest] = moved
                    current[moved] = dest
            m -= 1

    def _on_batch_delete_commit(self,
                                request: msg.BatchDeleteCommit) -> msg.Message:
        state = self._state(request.file_id)
        replayed = self._check_replay(state, request)
        if replayed is not None:
            return replayed
        if request.tree_version != state.version:
            return msg.ErrorReply(code=msg.E_STALE_STATE,
                                  detail="tree changed since batch view")
        tree = state.tree
        item_ids = request.item_ids
        if not item_ids:
            raise ReproError("empty batch")
        if len(set(item_ids)) != len(item_ids):
            raise ReproError("batch item ids must be distinct")
        if len(request.moves) != len(item_ids):
            raise ReproError("one rebalancing move per deleted item required")
        slots = tuple(tree.slot_of_item(item_id) for item_id in item_ids)

        # The cut is derived, not trusted: same canonical order as the
        # client's compute_deltas_multi.
        cut_slots = ModulationTree.union_cut_slots(slots)
        if len(request.deltas) != len(cut_slots):
            raise ReproError("one delta per union-cut node required")

        fresh = [value for move in request.moves
                 for value in (move.x_s_prime, move.dest_link, move.dest_leaf)]
        if self._fresh_values_clash(state, fresh):
            return msg.ErrorReply(code=msg.E_DUPLICATE_MODULATOR,
                                  detail="balancing modulators collide; retry "
                                         "with fresh randomness")

        self._validate_batch_moves(tree, item_ids, request.moves)

        delta_log = tree.apply_deltas(list(cut_slots), list(request.deltas))
        if state.registry is not None:
            if not self._registry_apply(state.registry, delta_log):
                self._registry_revert(state.registry, delta_log)
                tree.rollback(delta_log)
                return msg.ErrorReply(code=msg.E_DUPLICATE_MODULATOR,
                                      detail="delta application produced a "
                                             "duplicate; retry with a new key")

        for item_id, move in zip(item_ids, request.moves):
            slot = tree.slot_of_item(item_id)
            structure_log = tree.delete_leaf(slot, move.x_s_prime,
                                             move.dest_link, move.dest_leaf)
            if state.registry is not None:
                self._registry_apply(state.registry, structure_log)
            state.ciphertexts.delete(item_id)
        state.version += 1
        ack = msg.Ack(tree_version=state.version)
        self._remember_commit(state, request, ack)
        return ack

    def _on_insert_request(self, request: msg.InsertRequest) -> msg.Message:
        state = self._state(request.file_id)

        def build() -> msg.Message:
            return msg.InsertChallenge(path=state.tree.insert_view(),
                                       tree_version=state.version)
        return self._cached_reply(request.file_id,
                                  ("insert", state.version), build)

    def _on_insert_commit(self, request: msg.InsertCommit) -> msg.Message:
        state = self._state(request.file_id)
        replayed = self._check_replay(state, request)
        if replayed is not None:
            return replayed
        if request.tree_version != state.version:
            return msg.ErrorReply(code=msg.E_STALE_STATE,
                                  detail="tree changed since challenge")
        if self._fresh_values_clash(state, [request.t_new_link,
                                            request.t_new_leaf,
                                            request.e_link, request.e_leaf]):
            return msg.ErrorReply(code=msg.E_DUPLICATE_MODULATOR,
                                  detail="insertion modulators collide; retry "
                                         "with fresh randomness")
        log = state.tree.insert_leaf(request.item_id, request.t_new_link,
                                     request.t_new_leaf, request.e_link,
                                     request.e_leaf)
        if state.registry is not None:
            self._registry_apply(state.registry, log)
        state.ciphertexts.put(request.item_id, request.ciphertext)
        state.version += 1
        ack = msg.Ack(tree_version=state.version, item_id=request.item_id)
        self._remember_commit(state, request, ack)
        return ack

    def _on_fetch_file(self, request: msg.FetchFileRequest) -> msg.Message:
        state = self._state(request.file_id)

        def build() -> msg.Message:
            tree = state.tree
            n = tree.leaf_count
            links = []
            leaves = []
            for kind, _slot, value in tree.iter_modulators():
                if kind == LINK:
                    links.append(value)
                else:
                    leaves.append(value)
            item_ids = tree.item_ids()
            ciphertexts = tuple(state.ciphertexts.get(item_id)
                                for item_id in item_ids)
            return msg.FetchFileReply(n_leaves=n, item_ids=tuple(item_ids),
                                      links=tuple(links), leaves=tuple(leaves),
                                      ciphertexts=ciphertexts,
                                      tree_version=state.version)
        return self._cached_reply(request.file_id, ("fetch", state.version),
                                  build)

    def _on_delete_file(self, request: msg.DeleteFileRequest) -> msg.Message:
        self._files.pop(request.file_id, None)
        if self.engine is not None:
            self.engine.drop_file(request.file_id)
            self._node_cache.purge_file(request.file_id)
        # Runs under the exclusive registry lock, so nobody holds (or can
        # be acquiring) this file's lock while it is dropped.
        self._file_locks.discard(request.file_id)
        return msg.Ack()

    # ------------------------------------------------------------------
    # Incremental checkpointing (storage engine + WAL compaction)
    # ------------------------------------------------------------------

    def compact_storage(self) -> dict:
        """Flush dirty state to the engine, then compact the WAL.

        The engine-backed replacement for whole-image checkpointing:
        only state touched since the last compaction is written (dirty
        overlays of paged files; full conversion for files outsourced
        while running), followed by the persisted replay table, one
        engine ``flush`` (the durability barrier), and a WAL
        ``compact`` that truncates replayed history behind a snapshot
        marker.

        Runs under the exclusive registry lock -- the same stop-the-
        world discipline outsourcing uses -- so no mutation can land
        between the engine flush and the WAL truncate and fall through
        the crack.  Crash safety around the two seams:

        * before the engine flush: the engine still holds the previous
          snapshot and the WAL still holds everything since; replay
          rebuilds the lost overlays.
        * after the flush, before the truncate: the WAL's records are
          already reflected in the engine; replaying them is a no-op
          (request-id replay table hits, stale-version rejections, and
          idempotent re-applies -- see ``docs/STORAGE.md``).
        """
        if self.engine is None:
            raise ReproError("no storage engine attached")
        import time as _time
        start = _time.perf_counter()
        stats = {"files_flushed": 0, "files_converted": 0,
                 "dirty_records": 0}
        with self._registry_lock.exclusive(scope="registry"):
            self._fire_crash(CRASH_POINT_BEFORE_FLUSH)
            for file_id, state in sorted(self._files.items()):
                self._flush_file(file_id, state, stats)
            self.engine.set_replay_entries(
                (request_id, msg.encode_message(self.ctx, reply))
                for request_id, reply in self.replay_cache_entries())
            self.engine.flush()
            self._fire_crash(CRASH_POINT_AFTER_FLUSH)
            if self.wal is not None:
                marker = (f"snapshot files={self.file_count()} "
                          f"dirty={stats['dirty_records']}").encode()
                self.wal.compact(marker)
        stats["seconds"] = _time.perf_counter() - start
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.STORAGE_FLUSHES.inc()
            ins.STORAGE_FLUSH_SECONDS.observe(stats["seconds"])
            ins.STORAGE_DIRTY_FLUSHED.inc(stats["dirty_records"])
            log_event("server.compact_storage", **stats)
        return stats

    def _flush_file(self, file_id: int, state: ServerFile,
                    stats: dict) -> None:
        """Flush one resident file to the engine (registry lock held)."""
        from repro.server.engine import FileMeta
        from repro.server.paging import PagedModulatorStore
        tree = state.tree
        if isinstance(tree.store, PagedModulatorStore):
            dirty = tree.store.flush_to_engine()
            dirty += tree._map.flush_to_engine()  # noqa: SLF001
            dirty += state.ciphertexts.flush_to_engine()
            self.engine.set_meta(FileMeta(file_id, state.version,
                                          tree.leaf_count))
            stats["files_flushed"] += 1
            stats["dirty_records"] += dirty
            return
        # A file outsourced (or installed) while running: write it out
        # wholesale and swap in the paged representation, keeping the
        # version, registry, and commit replay cache.  drop_file first
        # clears any stale rows from a previous incarnation of the id.
        from repro.server.engine import KIND_LEAF, KIND_LINK
        from repro.server.paging import PagedCiphertextStore, PagedItemMap
        self.engine.drop_file(file_id)
        self._node_cache.purge_file(file_id)
        self.engine.write_nodes(file_id, (
            (KIND_LINK if kind == LINK else KIND_LEAF, slot, value)
            for kind, slot, value in tree.iter_modulators()))
        item_ids = tree.item_ids()
        self.engine.write_items(file_id, [
            (item_id, tree.slot_of_item(item_id)) for item_id in item_ids])
        self.engine.write_ciphertexts(file_id, [
            (item_id, state.ciphertexts.get(item_id))
            for item_id in item_ids])
        records = tree.modulator_count() + 2 * len(item_ids)
        self.engine.set_meta(FileMeta(file_id, state.version,
                                      tree.leaf_count))
        store = PagedModulatorStore(self.engine, file_id,
                                    self.params.modulator_size,
                                    self._node_cache)
        state.tree = ModulationTree.wrap(store, tree.leaf_count,
                                         PagedItemMap(self.engine, file_id))
        state.ciphertexts = PagedCiphertextStore(self.engine, file_id)
        self._view_caches.pop(file_id, None)
        stats["files_converted"] += 1
        stats["dirty_records"] += records

"""A horizontally sharded serving tier: N independent server instances.

Each shard is a complete, isolated server unit -- its own
:class:`~repro.server.server.CloudServer` (lock table, replay caches,
view cache), its own write-ahead :class:`~repro.server.wal.CommitLog`,
its own checkpoint image and audit chain, optionally its own TCP or
async host.  Nothing is shared between shards except the process, so a
shard crash, recovery, or checkpoint never touches its siblings, and
durable-mutation throughput scales with the number of independent WAL
fsync streams.

File placement is the consistent-hash ring from
:mod:`repro.fs.sharding`: a file id owned by shard ``i`` only ever
appears in shard ``i``'s server, WAL, and audit log (the stress
harness's cross-shard placement invariant).

Observability: every request a shard handles increments
``repro_shard_requests_total{shard=...}`` and refreshes
``repro_shard_files{shard=...}``, so a single aggregated ``/metrics``
scrape exposes per-shard labels next to the global totals;
:meth:`ShardCluster.register_health` registers one readiness probe per
shard, making ``/readyz`` ready only when *all* shards are.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.params import Params
from repro.fs.sharding import DEFAULT_VNODES, HashRing, ShardMap
from repro.obs import runtime as obs
from repro.server.server import CloudServer
from repro.server.wal import CommitLog, checkpoint, recover_server

TRANSPORTS = ("loopback", "tcp", "async")


class _ShardBackend:
    """The addressable unit a host (or loopback channel) serves.

    Delegates to the unit's *current* server -- looked up per request,
    so :meth:`ShardCluster.recover_shard` can swap a recovered server in
    under a live host -- and meters per-shard traffic.
    """

    def __init__(self, unit: "ShardUnit") -> None:
        self._unit = unit
        self._label = str(unit.shard_id)

    @property
    def ctx(self):
        return self._unit.server.ctx

    def handle_bytes(self, data: bytes) -> bytes:
        if not obs.enabled:
            return self._unit.server.handle_bytes(data)
        from repro.obs import instruments as ins
        ins.SHARD_REQUESTS.inc(shard=self._label)
        reply = self._unit.server.handle_bytes(data)
        ins.SHARD_FILES.set(self._unit.server.file_count(),
                            shard=self._label)
        return reply


class ShardUnit:
    """One shard: server + WAL + checkpoint + audit + optional host."""

    def __init__(self, shard_id: int, directory: str) -> None:
        self.shard_id = shard_id
        self.directory = directory
        self.wal_path = os.path.join(directory, "shard.wal")
        self.image_path = os.path.join(directory, "shard.img")
        self.audit_path = os.path.join(directory, "audit.log")
        self.server: CloudServer | None = None
        self.wal: CommitLog | None = None
        self.audit = None
        self.host = None
        #: Out-of-core storage engine (``storage_backend != "memory"``).
        self.engine = None
        self.engine_path: Optional[str] = None
        self.backend = _ShardBackend(self)

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return None if self.host is None else self.host.address

    def health(self) -> Tuple[bool, str]:
        """Readiness of this shard (the per-shard ``/readyz`` probe)."""
        if self.server is None:
            return False, "shard not started"
        if self.wal is not None:
            ok, detail = self.wal.health()
            return ok, f"wal: {detail}"
        return True, f"{self.server.file_count()} file(s), no wal attached"


class ShardCluster:
    """``shards`` independent server units behind one consistent-hash ring.

    ``transport`` selects how the units are addressed: ``"loopback"``
    leaves them in-process (channels via :meth:`shard_map`), ``"tcp"`` /
    ``"async"`` start one host per shard on :meth:`start`.

    Durability modes:

    * ``wal_factory`` given -- each unit gets a fresh server with
      ``wal_factory(wal_path)`` attached (the stress harness and the
      shard-scaling benchmark, which inject their own log subclasses);
    * ``durable=True`` -- each unit is rebuilt by
      :func:`~repro.server.wal.recover_server` from its checkpoint image
      plus WAL (the ``serve --shards N --durable`` path);
    * neither -- plain in-memory servers.

    ``fresh=True`` deletes any existing per-shard state files first
    (stress runs and tests that must not inherit a previous run's log).
    """

    def __init__(self, shards: int, *, params: Params | None = None,
                 transport: str = "loopback",
                 data_dir: str | None = None,
                 durable: bool = False,
                 audit: bool = False, audit_sync: str = "always",
                 group_commit: bool = False,
                 max_conns: int | None = None,
                 base_port: int = 0,
                 vnodes: int = DEFAULT_VNODES,
                 wal_factory: Callable[[str], CommitLog] | None = None,
                 fresh: bool = False,
                 storage_backend: str = "memory",
                 cache_nodes: int = 65536) -> None:
        from repro.server.engine import BACKENDS, engine_path, make_engine
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}")
        if durable and wal_factory is not None:
            raise ValueError("durable recovery and wal_factory are "
                             "mutually exclusive")
        if storage_backend not in BACKENDS:
            raise ValueError(f"unknown storage backend {storage_backend!r}")
        self.params = params if params is not None else Params()
        self.transport = transport
        self.group_commit = group_commit
        self.max_conns = max_conns
        self.base_port = base_port
        self.storage_backend = storage_backend
        self.cache_nodes = cache_nodes
        self.ring = HashRing(range(shards), vnodes=vnodes)
        if data_dir is None:
            import tempfile
            data_dir = tempfile.mkdtemp(prefix="repro-shards-")
        self.data_dir = data_dir
        self.units: List[ShardUnit] = []
        #: Did any shard have on-disk state before this construction?
        #: (``serve`` uses it to decide whether to bootstrap-adopt.)
        self.had_state = False
        self._health_names: List[str] = []
        for shard_id in range(shards):
            directory = os.path.join(data_dir, f"shard-{shard_id}")
            os.makedirs(directory, exist_ok=True)
            unit = ShardUnit(shard_id, directory)
            if storage_backend != "memory":
                unit.engine_path = engine_path(directory, storage_backend)
            if fresh:
                self._wipe(unit)
            if os.path.exists(unit.image_path) or \
                    os.path.exists(unit.wal_path) or \
                    (unit.engine_path is not None
                     and os.path.exists(unit.engine_path)):
                self.had_state = True
            if unit.engine_path is not None:
                unit.engine = make_engine(storage_backend, unit.engine_path)
            if durable:
                unit.server = recover_server(
                    unit.image_path, unit.wal_path, self.params,
                    group_commit=group_commit, engine=unit.engine,
                    cache_nodes=cache_nodes)
                unit.wal = unit.server.wal
            else:
                unit.server = CloudServer(self.params)
                if unit.engine is not None:
                    unit.server.attach_engine(unit.engine,
                                              cache_nodes=cache_nodes)
                if wal_factory is not None:
                    unit.wal = wal_factory(unit.wal_path)
                    unit.server.attach_wal(unit.wal)
            if audit:
                from repro.obs.audit import AuditLog
                unit.audit = AuditLog(unit.audit_path, sync=audit_sync)
                unit.server.attach_audit(unit.audit)
            self.units.append(unit)

    @staticmethod
    def _wipe(unit: ShardUnit) -> None:
        from repro.obs import audit as audit_mod
        stale_paths = [unit.wal_path, unit.image_path, unit.audit_path,
                       audit_mod.head_path_for(unit.audit_path)]
        if unit.engine_path is not None:
            # SQLite leaves journal/WAL sidecars next to the database;
            # the log engine leaves a compaction temp on a crash.
            stale_paths.extend(unit.engine_path + suffix for suffix in
                               ("", ".tmp", "-journal", "-wal", "-shm"))
        for stale in stale_paths:
            if os.path.exists(stale):
                os.unlink(stale)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardCluster":
        """Start one host per shard (no-op for loopback)."""
        if self.transport == "loopback":
            return self
        if self.transport == "tcp":
            from repro.protocol.tcp import TcpServerHost as host_cls
        else:
            from repro.protocol.aio import AsyncTcpServerHost as host_cls
        for unit in self.units:
            port = 0 if self.base_port == 0 else \
                self.base_port + unit.shard_id
            unit.host = host_cls(unit.backend, port=port,
                                 max_conns=self.max_conns).start()
        return self

    def stop(self) -> None:
        """Stop hosts and close every shard's logs."""
        for unit in self.units:
            if unit.host is not None:
                unit.host.stop()
                unit.host = None
        for unit in self.units:
            if unit.wal is not None:
                unit.wal.close()
            if unit.audit is not None:
                unit.audit.close()
            if unit.engine is not None:
                unit.engine.close()

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, file_id: int) -> int:
        return self.ring.shard_of(file_id)

    def unit_for(self, file_id: int) -> ShardUnit:
        return self.units[self.ring.shard_of(file_id)]

    def server_for(self, file_id: int) -> CloudServer:
        return self.unit_for(file_id).server

    def addresses(self) -> List[Tuple[str, int]]:
        """Per-shard host addresses, indexed by shard id."""
        if any(unit.host is None for unit in self.units):
            raise RuntimeError("cluster is not serving (loopback transport "
                               "or start() not called)")
        return [unit.host.address for unit in self.units]

    def shard_map(self, *, retry=None) -> ShardMap:
        """A routing map for this cluster's transport.

        Channels made from the map are fresh per call, so every client
        (stress tenant, foreign reader) gets its own connections while
        sharing the one deterministic ring.
        """
        ctx = self.units[0].server.ctx
        if self.transport == "loopback":
            backends = [unit.backend for unit in self.units]
            return ShardMap(self.ring, ctx,
                            lambda sid: self._loopback(backends, sid))
        if self.transport == "tcp":
            from repro.protocol.tcp import TcpChannel
            addresses = self.addresses()
            return ShardMap(self.ring, ctx,
                            lambda sid: TcpChannel(addresses[sid], ctx,
                                                   retry=retry))
        from repro.protocol.aio import AsyncTcpChannel
        addresses = self.addresses()
        return ShardMap(self.ring, ctx,
                        lambda sid: AsyncTcpChannel(addresses[sid], ctx))

    @staticmethod
    def _loopback(backends: Sequence[_ShardBackend], shard_id: int):
        from repro.protocol.channel import LoopbackChannel
        return LoopbackChannel(backends[shard_id])

    # ------------------------------------------------------------------
    # State migration and durability
    # ------------------------------------------------------------------

    def adopt_server(self, source: CloudServer) -> int:
        """Split a single server's files across the ring (bootstrap).

        Moves each per-file state wholesale into its ring-assigned
        shard; returns the number of files placed.  Used when a vault
        built against one embedded server is first served sharded.
        """
        placed = 0
        for file_id in source.file_ids():
            self.server_for(file_id).install_file_state(
                file_id, source.file_state(file_id))
            placed += 1
        return placed

    def checkpoint(self) -> None:
        """Checkpoint every shard (image write + WAL reset, per shard).

        Engine-backed shards checkpoint incrementally: dirty state
        flushes to the engine and the WAL is compacted (see
        :meth:`CloudServer.compact_storage`).
        """
        for unit in self.units:
            if unit.wal is not None:
                checkpoint(unit.server, unit.image_path)

    def compact(self) -> list[dict]:
        """Flush + WAL-compact every engine-backed shard; per-shard stats.

        Safe against live traffic: each shard's ``compact_storage``
        holds that shard's registry lock exclusively, so in-flight
        requests on other shards are unaffected and requests on the
        compacting shard simply queue.
        """
        stats = []
        for unit in self.units:
            if unit.engine is not None:
                stats.append(unit.server.compact_storage())
        return stats

    def recover_shard(self, shard_id: int) -> CloudServer:
        """Rebuild one shard from its durable state + WAL (crash recovery).

        The unit's backend resolves the server per request, so a host
        serving this shard picks up the recovered instance immediately;
        other shards are untouched.  An engine-backed shard reopens its
        engine file; recovery replays only the records since its last
        compaction.
        """
        unit = self.units[shard_id]
        if unit.wal is not None:
            unit.wal.close()
        if unit.engine is not None:
            unit.engine.close()
            from repro.server.engine import make_engine
            unit.engine = make_engine(self.storage_backend, unit.engine_path)
        unit.server = recover_server(unit.image_path, unit.wal_path,
                                     self.params,
                                     group_commit=self.group_commit,
                                     engine=unit.engine,
                                     cache_nodes=self.cache_nodes)
        unit.wal = unit.server.wal
        if unit.audit is not None:
            unit.server.attach_audit(unit.audit)
        return unit.server

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def register_health(self) -> None:
        """Register one ``/readyz`` probe per shard: ready iff all are."""
        from repro.obs.health import HEALTH
        for unit in self.units:
            name = f"shard-{unit.shard_id}"
            HEALTH.register(name, unit.health)
            self._health_names.append(name)

    def unregister_health(self) -> None:
        from repro.obs.health import HEALTH
        for name in self._health_names:
            HEALTH.unregister(name)
        self._health_names.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def file_counts(self) -> dict[int, int]:
        """``shard_id -> resident file count`` (placement diagnostics)."""
        return {unit.shard_id: unit.server.file_count()
                for unit in self.units}

    def total_wal_records(self) -> int:
        return sum(unit.wal.appended for unit in self.units
                   if unit.wal is not None)

    def total_audit_records(self) -> int:
        return sum(unit.audit.seq for unit in self.units
                   if unit.audit is not None)

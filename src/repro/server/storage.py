"""Ciphertext storage backends for the cloud server.

The server stores one ciphertext per live item, keyed by item id.  Three
backends share one interface:

* :class:`InMemoryCiphertextStore` -- dict-backed, the default.
* :class:`FileBackedCiphertextStore` -- one file per item under a
  directory, for examples that want durable server state.
* :class:`CallbackCiphertextStore` -- derives untouched ciphertexts from a
  callback and keeps writes in an overlay.  Like the lazily-seeded
  modulator store, it exists only so benchmarks can stand up 10^7-item
  files without materialising tens of gigabytes; the callback emulates
  what the client would have uploaded.
"""

from __future__ import annotations

import abc
import os
from typing import Callable, Iterator

from repro.core.errors import UnknownItemError


class CiphertextStore(abc.ABC):
    """Item-id addressed ciphertext storage."""

    @abc.abstractmethod
    def get(self, item_id: int) -> bytes:
        """Return the ciphertext of ``item_id`` (raises UnknownItemError)."""

    @abc.abstractmethod
    def put(self, item_id: int, ciphertext: bytes) -> None:
        """Store (or replace) the ciphertext of ``item_id``."""

    @abc.abstractmethod
    def delete(self, item_id: int) -> None:
        """Discard the ciphertext of ``item_id`` (idempotent)."""


class InMemoryCiphertextStore(CiphertextStore):
    """Dict-backed store, the default for all functional use."""

    def __init__(self) -> None:
        self._items: dict[int, bytes] = {}

    def get(self, item_id: int) -> bytes:
        try:
            return self._items[item_id]
        except KeyError:
            raise UnknownItemError(f"no ciphertext for item {item_id}") from None

    def put(self, item_id: int, ciphertext: bytes) -> None:
        self._items[item_id] = bytes(ciphertext)

    def delete(self, item_id: int) -> None:
        self._items.pop(item_id, None)

    def __len__(self) -> int:
        return len(self._items)

    def item_ids(self) -> Iterator[int]:
        return iter(self._items)


class FileBackedCiphertextStore(CiphertextStore):
    """One file per ciphertext under ``root`` (created if absent)."""

    def __init__(self, root: str) -> None:
        self._root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, item_id: int) -> str:
        return os.path.join(self._root, f"{item_id:020d}.ct")

    def get(self, item_id: int) -> bytes:
        try:
            with open(self._path(item_id), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise UnknownItemError(f"no ciphertext for item {item_id}") from None

    def put(self, item_id: int, ciphertext: bytes) -> None:
        path = self._path(item_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(ciphertext)
            handle.flush()
            os.fsync(handle.fileno())  # durable before the atomic rename
        os.replace(tmp, path)
        # The rename is a directory entry with its own durability; a
        # crash after the replace but before the directory sync could
        # resurrect the old ciphertext (or, for a first put, forget the
        # file entirely) -- a torn put from the client's point of view.
        from repro.server.wal import fsync_directory
        fsync_directory(path)

    def delete(self, item_id: int) -> None:
        try:
            os.remove(self._path(item_id))
        except FileNotFoundError:
            pass


class CallbackCiphertextStore(CiphertextStore):
    """Benchmark-scale store deriving base ciphertexts from a callback."""

    def __init__(self, derive: Callable[[int], bytes]) -> None:
        self._derive = derive
        self._overlay: dict[int, bytes] = {}
        self._deleted: set[int] = set()

    def get(self, item_id: int) -> bytes:
        if item_id in self._deleted:
            raise UnknownItemError(f"no ciphertext for item {item_id}")
        if item_id in self._overlay:
            return self._overlay[item_id]
        return self._derive(item_id)

    def put(self, item_id: int, ciphertext: bytes) -> None:
        self._deleted.discard(item_id)
        self._overlay[item_id] = bytes(ciphertext)

    def delete(self, item_id: int) -> None:
        self._overlay.pop(item_id, None)
        self._deleted.add(item_id)

"""Write-ahead commit log: crash-safe server state.

The paper's assurance argument (Theorem 2) implicitly assumes the server
state the client verified against is the state that survives.  In a real
deployment the server process can die at any instruction -- between
receiving a commit and applying it, between applying it and replying --
so every mutating request is made durable *before* it is applied:

1. the encoded request bytes are appended to the commit log and fsync'd;
2. the request is applied to the in-memory state;
3. the reply is sent.

Recovery (:func:`recover_server`) loads the last checkpoint image written
by :func:`repro.server.persistence.save_server` and re-executes every
logged request through the ordinary message handlers.  Because mutating
requests carry idempotent ``request_id``\\ s, a record that is also
reflected in the checkpoint (crash between checkpoint write and log
reset) is answered from the server's replay cache instead of being
applied twice, and a client retrying an un-acknowledged commit after the
restart converges to exactly-once application.

Log file format (all integers big-endian)::

    header  magic "RWAL" | u16 format version
    record  u32 payload length | u32 CRC-32 of payload | payload bytes

A torn tail record -- the ``kill -9`` landed mid-``write`` -- fails the
length or CRC check; :class:`CommitLog` truncates it away on open, which
is exactly the all-or-nothing outcome the client's retry expects (the
commit was never acknowledged, so re-sending it applies it once).
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib

from repro.core.errors import ProtocolError
from repro.obs import runtime as obs
from repro.obs.trace import log_event, span

_MAGIC = b"RWAL"
_FORMAT_VERSION = 1
_HEADER = _MAGIC + struct.pack(">H", _FORMAT_VERSION)
_RECORD = struct.Struct(">II")

#: Default number of WAL records after which callers should checkpoint.
CHECKPOINT_INTERVAL = 256


class CommitLog:
    """Append-only fsync'd log of encoded mutating requests.

    Opening scans the file, validates every record, and truncates a torn
    tail.  ``append`` is durable on return (``flush`` + ``fsync``);
    ``reset`` empties the log after its effects have been checkpointed
    into the state image.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._records: list[bytes] = self._scan()
        self._handle = open(path, "ab")
        #: Records appended since the last checkpoint/open, for callers
        #: implementing a checkpoint-every-N policy.
        self.appended = 0
        #: Serialises the write+fsync of one record: appends arriving
        #: from different per-file handler threads land whole, never
        #: interleaved mid-record (the bottom of the lock hierarchy).
        self._lock = threading.Lock()

    def _scan(self) -> list[bytes]:
        """Validate the on-disk log, truncating a torn tail record."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            with open(self.path, "wb") as handle:
                handle.write(_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            return []
        if not data:
            # An empty file can be left by a crash between open and the
            # header write; rewrite the header.
            with open(self.path, "wb") as handle:
                handle.write(_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            return []
        if len(data) < len(_HEADER):
            if _HEADER.startswith(data):
                # Torn header: the crash landed during log creation.
                with open(self.path, "wb") as handle:
                    handle.write(_HEADER)
                    handle.flush()
                    os.fsync(handle.fileno())
                return []
            raise ProtocolError(f"{self.path!r} is not a commit log")
        if data[:4] != _MAGIC:
            raise ProtocolError(f"{self.path!r} is not a commit log")
        version = struct.unpack(">H", data[4:6])[0]
        if version != _FORMAT_VERSION:
            raise ProtocolError(
                f"unsupported commit log version {version!r}")

        records = []
        pos = len(_HEADER)
        good_end = pos
        while pos < len(data):
            if pos + _RECORD.size > len(data):
                break  # torn length/CRC prefix
            length, crc = _RECORD.unpack_from(data, pos)
            payload = data[pos + _RECORD.size:pos + _RECORD.size + length]
            if len(payload) < length:
                break  # torn payload
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break  # corrupt (partially overwritten) record
            records.append(payload)
            pos += _RECORD.size + length
            good_end = pos
        if good_end < len(data):
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.WAL_TRUNCATED.inc()
                log_event("wal.truncated_tail", path=self.path,
                          discarded_bytes=len(data) - good_end)
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return records

    def records(self) -> list[bytes]:
        """The validated records found on disk when the log was opened."""
        return list(self._records)

    def append(self, payload: bytes) -> None:
        """Durably append one record (fsync'd before returning).

        Thread-safe: concurrent appenders serialise on the log's lock,
        so each CRC-framed record (and its fsync) lands whole on disk.
        """
        if obs.enabled:
            with span("wal.append", record_bytes=len(payload)):
                self._write_record(payload)
        else:
            self._write_record(payload)

    def _write_record(self, payload: bytes) -> None:
        with self._lock:
            self._handle.write(_RECORD.pack(len(payload),
                                            zlib.crc32(payload) & 0xFFFFFFFF))
            self._handle.write(payload)
            self._handle.flush()
            start = time.perf_counter()
            os.fsync(self._handle.fileno())
            self.appended += 1
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_FSYNC_SECONDS.observe(time.perf_counter() - start)
            ins.WAL_APPENDS.inc()
            ins.WAL_APPEND_BYTES.inc(len(payload))

    def reset(self) -> None:
        """Empty the log (call only after checkpointing its effects)."""
        with self._lock:
            self._handle.close()
            with open(self.path, "wb") as handle:
                handle.write(_HEADER)
                handle.flush()
                os.fsync(handle.fileno())
            self._handle = open(self.path, "ab")
            self._records = []
            self.appended = 0

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "CommitLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def checkpoint(server, image_path: str) -> None:
    """Fold the server's state into the image and reset its WAL.

    The image replace is atomic and fsync'd, so a crash at any point
    leaves either (old image + full WAL) or (new image + WAL), both of
    which :func:`recover_server` resolves to the same state.
    """
    from repro.server.persistence import save_server
    if not obs.enabled:
        save_server(server, image_path)
        if server.wal is not None:
            server.wal.reset()
        return
    from repro.obs import instruments as ins
    with span("server.checkpoint", image=image_path):
        start = time.perf_counter()
        save_server(server, image_path)
        if server.wal is not None:
            server.wal.reset()
        ins.CHECKPOINT_SECONDS.observe(time.perf_counter() - start)
        ins.CHECKPOINTS.inc()


def recover_server(image_path: str, wal_path: str, params=None):
    """Rebuild a server from its checkpoint image plus commit log.

    Missing image: recovery starts from an empty server (the WAL then
    holds the full history since bootstrap).  Every validated WAL record
    is re-executed through the normal handlers *before* the log is
    attached for new appends, so replay never re-logs.
    """
    from repro.server.persistence import load_server
    from repro.server.server import CloudServer

    with span("server.recover", image=image_path, wal=wal_path):
        if os.path.exists(image_path):
            server = load_server(image_path, params)
        else:
            server = CloudServer(params)
        log = CommitLog(wal_path)
        replayed = 0
        with span("server.recover.replay"):
            for record in log.records():
                server.handle_bytes(record)
                replayed += 1
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_REPLAYED.inc(replayed)
            ins.RECOVERIES.inc()
            log_event("server.recovered", replayed_records=replayed)
        server.attach_wal(log)
    return server

"""Write-ahead commit log: crash-safe server state.

The paper's assurance argument (Theorem 2) implicitly assumes the server
state the client verified against is the state that survives.  In a real
deployment the server process can die at any instruction -- between
receiving a commit and applying it, between applying it and replying --
so every mutating request is made durable *before* it is applied:

1. the encoded request bytes are appended to the commit log and fsync'd;
2. the request is applied to the in-memory state;
3. the reply is sent.

Recovery (:func:`recover_server`) loads the last checkpoint image written
by :func:`repro.server.persistence.save_server` and re-executes every
logged request through the ordinary message handlers.  Because mutating
requests carry idempotent ``request_id``\\ s, a record that is also
reflected in the checkpoint (crash between checkpoint write and log
reset) is answered from the server's replay cache instead of being
applied twice, and a client retrying an un-acknowledged commit after the
restart converges to exactly-once application.

Log file format (all integers big-endian)::

    header  magic "RWAL" | u16 format version
    record  u32 payload length | u32 CRC-32 of payload | payload bytes

A torn tail record -- the ``kill -9`` landed mid-``write`` -- fails the
length or CRC check; :class:`CommitLog` truncates it away on open, which
is exactly the all-or-nothing outcome the client's retry expects (the
commit was never acknowledged, so re-sending it applies it once).

Two failure modes beyond the torn tail are handled explicitly:

* **Failed append** (disk full, I/O error): the write may have left a
  torn record *mid*-file; if later appends succeeded after it, the
  stop-at-first-bad-record scan would silently discard them on the next
  open.  The log therefore tracks its last durable offset and, on an
  append failure, truncates back to it before accepting anything else;
  if even that repair fails the log **fails closed** (every further
  append raises) rather than acknowledge commits it may lose.
* **Lost directory entry**: file data is fsync'd but a freshly created
  file's *name* lives in the directory, which has its own durability.
  Log creation and reset fsync the parent directory (POSIX only; no-op
  elsewhere) so a crash cannot forget the log file itself.

Group commit
------------

With ``group_commit=True`` concurrent appenders enqueue their records
and a single committer thread (started lazily on the first grouped
append) coalesces the queue into ONE ``write`` + ONE ``fsync``; every
``append`` still blocks until *its* record is durable.  Batching is
natural: while one fsync is in flight, new appenders pile up in the
queue and the committer takes them all on its next pass.  Appenders
wait only on their own entry's event -- never on the commit lock -- so
a committed append returns immediately even while the next batch's
fsync is in flight (a leader-follower scheme where followers re-take
the lock convoys exactly there).  ``group_max_batch`` bounds one batch;
``group_max_wait`` optionally lets the committer linger to fill it.
The observable durability contract is identical to per-append fsync --
``append`` returning means the record survives a crash -- only the
fsyncs-per-record ratio changes.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib

from repro.core.errors import ProtocolError
from repro.obs import runtime as obs
from repro.obs.trace import log_event, span

_MAGIC = b"RWAL"
_FORMAT_VERSION = 1
_HEADER = _MAGIC + struct.pack(">H", _FORMAT_VERSION)
_RECORD = struct.Struct(">II")

#: Top bit of a record's length field marks a compaction snapshot
#: marker: not a replayable request, just fsync'd evidence of where the
#: truncated history went.  Pre-compaction readers reject such a log
#: loudly (the flagged length fails their bounds check) instead of
#: replaying garbage.
_MARKER_FLAG = 0x80000000

#: Default number of WAL records after which callers should checkpoint.
CHECKPOINT_INTERVAL = 256


def fsync_directory(path: str) -> None:
    """Best-effort fsync of ``path``'s parent directory.

    On POSIX a newly created (or truncated-and-recreated) file is only
    crash-durable once the directory holding its name is synced too.
    Elsewhere (or when the directory cannot be opened) this is a no-op:
    the platforms without ``O_DIRECTORY`` semantics do not expose the
    failure mode either.
    """
    if os.name != "posix":
        return
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _GroupEntry:
    """One enqueued record waiting for the committer to make it durable."""

    __slots__ = ("payload", "event", "error")

    def __init__(self, payload: bytes) -> None:
        self.payload = payload
        self.event = threading.Event()
        self.error: Exception | None = None


class CommitLog:
    """Append-only fsync'd log of encoded mutating requests.

    Opening scans the file, validates every record, and truncates a torn
    tail.  ``append`` is durable on return (``flush`` + ``fsync``);
    ``reset`` empties the log after its effects have been checkpointed
    into the state image.

    ``group_commit=True`` coalesces concurrent appends into one
    write+fsync (see the module docstring); ``group_max_batch`` bounds
    the records per batch and ``group_max_wait`` (seconds) lets the
    committer wait briefly for stragglers before syncing.
    """

    def __init__(self, path: str, *, group_commit: bool = False,
                 group_max_batch: int = 128,
                 group_max_wait: float = 0.0) -> None:
        if group_max_batch < 1:
            raise ValueError("group_max_batch must be >= 1")
        if group_max_wait < 0:
            raise ValueError("group_max_wait must be >= 0")
        self.path = path
        self.group_commit = group_commit
        self.group_max_batch = group_max_batch
        self.group_max_wait = group_max_wait
        #: Compactions performed on this log object (``compact`` calls);
        #: the latest snapshot marker found on disk or written survives
        #: in ``snapshot_marker``.
        self.compactions = 0
        self.snapshot_marker: bytes | None = None
        self._records: list[bytes] = self._scan()
        self._handle = open(path, "ab")
        #: Records appended since the last checkpoint/open, for callers
        #: implementing a checkpoint-every-N policy.
        self.appended = 0
        #: Serialises the write+fsync of one record (or one group-commit
        #: batch): appends arriving from different per-file handler
        #: threads land whole, never interleaved mid-record (the bottom
        #: of the lock hierarchy).
        self._lock = threading.Lock()
        #: End of the validated, fsync'd prefix of the file.  A failed
        #: append truncates back to this before the log accepts more.
        self._durable_size = self._handle.tell()
        #: Fail-closed flag: set when the durable prefix could not be
        #: restored after an append failure.
        self._failed = False
        # Group-commit queue (guarded by its own tiny lock so enqueue
        # never waits on an fsync in flight) and the committer thread
        # that drains it, started lazily on the first grouped append.
        self._queue_lock = threading.Lock()
        self._queue: list[_GroupEntry] = []
        self._work = threading.Condition(self._queue_lock)
        self._committer: threading.Thread | None = None
        self._stop_committer = False

    def _scan(self) -> list[bytes]:
        """Validate the on-disk log, truncating a torn tail record."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            self._write_header()
            fsync_directory(self.path)  # make the new *name* durable too
            return []
        if not data:
            # An empty file can be left by a crash between open and the
            # header write; rewrite the header.
            self._write_header()
            fsync_directory(self.path)
            return []
        if len(data) < len(_HEADER):
            if _HEADER.startswith(data):
                # Torn header: the crash landed during log creation.
                self._write_header()
                fsync_directory(self.path)
                return []
            raise ProtocolError(f"{self.path!r} is not a commit log")
        if data[:4] != _MAGIC:
            raise ProtocolError(f"{self.path!r} is not a commit log")
        version = struct.unpack(">H", data[4:6])[0]
        if version != _FORMAT_VERSION:
            raise ProtocolError(
                f"unsupported commit log version {version!r}")

        records = []
        pos = len(_HEADER)
        good_end = pos
        while pos < len(data):
            if pos + _RECORD.size > len(data):
                break  # torn length/CRC prefix
            length, crc = _RECORD.unpack_from(data, pos)
            marker = bool(length & _MARKER_FLAG)
            length &= ~_MARKER_FLAG
            payload = data[pos + _RECORD.size:pos + _RECORD.size + length]
            if len(payload) < length:
                break  # torn payload
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break  # corrupt (partially overwritten) record
            if marker:
                # Compaction snapshot evidence, not a replayable request.
                self.snapshot_marker = payload
            else:
                records.append(payload)
            pos += _RECORD.size + length
            good_end = pos
        if good_end < len(data):
            if obs.enabled:
                from repro.obs import instruments as ins
                ins.WAL_TRUNCATED.inc()
                log_event("wal.truncated_tail", path=self.path,
                          discarded_bytes=len(data) - good_end)
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return records

    def _write_header(self) -> None:
        with open(self.path, "wb") as handle:
            handle.write(_HEADER)
            handle.flush()
            os.fsync(handle.fileno())

    def _sync(self, fileno: int) -> None:
        """The durability barrier (seam for fault/latency injection)."""
        os.fsync(fileno)

    def records(self) -> list[bytes]:
        """The validated records found on disk when the log was opened."""
        return list(self._records)

    def append(self, payload: bytes) -> None:
        """Durably append one record (fsync'd before returning).

        Thread-safe: concurrent appenders serialise on the log's lock
        (or, under group commit, enqueue for the current leader), so
        each CRC-framed record (and its fsync) lands whole on disk.
        Raises if the log has failed closed after an unrepairable append
        error -- an unacknowledged commit, never a silently lost one.
        """
        if obs.enabled:
            with span("wal.append", record_bytes=len(payload)):
                if self.group_commit:
                    self._append_grouped(payload)
                else:
                    self._write_record(payload)
        elif self.group_commit:
            self._append_grouped(payload)
        else:
            self._write_record(payload)

    def _check_usable(self) -> None:
        if self._failed:
            raise ProtocolError(
                f"commit log {self.path!r} failed closed after an append "
                f"error; refusing to acknowledge commits it may lose")

    def _write_record(self, payload: bytes) -> None:
        frame = _RECORD.pack(len(payload),
                             zlib.crc32(payload) & 0xFFFFFFFF) + payload
        with self._lock:
            self._check_usable()
            start = time.perf_counter()
            try:
                self._handle.write(frame)
                self._handle.flush()
                self._sync(self._handle.fileno())
            except Exception:
                self._restore_durable_prefix()
                raise
            self._durable_size += len(frame)
            self.appended += 1
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_FSYNC_SECONDS.observe(time.perf_counter() - start)
            ins.WAL_APPENDS.inc()
            ins.WAL_APPEND_BYTES.inc(len(payload))

    # -- group commit ---------------------------------------------------

    def _append_grouped(self, payload: bytes) -> None:
        entry = _GroupEntry(payload)
        with self._work:
            if self._committer is None or not self._committer.is_alive():
                self._stop_committer = False
                self._committer = threading.Thread(
                    target=self._committer_loop,
                    name="repro-wal-committer", daemon=True)
                self._committer.start()
            self._queue.append(entry)
            depth = len(self._queue)
            self._work.notify()
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_GROUP_QUEUE.set(depth)
        # Wait on OUR entry only -- never on the commit lock.  (A
        # leader-follower scheme convoys here: committed appenders must
        # re-take the lock to observe their event, and a fresh appender
        # holding it through an fsync starves them all.)
        entry.event.wait()
        if entry.error is not None:
            raise entry.error

    def _committer_loop(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._stop_committer:
                    self._work.wait()
                if not self._queue:
                    return  # stopping and fully drained
            try:
                with self._lock:
                    self._commit_batch()
            except Exception as exc:  # defensive: never strand waiters
                with self._queue_lock:
                    batch = self._queue
                    self._queue = []
                for e in batch:
                    e.error = exc
                    e.event.set()

    def _commit_batch(self) -> None:
        """Drain one batch and make it durable (commit lock held)."""
        with self._queue_lock:
            batch = self._queue[:self.group_max_batch]
            del self._queue[:len(batch)]
            depth = len(self._queue)
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_GROUP_QUEUE.set(depth)
        if not batch:
            return
        if len(batch) < self.group_max_batch and self.group_max_wait > 0:
            # Linger for stragglers: trade a bounded latency bump for
            # fewer fsyncs.  Natural batching (appenders piling up while
            # the previous fsync runs) needs no linger at all.
            time.sleep(self.group_max_wait)
            with self._queue_lock:
                extra = self._queue[:self.group_max_batch - len(batch)]
                del self._queue[:len(extra)]
            batch.extend(extra)

        error: Exception | None = None
        if self._failed:
            error = ProtocolError(
                f"commit log {self.path!r} failed closed after an append "
                f"error; refusing to acknowledge commits it may lose")
        else:
            blob = b"".join(
                _RECORD.pack(len(e.payload),
                             zlib.crc32(e.payload) & 0xFFFFFFFF) + e.payload
                for e in batch)
            start = time.perf_counter()
            try:
                self._handle.write(blob)
                self._handle.flush()
                self._sync(self._handle.fileno())
            except Exception as exc:
                self._restore_durable_prefix()
                error = exc
            else:
                self._durable_size += len(blob)
                self.appended += len(batch)
                if obs.enabled:
                    from repro.obs import instruments as ins
                    ins.WAL_FSYNC_SECONDS.observe(time.perf_counter() - start)
                    ins.WAL_GROUP_COMMIT_BATCH.observe(len(batch))
                    ins.WAL_APPENDS.inc(len(batch))
                    ins.WAL_APPEND_BYTES.inc(
                        sum(len(e.payload) for e in batch))
        for e in batch:
            e.error = error
            e.event.set()

    # -- failure repair -------------------------------------------------

    def _restore_durable_prefix(self) -> None:
        """Truncate back to the last durable offset (commit lock held).

        A failed write/flush/fsync can leave a torn record mid-file; if
        later appends were allowed to land after it, the next open's
        stop-at-first-bad-record scan would silently discard them.  The
        handle is reopened (dropping any half-flushed userspace buffer)
        and the file cut back to the durable prefix.  If the repair
        itself fails the log fails closed.
        """
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            self._handle = open(self.path, "ab")
            self._handle.truncate(self._durable_size)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except Exception:
            self._failed = True
        if obs.enabled:
            log_event("wal.append_failed", path=self.path,
                      failed_closed=self._failed,
                      durable_bytes=self._durable_size)

    def health(self) -> tuple[bool, str]:
        """Readiness probe for ``/readyz``: can this log still commit?

        Fails when the log has failed closed (an unrepairable append
        error) or when grouped appends are queued but the committer
        thread is dead -- both mean new mutations cannot be made
        durable, so traffic should drain elsewhere.
        """
        if self._failed:
            return False, "failed closed after an append error"
        if self._handle.closed:
            return False, "log handle is closed"
        if self.group_commit:
            with self._queue_lock:
                pending = len(self._queue)
            committer = self._committer
            if pending and (committer is None or not committer.is_alive()):
                return False, (f"{pending} queued appends but the "
                               f"committer thread is dead")
        return True, f"durable through {self._durable_size} bytes"

    def reset(self) -> None:
        """Empty the log (call only after checkpointing its effects)."""
        with self._lock:
            self._handle.close()
            self._write_header()
            fsync_directory(self.path)
            self._handle = open(self.path, "ab")
            self._records = []
            self.appended = 0
            self._durable_size = self._handle.tell()
            self._failed = False

    def compact(self, marker: bytes = b"") -> None:
        """Truncate replayed history behind an fsync'd snapshot marker.

        Called by ``compact_storage`` after the storage engine has
        durably absorbed every logged record: the replacement log holds
        only the marker (length top-bit flagged, CRC-framed like any
        record, skipped by replay).  The swap is a write-temp +
        ``os.replace`` + directory fsync, so a crash at any instruction
        leaves either the full old log or the compacted one -- never a
        torn in-between -- the same atomicity the checkpoint image
        relies on.  Callers must guarantee no append is in flight
        (the server holds its registry lock exclusively).
        """
        if len(marker) >= _MARKER_FLAG:
            raise ValueError("snapshot marker too large")
        with self._lock:
            frame = _RECORD.pack(len(marker) | _MARKER_FLAG,
                                 zlib.crc32(marker) & 0xFFFFFFFF) + marker
            tmp = self.path + ".compact.tmp"
            with open(tmp, "wb") as handle:
                handle.write(_HEADER + frame)
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            fsync_directory(self.path)
            self._handle = open(self.path, "ab")
            self._records = []
            self.appended = 0
            self._durable_size = self._handle.tell()
            self._failed = False
            self.compactions += 1
            self.snapshot_marker = bytes(marker)
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_COMPACTIONS.inc()
            log_event("wal.compacted", path=self.path,
                      marker=marker.decode("utf-8", "replace"))

    def close(self) -> None:
        committer = self._committer
        if committer is not None and committer.is_alive():
            with self._work:
                self._stop_committer = True
                self._work.notify_all()
            committer.join(timeout=10.0)
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "CommitLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def checkpoint(server, image_path: str) -> None:
    """Fold the server's state into the image and reset its WAL.

    The image replace is atomic and fsync'd, so a crash at any point
    leaves either (old image + full WAL) or (new image + WAL), both of
    which :func:`recover_server` resolves to the same state.

    An engine-backed server checkpoints *incrementally* instead: dirty
    state flushes to the engine and the WAL is compacted; no image is
    written (``image_path`` is ignored).
    """
    if getattr(server, "engine", None) is not None:
        server.compact_storage()
        return
    from repro.server.persistence import save_server
    if not obs.enabled:
        save_server(server, image_path)
        if server.wal is not None:
            server.wal.reset()
        return
    from repro.obs import instruments as ins
    with span("server.checkpoint", image=image_path):
        start = time.perf_counter()
        save_server(server, image_path)
        if server.wal is not None:
            server.wal.reset()
        ins.CHECKPOINT_SECONDS.observe(time.perf_counter() - start)
        ins.CHECKPOINTS.inc()


def recover_server(image_path: str | None, wal_path: str, params=None, *,
                   group_commit: bool = False, engine=None,
                   cache_nodes: int = 65536):
    """Rebuild a server from its durable state plus commit log.

    With ``engine`` given, the server pages its files from the storage
    engine on demand -- recovery cost is O(records since the last
    compaction), not O(total state) -- and ``image_path`` may be
    ``None``.  Otherwise, a missing image means recovery starts from an
    empty server (the WAL then holds the full history since bootstrap).
    Every validated WAL record is re-executed through the normal
    handlers *before* the log is attached for new appends, so replay
    never re-logs.  ``group_commit`` selects the coalescing append path
    for the re-attached log.

    The recovery breakdown (state load vs WAL replay) lands in the
    ``repro_server_cold_start_seconds`` /
    ``repro_recovery_*_seconds`` gauges and a ``server.recovered``
    event, so the compaction win shows up in ``/statusz``.
    """
    from repro.server.persistence import load_server
    from repro.server.server import CloudServer

    with span("server.recover", image=image_path, wal=wal_path):
        start = time.perf_counter()
        if engine is not None:
            server = CloudServer(params)
            server.attach_engine(engine, cache_nodes=cache_nodes)
        elif image_path is not None and os.path.exists(image_path):
            server = load_server(image_path, params)
        else:
            server = CloudServer(params)
        load_seconds = time.perf_counter() - start
        log = CommitLog(wal_path, group_commit=group_commit)
        replayed = 0
        replay_start = time.perf_counter()
        with span("server.recover.replay"):
            for record in log.records():
                server.handle_bytes(record)
                replayed += 1
        replay_seconds = time.perf_counter() - replay_start
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.WAL_REPLAYED.inc(replayed)
            ins.RECOVERIES.inc()
            ins.COLD_START_SECONDS.set(time.perf_counter() - start)
            ins.RECOVERY_CHECKPOINT_SECONDS.set(load_seconds)
            ins.RECOVERY_REPLAY_SECONDS.set(replay_seconds)
            log_event("server.recovered", replayed_records=replayed,
                      load_seconds=round(load_seconds, 6),
                      replay_seconds=round(replay_seconds, 6),
                      engine=engine is not None)
        server.last_recovery = {
            "replayed_records": replayed,
            "load_seconds": load_seconds,
            "replay_seconds": replay_seconds,
            "engine": engine is not None,
        }
        server.attach_wal(log)
    return server

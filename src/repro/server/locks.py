"""Server-side locking: per-file reader-writer locks plus a registry lock.

The paper's server is passive, but a deployed one is hit by many tenants
at once (the TCP host dispatches one thread per connection).  Correctness
under that concurrency is layered as a strict lock hierarchy::

    registry lock  ->  per-file lock  ->  WAL lock

* the **registry lock** guards the file table itself: outsourcing and
  whole-file deletion take it exclusively, every per-file operation takes
  it shared (so a file cannot vanish mid-request);
* the **per-file lock** serialises mutations of one modulation tree
  (commits take it exclusively) while letting any number of readers
  (access/fetch/challenge requests) proceed in parallel;
* the **WAL lock** (inside :class:`~repro.server.wal.CommitLog`) makes
  each fsync'd record append atomic, so records from different vaults
  never interleave mid-record.

Locks are always acquired left-to-right in the hierarchy and never in
reverse, which makes deadlock impossible by construction.

:class:`RWLock` is writer-preferring: once a writer is waiting, new
readers queue behind it, so a commit cannot be starved by a stream of
reads.  Both lock classes expose their wait times through the
``repro_server_lock_wait_seconds`` histogram when observability is on.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs import runtime as obs

#: Label values for the wait-time histogram.
MODE_SHARED = "shared"
MODE_EXCLUSIVE = "exclusive"


class RWLock:
    """A writer-preferring reader-writer lock.

    Any number of threads may hold the lock *shared*; exactly one may
    hold it *exclusive*, with no concurrent readers.  A waiting writer
    blocks new readers (writer preference), so mutations are never
    starved under read-heavy load.  The lock is not reentrant.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_shared(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_shared(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_exclusive(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def shared(self, scope: str = "file"):
        """Hold the lock shared for the duration of the ``with`` block."""
        if obs.enabled:
            start = time.perf_counter()
            self.acquire_shared()
            _observe_wait(scope, MODE_SHARED, time.perf_counter() - start)
        else:
            self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    @contextmanager
    def exclusive(self, scope: str = "file"):
        """Hold the lock exclusive for the duration of the ``with`` block."""
        if obs.enabled:
            start = time.perf_counter()
            self.acquire_exclusive()
            _observe_wait(scope, MODE_EXCLUSIVE, time.perf_counter() - start)
        else:
            self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()


def _observe_wait(scope: str, mode: str, seconds: float) -> None:
    from repro.obs import instruments as ins
    ins.LOCK_WAIT_SECONDS.observe(seconds, scope=scope, mode=mode)


class FileLockTable:
    """Lazily-created :class:`RWLock` per file id.

    Lock objects are created on first use under an internal mutex and
    dropped when the file is deleted.  A request racing a whole-file
    deletion may briefly hold a lock object no longer in the table; that
    is harmless because the file lookup it guards re-checks existence
    under the registry lock.
    """

    __slots__ = ("_mutex", "_locks")

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._locks: dict[int, RWLock] = {}

    def lock(self, file_id: int) -> RWLock:
        """The lock for ``file_id``, created on first use."""
        with self._mutex:
            lock = self._locks.get(file_id)
            if lock is None:
                lock = RWLock()
                self._locks[file_id] = lock
            return lock

    def discard(self, file_id: int) -> None:
        """Forget the lock of a deleted file."""
        with self._mutex:
            self._locks.pop(file_id, None)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._locks)

"""Durable server state: save/load a :class:`CloudServer` to disk.

The cloud's entire state per file is (modulation tree shape + modulators,
item map, ciphertexts, version).  This module serialises it to a single
explicit binary image -- the same wire primitives as the protocol, no
pickle -- so server state survives restarts, can be copied between hosts,
and (usefully for the threat model) represents exactly what a seized disk
would yield.

Format (all integers big-endian)::

    magic "RPRV" | u16 version | u16 modulator width | u32 file count
    per file:
      u64 file id | u64 tree version | u64 n_leaves
      links:  (2n-2) raw modulators (slot order 2..2n-1)
      leaves: n raw modulators (slot order n..2n-1)
      u32 item count | per item: u64 item id, u64 slot, u32 ct length, ct

Only dense in-memory state is persisted; benchmark-scale lazy stores are
ephemeral by design.
"""

from __future__ import annotations

import os
import struct

from repro.core.errors import ProtocolError, UnknownItemError
from repro.core.modstore import DenseModulatorStore
from repro.core.params import Params
from repro.core.tree import ModulationTree
from repro.protocol.wire import Reader, WireContext, Writer
from repro.server.server import CloudServer
from repro.server.storage import InMemoryCiphertextStore

_MAGIC = b"RPRV"
_FORMAT_VERSION = 1


def save_server(server: CloudServer, path: str) -> None:
    """Write the server's complete state to ``path`` (atomic replace)."""
    ctx = server.ctx
    w = Writer(ctx)
    w._parts.append(_MAGIC)  # noqa: SLF001 - header precedes framed fields
    w.u16(_FORMAT_VERSION)
    w.u16(ctx.modulator_width)

    file_ids = sorted(fid for fid in _file_ids(server))
    w.u32(len(file_ids))
    for file_id in file_ids:
        state = server.file_state(file_id)
        tree = state.tree
        n = tree.leaf_count
        w.u64(file_id)
        w.u64(state.version)
        w.u64(n)
        for kind, _slot, value in tree.iter_modulators():
            w.modulator(value)

        items = []
        for slot in range(n, 2 * n):
            item_id = tree.item_of_slot(slot)
            if item_id is None:
                continue
            try:
                ciphertext = state.ciphertexts.get(item_id)
            except UnknownItemError:
                continue
            items.append((item_id, slot, ciphertext))
        w.u32(len(items))
        for item_id, slot, ciphertext in items:
            w.u64(item_id)
            w.u64(slot)
            w.blob(ciphertext)

    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(w.getvalue())
    os.replace(tmp, path)


def load_server(path: str, params: Params | None = None) -> CloudServer:
    """Reconstruct a server from a state image written by :func:`save_server`."""
    params = params if params is not None else Params()
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:4] != _MAGIC:
        raise ProtocolError("not a repro server state image")
    reader = Reader(WireContext(modulator_width=params.modulator_size),
                    data[4:])
    version = reader.u16()
    if version != _FORMAT_VERSION:
        raise ProtocolError(f"unsupported state format version {version}")
    width = reader.u16()
    if width != params.modulator_size:
        raise ProtocolError(
            f"state image has {width}-byte modulators, parameters expect "
            f"{params.modulator_size}")

    server = CloudServer(params)
    for _ in range(reader.u32()):
        file_id = reader.u64()
        tree_version = reader.u64()
        n = reader.u64()

        store = DenseModulatorStore(width)
        for slot in range(2, 2 * n):
            store.set_link(slot, reader.modulator())
        for slot in range(n, 2 * n):
            store.set_leaf(slot, reader.modulator())

        tree = ModulationTree(store)
        tree._n = n  # noqa: SLF001 - reconstruction path
        ciphertexts = InMemoryCiphertextStore()
        for _ in range(reader.u32()):
            item_id = reader.u64()
            slot = reader.u64()
            ciphertext = reader.blob()
            tree._map.set(item_id, slot)  # noqa: SLF001
            ciphertexts.put(item_id, ciphertext)

        server.adopt_file(file_id, tree, ciphertexts)
        server.file_state(file_id).version = tree_version
    reader.expect_end()
    return server


def _file_ids(server: CloudServer):
    return list(server._files)  # noqa: SLF001 - persistence is a server peer

"""Durable server state: save/load a :class:`CloudServer` to disk.

The cloud's entire state per file is (modulation tree shape + modulators,
item map, ciphertexts, version).  This module serialises it to a single
explicit binary image -- the same wire primitives as the protocol, no
pickle -- so server state survives restarts, can be copied between hosts,
and (usefully for the threat model) represents exactly what a seized disk
would yield.

Format (all integers big-endian)::

    magic "RPRV" | u16 version | u16 modulator width | u32 file count
    per file:
      u64 file id | u64 tree version | u64 n_leaves
      links:  (2n-2) raw modulators (slot order 2..2n-1)
      leaves: n raw modulators (slot order n..2n-1)
      u32 item count | per item: u64 item id, u64 slot, u32 ct length, ct
    since v2, after the files:
      u32 replay entry count | per entry: u64 request id, u32 length,
      encoded reply message

The replay table persists the server's request-id idempotency cache
(eviction order preserved), so a client retrying an un-acknowledged
commit converges to exactly-once application even across a checkpoint
followed by a crash.  Version-1 images (no table) still load.

Only dense in-memory state is persisted; benchmark-scale lazy stores are
ephemeral by design.  The image write is atomic (write + fsync a
temporary, then ``os.replace``), so a crash mid-checkpoint leaves the
previous image intact.
"""

from __future__ import annotations

import os

from repro.core.errors import ProtocolError, UnknownItemError
from repro.core.modstore import DenseModulatorStore
from repro.core.params import Params
from repro.core.tree import ModulationTree
from repro.obs import runtime as obs
from repro.obs.trace import span
from repro.protocol import messages as msg
from repro.protocol.wire import Reader, WireContext, Writer
from repro.server.server import CloudServer
from repro.server.storage import InMemoryCiphertextStore

_MAGIC = b"RPRV"
_FORMAT_VERSION = 2


def save_server(server: CloudServer, path: str) -> None:
    """Write the server's complete state to ``path`` (atomic replace)."""
    if obs.enabled:
        with span("server.save_image", image=path) as sp:
            size = _save_server(server, path)
            sp.annotate(image_bytes=size)
            from repro.obs import instruments as ins
            ins.CHECKPOINT_IMAGE_BYTES.set(size)
    else:
        _save_server(server, path)


def _save_server(server: CloudServer, path: str) -> int:
    ctx = server.ctx
    w = Writer(ctx)
    w.raw(_MAGIC)  # header precedes framed fields
    w.u16(_FORMAT_VERSION)
    w.u16(ctx.modulator_width)

    file_ids = sorted(fid for fid in _file_ids(server))
    w.u32(len(file_ids))
    for file_id in file_ids:
        state = server.file_state(file_id)
        tree = state.tree
        n = tree.leaf_count
        w.u64(file_id)
        w.u64(state.version)
        w.u64(n)
        for kind, _slot, value in tree.iter_modulators():
            w.modulator(value)

        items = []
        for slot in range(n, 2 * n):
            item_id = tree.item_of_slot(slot)
            if item_id is None:
                continue
            try:
                ciphertext = state.ciphertexts.get(item_id)
            except UnknownItemError:
                # A map entry without a ciphertext is corruption; a
                # silently smaller image would *look* like a clean
                # deletion on reload.  Refuse to write it.
                raise ProtocolError(
                    f"file {file_id}: item {item_id} (slot {slot}) has a "
                    f"tree entry but no ciphertext; state is corrupt") \
                    from None
            items.append((item_id, slot, ciphertext))
        w.u32(len(items))
        for item_id, slot, ciphertext in items:
            w.u64(item_id)
            w.u64(slot)
            w.blob(ciphertext)

    entries = server.replay_cache_entries()
    w.u32(len(entries))
    for request_id, reply in entries:
        w.u64(request_id)
        w.blob(msg.encode_message(ctx, reply))

    tmp = path + ".tmp"
    image = w.getvalue()
    with open(tmp, "wb") as handle:
        handle.write(image)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # The rename itself lives in the directory: without syncing it, a
    # crash can forget the replace (or the first image's very existence).
    from repro.server.wal import fsync_directory
    fsync_directory(path)
    return len(image)


def load_server(path: str, params: Params | None = None) -> CloudServer:
    """Reconstruct a server from a state image written by :func:`save_server`."""
    if obs.enabled:
        with span("server.load_image", image=path):
            return _load_server(path, params)
    return _load_server(path, params)


def _load_server(path: str, params: Params | None = None) -> CloudServer:
    params = params if params is not None else Params()
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:4] != _MAGIC:
        raise ProtocolError("not a repro server state image")
    ctx = WireContext(modulator_width=params.modulator_size)
    reader = Reader(ctx, data[4:])
    version = reader.u16()
    if version not in (1, _FORMAT_VERSION):
        raise ProtocolError(f"unsupported state format version {version}")
    width = reader.u16()
    if width != params.modulator_size:
        raise ProtocolError(
            f"state image has {width}-byte modulators, parameters expect "
            f"{params.modulator_size}")

    server = CloudServer(params)
    for _ in range(reader.u32()):
        file_id = reader.u64()
        tree_version = reader.u64()
        n = reader.u64()

        store = DenseModulatorStore(width)
        for slot in range(2, 2 * n):
            store.set_link(slot, reader.modulator())
        for slot in range(n, 2 * n):
            store.set_leaf(slot, reader.modulator())

        tree = ModulationTree(store)
        tree._n = n  # noqa: SLF001 - reconstruction path
        ciphertexts = InMemoryCiphertextStore()
        for _ in range(reader.u32()):
            item_id = reader.u64()
            slot = reader.u64()
            ciphertext = reader.blob()
            tree._map.set(item_id, slot)  # noqa: SLF001
            ciphertexts.put(item_id, ciphertext)

        server.adopt_file(file_id, tree, ciphertexts)
        server.file_state(file_id).version = tree_version

    if version >= 2:
        entries = []
        for _ in range(reader.u32()):
            request_id = reader.u64()
            entries.append((request_id,
                            msg.decode_message(ctx, reader.blob())))
        server.restore_replay_cache(entries)
    reader.expect_end()
    return server


def _file_ids(server: CloudServer):
    # file_ids() covers engine-resident files too, so an image written
    # from an engine-backed server (e.g. a migration off SQLite back to
    # pickle persistence) captures every file, not just the paged-in ones.
    return server.file_ids()

"""Malicious-server variants for the Theorem 2 security experiments.

The threat model gives the attacker full control of the server at all
times, so "the server" may answer anything it likes.  Each class here
implements one concrete cheating strategy from the paper's security
analysis; the security test suite asserts that the client's refusal rules
(decrypt-verification, item-id binding, structural checks, the
duplicate-modulator rule) reject every one of them *before* the client
emits any delta -- which is exactly what the proof of Theorem 2, case ii
requires.

* :class:`WrongLeafServer` -- answers a deletion request for item ``k``
  with ``MT(k')`` of a different leaf, hoping the client kills ``k'``
  while ``k`` survives a future key leak.
* :class:`WrongCiphertextServer` -- correct ``MT(k)`` but another item's
  ciphertext, defeated by decrypt-verification.
* :class:`CloneCutServer` -- the Figure 7 attack: rewrites a cut link
  modulator to equal its path sibling so a shadow leaf would share the
  deleted key; necessarily produces a duplicate inside ``MT(k)``.
* :class:`DuplicateInjectionServer` -- crudely duplicates arbitrary
  modulators in the view.
* :class:`DeltaSkippingServer` -- acknowledges the commit but never
  applies the deltas.  This breaks *availability* of the surviving items
  (out of scope for the paper: a malicious server can always destroy
  data) but, as the tests show, cannot resurrect the deleted one.
* :class:`ReplayServer` -- serves stale pre-deletion ciphertexts on
  access, defeated by the item-id binding in the plaintext.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.tree import CutEntry, MTView
from repro.protocol import messages as msg
from repro.server.server import CloudServer


class WrongLeafServer(CloudServer):
    """Answers ``DeleteRequest(k)`` with the subtree of a different leaf."""

    def _on_delete_request(self, request: msg.DeleteRequest) -> msg.Message:
        state = self.file_state(request.file_id)
        victim = None
        for other_id in state.tree.item_ids():
            if other_id != request.item_id:
                victim = other_id
                break
        if victim is None:
            return super()._on_delete_request(request)
        # Send the other leaf's MT and *its* ciphertext: the chain output
        # decrypts it, but the recovered item id exposes the substitution.
        forged = msg.DeleteRequest(file_id=request.file_id, item_id=victim)
        return super()._on_delete_request(forged)


class WrongCiphertextServer(CloudServer):
    """Correct ``MT(k)`` but a different item's ciphertext."""

    def _on_delete_request(self, request: msg.DeleteRequest) -> msg.Message:
        reply = super()._on_delete_request(request)
        if not isinstance(reply, msg.DeleteChallenge):
            return reply
        state = self.file_state(request.file_id)
        for other_id in state.tree.item_ids():
            if other_id != request.item_id:
                return replace(reply,
                               ciphertext=state.ciphertexts.get(other_id))
        return reply


class CloneCutServer(CloudServer):
    """The Figure 7 path-cloning attack.

    To keep the deleted key alive under a shadow leaf, the modulators on
    the shadow path must *equal* those of ``M_k`` -- in particular the cut
    node's incoming link modulator must equal its sibling's, which is on
    ``P(k)``.  Both are inside ``MT(k)``, so the client's distinctness
    check fires.
    """

    #: Which cut depth to clone (0 = directly under the root).
    clone_depth = 0

    def _on_delete_request(self, request: msg.DeleteRequest) -> msg.Message:
        reply = super()._on_delete_request(request)
        if not isinstance(reply, msg.DeleteChallenge) or not reply.mt.cut:
            return reply
        depth = min(self.clone_depth, len(reply.mt.cut) - 1)
        cloned = list(reply.mt.cut)
        cloned[depth] = CutEntry(
            slot=cloned[depth].slot,
            link_mod=reply.mt.path_links[depth],  # equal to the path sibling
            is_leaf=cloned[depth].is_leaf,
            leaf_mod=cloned[depth].leaf_mod,
        )
        forged_mt = MTView(path_slots=reply.mt.path_slots,
                           path_links=reply.mt.path_links,
                           leaf_mod=reply.mt.leaf_mod, cut=tuple(cloned))
        return replace(reply, mt=forged_mt)


class DuplicateInjectionServer(CloudServer):
    """Duplicates the leaf modulator into a cut entry's link slot."""

    def _on_delete_request(self, request: msg.DeleteRequest) -> msg.Message:
        reply = super()._on_delete_request(request)
        if not isinstance(reply, msg.DeleteChallenge) or not reply.mt.cut:
            return reply
        tainted = list(reply.mt.cut)
        last = tainted[-1]
        tainted[-1] = CutEntry(slot=last.slot, link_mod=reply.mt.leaf_mod,
                               is_leaf=last.is_leaf, leaf_mod=last.leaf_mod)
        forged_mt = MTView(path_slots=reply.mt.path_slots,
                           path_links=reply.mt.path_links,
                           leaf_mod=reply.mt.leaf_mod, cut=tuple(tainted))
        return replace(reply, mt=forged_mt)


class DeltaSkippingServer(CloudServer):
    """Acknowledges the deletion commit without applying anything."""

    def _on_delete_commit(self, request: msg.DeleteCommit) -> msg.Message:
        state = self.file_state(request.file_id)
        # Drop the ciphertext (the visible effect) but keep every
        # modulator untouched, hoping the old key material still works.
        state.ciphertexts.delete(request.item_id)
        state.version += 1
        return msg.Ack(tree_version=state.version)


class ReplayServer(CloudServer):
    """Serves the first ciphertext it ever stored for each item."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._first_seen: dict[tuple[int, int], bytes] = {}

    def _on_modify(self, request: msg.ModifyCommit) -> msg.Message:
        key = (request.file_id, request.item_id)
        if key not in self._first_seen:
            state = self.file_state(request.file_id)
            try:
                self._first_seen[key] = state.ciphertexts.get(request.item_id)
            except Exception:
                pass
        return super()._on_modify(request)

    def _on_access(self, request: msg.AccessRequest) -> msg.Message:
        reply = super()._on_access(request)
        if not isinstance(reply, msg.AccessReply):
            return reply
        stale = self._first_seen.get((request.file_id, request.item_id))
        if stale is not None:
            return replace(reply, ciphertext=stale)
        return reply

"""Server side: the honest cloud server, storage, and adversarial variants."""

from repro.server.server import CloudServer, ServerFile
from repro.server.storage import (CallbackCiphertextStore, CiphertextStore,
                                  FileBackedCiphertextStore,
                                  InMemoryCiphertextStore)

__all__ = [
    "CallbackCiphertextStore",
    "CiphertextStore",
    "CloudServer",
    "FileBackedCiphertextStore",
    "InMemoryCiphertextStore",
    "ServerFile",
]

"""Lazy tree paging over a storage engine.

When a :class:`~repro.server.engine.TreeStore` engine is attached, the
server does not load whole files: :class:`PagedModulatorStore`,
:class:`PagedItemMap`, and :class:`PagedCiphertextStore` satisfy the
existing in-memory interfaces by fetching individual nodes from the
engine on demand -- a request touches only its root-to-leaf paths, so a
million-leaf tree costs O(log n) engine reads per operation.

Each paged object keeps a **dirty overlay**: writes land in memory and
are pushed to the engine only by ``flush_to_engine`` (called from the
server's ``compact_storage`` under the exclusive registry lock).  Reads
check dirty state first, then the shared :class:`NodeCache`, then the
engine -- so between compactions the server state is exactly
(engine state) + (dirty overlays), and a crash loses only the overlay,
which the WAL replays.

The node cache is shared across files and bounded (LRU).  Coherence
follows the lock discipline the view cache already uses: mutations hold
the file's exclusive lock while they touch the dirty overlay, and the
overlay always shadows the cache, so a stale cache entry can only be an
*older committed* value that no reader can observe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, Optional

from repro.core.errors import UnknownItemError
from repro.core.modstore import ModulatorStore
from repro.core.tree import ItemMap
from repro.obs import runtime as obs
from repro.server.engine import KIND_LEAF, KIND_LINK, TreeStore
from repro.server.storage import CiphertextStore


class NodeCache:
    """Bounded LRU cache of tree nodes, shared by every paged file.

    Keys are ``(file_id, kind, slot)``; values are modulator bytes.  A
    capacity of 0 disables caching entirely (every read hits the
    engine), which the benchmarks use to measure the cold path.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, int, int], bytes] = OrderedDict()
        self._mutex = threading.Lock()

    def get(self, key: tuple[int, int, int]) -> Optional[bytes]:
        with self._mutex:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.NODE_CACHE.inc(outcome="hit" if value is not None else "miss")
        return value

    def put(self, key: tuple[int, int, int], value: bytes) -> None:
        if self.capacity <= 0:
            return
        with self._mutex:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            size = len(self._entries)
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.RESIDENT_NODES.set(size)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def evict(self, key: tuple[int, int, int]) -> None:
        with self._mutex:
            self._entries.pop(key, None)

    def purge_file(self, file_id: int) -> None:
        """Drop every cached node of one file (whole-file deletion)."""
        with self._mutex:
            stale = [key for key in self._entries if key[0] == file_id]
            for key in stale:
                del self._entries[key]
            size = len(self._entries)
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.RESIDENT_NODES.set(size)


class PagedModulatorStore(ModulatorStore):
    """Engine-backed modulator store with a dirty write overlay.

    Matches :class:`~repro.core.modstore.DenseModulatorStore` semantics
    exactly: reads of never-written slots raise ``KeyError``, and the
    last written value wins.  Values never read stay out-of-core.
    """

    def __init__(self, engine: TreeStore, file_id: int, width: int,
                 cache: NodeCache) -> None:
        super().__init__(width)
        self._engine = engine
        self._file_id = file_id
        self._cache = cache
        #: (kind, slot) -> value written since the last flush.
        self._dirty: dict[tuple[int, int], bytes] = {}

    def _get(self, kind: int, slot: int) -> bytes:
        value = self._dirty.get((kind, slot))
        if value is not None:
            return value
        key = (self._file_id, kind, slot)
        value = self._cache.get(key)
        if value is not None:
            return value
        value = self._engine.get_node(self._file_id, kind, slot)
        self._cache.put(key, value)
        return value

    def get_link(self, slot: int) -> bytes:
        return self._get(KIND_LINK, slot)

    def get_leaf(self, slot: int) -> bytes:
        return self._get(KIND_LEAF, slot)

    def set_link(self, slot: int, value: bytes) -> None:
        self._dirty[(KIND_LINK, slot)] = self._check(value)

    def set_leaf(self, slot: int, value: bytes) -> None:
        self._dirty[(KIND_LEAF, slot)] = self._check(value)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def flush_to_engine(self) -> int:
        """Push dirty nodes to the engine; returns the flushed count."""
        if not self._dirty:
            return 0
        self._engine.write_nodes(
            self._file_id,
            ((kind, slot, value)
             for (kind, slot), value in self._dirty.items()))
        for (kind, slot), value in self._dirty.items():
            self._cache.put((self._file_id, kind, slot), value)
        flushed = len(self._dirty)
        self._dirty = {}
        return flushed


class PagedItemMap(ItemMap):
    """Engine-backed item-id <-> leaf-slot map with a dirty overlay.

    The overlay records both directions (``None`` marks a removed
    mapping) so a lookup never has to consult the engine for state a
    pending mutation already changed.
    """

    def __init__(self, engine: TreeStore, file_id: int) -> None:
        super().__init__()
        self._engine = engine
        self._file_id = file_id
        self._dirty_slot_of: dict[int, Optional[int]] = {}
        self._dirty_item_at: dict[int, Optional[int]] = {}

    def slot_of(self, item_id: int) -> Optional[int]:
        if item_id in self._dirty_slot_of:
            return self._dirty_slot_of[item_id]
        return self._engine.get_slot(self._file_id, item_id)

    def item_at(self, slot: int) -> Optional[int]:
        if slot in self._dirty_item_at:
            return self._dirty_item_at[slot]
        return self._engine.get_item(self._file_id, slot)

    def set(self, item_id: int, slot: int) -> None:
        self._dirty_slot_of[item_id] = slot
        self._dirty_item_at[slot] = item_id

    def move(self, item_id: int, new_slot: int) -> None:
        old_slot = self.slot_of(item_id)
        if old_slot is not None and old_slot != new_slot:
            self._dirty_item_at[old_slot] = None
        self.set(item_id, new_slot)

    def remove(self, item_id: int) -> None:
        slot = self.slot_of(item_id)
        self._dirty_slot_of[item_id] = None
        if slot is not None:
            self._dirty_item_at[slot] = None

    def contains(self, item_id: int) -> bool:
        return self.slot_of(item_id) is not None

    @property
    def dirty_count(self) -> int:
        return len(self._dirty_slot_of)

    def flush_to_engine(self) -> int:
        """Push dirty mappings to the engine; returns the flushed count."""
        if not self._dirty_slot_of:
            return 0
        self._engine.write_items(self._file_id,
                                 list(self._dirty_slot_of.items()))
        flushed = len(self._dirty_slot_of)
        self._dirty_slot_of = {}
        self._dirty_item_at = {}
        return flushed


class PagedCiphertextStore(CiphertextStore):
    """Engine-backed ciphertext store with a dirty overlay."""

    def __init__(self, engine: TreeStore, file_id: int) -> None:
        self._engine = engine
        self._file_id = file_id
        #: item_id -> ciphertext, or ``None`` for a pending deletion.
        self._dirty: dict[int, Optional[bytes]] = {}

    def get(self, item_id: int) -> bytes:
        if item_id in self._dirty:
            value = self._dirty[item_id]
            if value is None:
                raise UnknownItemError(f"no ciphertext for item {item_id}")
            return value
        try:
            return self._engine.get_ciphertext(self._file_id, item_id)
        except KeyError:
            raise UnknownItemError(f"no ciphertext for item {item_id}") \
                from None

    def put(self, item_id: int, ciphertext: bytes) -> None:
        self._dirty[item_id] = bytes(ciphertext)

    def delete(self, item_id: int) -> None:
        self._dirty[item_id] = None

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def flush_to_engine(self) -> int:
        """Push dirty ciphertexts to the engine; returns the count."""
        if not self._dirty:
            return 0
        self._engine.write_ciphertexts(self._file_id,
                                       list(self._dirty.items()))
        flushed = len(self._dirty)
        self._dirty = {}
        return flushed


def iter_live_items(engine: TreeStore, file_id: int,
                    n_leaves: int) -> Iterator[tuple[int, int]]:
    """Yield ``(slot, item_id)`` for every occupied leaf of a file.

    Used by full-state conversions (engine -> dense) and conformance
    checks; per-request paths never enumerate whole files.
    """
    for slot in range(n_leaves, 2 * n_leaves):
        item_id = engine.get_item(file_id, slot)
        if item_id is not None:
            yield slot, item_id

"""A local key proxy for multi-user clients (Section V).

"If a client has many users sharing the same file system, the master keys
(or control keys) may be stored in a shared local secure storage ...
Alternatively, the client may designate a local proxy server to manage
these keys.  When a user wants to operate on data, its request is
redirected to the proxy, which will act on the user's behalf."

:class:`KeyProxy` implements exactly that: it owns the
:class:`~repro.fs.filesystem.OutsourcedFileSystem` (and hence the control
keys) and exposes the file operations to named users under a simple
grant-based authorisation policy.  Users never see key material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import ReproError
from repro.fs.filesystem import OutsourcedFile, OutsourcedFileSystem


class PermissionError_(ReproError):
    """A user attempted an operation it was not granted."""


#: Grantable rights.
READ = "read"
WRITE = "write"
DELETE = "delete"
ALL_RIGHTS = frozenset({READ, WRITE, DELETE})


@dataclass
class _Grant:
    rights: set[str] = field(default_factory=set)


class KeyProxy:
    """Per-user façade over a shared outsourced file system."""

    def __init__(self, filesystem: OutsourcedFileSystem) -> None:
        self._fs = filesystem
        # user -> file name pattern ("*" or exact) -> rights
        self._grants: dict[str, dict[str, _Grant]] = {}

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------

    def grant(self, user: str, file_pattern: str,
              rights: Sequence[str]) -> None:
        """Grant ``rights`` on ``file_pattern`` ("*" = every file)."""
        bad = set(rights) - ALL_RIGHTS
        if bad:
            raise ValueError(f"unknown rights: {sorted(bad)}")
        grant = self._grants.setdefault(user, {}).setdefault(file_pattern,
                                                             _Grant())
        grant.rights.update(rights)

    def revoke(self, user: str, file_pattern: str | None = None) -> None:
        """Revoke a user's grants (all of them if no pattern given)."""
        if file_pattern is None:
            self._grants.pop(user, None)
        else:
            user_grants = self._grants.get(user, {})
            user_grants.pop(file_pattern, None)

    def _check(self, user: str, name: str, right: str) -> None:
        user_grants = self._grants.get(user, {})
        for pattern, grant in user_grants.items():
            if pattern == "*" or pattern == name:
                if right in grant.rights:
                    return
        raise PermissionError_(
            f"user {user!r} lacks {right!r} on file {name!r}")

    # ------------------------------------------------------------------
    # Proxied operations
    # ------------------------------------------------------------------

    def _open(self, name: str) -> OutsourcedFile:
        return self._fs.open(name)

    def create_file(self, user: str, name: str,
                    records: Sequence[bytes] = ()) -> None:
        self._check_creation(user, name)
        self._fs.create_file(name, records)
        self.grant(user, name, list(ALL_RIGHTS))

    def _check_creation(self, user: str, name: str) -> None:
        # Creation is allowed for any user holding a wildcard WRITE grant,
        # or any known user creating under their own namespace "user/...".
        if name.split("/", 1)[0] == user:
            return
        try:
            self._check(user, "*", WRITE)
        except PermissionError_:
            raise PermissionError_(
                f"user {user!r} may only create files under {user}/") from None

    def read_record(self, user: str, name: str, position: int) -> bytes:
        self._check(user, name, READ)
        return self._open(name).read_record(position)

    def write_record(self, user: str, name: str, position: int,
                     data: bytes) -> None:
        self._check(user, name, WRITE)
        self._open(name).write_record(position, data)

    def append_record(self, user: str, name: str, data: bytes) -> int:
        self._check(user, name, WRITE)
        return self._open(name).append_record(data)

    def delete_record(self, user: str, name: str, position: int) -> None:
        self._check(user, name, DELETE)
        self._open(name).delete_record(position)

    def read_all(self, user: str, name: str) -> list[bytes]:
        self._check(user, name, READ)
        return self._open(name).read_all()

    def delete_file(self, user: str, name: str) -> None:
        self._check(user, name, DELETE)
        self._fs.delete_file(name)

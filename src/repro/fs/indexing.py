"""Logical record ordering and byte-offset indexing for outsourced files.

The modulation tree orders items by leaf slot, which changes under
balancing; user-visible files need a stable *logical* order and, per the
paper's footnote 2, byte-offset addressing over variable-size items ("the
size of each data item is stored with the ciphertext, such that the cloud
server may sequentially scan the encrypted items and accumulate the sizes
until the specified offset is reached").  This index keeps the ordered
``(item_id, size)`` list and resolves offsets exactly that way -- a
sequential scan with accumulated sizes, client-side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Located:
    """Result of a byte-offset lookup."""

    position: int
    item_id: int
    item_start: int
    item_size: int

    @property
    def offset_in_item(self) -> int:
        return self.item_start


class ItemIndex:
    """Ordered records of an outsourced file: ``(item_id, size)`` pairs."""

    def __init__(self) -> None:
        self._records: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def total_size(self) -> int:
        return sum(size for _id, size in self._records)

    def append(self, item_id: int, size: int) -> None:
        if size < 0:
            raise ValueError("record size must be non-negative")
        self._records.append((item_id, size))

    def insert(self, position: int, item_id: int, size: int) -> None:
        if size < 0:
            raise ValueError("record size must be non-negative")
        if not 0 <= position <= len(self._records):
            raise IndexError("record position out of range")
        self._records.insert(position, (item_id, size))

    def remove(self, position: int) -> tuple[int, int]:
        """Remove and return the record at ``position``."""
        return self._records.pop(position)

    def update_size(self, position: int, new_size: int) -> None:
        item_id, _old = self._records[position]
        if new_size < 0:
            raise ValueError("record size must be non-negative")
        self._records[position] = (item_id, new_size)

    def item_id_at(self, position: int) -> int:
        return self._records[position][0]

    def size_at(self, position: int) -> int:
        return self._records[position][1]

    def position_of(self, item_id: int) -> int:
        for position, (record_id, _size) in enumerate(self._records):
            if record_id == item_id:
                return position
        raise KeyError(f"item {item_id} not in index")

    def records(self) -> list[tuple[int, int]]:
        return list(self._records)

    def locate(self, offset: int) -> Located:
        """Find the record containing byte ``offset`` (sequential scan)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        accumulated = 0
        for position, (item_id, size) in enumerate(self._records):
            if offset < accumulated + size:
                return Located(position=position, item_id=item_id,
                               item_start=offset - accumulated,
                               item_size=size)
            accumulated += size
        raise IndexError(f"offset {offset} beyond end of file "
                         f"({accumulated} bytes)")
